// Paper-shape regression tests: the headline quantitative relationships
// from each reproduced figure/table, pinned as fast assertions so that
// future changes to any module cannot silently break the reproduction.
// (The full-scale versions live in bench/; these run in seconds.)
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

namespace hvc {
namespace {

using sim::seconds;

// Fig. 1a, distilled: under aggressive DChannel steering, CUBIC retains
// most of the fat channel while BBR and Vivace collapse below 20% of it.
TEST(PaperShape, Fig1aOrdering) {
  const auto cubic =
      core::run_bulk(core::ScenarioConfig::fig1(), "cubic", seconds(30));
  const auto bbr =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", seconds(30));
  const auto vivace =
      core::run_bulk(core::ScenarioConfig::fig1(), "vivace", seconds(30));
  EXPECT_GT(cubic.goodput_bps, 40e6);
  EXPECT_LT(bbr.goodput_bps, 12e6);
  EXPECT_LT(vivace.goodput_bps, 5e6);
  EXPECT_GT(cubic.goodput_bps, 4 * bbr.goodput_bps);
}

// Fig. 1b, distilled: the RTT signal BBR sees under steering spans the
// URLLC floor to the eMBB value — variance manufactured by steering.
TEST(PaperShape, Fig1bRttOscillation) {
  const auto r =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", seconds(15));
  double mn = 1e18, mx = 0;
  for (const auto& p : r.rtt_ms.points()) {
    mn = std::min(mn, p.value);
    mx = std::max(mx, p.value);
  }
  EXPECT_LT(mn, 15.0);  // URLLC-steered samples
  EXPECT_GT(mx, 25.0);  // eMBB path samples
}

// Fig. 2, distilled: on an outage-prone trace, priority steering's p95
// frame latency beats DChannel's by >1.5x and eMBB-only's by >5x, at an
// SSIM cost below 0.08 (paper: 2.26x, 26x, 0.068).
TEST(PaperShape, Fig2VideoOrdering) {
  const auto run = [](const char* policy) {
    return core::run_video(
        core::ScenarioConfig::traced(trace::FiveGProfile::kMmWaveDriving,
                                     policy, seconds(60), 42),
        {}, {}, seconds(40));
  };
  const auto embb = run("embb-only");
  const auto dch = run("dchannel");
  const auto prio = run("msg-priority");
  const double p_embb = embb.stats.latency_ms.percentile(95);
  const double p_dch = dch.stats.latency_ms.percentile(95);
  const double p_prio = prio.stats.latency_ms.percentile(95);
  EXPECT_GT(p_dch / p_prio, 1.5);
  EXPECT_GT(p_embb / p_prio, 5.0);
  EXPECT_LT(embb.stats.ssim.mean() - prio.stats.ssim.mean(), 0.08);
}

// Table 1, distilled: web-tuned DChannel cuts mean PLT vs eMBB-only on
// the driving trace by at least 15% (paper: 36.8%).
TEST(PaperShape, Table1WebGain) {
  const auto corpus = app::web::generate_corpus({.pages = 8, .seed = 2023});
  core::WebRunConfig web;
  web.loads_per_page = 3;
  const auto embb = core::run_web(
      core::ScenarioConfig::traced(trace::FiveGProfile::kLowbandDriving,
                                   "embb-only", seconds(120), 42),
      corpus, web);
  auto dch_cfg = core::ScenarioConfig::traced(
      trace::FiveGProfile::kLowbandDriving, "dchannel", seconds(120), 42);
  dch_cfg.up_factory = dch_cfg.down_factory = [] {
    return std::make_unique<steer::DChannelPolicy>(
        steer::DChannelConfig::web_tuned());
  };
  const auto dch = core::run_web(dch_cfg, corpus, web);
  EXPECT_LT(dch.plt_ms.mean(), 0.85 * embb.plt_ms.mean());
}

// §3.2, distilled: the HVC-aware CCA recovers what BBR loses.
TEST(PaperShape, HvcCcaRecovery) {
  const auto bbr =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", seconds(20));
  const auto hvc =
      core::run_bulk(core::ScenarioConfig::fig1(), "hvc", seconds(20));
  EXPECT_GT(hvc.goodput_bps, 40e6);
  EXPECT_GT(hvc.goodput_bps / bbr.goodput_bps, 4.0);
}

// scenarios/outage_recovery.json, distilled: a 3 s eMBB blackout under
// DChannel steering fails over within milliseconds of the outage end and
// commits nothing into the dead link, while a single-channel baseline
// blasts bytes into the blackout and needs RTO probes to come back.
// (The full artifact-producing version is bench/outage_recovery.)
TEST(PaperShape, OutageRecoveryGoldenNumbers) {
  const auto outage = [] {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kOutage;
    e.channel = 0;
    e.dir = fault::FaultDir::kBoth;
    e.start = seconds(10);
    e.duration = seconds(3);
    return e;
  }();
  // Time from outage end until cumulative acked bytes first grow again —
  // the same "time to recover" hvc_run reports for outage scenarios.
  const auto recover_ms = [&](const core::BulkResult& r) {
    const sim::Time end = outage.start + outage.duration;
    double at_end = 0.0;
    for (const auto& p : r.acked_bytes.points()) {
      if (p.t <= end) {
        at_end = p.value;
      } else if (p.value > at_end) {
        return sim::to_millis(p.t - end);
      }
    }
    return -1.0;
  };

  auto dch_cfg = core::ScenarioConfig::fig1("dchannel");
  dch_cfg.faults.events.push_back(outage);
  const auto dch = core::run_bulk(dch_cfg, "cubic", seconds(20));

  auto solo_cfg = core::ScenarioConfig::fig1("embb-only");
  solo_cfg.channels.resize(1);  // no failover target: the honest baseline
  solo_cfg.faults.events.push_back(outage);
  const auto solo = core::run_bulk(solo_cfg, "cubic", seconds(20));

  // Bytes acked inside the blackout window itself: the continuity the
  // paper's heterogeneous-channel story buys. (End-to-run goodput is the
  // wrong yardstick here — failover parks CUBIC on the 2 Mbps URLLC pipe
  // and it regrows slowly, while the solo flow slow-start-restarts over
  // the fat link the moment it returns.)
  // Skip the first 500 ms of the window: data already in flight when the
  // link dies still drains into ACKs for about one RTT.
  const auto acked_in_blackout = [&](const core::BulkResult& r) {
    const sim::Time from = outage.start + sim::milliseconds(500);
    double before = 0.0, during = 0.0;
    for (const auto& p : r.acked_bytes.points()) {
      if (p.t <= from) before = p.value;
      if (p.t <= outage.start + outage.duration) during = p.value;
    }
    return during - before;
  };

  // Failover keeps data flowing through the blackout and wastes nothing.
  EXPECT_GT(acked_in_blackout(dch), 100'000.0);  // ~2 Mbps * 3 s feasible
  EXPECT_EQ(dch.fault_blackout_committed_bytes, 0);
  EXPECT_GT(dch.goodput_bps, 8e6);  // still a live, useful flow
  const double dch_rec = recover_ms(dch);
  EXPECT_GE(dch_rec, 0.0);
  EXPECT_LT(dch_rec, 200.0);
  // The stuck baseline stalls for the whole window, pays for every probe
  // sent into the dead link, and only resumes once an RTO-backed-off
  // probe lands after the outage.
  EXPECT_LT(acked_in_blackout(solo), 1'000.0);
  EXPECT_GT(solo.fault_blackout_committed_bytes, 20'000);
  EXPECT_GT(solo.rto_count, 0);
  const double solo_rec = recover_ms(solo);
  EXPECT_GE(solo_rec, 0.0);
  EXPECT_LT(solo_rec, 3000.0);
}

// §3.1 deployment claim, distilled: DChannel's gains require only the
// shim — the transports and applications here are identical binaries
// across the two runs; only the policy object differs.
TEST(PaperShape, SteeringIsTransparentToEndpoints) {
  const auto with =
      core::run_bulk(core::ScenarioConfig::fig1("min-delay"), "cubic",
                     seconds(10));
  const auto without =
      core::run_bulk(core::ScenarioConfig::fig1("embb-only"), "cubic",
                     seconds(10));
  // Both complete; steering used the second channel; no-steering did not.
  EXPECT_GT(with.data_packets_per_channel[1], 0);
  EXPECT_EQ(without.data_packets_per_channel[1], 0);
}

}  // namespace
}  // namespace hvc
