// Shared helpers for the benchmark harness: table printing and the
// paper's standard experiment parameters.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace hvc::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Print a CDF at fixed probability grid points (paper-style series).
inline void print_cdf(const std::string& label, const sim::Summary& s,
                      int prec = 1) {
  std::printf("%s CDF:", label.c_str());
  for (const double p : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    std::printf("  p%.0f=%.*f", p, prec, s.percentile(p));
  }
  std::printf("\n");
}

}  // namespace hvc::bench
