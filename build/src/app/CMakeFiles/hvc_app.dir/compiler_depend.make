# Empty compiler generated dependencies file for hvc_app.
# This may be replaced when dependencies are built.
