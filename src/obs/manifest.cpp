#include "obs/manifest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace hvc::obs {

void RunManifest::capture_metrics(const MetricsRegistry& registry) {
  metrics = registry.snapshot();
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "  \"name\": " + json::quote(name) + ",\n";
  out += "  \"seed\": " + json::number(static_cast<std::uint64_t>(seed)) +
         ",\n";
  out += "  \"wall_time_ms\": " + json::number(wall_time_ms) + ",\n";
  out += "  \"trace_events\": " +
         json::number(static_cast<std::uint64_t>(trace_events)) + ",\n";
  out += "  \"params\": {";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    " + json::quote(params[i].first) + ": " +
           json::quote(params[i].second);
  }
  out += params.empty() ? "},\n" : "\n  },\n";
  out += "  \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out += ',';
    first = false;
    out += "\n    " + json::quote(key) + ": " + json::number(value);
  }
  out += metrics.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::optional<RunManifest> RunManifest::from_json(const std::string& text) {
  json::Value root;
  if (!json::parse(text, &root) || !root.is_object()) return std::nullopt;
  RunManifest m;
  m.name = root.string_or("name", "");
  m.seed = static_cast<std::uint64_t>(root.number_or("seed", 0));
  m.wall_time_ms = root.number_or("wall_time_ms", 0.0);
  m.trace_events =
      static_cast<std::uint64_t>(root.number_or("trace_events", 0));
  if (const json::Value* p = root.find("params"); p && p->is_object()) {
    for (const auto& [key, value] : p->object) {
      if (value.is_string()) m.params.emplace_back(key, value.str);
    }
  }
  if (const json::Value* mm = root.find("metrics"); mm && mm->is_object()) {
    for (const auto& [key, value] : mm->object) {
      if (value.is_number()) m.metrics[key] = value.num;
    }
  }
  return m;
}

bool RunManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

std::optional<RunManifest> RunManifest::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

}  // namespace hvc::obs
