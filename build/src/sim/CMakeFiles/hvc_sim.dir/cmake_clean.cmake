file(REMOVE_RECURSE
  "CMakeFiles/hvc_sim.dir/logger.cpp.o"
  "CMakeFiles/hvc_sim.dir/logger.cpp.o.d"
  "CMakeFiles/hvc_sim.dir/stats.cpp.o"
  "CMakeFiles/hvc_sim.dir/stats.cpp.o.d"
  "libhvc_sim.a"
  "libhvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
