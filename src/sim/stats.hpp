// Metric collection: summaries, percentiles, CDFs, time series, and
// time-windowed min/max filters (as used by BBR and channel estimators).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace hvc::sim {

/// Accumulates scalar samples; supports mean/min/max/stddev and, because
/// samples are retained, exact percentiles and CDF export.
class Summary {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
    sum_ += v;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile by linear interpolation between order statistics.
  /// p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// (value, cumulative fraction) points suitable for plotting a CDF.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  void clear() {
    samples_.clear();
    sum_ = 0.0;
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

/// A (time, value) series, e.g. per-ACK RTT samples for Figure 1b.
class TimeSeries {
 public:
  struct Point {
    Time t;
    double value;
  };

  void add(Time t, double value) { points_.push_back({t, value}); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Mean of values with t in [from, to).
  [[nodiscard]] double mean_in(Time from, Time to) const;

  /// Resample into fixed-width buckets (mean per bucket); empty buckets
  /// carry forward the previous value. Used to print compact series.
  [[nodiscard]] std::vector<Point> bucketed(Duration width) const;

 private:
  std::vector<Point> points_;
};

/// Windowed max filter: reports the maximum of samples whose timestamps lie
/// within `window` of the latest sample. O(1) amortized via a monotonic
/// deque. This is the estimator BBR uses for bottleneck bandwidth.
class WindowedMax {
 public:
  explicit WindowedMax(Duration window) : window_(window) {}

  void update(Time now, double v);
  [[nodiscard]] double get() const {
    return q_.empty() ? 0.0 : q_.front().value;
  }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  void set_window(Duration w) { window_ = w; }
  void reset() { q_.clear(); }

 private:
  struct Entry {
    Time t;
    double value;
  };
  Duration window_;
  std::deque<Entry> q_;
};

/// Windowed min filter; BBR's min-RTT estimator.
class WindowedMin {
 public:
  explicit WindowedMin(Duration window) : window_(window) {}

  void update(Time now, double v);
  [[nodiscard]] double get() const {
    return q_.empty() ? std::numeric_limits<double>::infinity()
                      : q_.front().value;
  }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  void set_window(Duration w) { window_ = w; }
  void reset() { q_.clear(); }

 private:
  struct Entry {
    Time t;
    double value;
  };
  Duration window_;
  std::deque<Entry> q_;
};

/// Exponentially weighted moving average with explicit "no sample yet"
/// state (first sample initializes rather than decays from zero).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void update(double v) {
    value_ = have_ ? alpha_ * v + (1.0 - alpha_) * value_ : v;
    have_ = true;
  }
  [[nodiscard]] double get() const { return value_; }
  [[nodiscard]] bool initialized() const { return have_; }
  void reset() { have_ = false; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool have_ = false;
};

}  // namespace hvc::sim
