file(REMOVE_RECURSE
  "CMakeFiles/realtime_video.dir/realtime_video.cpp.o"
  "CMakeFiles/realtime_video.dir/realtime_video.cpp.o.d"
  "realtime_video"
  "realtime_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
