// Edge-case and defensive-behaviour tests across modules: odd inputs,
// boundary conditions, teardown ordering, and API misuse that must fail
// loudly or degrade gracefully rather than corrupt state.
#include <gtest/gtest.h>

#include "channel/profile.hpp"
#include "core/scenario.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "steer/basic_policies.hpp"
#include "transport/datagram.hpp"
#include "transport/tcp.hpp"

namespace hvc {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(PinnedPolicy, HonorsRequestAndFallsBack) {
  steer::PinnedChannelPolicy bare;
  std::array<steer::ChannelView, 2> views{};
  views[1].index = 1;
  net::Packet p;
  p.size_bytes = 100;
  p.requested_channel = 1;
  EXPECT_EQ(bare.steer(p, views, 0).channel, 1u);
  p.requested_channel = -1;
  EXPECT_EQ(bare.steer(p, views, 0).channel, 0u);
  p.requested_channel = 9;  // out of range -> fallback
  EXPECT_EQ(bare.steer(p, views, 0).channel, 0u);

  steer::PinnedChannelPolicy with_fallback(
      std::make_unique<steer::SingleChannelPolicy>(1));
  p.requested_channel = -1;
  EXPECT_EQ(with_fallback.steer(p, views, 0).channel, 1u);
}

TEST(TcpSender, ZeroAndNegativeWritesIgnored) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("embb-only"),
                          core::make_policy("embb-only"));
  net.add_channel(channel::embb_constant_profile());
  net.finalize();
  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net.server(), flows, transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net.client(), flows);
  snd.write(0);
  snd.write(-100);
  EXPECT_EQ(snd.write_message(0, 0), 0u);
  s.run();
  EXPECT_TRUE(snd.idle());
  EXPECT_EQ(snd.stats().packets_sent, 0);
}

TEST(TcpSender, MixedBulkAndMessageWritesInterleaveCorrectly) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("embb-only"),
                          core::make_policy("embb-only"));
  net.add_channel(channel::embb_constant_profile());
  net.finalize();
  const auto flows = transport::make_flow_pair();
  transport::TcpConfig cfg;
  cfg.annotate_app_info = true;
  transport::TcpSender snd(net.server(), flows, transport::make_cca("cubic"),
                           cfg);
  transport::TcpReceiver rcv(net.client(), flows, cfg);
  std::vector<std::uint64_t> done;
  rcv.set_on_message([&](const net::AppHeader& h, sim::Time) {
    done.push_back(h.message_id);
  });
  std::int64_t bytes = 0;
  rcv.set_on_data([&](std::int64_t n) { bytes += n; });
  snd.write(10'000);                              // anonymous bulk
  const auto m1 = snd.write_message(5'000, 2);    // annotated
  snd.write(3'000);                               // more bulk
  const auto m2 = snd.write_message(70'000, 1);
  s.run_until(seconds(5));
  EXPECT_EQ(bytes, 88'000);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], m1);
  EXPECT_EQ(done[1], m2);
}

TEST(TcpSender, FlowPriorityStampedOnDataAndAcks) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("embb-only"),
                          core::make_policy("embb-only"));
  net.add_channel(channel::embb_constant_profile());
  net.finalize();
  const auto flows = transport::make_flow_pair();
  transport::TcpConfig cfg;
  cfg.flow_priority = 3;
  transport::TcpSender snd(net.server(), flows, transport::make_cca("cubic"),
                           cfg);
  transport::TcpReceiver rcv(net.client(), flows, cfg);
  // Tap both directions by observing at the opposite nodes via handlers
  // wrapped around the link receivers is intrusive; instead check the shim
  // counters after forcing everything through the network.
  snd.write(50'000);
  s.run_until(seconds(2));
  EXPECT_TRUE(snd.idle());
  // flow_priority is honored end to end: a prio-aware policy would have
  // seen 3 (covered by steer tests); here we just assert no crash and
  // config plumb-through.
  EXPECT_EQ(snd.config().flow_priority, 3);
}

TEST(Teardown, DestroyingEndpointsLeavesNetworkUsable) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("dchannel"),
                          core::make_policy("dchannel"));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();
  {
    const auto flows = transport::make_flow_pair();
    transport::TcpSender snd(net.server(), flows,
                             transport::make_cca("cubic"));
    transport::TcpReceiver rcv(net.client(), flows);
    snd.write(500'000);
    s.run_until(milliseconds(200));
    // Destroyed mid-transfer: timers cancel, flows unregister.
  }
  // In-flight packets drain to unregistered flows without crashing.
  s.run_until(seconds(2));
  EXPECT_GT(net.client().unroutable_packets() +
                net.server().unroutable_packets(),
            0);
  // A fresh transfer over the same network still works.
  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net.server(), flows, transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net.client(), flows);
  std::int64_t got = 0;
  rcv.set_on_data([&](std::int64_t n) { got += n; });
  snd.write(100'000);
  s.run_until(seconds(5));
  EXPECT_EQ(got, 100'000);
}

TEST(Datagram, OversizeMessageSegmentsAndReassembles) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("embb-only"),
                          core::make_policy("embb-only"));
  net.add_channel(channel::embb_constant_profile());
  net.finalize();
  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  transport::DatagramSocket rx(net.client(), flow);
  std::uint32_t size = 0;
  rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
    size = ev.header.message_bytes;
  });
  // Large but below the link's 750 kB droptail bound (datagrams have no
  // retransmission: a burst exceeding the queue would never complete).
  tx.send_message(400'000, 0);  // ~275 packets
  s.run_until(seconds(5));
  EXPECT_EQ(size, 400'000u);
}

TEST(Datagram, ZeroByteMessageIgnored) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("embb-only"),
                          core::make_policy("embb-only"));
  net.add_channel(channel::embb_constant_profile());
  net.finalize();
  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  EXPECT_EQ(tx.send_message(0, 0), 0u);
  EXPECT_EQ(tx.messages_sent(), 0);
}

TEST(Channel, SingleChannelNetworkWorksWithEveryPolicy) {
  for (const char* policy :
       {"embb-only", "round-robin", "weighted", "min-delay", "dchannel",
        "msg-priority", "redundant", "cost-aware", "flow-binding"}) {
    sim::Simulator s;
    net::TwoHostNetwork net(s, core::make_policy(policy),
                            core::make_policy(policy));
    net.add_channel(channel::embb_constant_profile());
    net.finalize();
    const auto flows = transport::make_flow_pair();
    transport::TcpSender snd(net.server(), flows,
                             transport::make_cca("cubic"));
    transport::TcpReceiver rcv(net.client(), flows);
    std::int64_t got = 0;
    rcv.set_on_data([&](std::int64_t n) { got += n; });
    snd.write(200'000);
    s.run_until(seconds(5));
    EXPECT_EQ(got, 200'000) << policy;
  }
}

TEST(Channel, ThreeChannelSteeringWorks) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("min-delay"),
                          core::make_policy("min-delay"));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.add_channel(channel::wifi_tsn_profile());
  net.finalize();
  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  transport::DatagramSocket rx(net.client(), flow);
  int got = 0;
  rx.set_on_message(
      [&](const transport::DatagramSocket::MessageEvent&) { ++got; });
  for (int i = 0; i < 200; ++i) {
    s.at(milliseconds(5 * i), [&] { tx.send_message(800, 0); });
  }
  s.run();
  EXPECT_EQ(got, 200);
  // Small messages should spread over the two low-latency channels.
  const auto& stats = net.downlink_shim().stats();
  EXPECT_GT(stats.packets_per_channel[1] + stats.packets_per_channel[2],
            stats.packets_per_channel[0]);
}

TEST(Profiles, WanProfilesAreWellFormed) {
  for (const auto& p :
       {channel::cisp_profile(), channel::fiber_profile(),
        channel::leo_profile(), channel::wifi_contended_profile(),
        channel::wifi_tsn_profile()}) {
    EXPECT_GT(p.capacity_down.average_rate_bps(), 0.0) << p.name;
    EXPECT_GT(p.capacity_up.average_rate_bps(), 0.0) << p.name;
    EXPECT_GT(p.owd, 0) << p.name;
    EXPECT_GT(p.queue_limit_bytes, 0) << p.name;
  }
  EXPECT_GT(channel::cisp_profile().cost_per_megabyte, 0.0);
  EXPECT_TRUE(channel::wifi_tsn_profile().reliable);
}

TEST(Scenario, LeoChannelCarriesTraffic) {
  core::ScenarioConfig cfg;
  cfg.channels = {channel::leo_profile(7, seconds(30)),
                  channel::cisp_profile()};
  cfg.up_policy = cfg.down_policy = "min-delay";
  const auto r = core::run_bulk(cfg, "cubic", seconds(30));
  EXPECT_GT(r.goodput_bps, 5e6);   // LEO beam state ~180 Mbps, minus
                                   // handover dips and CUBIC ramp
}

}  // namespace
}  // namespace hvc
