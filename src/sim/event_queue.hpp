// Priority queue of timestamped events with deterministic tie-breaking.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO). This is load-bearing for reproducibility: a plain
// std::priority_queue over (time, callback) leaves same-time ordering
// unspecified, and steering decisions downstream depend on packet arrival
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/prof.hpp"
#include "sim/units.hpp"

namespace hvc::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  EventId push(Time at, std::function<void()> fn) {
    HVC_PROF_SCOPE(obs::prof::Hook::kEventPush);
    const EventId id = next_id_++;
    // hvc-lint: allow(hotpath-alloc): heap growth amortizes to zero after warm-up; pooling this storage is ROADMAP item 1
    heap_.push(Entry{at, id, std::move(fn), false});
    ++live_;
    return id;
  }

  /// Cancel a pending event. O(1): the entry is tombstoned and skipped when
  /// popped. Cancelling an already-fired or unknown id is a no-op.
  void cancel(EventId id) {
    if (cancelled_.size() <= id) cancelled_.resize(id + 1, false);
    if (!cancelled_[id]) {
      cancelled_[id] = true;
      if (live_ > 0) --live_;
    }
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Earliest pending (non-cancelled) event time, or kTimeNever if empty.
  [[nodiscard]] Time next_time() {
    skip_cancelled();
    return heap_.empty() ? kTimeNever : heap_.top().at;
  }

  /// Pop and return the earliest event. Precondition: !empty().
  struct Popped {
    Time at;
    std::function<void()> fn;
  };
  Popped pop() {
    HVC_PROF_SCOPE(obs::prof::Hook::kEventPop);
    skip_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return Popped{top.at, std::move(top.fn)};
  }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> fn;
    bool tombstone;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  void skip_cancelled() {
    while (!heap_.empty()) {
      const Entry& e = heap_.top();
      if (e.id < cancelled_.size() && cancelled_[e.id]) {
        heap_.pop();
      } else {
        break;
      }
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<bool> cancelled_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hvc::sim
