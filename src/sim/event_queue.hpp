// Priority queue of timestamped events with deterministic tie-breaking.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO). This is load-bearing for reproducibility: a plain
// std::priority_queue over (time, callback) leaves same-time ordering
// unspecified, and steering decisions downstream depend on packet arrival
// order.
//
// Two interchangeable implementations live behind the EventQueue facade:
//
//  * CalendarQueue (default) — a lazily-retuned time wheel. Time is
//    quantized into power-of-two-width ticks; a power-of-two ring of
//    buckets holds the next `nbuckets` ticks (one tick per slot), an
//    occupancy bitmap finds the next non-empty slot in O(words), and
//    events beyond the ring's horizon sit in a min-heap overflow bucket
//    that migrates into the ring as the wheel turns. The front bucket is
//    sorted by (at, id) when its drain starts, so pop order is exactly
//    the total order the reference heap uses. Push and pop are O(1)
//    amortized instead of O(log n).
//
//  * DebugHeapQueue — the original binary heap, kept as the reference
//    implementation. `HVC_REFERENCE_QUEUE=1` (or
//    set_reference_queue_for_test(true)) selects it at Simulator
//    construction; the differential harness in tests/diffsim_test.cpp
//    runs every scenario under both and asserts byte-identical artifacts.
//
// Both order events by the same total order (at, then id), so their pop
// sequences are bit-for-bit identical by construction; the tests exist to
// keep it that way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/prof.hpp"
#include "sim/units.hpp"

namespace hvc::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
using EventId = std::uint64_t;

/// Move-only type-erased `void()` callable with a 40-byte inline buffer.
///
/// std::function heap-allocates every capture over 16 bytes; simulator
/// events routinely capture `this` plus two or three words (timer
/// re-arms, per-user population lambdas), which made one malloc/free per
/// scheduled event. The wider buffer keeps those captures inline; larger
/// ones fall back to a unique_ptr held in the same buffer.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 40;

  EventFn() = default;

  template <class F, std::enable_if_t<
                         !std::is_same_v<std::remove_cvref_t<F>, EventFn>,
                         int> = 0>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule call site
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "EventFn requires a void() callable");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      std::construct_at(reinterpret_cast<Fn*>(buf_), std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      using Holder = std::unique_ptr<Fn>;
      // hvc-lint: allow(hotpath-alloc): capture larger than the inline
      // buffer; every sim-core schedule site fits inline
      std::construct_at(reinterpret_cast<Holder*>(buf_),
                        std::make_unique<Fn>(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      steal(other);
    }
  }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        steal(other);
      }
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivially_destructible) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the value into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    /// Relocation is a plain byte copy: the move fast path memcpys the
    /// buffer instead of dispatching through `relocate`.
    bool trivially_relocatable;
    /// Destruction is a no-op: reset() skips the `destroy` dispatch.
    bool trivially_destructible;
  };

  /// Take `other`'s value (ops_ already copied), leaving it empty.
  void steal(EventFn& other) noexcept {
    if (ops_->trivially_relocatable) {
      __builtin_memcpy(buf_, other.buf_, kInlineBytes);
    } else {
      ops_->relocate(buf_, other.buf_);
    }
    other.ops_ = nullptr;
  }

  template <class Fn>
  static void do_invoke(void* p) {
    (*std::launder(reinterpret_cast<Fn*>(p)))();
  }
  template <class Fn>
  static void do_relocate(void* dst, void* src) {
    Fn* s = std::launder(reinterpret_cast<Fn*>(src));
    std::construct_at(reinterpret_cast<Fn*>(dst), std::move(*s));
    std::destroy_at(s);
  }
  template <class Fn>
  static void do_destroy(void* p) {
    std::destroy_at(std::launder(reinterpret_cast<Fn*>(p)));
  }
  template <class Fn>
  static void do_invoke_boxed(void* p) {
    (**std::launder(reinterpret_cast<std::unique_ptr<Fn>*>(p)))();
  }

  // A type is trivially relocatable when move-constructing into fresh
  // storage and abandoning (not destroying) the source is equivalent to
  // a byte copy. All trivially copyable types qualify. std::function is
  // additionally whitelisted: in both libstdc++ and libc++ its storage
  // is {inline blob | heap pointer} + two function pointers with no
  // self-references, so relocation degenerates to memcpy. (The same
  // technique as folly::IsRelocatable; revisit if a third stdlib shows
  // up.) It is NOT trivially destructible — its dtor frees the target.
  template <class T>
  struct TriviallyRelocatable : std::is_trivially_copyable<T> {};
  template <class R, class... A>
  struct TriviallyRelocatable<std::function<R(A...)>> : std::true_type {};

  template <class Fn>
  static constexpr Ops inline_ops{&do_invoke<Fn>, &do_relocate<Fn>,
                                  &do_destroy<Fn>,
                                  TriviallyRelocatable<Fn>::value,
                                  std::is_trivially_destructible_v<Fn>};
  template <class Fn>
  static constexpr Ops boxed_ops{&do_invoke_boxed<Fn>,
                                 &do_relocate<std::unique_ptr<Fn>>,
                                 &do_destroy<std::unique_ptr<Fn>>,
                                 // unique_ptr: relocation is a pointer
                                 // copy + abandon, i.e. a byte copy.
                                 true, false};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// One scheduled event. `id` is the FIFO tiebreak: (at, id) is the total
/// order both queue implementations pop in.
struct EventEntry {
  EventEntry(Time at_, EventId id_, EventFn&& fn_)
      : at(at_), id(id_), fn(std::move(fn_)) {}
  Time at;
  EventId id;
  EventFn fn;
};

/// True when (a.at, a.id) orders strictly before (b.at, b.id).
[[nodiscard]] inline bool event_before(Time a_at, EventId a_id, Time b_at,
                                       EventId b_id) {
  if (a_at != b_at) return a_at < b_at;
  return a_id < b_id;
}

// ---- Queue implementation selection -------------------------------------

/// True when the reference binary heap should back new EventQueues.
/// Reads HVC_REFERENCE_QUEUE once (any value but "" / "0" enables it);
/// the test setters below override the environment. Sampled at
/// EventQueue construction, so flipping it between runs is safe.
[[nodiscard]] bool reference_queue_enabled();
/// Force the next EventQueues onto the reference heap (true) or the
/// calendar queue (false), overriding the environment.
void set_reference_queue_for_test(bool use_reference);
/// Drop the test override and fall back to the environment variable.
void clear_reference_queue_override_for_test();

// ---- Reference implementation -------------------------------------------

/// The original binary-heap event queue. O(log n) push/pop, zero tuning
/// state — the trusted oracle the calendar queue is differential-tested
/// against, selected via HVC_REFERENCE_QUEUE.
class DebugHeapQueue {
 public:
  void enqueue(Time at, EventId id, EventFn&& fn) {
    // hvc-lint: allow(hotpath-alloc): reference-oracle implementation; the heap vector's capacity amortizes and is recycled across pushes
    heap_.emplace_back(at, id, std::move(fn));
    std::push_heap(heap_.begin(), heap_.end(), later);
  }

  /// Earliest entry or nullptr; valid until the next push/pop. The
  /// caller may move the entry's fn out right before drop_front().
  [[nodiscard]] EventEntry* peek() {
    return heap_.empty() ? nullptr : heap_.data();
  }

  /// Discard the earliest entry (its fn may have been moved out via
  /// peek() first). Precondition: peek() != null.
  void drop_front() {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }

  [[nodiscard]] std::size_t entries() const { return heap_.size(); }

 private:
  static bool later(const EventEntry& a, const EventEntry& b) {
    return event_before(b.at, b.id, a.at, a.id);
  }
  std::vector<EventEntry> heap_;
};

// ---- Calendar queue ------------------------------------------------------

/// Bucketed time wheel with overflow heap. See the file comment for the
/// shape; the invariants that make it pop in exact (at, id) order:
///
///  I1. Every ring entry's tick is in [base_tick_, base_tick_ + nbuckets):
///      each slot therefore holds entries of exactly one tick, so slot
///      order is tick order and a per-bucket sort restores total order.
///  I2. base_tick_ never decreases and never passes an undrained tick:
///      before every advance the overflow heap is migrated into the ring
///      up to the horizon, so the bitmap scan always finds the true
///      minimum.
///  I3. While a bucket drains, same-tick pushes insert sorted after the
///      drain cursor (zero-delay self-pushes pop in id order), and the
///      drained tick equals base_tick_, so no in-horizon push can collide
///      with the draining slot from a later tick.
///
/// Retuning (bucket width / ring size) happens only between drains, where
/// rebuilding the wheel cannot reorder a partially-consumed bucket.
class CalendarQueue {
 public:
  CalendarQueue() { reset_geometry(kInitialShift, kInitialBuckets); }

  void enqueue(Time at, EventId id, EventFn&& fn) {
    ++entries_;
    const std::uint64_t tick = tick_of(at);
    // At or before the tick being drained (<: a raw-EventQueue user
    // pushed into the past) — sorted insert after the drain cursor, so
    // it still pops in exact (at, id) order.
    if (drain_active_ && tick <= drain_tick_) {
      push_into_drain(at, id, std::move(fn));
      return;
    }
    if (tick < base_tick_ + buckets_.size()) {
      const std::size_t slot = static_cast<std::size_t>(tick) & mask_;
      // hvc-lint: allow(hotpath-alloc): bucket vectors keep their capacity across drains — after warm-up this emplace writes into pooled storage
      buckets_[slot].emplace_back(at, id, std::move(fn));
      occupied_[slot >> 6] |= 1ull << (slot & 63);
      ++ring_count_;
      return;
    }
    // hvc-lint: allow(hotpath-alloc): the overflow heap's capacity amortizes; entries beyond the ring horizon are rare by construction
    overflow_.emplace_back(at, id, std::move(fn));
    std::push_heap(overflow_.begin(), overflow_.end(), heap_later);
  }

  /// Earliest entry or nullptr; valid until the next push/pop. The
  /// caller may move the entry's fn out right before drop_front().
  [[nodiscard]] EventEntry* peek() {
    for (;;) {
      if (drain_active_) {
        std::vector<EventEntry>& b = buckets_[drain_slot_];
        if (drain_idx_ < b.size()) return &b[drain_idx_];
      }
      if (entries_ == 0) return nullptr;
      advance();
    }
  }

  /// Discard the earliest entry (its fn may have been moved out via
  /// peek() first). Precondition: peek() != null.
  void drop_front() {
    std::vector<EventEntry>& b = buckets_[drain_slot_];
    last_pop_at_ = b[drain_idx_].at;
    ++drain_idx_;
    if (drain_idx_ == b.size()) {
      b.clear();
      drain_idx_ = 0;
    }
    --entries_;
    ++pops_;
  }

  [[nodiscard]] std::size_t entries() const { return entries_; }

  // Geometry introspection for tests (tick width in ns, ring size).
  [[nodiscard]] std::int64_t tick_width() const {
    return std::int64_t{1} << shift_;
  }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static constexpr int kInitialShift = 13;  // 8.192 us ticks
  static constexpr std::size_t kInitialBuckets = 256;
  static constexpr std::size_t kMinBuckets = 64;  // one bitmap word
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  static constexpr int kMaxShift = 40;  // ~18 minutes of sim time per tick
  static constexpr std::uint64_t kRetuneWindow = 4096;  // pops per check

  static bool heap_later(const EventEntry& a, const EventEntry& b) {
    return event_before(b.at, b.id, a.at, a.id);
  }
  static bool entry_before(const EventEntry& a, const EventEntry& b) {
    return event_before(a.at, a.id, b.at, b.id);
  }

  [[nodiscard]] std::uint64_t tick_of(Time at) const {
    return static_cast<std::uint64_t>(at) >> shift_;
  }

  void push_into_drain(Time at, EventId id, EventFn&& fn) {
    std::vector<EventEntry>& b = buckets_[drain_slot_];
    // Sorted insert after the drain cursor: cheap because a same-tick
    // push during drain is almost always a zero-delay self-push landing
    // at the end of a short remainder.
    const auto pos = std::lower_bound(
        b.begin() + static_cast<std::ptrdiff_t>(drain_idx_), b.end(), id,
        [at](const EventEntry& e, EventId probe_id) {
          return event_before(e.at, e.id, at, probe_id);
        });
    b.emplace(pos, at, id, std::move(fn));
  }

  /// Pick the next non-empty tick, sort its bucket, and start draining
  /// it. Precondition: entries_ > 0 and the current drain is exhausted.
  void advance() {
    if (pops_ >= kRetuneWindow) {
      maybe_retune();
      // A rebuild re-homes entries into a fresh drain bucket; if it got
      // any, the peek loop must consume them before scanning onward.
      if (drain_active_ && drain_idx_ < buckets_[drain_slot_].size()) {
        return;
      }
    }
    if (ring_count_ == 0) {
      // Jump the wheel to the overflow minimum: nothing in between.
      base_tick_ = tick_of(overflow_.front().at);
    }
    migrate_overflow();
    const std::size_t base_slot = static_cast<std::size_t>(base_tick_) &
                                  mask_;
    const std::size_t slot = next_occupied_slot(base_slot);
    const std::size_t dist = (slot - base_slot + buckets_.size()) & mask_;
    const std::uint64_t tick = base_tick_ + dist;
    scan_ticks_ += dist;
    base_tick_ = tick;
    drain_tick_ = tick;
    drain_slot_ = slot;
    drain_idx_ = 0;
    drain_active_ = true;
    occupied_[slot >> 6] &= ~(1ull << (slot & 63));
    std::vector<EventEntry>& b = buckets_[slot];
    ring_count_ -= b.size();
    drained_items_ += b.size();
    ++drained_buckets_;
    if (b.size() > 1) std::sort(b.begin(), b.end(), entry_before);
  }

  /// Move overflow entries whose tick entered the ring horizon into
  /// their slots. Runs before every base advance (invariant I2).
  void migrate_overflow() {
    const std::uint64_t horizon = base_tick_ + buckets_.size();
    while (!overflow_.empty() && tick_of(overflow_.front().at) < horizon) {
      std::pop_heap(overflow_.begin(), overflow_.end(), heap_later);
      EventEntry e = std::move(overflow_.back());
      overflow_.pop_back();
      const std::size_t slot =
          static_cast<std::size_t>(tick_of(e.at)) & mask_;
      buckets_[slot].push_back(std::move(e));
      occupied_[slot >> 6] |= 1ull << (slot & 63);
      ++ring_count_;
    }
  }

  /// First occupied slot at or after `from` (wrapping). Precondition:
  /// ring_count_ > 0.
  [[nodiscard]] std::size_t next_occupied_slot(std::size_t from) const {
    const std::size_t words = occupied_.size();
    std::size_t w = from >> 6;
    std::uint64_t bits = occupied_[w] & (~0ull << (from & 63));
    while (bits == 0) {
      w = (w + 1) & (words - 1);
      bits = occupied_[w];
    }
    return (w << 6) | static_cast<std::size_t>(
                          __builtin_ctzll(bits));
  }

  /// Deterministic self-tuning, checked every kRetuneWindow pops at a
  /// drain boundary: widen ticks when the scan mostly walks empty slots,
  /// narrow them when buckets grow big enough that sorting dominates,
  /// and grow the ring when the overflow heap keeps filling.
  void maybe_retune() {
    const std::uint64_t pops = pops_;
    const std::uint64_t scans = scan_ticks_;
    const std::uint64_t buckets_drained =
        drained_buckets_ == 0 ? 1 : drained_buckets_;
    const std::uint64_t avg_bucket = drained_items_ / buckets_drained;
    pops_ = 0;
    scan_ticks_ = 0;
    drained_buckets_ = 0;
    drained_items_ = 0;
    int new_shift = shift_;
    std::size_t new_buckets = buckets_.size();
    if (overflow_.size() > buckets_.size() &&
        new_buckets < kMaxBuckets) {
      new_buckets *= 2;
    }
    if (scans > pops * 4 && new_shift < kMaxShift) {
      new_shift += 2;  // mostly empty slots: widen ticks
    } else if (avg_bucket > 24 && scans < pops && new_shift > 2) {
      new_shift -= 1;  // crowded buckets: narrow ticks
    }
    if (new_shift != shift_ || new_buckets != buckets_.size()) {
      rebuild(new_shift, new_buckets);
    }
  }

  /// Re-home every pending entry under a new geometry. Only called
  /// between drains, so relative order is fully restored by the
  /// per-bucket sort at the next drain start.
  void rebuild(int new_shift, std::size_t new_buckets) {
    std::vector<EventEntry> pending;
    pending.reserve(entries_);
    for (std::vector<EventEntry>& b : buckets_) {
      for (EventEntry& e : b) pending.push_back(std::move(e));
      b.clear();
    }
    for (EventEntry& e : overflow_) pending.push_back(std::move(e));
    overflow_.clear();
    reset_geometry(new_shift, new_buckets);
    // The wheel restarts at the last popped instant: every pending entry
    // is at or after it, so the ring invariant I1 holds immediately. The
    // restart tick becomes the active drain bucket (its occupancy bit
    // stays clear) so entries landing on the current instant — and any
    // future past-pushes — drain first, in sorted order.
    base_tick_ = tick_of(last_pop_at_);
    drain_tick_ = base_tick_;
    drain_slot_ = static_cast<std::size_t>(base_tick_) & mask_;
    drain_idx_ = 0;
    drain_active_ = true;
    const std::size_t count = pending.size();
    for (EventEntry& e : pending) {
      const std::uint64_t tick = tick_of(e.at);
      if (tick <= drain_tick_) {
        buckets_[drain_slot_].push_back(std::move(e));
      } else if (tick < base_tick_ + buckets_.size()) {
        const std::size_t slot = static_cast<std::size_t>(tick) & mask_;
        buckets_[slot].push_back(std::move(e));
        occupied_[slot >> 6] |= 1ull << (slot & 63);
        ++ring_count_;
      } else {
        overflow_.push_back(std::move(e));
      }
    }
    std::vector<EventEntry>& drain = buckets_[drain_slot_];
    if (drain.size() > 1) std::sort(drain.begin(), drain.end(), entry_before);
    std::make_heap(overflow_.begin(), overflow_.end(), heap_later);
    entries_ = count;
  }

  void reset_geometry(int shift, std::size_t nbuckets) {
    shift_ = shift;
    mask_ = nbuckets - 1;
    buckets_.clear();
    buckets_.resize(nbuckets);
    occupied_.assign(nbuckets / 64, 0);
    ring_count_ = 0;
    entries_ = 0;
    drain_active_ = false;
    drain_idx_ = 0;
    drain_slot_ = 0;
  }

  std::vector<std::vector<EventEntry>> buckets_;
  std::vector<std::uint64_t> occupied_;  ///< one bit per slot
  std::vector<EventEntry> overflow_;     ///< min-heap by (at, id)
  std::uint64_t base_tick_ = 0;
  std::uint64_t drain_tick_ = 0;
  std::size_t drain_slot_ = 0;
  std::size_t drain_idx_ = 0;
  std::size_t mask_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t entries_ = 0;
  int shift_ = kInitialShift;
  bool drain_active_ = false;
  Time last_pop_at_ = 0;
  // Retune accounting (reset every window).
  std::uint64_t pops_ = 0;
  std::uint64_t scan_ticks_ = 0;
  std::uint64_t drained_buckets_ = 0;
  std::uint64_t drained_items_ = 0;
};

// ---- Facade --------------------------------------------------------------

/// The event queue the Simulator schedules through. Owns the id counter
/// and the tombstone set (cancellation is implementation-independent) and
/// delegates storage to the calendar queue or, under HVC_REFERENCE_QUEUE,
/// the original binary heap.
///
/// A one-slot front cache sits above the storage impl: a push lands in
/// the cache when it is free, and every front/pop takes the (at, id)-min
/// of {cache, impl}. The min over that partition is the global min, so
/// the pop sequence is exactly the impl's alone — the cache is a pure
/// fast path for the ubiquitous push-one-pop-one chain (timers, pacing,
/// self-rescheduling events), which never touches the wheel or the heap.
class EventQueue {
 public:
  EventQueue() : use_reference_(reference_queue_enabled()) {}

  EventId push(Time at, EventFn&& fn) {
    HVC_PROF_SCOPE(obs::prof::Hook::kEventPush);
    const EventId id = next_id_++;
    ++live_;
    if (!cache_full_) {
      cache_at_ = at;
      cache_id_ = id;
      cache_fn_ = std::move(fn);
      cache_full_ = true;
      return id;
    }
    if (use_reference_) {
      heap_.enqueue(at, id, std::move(fn));
    } else {
      calendar_.enqueue(at, id, std::move(fn));
    }
    return id;
  }

  /// Cancel a pending event. O(1): the entry is tombstoned and skipped when
  /// popped. Cancelling an already-fired or unknown id is a no-op.
  void cancel(EventId id) {
    if (cancelled_.size() <= id) cancelled_.resize(id + 1, false);
    if (!cancelled_[id]) {
      cancelled_[id] = true;
      if (live_ > 0) --live_;
    }
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Earliest pending (non-cancelled) event time, or kTimeNever if empty.
  [[nodiscard]] Time next_time() {
    Time at{};
    return front(at) == nullptr ? kTimeNever : at;
  }

  /// Pop and return the earliest event. Precondition: !empty().
  struct Popped {
    Time at;
    EventFn fn;
  };
  Popped pop() {
    HVC_PROF_SCOPE(obs::prof::Hook::kEventPop);
    Time at{};
    EventFn* fn = front(at);  // also discards leading tombstones
    Popped out{at, std::move(*fn)};
    drop();
    --live_;
    return out;
  }

  /// Pop the earliest event if it is due at or before `deadline`; a
  /// single front-to-pop pass instead of next_time() + pop(). Returns
  /// false (leaving `out` untouched) when the queue is drained or the
  /// next event is later than the deadline.
  bool pop_due(Time deadline, Popped& out) {
    Time at{};
    EventFn* fn = front(at);
    if (fn == nullptr || at > deadline) return false;
    HVC_PROF_SCOPE(obs::prof::Hook::kEventPop);
    out.at = at;
    out.fn = std::move(*fn);
    drop();
    --live_;
    return true;
  }

  /// Whether this queue runs on the reference heap (fixed at
  /// construction).
  [[nodiscard]] bool using_reference() const { return use_reference_; }

 private:
  /// Earliest live entry's fn (tombstones discarded on the way), with
  /// its time in `at_out`; nullptr when drained. Sets front_is_cache_
  /// for the matching drop().
  EventFn* front(Time& at_out) {
    for (;;) {
      EventEntry* e = use_reference_ ? heap_.peek() : calendar_.peek();
      bool take_cache;
      if (!cache_full_) {
        if (e == nullptr) return nullptr;
        take_cache = false;
      } else if (e == nullptr) {
        take_cache = true;
      } else {
        take_cache = event_before(cache_at_, cache_id_, e->at, e->id);
      }
      if (take_cache) {
        if (cancelled(cache_id_)) {
          cache_fn_.reset();
          cache_full_ = false;
          continue;
        }
        front_is_cache_ = true;
        at_out = cache_at_;
        return &cache_fn_;
      }
      if (cancelled(e->id)) {
        drop_impl();  // tombstone: destroy in place
        continue;
      }
      front_is_cache_ = false;
      at_out = e->at;
      return &e->fn;
    }
  }
  /// Drop whichever entry the last front() returned.
  void drop() {
    if (front_is_cache_) {
      cache_fn_.reset();
      cache_full_ = false;
    } else {
      drop_impl();
    }
  }
  void drop_impl() {
    if (use_reference_) {
      heap_.drop_front();
    } else {
      calendar_.drop_front();
    }
  }
  [[nodiscard]] bool cancelled(EventId id) const {
    return id < cancelled_.size() && cancelled_[id];
  }

  DebugHeapQueue heap_;
  CalendarQueue calendar_;
  std::vector<bool> cancelled_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
  // One-slot front cache (see class comment).
  Time cache_at_ = 0;
  EventId cache_id_ = 0;
  EventFn cache_fn_;
  bool cache_full_ = false;
  bool front_is_cache_ = false;
  bool use_reference_;
};

}  // namespace hvc::sim
