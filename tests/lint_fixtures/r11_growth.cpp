// R11 seed: growth-capable container mutation inside a profiled
// function.
namespace fx11c {

void fx11c_hot() {
  HVC_PROF_SCOPE(obs::prof::Hook::kFixture);
  std::vector<int> samples;
  samples.push_back(1);
}

}  // namespace fx11c
