// Include-graph cycle fixture: a <-> b must not hang the reverse-closure.
#pragma once
#include "cyc_b.hpp"
inline int cyc_a_value() { return 1; }
