// Fixture: R3 (steer-missing-reason) — one seeded violation, line 18.
namespace fixture {

struct Decision {
  int channel = 0;
  const char* reason = nullptr;
};

struct Policy {
  Decision steer(int pkt) {
    if (pkt == 0) {
      return {0, "fixture:zero"};  // OK: carries a reason string
    }
    if (pkt < 0) {
      Decision d = other_.steer(pkt);  // OK below: returns a steer() result
      return d;
    }
    return {1, nullptr};  // VIOLATION: no reason on this exit path
  }
  struct Other {
    Decision steer(int) { return {0, "fixture:other"}; }
  };
  Other other_;
};

}  // namespace fixture
