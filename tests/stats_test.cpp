// Property tests for src/stats: the documented accuracy bounds of the
// streaming accumulators (streaming.hpp's header comment) and the
// merge-identity contract the sharded sweeps rely on — any merge order
// or grouping of shard partials must serialize byte-identically to one
// sequential pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/seed.hpp"
#include "stats/cohort.hpp"
#include "stats/streaming.hpp"

namespace hvc::stats {
namespace {

/// Deterministic heavy-tailed-ish sample set spanning a few decades —
/// the shape of latency data the population engine produces.
std::vector<double> make_samples(std::uint64_t key, std::size_t n) {
  sim::CounterStream rng(key);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    // Mix of a bulk mode around ~100 and a long tail up to ~20000.
    const double v = u < 0.9 ? 20.0 + 160.0 * rng.uniform()
                             : 200.0 * std::exp(4.6 * rng.uniform());
    out.push_back(v);
  }
  return out;
}

TEST(StreamingMoments, MatchesOfflineWithinQuantizationBound) {
  const auto samples = make_samples(0xA11CE, 20'000);
  StreamingMoments m;
  long double sum = 0, sumsq = 0;
  for (double v : samples) {
    m.add(v);
    sum += v;
    sumsq += static_cast<long double>(v) * v;
  }
  const double n = static_cast<double>(samples.size());
  const double exact_mean = static_cast<double>(sum / n);
  const double exact_var =
      static_cast<double>(sumsq / n - (sum / n) * (sum / n));

  ASSERT_EQ(m.count(), samples.size());
  // Documented: samples quantize to 2^-16 steps, so the mean is off by
  // at most half a quantum (2^-17) plus accumulation noise.
  EXPECT_NEAR(m.mean(), exact_mean, 1e-4);
  // Documented: variance error <= ~2^-15 * (|mean| + stddev).
  const double var_bound =
      std::pow(2.0, -15) * (std::abs(exact_mean) + std::sqrt(exact_var)) +
      1e-6 * exact_var;
  EXPECT_NEAR(m.variance(), exact_var, var_bound);
  EXPECT_NEAR(m.min(), *std::min_element(samples.begin(), samples.end()),
              1e-4);
  EXPECT_NEAR(m.max(), *std::max_element(samples.begin(), samples.end()),
              1e-4);
}

TEST(StreamingMoments, DropsNonFiniteSamples) {
  StreamingMoments m;
  m.add(1.0);
  m.add(std::numeric_limits<double>::quiet_NaN());
  m.add(std::numeric_limits<double>::infinity());
  m.add(3.0);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.dropped(), 2u);
  EXPECT_NEAR(m.mean(), 2.0, 1e-9);
}

TEST(LogHistogram, QuantileWithinDocumentedRelativeError) {
  auto samples = make_samples(0xBEEF, 50'000);
  LogHistogram h;
  for (double v : samples) h.add(v);
  std::sort(samples.begin(), samples.end());

  // percentile() returns the geometric midpoint of the bin holding the
  // rank-ceil(p/100*n) sample; with 32 sub-bins per octave the midpoint
  // is within 2^(1/64)-1 of anything in the bin. 2.2% covers the full
  // bin-width bound with margin.
  for (double p : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    const double exact = samples[rank - 1];
    const double est = h.percentile(p);
    EXPECT_NEAR(est, exact, 0.022 * exact) << "p" << p;
  }
}

TEST(LogHistogram, UnderflowAndOverflowBins) {
  LogHistogram h;
  h.add(0.0);
  h.add(-5.0);
  h.add(1e-12);  // below 2^-20
  h.add(std::ldexp(1.0, 45));  // above 2^40
  h.add(100.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(LogHistogram, MemoryIsFixed) {
  // The O(bins) claim: footprint is a compile-time constant.
  EXPECT_EQ(LogHistogram::memory_bytes(),
            static_cast<std::size_t>(LogHistogram::kBins) *
                sizeof(std::uint64_t));
}

/// Feed `samples` round-robin into `shards` accumulators of type T.
template <typename T>
std::vector<T> shard_round_robin(const std::vector<double>& samples,
                                 std::size_t shards) {
  std::vector<T> out(shards);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i % shards].add(samples[i]);
  }
  return out;
}

/// Merge-identity property: sequential pass, left-to-right merge,
/// reversed merge, and a balanced-tree merge must all compare equal and
/// serialize to the same bytes.
template <typename T>
void check_merge_identity(const std::vector<double>& samples) {
  T sequential;
  for (double v : samples) sequential.add(v);

  const auto shards = shard_round_robin<T>(samples, 7);

  T forward;
  for (const auto& s : shards) forward.merge(s);

  T reversed;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reversed.merge(*it);
  }

  // Balanced tree: pairwise reduce.
  std::vector<T> level = shards;
  while (level.size() > 1) {
    std::vector<T> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      T acc = level[i];
      if (i + 1 < level.size()) acc.merge(level[i + 1]);
      next.push_back(std::move(acc));
    }
    level = std::move(next);
  }

  EXPECT_EQ(forward, sequential);
  EXPECT_EQ(reversed, sequential);
  EXPECT_EQ(level.front(), sequential);
  EXPECT_EQ(forward.to_json(), sequential.to_json());
  EXPECT_EQ(reversed.to_json(), sequential.to_json());
  EXPECT_EQ(level.front().to_json(), sequential.to_json());
}

TEST(MergeIdentity, StreamingMoments) {
  check_merge_identity<StreamingMoments>(make_samples(0xC0FFEE, 9'001));
}

TEST(MergeIdentity, LogHistogram) {
  check_merge_identity<LogHistogram>(make_samples(0xC0FFEE, 9'001));
}

TEST(MergeIdentity, JainAccumulator) {
  check_merge_identity<JainAccumulator>(make_samples(0xC0FFEE, 9'001));
}

TEST(MergeIdentity, CohortSetAnyGrouping) {
  const auto samples = make_samples(0xD00D, 6'000);

  auto fill = [&](CohortSet& set, std::size_t begin, std::size_t step) {
    for (std::size_t i = begin; i < samples.size(); i += step) {
      const char* cohort = (i % 3 == 0) ? "web" : (i % 3 == 1) ? "video"
                                                               : "background";
      const char* metric = (i % 2 == 0) ? "plt_ms" : "xput_mbps";
      set.cohort(cohort).add(metric, samples[i]);
      if (i % 10 == 0) set.cohort(cohort).fairness.add(samples[i]);
    }
  };

  CohortSet sequential;
  fill(sequential, 0, 1);

  std::vector<CohortSet> shards(5);
  for (std::size_t s = 0; s < shards.size(); ++s) fill(shards[s], s, 5);

  CohortSet forward;
  for (const auto& s : shards) forward.merge(s);
  CohortSet reversed;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reversed.merge(*it);
  }

  EXPECT_EQ(forward, sequential);
  EXPECT_EQ(reversed, sequential);
  EXPECT_EQ(forward.to_json(), sequential.to_json());
  EXPECT_EQ(reversed.to_json(), sequential.to_json());
}

TEST(CohortSet, MemoryIndependentOfSampleCount) {
  CohortSet small, large;
  for (int i = 0; i < 10; ++i) small.cohort("web").add("plt_ms", 100.0 + i);
  for (int i = 0; i < 100'000; ++i) {
    large.cohort("web").add("plt_ms", 100.0 + (i % 977));
  }
  // Same cohort/metric structure => same footprint, whatever the volume.
  EXPECT_EQ(small.memory_bytes(), large.memory_bytes());
}

TEST(CohortSet, ExportMetricsShape) {
  CohortSet set;
  for (int i = 1; i <= 100; ++i) set.cohort("web").add("plt_ms", i);
  set.cohort("web").fairness.add(1.0);
  set.cohort("web").fairness.add(1.0);
  std::map<std::string, double> out;
  set.export_metrics("city", &out);
  EXPECT_EQ(out.at("city.web.plt_ms.count"), 100.0);
  EXPECT_NEAR(out.at("city.web.plt_ms.mean"), 50.5, 1e-3);
  EXPECT_GT(out.at("city.web.plt_ms.p95"), out.at("city.web.plt_ms.p50"));
  EXPECT_NEAR(out.at("city.jain.web"), 1.0, 1e-9);
}

TEST(FixedBinHistogram, BucketsAndMergeRules) {
  FixedBinHistogram a({1.0, 10.0, 100.0});
  a.add(0.5);    // bucket 0: [-inf, 1)
  a.add(5.0);    // bucket 1: [1, 10)
  a.add(50.0);   // bucket 2: [10, 100)
  a.add(500.0);  // overflow
  ASSERT_EQ(a.counts().size(), 4u);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);
  EXPECT_EQ(a.counts()[3], 1u);

  FixedBinHistogram b({1.0, 10.0, 100.0});
  b.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 6u);
  EXPECT_EQ(a.counts()[1], 3u);

  FixedBinHistogram mismatched({1.0, 2.0});
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(JainAccumulator, FairnessBounds) {
  JainAccumulator equal;
  for (int i = 0; i < 64; ++i) equal.add(7.5);
  EXPECT_NEAR(equal.index(), 1.0, 1e-9);

  // One user hogs everything: J -> 1/n.
  JainAccumulator hog;
  hog.add(10'000.0);
  for (int i = 0; i < 15; ++i) hog.add(0.0);
  EXPECT_NEAR(hog.index(), 1.0 / 16.0, 1e-3);

  // Empty population is vacuously fair.
  EXPECT_NEAR(JainAccumulator{}.index(), 1.0, 1e-12);
}

TEST(Quantize, RoundTripAndClamp) {
  EXPECT_EQ(quantize(1.0), 65536);
  EXPECT_NEAR(dequantize(quantize(123.456)), 123.456, 1.0 / kQuantScale);
  // Clamped to |v| <= 2^32.
  EXPECT_EQ(quantize(1e30), quantize(5e9));
  EXPECT_EQ(quantize(-1e30), quantize(-5e9));
}

}  // namespace
}  // namespace hvc::stats
