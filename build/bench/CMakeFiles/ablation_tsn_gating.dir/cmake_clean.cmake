file(REMOVE_RECURSE
  "CMakeFiles/ablation_tsn_gating.dir/ablation_tsn_gating.cpp.o"
  "CMakeFiles/ablation_tsn_gating.dir/ablation_tsn_gating.cpp.o.d"
  "ablation_tsn_gating"
  "ablation_tsn_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tsn_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
