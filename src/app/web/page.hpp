// Web page model and synthetic corpus generator.
//
// Substitution (DESIGN.md §2): the paper records 30 landing/internal
// pages from the Hispar corpus [9] with Mahimahi and replays them through
// Chromium. We model what matters to PLT under steering: object count and
// size distributions, origin spread, and the discovery dependency graph
// (HTML → CSS/JS → images/fonts, etc.) that serializes round trips.
// Distribution parameters follow published web measurements (Hispar [9]:
// landing pages are heavier than internal ones; object sizes heavy-tailed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace hvc::app::web {

struct WebObject {
  int id = 0;
  std::int64_t bytes = 0;
  int origin = 0;              ///< connection group
  std::vector<int> deps;       ///< object ids that must complete first
  bool render_blocking = false;
};

struct WebPage {
  std::string name;
  std::vector<WebObject> objects;  ///< index == id; id 0 is the root HTML

  [[nodiscard]] std::int64_t total_bytes() const;
  [[nodiscard]] int origins() const;
  [[nodiscard]] int depth() const;  ///< longest dependency chain
};

enum class PageKind { kLanding, kInternal };

struct CorpusConfig {
  int pages = 30;
  /// Mix of landing and internal pages (Hispar pairs them 1:1).
  double landing_fraction = 0.5;
  std::uint64_t seed = 2023;
};

/// Generate one page. Deterministic in `rng` state.
WebPage generate_page(PageKind kind, int index, sim::Rng& rng);

/// Generate the evaluation corpus (default: 30 pages as in the paper).
std::vector<WebPage> generate_corpus(const CorpusConfig& cfg);

}  // namespace hvc::app::web
