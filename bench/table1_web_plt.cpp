// Table 1: web page-load time (ms) with small background traffic, on
// emulated 5G Lowband (stationary and driving traces) + URLLC, for three
// steering policies: eMBB-only, DChannel, and DChannel with flow
// priorities (background flows barred from URLLC).
//
// Paper reference:            eMBB-only   DChannel        DChannel+prio
//   Lowband stationary        1697.3      1230.5 (27.5%)  1154.9 (32%)
//   Lowband driving           2334.3      1474.6 (36.8%)  1336.8 (42.7%)
//
// DChannel here uses its web deployment tuning (DChannelConfig::
// web_tuned(), see steer/dchannel.hpp): bulk data stays off URLLC unless
// the primary shows sustained queueing.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("table1_web_plt");
  obs.set_seed(2023);
  bench::print_header(
      "Table 1: web PLT (ms), 30 pages x 5 loads, 2 background JSON flows");

  const auto corpus = app::web::generate_corpus({.pages = 30, .seed = 2023});
  std::int64_t total = 0;
  for (const auto& p : corpus) total += p.total_bytes();
  std::printf("corpus: %zu pages, mean %.0f kB/page\n", corpus.size(),
              static_cast<double>(total) / corpus.size() / 1000.0);

  bench::print_row({"trace", "scheme", "mean PLT", "p50", "p95", "vs eMBB"}, 20);

  for (const auto profile : {trace::FiveGProfile::kLowbandStationary,
                             trace::FiveGProfile::kLowbandDriving}) {
    double embb_mean = 0.0;
    for (const char* scheme : {"embb-only", "dchannel", "dchannel+prio"}) {
      auto cfg = core::ScenarioConfig::traced(profile, scheme,
                                              sim::seconds(120), 42);
      if (std::string(scheme) == "dchannel") {
        cfg.up_factory = cfg.down_factory = [] {
          return std::make_unique<steer::DChannelPolicy>(
              steer::DChannelConfig::web_tuned());
        };
      } else if (std::string(scheme) == "dchannel+prio") {
        cfg.up_factory = cfg.down_factory = [] {
          auto tuned = steer::DChannelConfig::web_tuned();
          tuned.use_flow_priority = true;
          return std::make_unique<steer::DChannelPolicy>(tuned);
        };
      }
      core::WebRunConfig web;  // 5 loads/page, bg 5 kB up + 10 kB down
      const auto r = core::run_web(cfg, corpus, web);
      if (std::string(scheme) == "embb-only") embb_mean = r.plt_ms.mean();
      const double improvement =
          embb_mean > 0 ? (1.0 - r.plt_ms.mean() / embb_mean) * 100.0 : 0.0;
      bench::print_row({trace::to_string(profile), scheme,
                        bench::fmt(r.plt_ms.mean()),
                        bench::fmt(r.plt_ms.percentile(50)),
                        bench::fmt(r.plt_ms.percentile(95)),
                        bench::fmt(improvement) + "%"},
                       20);
    }
  }
  std::printf(
      "\nShape check (paper): DChannel cuts mean PLT on both traces, and\n"
      "flow priorities (keeping background JSON traffic off URLLC) add a\n"
      "further improvement.\n");
  return 0;
}
