#include "sim/event_queue.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace hvc::sim {

namespace {

// -1 = no override (use the environment), 0/1 = forced by a test.
std::atomic<int> g_reference_override{-1};

bool reference_queue_env() {
  // getenv is read once per process: the switch selects a data structure,
  // never a behavior, so there is nothing to re-read mid-run.
  static const bool enabled = [] {
    const char* v = std::getenv("HVC_REFERENCE_QUEUE");
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return enabled;
}

}  // namespace

bool reference_queue_enabled() {
  const int forced = g_reference_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return reference_queue_env();
}

void set_reference_queue_for_test(bool use_reference) {
  g_reference_override.store(use_reference ? 1 : 0,
                             std::memory_order_relaxed);
}

void clear_reference_queue_override_for_test() {
  g_reference_override.store(-1, std::memory_order_relaxed);
}

}  // namespace hvc::sim
