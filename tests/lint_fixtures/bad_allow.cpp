// Fixture: malformed suppressions — each directive is itself a finding.
#include <unordered_map>

namespace fixture {

// hvc-lint: allow(unordered-container)
std::unordered_map<int, int> g_no_justification;  // directive above: allow-needs-justification

// hvc-lint: allow(no-such-rule): the rule name does not exist.
std::unordered_map<int, int> g_unknown_rule;  // directive above: allow-unknown-rule

}  // namespace fixture
