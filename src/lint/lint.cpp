#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace hvc::lint {

namespace {

namespace fs = std::filesystem;

// Diagnostics about the suppression machinery itself; not suppressible.
constexpr const char* kAllowNeedsJustification = "allow-needs-justification";
constexpr const char* kAllowUnknownRule = "allow-unknown-rule";

/// R7: the sanctioned clock island — the only places host clocks are
/// legal. src/obs/prof* implements the sanctioned accessors; bench/ is
/// harness code that measures the host by design (and never feeds
/// simulation state). Paths are compared as-given plus with '\\'
/// normalized, so both "bench/x.cpp" and "/abs/repo/bench/x.cpp" match.
[[nodiscard]] bool in_clock_island(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  if (p.find("src/obs/prof") != std::string::npos) return true;
  if (p.rfind("bench/", 0) == 0) return true;
  return p.find("/bench/") != std::string::npos;
}

[[nodiscard]] bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

/// The comment/string-stripped view of one file. `code` preserves every
/// character position (stripped spans become spaces; string/char
/// delimiters are kept so "a literal is present here" stays detectable),
/// so offsets map 1:1 onto the original text. `comments` holds the
/// comment text, same positions, for directive parsing.
struct Scrubbed {
  std::string code;
  std::string comments;
  std::vector<std::size_t> line_starts;  ///< offset of each line's first char

  [[nodiscard]] int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());
  }
  [[nodiscard]] std::size_t line_count() const { return line_starts.size(); }
  [[nodiscard]] std::string_view code_line(int line) const {
    const auto i = static_cast<std::size_t>(line - 1);
    if (i >= line_starts.size()) return {};
    const std::size_t start = line_starts[i];
    const std::size_t end = i + 1 < line_starts.size()
                                ? line_starts[i + 1] - 1
                                : code.size();
    return std::string_view(code).substr(start, end - start);
  }
  [[nodiscard]] std::string_view comment_line(int line) const {
    const auto i = static_cast<std::size_t>(line - 1);
    if (i >= line_starts.size()) return {};
    const std::size_t start = line_starts[i];
    const std::size_t end = i + 1 < line_starts.size()
                                ? line_starts[i + 1] - 1
                                : comments.size();
    return std::string_view(comments).substr(start, end - start);
  }
};

Scrubbed scrub(std::string_view text) {
  Scrubbed out;
  out.code.assign(text.size(), ' ');
  out.comments.assign(text.size(), ' ');
  out.line_starts.push_back(0);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator for raw strings

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
      out.line_starts.push_back(i + 1);
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;  // swallow both slashes
          if (i < text.size() && text[i] == '\n') --i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' &&
                   (i >= 1 && text[i - 1] == 'R' &&
                    (i < 2 || !is_word(text[i - 2])))) {
          // R"delim( ... )delim"
          std::size_t p = i + 1;
          while (p < text.size() && text[p] != '(') ++p;
          raw_delim = ")" + std::string(text.substr(i + 1, p - i - 1)) + "\"";
          out.code[i] = '"';
          i = p;  // leave contents blanked from here on
          state = State::kRawString;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        out.comments[i] = c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          state = State::kCode;
        } else {
          out.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped char (stays blanked)
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// ---- suppression directives -------------------------------------------

struct FileSuppressions {
  /// rule -> lines it is allowed on (line 0 = whole file).
  std::set<std::pair<std::string, int>> allows;
  std::set<std::string> file_allows;

  [[nodiscard]] bool suppressed(const std::string& rule, int line) const {
    return file_allows.count(rule) > 0 ||
           allows.count({rule, line}) > 0;
  }
};

/// Parse every allow(...) / allow-file(...) directive (the tag in kTag
/// below). Directives on a pure-comment line cover the next code line.
FileSuppressions collect_suppressions(const std::string& path,
                                      const Scrubbed& sc,
                                      std::vector<Finding>* findings) {
  FileSuppressions out;
  constexpr std::string_view kTag = "hvc-lint:";
  for (int line = 1; line <= static_cast<int>(sc.line_count()); ++line) {
    const std::string_view comment = sc.comment_line(line);
    std::size_t at = comment.find(kTag);
    if (at == std::string_view::npos) continue;
    std::string_view rest = trim(comment.substr(at + kTag.size()));

    bool file_scope = false;
    if (rest.rfind("allow-file", 0) == 0) {
      file_scope = true;
      rest.remove_prefix(std::string_view("allow-file").size());
    } else if (rest.rfind("allow", 0) == 0) {
      rest.remove_prefix(std::string_view("allow").size());
    } else {
      findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                           "unrecognized hvc-lint directive (expected "
                           "allow(<rule>) or allow-file(<rule>))"});
      continue;
    }
    rest = trim(rest);
    if (rest.empty() || rest.front() != '(') {
      findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                           "malformed allow: expected (<rule>[,<rule>...])"});
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                           "malformed allow: missing ')'"});
      continue;
    }
    const std::string_view rule_list = rest.substr(1, close - 1);
    std::string_view after = trim(rest.substr(close + 1));

    // A justification is mandatory: ": why this is safe". The "why" is
    // what turns an allow from a mute button into a proof obligation.
    bool justified = false;
    if (!after.empty() && after.front() == ':') {
      const std::string_view why = trim(after.substr(1));
      justified = why.size() >= 10;
    }
    if (!justified) {
      // Continuation comment lines immediately below count as the
      // justification body (long explanations wrap).
      const std::string_view next_comment =
          line < static_cast<int>(sc.line_count())
              ? trim(sc.comment_line(line + 1))
              : std::string_view{};
      justified = !after.empty() && after.front() == ':' &&
                  next_comment.size() >= 10;
    }
    if (!justified) {
      findings->push_back(
          {path, line, kAllowNeedsJustification, Severity::kError,
           "allow() must carry a justification: \"// hvc-lint: "
           "allow(rule): why this is provably safe\""});
      continue;
    }

    // Split the rule list and register.
    std::size_t start = 0;
    while (start <= rule_list.size()) {
      std::size_t comma = rule_list.find(',', start);
      if (comma == std::string_view::npos) comma = rule_list.size();
      const std::string rule{trim(rule_list.substr(start, comma - start))};
      start = comma + 1;
      if (rule.empty()) continue;
      if (!known_rule(rule)) {
        findings->push_back({path, line, kAllowUnknownRule, Severity::kError,
                             "allow names unknown rule '" + rule + "'"});
        continue;
      }
      // R7: wallclock suppressions are themselves banned outside the
      // clock island — host time comes from obs::prof::now_ns(), not
      // from a local carve-out. (Island files skip R1 entirely, so a
      // wallclock allow there is merely dead weight, not an error.)
      if (rule == "wallclock" && !in_clock_island(path)) {
        findings->push_back(
            {path, line, "clock-island", Severity::kError,
             "allow(wallclock) outside the clock island (src/obs/prof*, "
             "bench/): call obs::prof::now_ns()/cycles() instead of "
             "suppressing the wallclock ban locally"});
        continue;
      }
      if (file_scope) {
        out.file_allows.insert(rule);
        continue;
      }
      out.allows.insert({rule, line});
      // A directive on a comment-only line covers the next code line.
      if (trim(sc.code_line(line)).empty()) {
        int next = line + 1;
        while (next <= static_cast<int>(sc.line_count()) &&
               trim(sc.code_line(next)).empty() &&
               sc.comment_line(next).find(kTag) == std::string_view::npos) {
          ++next;
        }
        out.allows.insert({rule, next});
      }
    }
  }
  return out;
}

// ---- R1: wallclock / entropy ------------------------------------------

struct IdentPattern {
  std::string_view ident;
  bool must_be_call;  ///< require '(' after (C library functions)
  std::string_view what;
};

constexpr IdentPattern kWallclockPatterns[] = {
    {"system_clock", false, "std::chrono::system_clock"},
    {"steady_clock", false, "std::chrono::steady_clock"},
    {"high_resolution_clock", false, "std::chrono::high_resolution_clock"},
    {"random_device", false, "std::random_device"},
    {"rand", true, "rand()"},
    {"srand", true, "srand()"},
    {"random", true, "random()"},
    {"time", true, "time()"},
    {"clock", true, "clock()"},
    {"gettimeofday", true, "gettimeofday()"},
    {"clock_gettime", true, "clock_gettime()"},
};

void check_wallclock(const std::string& path, const Scrubbed& sc,
                     std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  for (const auto& pat : kWallclockPatterns) {
    std::size_t at = 0;
    while ((at = code.find(pat.ident, at)) != std::string::npos) {
      const std::size_t end = at + pat.ident.size();
      const char before = at > 0 ? code[at - 1] : '\0';
      const char after = end < code.size() ? code[end] : '\0';
      const bool bounded = !is_word(before) && !is_word(after);
      // C-library calls: exclude member/qualified uses (.time(, ::time()
      // would be something else entirely) and require a call.
      bool fires = bounded;
      if (fires && pat.must_be_call) {
        std::size_t p = end;
        while (p < code.size() && is_space(code[p])) ++p;
        fires = p < code.size() && code[p] == '(';
        if (before == '.' || before == ':' || before == '>') fires = false;
      }
      if (fires) {
        findings->push_back(
            {path, sc.line_of(at), "wallclock", Severity::kError,
             std::string(pat.what) +
                 ": wall-clock/entropy source in simulation code (derive "
                 "time from sim::Simulator and randomness from sim::Rng so "
                 "runs stay reproducible)"});
      }
      at = end;
    }
  }
}

// ---- R2: unordered containers -----------------------------------------

void check_unordered(const std::string& path, const Scrubbed& sc,
                     std::vector<Finding>* findings) {
  for (const std::string_view ident : {std::string_view("unordered_map"),
                                       std::string_view("unordered_set")}) {
    std::size_t at = 0;
    while ((at = sc.code.find(ident, at)) != std::string::npos) {
      const std::size_t end = at + ident.size();
      const char before = at > 0 ? sc.code[at - 1] : '\0';
      const char after = end < sc.code.size() ? sc.code[end] : '\0';
      const int line = sc.line_of(at);
      // #include <unordered_map> lines are not uses.
      const bool preprocessor =
          trim(sc.code_line(line)).rfind("#", 0) == 0;
      if (!is_word(before) && !is_word(after) && !preprocessor) {
        findings->push_back(
            {path, line, "unordered-container", Severity::kWarning,
             "std::" + std::string(ident) +
                 ": iteration order is unspecified, so any traversal "
                 "feeding an export or steering decision is a latent "
                 "nondeterminism bug; use std::map/std::set, sort before "
                 "export, or allow-tag with a proof of order-independence"});
      }
      at = end;
    }
  }
}

// ---- R3: steer() audit reasons ----------------------------------------

/// Find the offset of the matching close brace/paren for the open one at
/// `open` (which must point at '(' or '{'). npos if unbalanced.
std::size_t match_forward(const std::string& code, std::size_t open) {
  const char oc = code[open];
  const char cc = oc == '(' ? ')' : '}';
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == oc) ++depth;
    if (code[i] == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Collect identifiers that provably carry a reason inside `body`:
/// `X.reason` mentions and `Decision X = ...steer(...)` initializations.
std::set<std::string> reason_carrying_vars(const std::string& body) {
  std::set<std::string> vars;
  std::size_t at = 0;
  while ((at = body.find(".reason", at)) != std::string::npos) {
    std::size_t s = at;
    while (s > 0 && is_word(body[s - 1])) --s;
    if (s < at) vars.insert(body.substr(s, at - s));
    at += 7;
  }
  at = 0;
  while ((at = body.find("Decision", at)) != std::string::npos) {
    std::size_t p = at + 8;
    while (p < body.size() && is_space(body[p])) ++p;
    std::size_t vs = p;
    while (p < body.size() && is_word(body[p])) ++p;
    if (p > vs) {
      const std::size_t semi = body.find(';', p);
      const std::string init =
          body.substr(p, semi == std::string::npos ? std::string::npos
                                                   : semi - p);
      if (init.find("steer") != std::string::npos ||
          init.find("reason") != std::string::npos) {
        vars.insert(body.substr(vs, p - vs));
      }
    }
    at = p;
  }
  return vars;
}

void check_steer_reasons(const std::string& path, const Scrubbed& sc,
                         std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  std::size_t at = 0;
  while ((at = code.find("steer", at)) != std::string::npos) {
    const std::size_t end = at + 5;
    const char before = at > 0 ? code[at - 1] : '\0';
    if (is_word(before) || (end < code.size() && is_word(code[end]))) {
      at = end;
      continue;
    }
    // Must be a call/definition: next non-space char is '('.
    std::size_t paren = end;
    while (paren < code.size() && is_space(code[paren])) ++paren;
    if (paren >= code.size() || code[paren] != '(') {
      at = end;
      continue;
    }
    // Walk back over the qualifier chain (Class::steer) and whitespace;
    // a *definition* has the return type `Decision` right before it.
    std::size_t q = at;
    while (q > 0 && (is_word(code[q - 1]) || code[q - 1] == ':')) --q;
    while (q > 0 && is_space(code[q - 1])) --q;
    if (q < 8 || code.compare(q - 8, 8, "Decision") != 0 ||
        (q >= 9 && is_word(code[q - 9]))) {
      at = end;
      continue;
    }
    const std::size_t close = match_forward(code, paren);
    if (close == std::string::npos) {
      at = end;
      continue;
    }
    // Skim const/override/final/noexcept; stop at '{' (definition) or
    // ';' / '=' (declaration, defaulted, pure virtual).
    std::size_t p = close + 1;
    while (p < code.size() && code[p] != '{' && code[p] != ';' &&
           code[p] != '=') {
      ++p;
    }
    if (p >= code.size() || code[p] != '{') {
      at = end;
      continue;
    }
    const std::size_t body_end = match_forward(code, p);
    if (body_end == std::string::npos) {
      at = end;
      continue;
    }
    const std::string body = code.substr(p, body_end - p);
    const std::set<std::string> ok_vars = reason_carrying_vars(body);

    std::size_t r = 0;
    while ((r = body.find("return", r)) != std::string::npos) {
      const char rb = r > 0 ? body[r - 1] : '\0';
      const char ra = r + 6 < body.size() ? body[r + 6] : '\0';
      if (is_word(rb) || is_word(ra)) {
        r += 6;
        continue;
      }
      const std::size_t semi = body.find(';', r);
      const std::string stmt =
          body.substr(r, semi == std::string::npos ? std::string::npos
                                                   : semi - r);
      // A reason is present when the return carries a string literal
      // (aggregate init with a reason tag), mentions `reason` directly,
      // or delegates to another steer() — the delegate's own exit paths
      // are checked wherever they are defined.
      bool ok = stmt.find('"') != std::string::npos ||
                stmt.find("reason") != std::string::npos ||
                stmt.find("steer") != std::string::npos;
      if (!ok) {
        // `return X;` where X provably carries a reason.
        const std::string_view expr = trim(std::string_view(stmt).substr(6));
        ok = !expr.empty() && ok_vars.count(std::string(expr)) > 0;
      }
      if (!ok) {
        findings->push_back(
            {path, sc.line_of(p + r), "steer-missing-reason",
             Severity::kError,
             "return in a steer() implementation without an audit reason "
             "tag (set Decision::reason on every exit path so the "
             "steering-decision audit log stays complete)"});
      }
      r = semi == std::string::npos ? body.size() : semi;
    }
    at = body_end;
  }
}

// ---- R4: raw new / delete ---------------------------------------------

void check_new_delete(const std::string& path, const Scrubbed& sc,
                      std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  for (const std::string_view kw : {std::string_view("new"),
                                    std::string_view("delete")}) {
    std::size_t at = 0;
    while ((at = code.find(kw, at)) != std::string::npos) {
      const std::size_t end = at + kw.size();
      const char after = end < code.size() ? code[end] : '\0';
      if ((at > 0 && is_word(code[at - 1])) || is_word(after)) {
        at = end;
        continue;
      }
      // `= delete;` (deleted special members) and `operator new/delete`
      // declarations are not ownership transfers.
      std::size_t b = at;
      while (b > 0 && is_space(code[b - 1])) --b;
      const bool deleted_fn = kw == "delete" && b > 0 && code[b - 1] == '=';
      bool operator_decl = false;
      if (b >= 8 && code.compare(b - 8, 8, "operator") == 0) {
        operator_decl = true;
      }
      if (!deleted_fn && !operator_decl) {
        findings->push_back(
            {path, sc.line_of(at), "raw-new-delete", Severity::kError,
             "raw " + std::string(kw) +
                 ": ownership goes through std::unique_ptr / containers "
                 "in this codebase (leaks in long sweep runs are silent)"});
      }
      at = end;
    }
  }
}

// ---- R5: floating-point equality --------------------------------------

/// True when `expr` contains a floating-point literal token (1.0, .5,
/// 2e5, 0x1.0p-53).
bool has_float_literal(std::string_view expr) {
  for (std::size_t i = 0; i < expr.size(); ++i) {
    const char c = expr[i];
    if (c != '.' && (std::isdigit(static_cast<unsigned char>(c)) == 0)) {
      continue;
    }
    // Token must not be glued to an identifier: `p50` is not a float.
    if (i > 0 && is_word(expr[i - 1])) continue;
    std::size_t j = i;
    bool saw_digit = false;
    bool saw_dot = false;
    bool saw_exp = false;
    while (j < expr.size()) {
      const char d = expr[j];
      if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
        saw_digit = true;
      } else if (d == '.' && !saw_dot) {
        saw_dot = true;
      } else if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && saw_digit &&
                 j + 1 < expr.size() &&
                 (std::isdigit(static_cast<unsigned char>(expr[j + 1])) !=
                      0 ||
                  expr[j + 1] == '+' || expr[j + 1] == '-')) {
        saw_exp = true;
        ++j;  // consume sign/first digit marker
      } else if (d == 'x' || d == 'X' || (d >= 'a' && d <= 'f') ||
                 (d >= 'A' && d <= 'F')) {
        // hex digits / prefix, only meaningful if a float marker follows
      } else {
        break;
      }
      ++j;
    }
    if (saw_digit && (saw_dot || saw_exp)) {
      // `1.` / `1.0` / `2e5`: also require not glued to an identifier
      // char on the right (e.g. `1.foo` cannot happen in valid C++).
      if (j >= expr.size() || !is_word(expr[j]) || expr[j] == 'f') return true;
    }
    i = j;
  }
  return false;
}

void check_float_equality(const std::string& path, const Scrubbed& sc,
                          std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const bool eq = code[i] == '=' && code[i + 1] == '=';
    const bool ne = code[i] == '!' && code[i + 1] == '=';
    if (!eq && !ne) continue;
    const char before = i > 0 ? code[i - 1] : '\0';
    if (before == '=' || before == '!' || before == '<' || before == '>') {
      continue;
    }
    if (i + 2 < code.size() && code[i + 2] == '=') continue;
    // Operand windows: out to the nearest expression boundary.
    constexpr std::string_view kStops = ",;(){}?&|!<>=";
    std::size_t ls = i;
    while (ls > 0 && kStops.find(code[ls - 1]) == std::string_view::npos &&
           code[ls - 1] != '\n') {
      --ls;
    }
    std::size_t re = i + 2;
    while (re < code.size() &&
           kStops.find(code[re]) == std::string_view::npos &&
           code[re] != '\n') {
      ++re;
    }
    const std::string_view lhs =
        trim(std::string_view(code).substr(ls, i - ls));
    const std::string_view rhs =
        trim(std::string_view(code).substr(i + 2, re - i - 2));
    if (has_float_literal(lhs) || has_float_literal(rhs)) {
      findings->push_back(
          {path, sc.line_of(i), "float-equality", Severity::kWarning,
           "floating-point ==/!= comparison: metric values must be "
           "compared with an ordering or an explicit tolerance (exact "
           "equality is representation-dependent)"});
    }
    ++i;
  }
}

// ---- R8: std::hash ----------------------------------------------------

void check_std_hash(const std::string& path, const Scrubbed& sc,
                    std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  std::size_t at = 0;
  while ((at = code.find("hash", at)) != std::string::npos) {
    const std::size_t end = at + 4;
    const char before = at > 0 ? code[at - 1] : '\0';
    const char after = end < code.size() ? code[end] : '\0';
    if (is_word(before) || is_word(after)) {
      at = end;
      continue;
    }
    // Only the qualified form `std :: hash` (whitespace-tolerant); bare
    // `hash` identifiers and other-namespace hashes are fine.
    std::size_t p = at;
    while (p > 0 && is_space(code[p - 1])) --p;
    if (p < 2 || code[p - 1] != ':' || code[p - 2] != ':') {
      at = end;
      continue;
    }
    p -= 2;
    while (p > 0 && is_space(code[p - 1])) --p;
    if (p < 3 || code.compare(p - 3, 3, "std") != 0 ||
        (p > 3 && (is_word(code[p - 4]) || code[p - 4] == ':'))) {
      at = end;
      continue;
    }
    findings->push_back(
        {path, sc.line_of(at), "std-hash", Severity::kError,
         "std::hash: libstdc++ and libc++ hash the same value "
         "differently, so seeds/sampling keys derived from it diverge "
         "across platforms; use sim::fnv1a64 / sim::seed_mix "
         "(sim/seed.hpp) instead"});
    at = end;
  }
}

// ---- R6: header self-sufficiency --------------------------------------

bool compiler_available(const std::string& compiler) {
  const std::string cmd = compiler + " --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;  // NOLINT
}

void check_header_self_sufficient(const std::string& path,
                                  const Options& opts,
                                  std::vector<Finding>* findings) {
  static int counter = 0;
  const fs::path tmp_dir = fs::temp_directory_path();
  const std::string tag = std::to_string(++counter);
  const fs::path tu = tmp_dir / ("hvc_lint_hdr_" + tag + ".cpp");
  const fs::path err = tmp_dir / ("hvc_lint_hdr_" + tag + ".err");
  {
    std::ofstream out(tu);
    out << "#include \"" << fs::absolute(path).string() << "\"\n"
        << "int hvc_lint_header_check;\n";
  }
  std::string cmd = opts.compiler + " -fsyntax-only -std=c++20 -x c++";
  for (const auto& dir : opts.include_dirs) cmd += " -I " + dir;
  cmd += " " + tu.string() + " 2> " + err.string();
  const int rc = std::system(cmd.c_str());  // NOLINT
  if (rc != 0) {
    std::ifstream in(err);
    std::string first_error;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("error:") != std::string::npos) {
        first_error = line;
        break;
      }
    }
    findings->push_back(
        {path, 1, "header-not-self-sufficient", Severity::kError,
         "header does not compile on its own (include what you use)" +
             (first_error.empty() ? std::string{}
                                  : ": " + first_error)});
  }
  std::error_code ec;
  fs::remove(tu, ec);
  fs::remove(err, ec);
}

void sort_findings(std::vector<Finding>* findings) {
  std::stable_sort(findings->begin(), findings->end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wallclock", Severity::kError,
       "no wall-clock/entropy sources in simulation code (R1)"},
      {"unordered-container", Severity::kWarning,
       "no std::unordered_map/set where order can leak into exports (R2)"},
      {"steer-missing-reason", Severity::kError,
       "every steer() return must set an audit reason tag (R3)"},
      {"raw-new-delete", Severity::kError,
       "no raw new/delete outside allow-tagged files (R4)"},
      {"float-equality", Severity::kWarning,
       "no floating-point ==/!= on metric values (R5)"},
      {"header-not-self-sufficient", Severity::kError,
       "headers must compile on their own (R6, --compile-check)"},
      {"clock-island", Severity::kError,
       "allow(wallclock) only inside src/obs/prof* and bench/ (R7)"},
      {"std-hash", Severity::kError,
       "no std::hash — platform-dependent; use sim/seed.hpp mixes (R8)"},
      {kAllowNeedsJustification, Severity::kError,
       "every allow() carries a justification"},
      {kAllowUnknownRule, Severity::kError,
       "allow() names only known rules"},
  };
  return kRules;
}

bool known_rule(std::string_view name) {
  for (const auto& r : rules()) {
    if (name == r.name) return true;
  }
  return false;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text,
                                 const Options& /*opts*/) {
  const Scrubbed sc = scrub(text);
  std::vector<Finding> directives;
  const FileSuppressions allows =
      collect_suppressions(path, sc, &directives);

  std::vector<Finding> raw;
  // The clock island may read host clocks freely; everywhere else R1
  // applies and (per R7 above) cannot be suppressed away.
  if (!in_clock_island(path)) check_wallclock(path, sc, &raw);
  check_unordered(path, sc, &raw);
  check_steer_reasons(path, sc, &raw);
  check_new_delete(path, sc, &raw);
  check_float_equality(path, sc, &raw);
  check_std_hash(path, sc, &raw);

  std::vector<Finding> out = std::move(directives);  // never suppressible
  for (auto& f : raw) {
    if (!allows.suppressed(f.rule, f.line)) out.push_back(std::move(f));
  }
  sort_findings(&out);
  return out;
}

std::vector<Finding> lint_file(const std::string& path, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 1, "io-error", Severity::kError, "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<Finding> out = lint_source(path, buf.str(), opts);

  const bool is_header = path.size() >= 4 &&
                         (path.rfind(".hpp") == path.size() - 4 ||
                          path.rfind(".h") == path.size() - 2);
  if (opts.compile_check && is_header) {
    // A file-scope allow silences R6 too (umbrella headers that need a
    // specific include order would tag themselves; none do today).
    const Scrubbed sc = scrub(buf.str());
    std::vector<Finding> scratch;
    const FileSuppressions allows =
        collect_suppressions(path, sc, &scratch);
    if (!allows.suppressed("header-not-self-sufficient", 1)) {
      check_header_self_sufficient(path, opts, &out);
    }
    sort_findings(&out);
  }
  return out;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& opts) {
  Options effective = opts;
  if (effective.compile_check &&
      !compiler_available(effective.compiler)) {
    effective.compile_check = false;
  }

  std::vector<std::string> files;
  for (const auto& root : roots) {
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
        files.push_back(entry.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> out;
  for (const auto& f : files) {
    auto file_findings = lint_file(f, effective);
    out.insert(out.end(), std::make_move_iterator(file_findings.begin()),
               std::make_move_iterator(file_findings.end()));
  }
  if (opts.compile_check && !effective.compile_check) {
    out.push_back({"", 0, "compile-check-skipped", Severity::kNote,
                   "compiler '" + opts.compiler +
                       "' not found; header self-sufficiency (R6) not "
                       "checked"});
  }
  return out;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    if (f.file.empty()) {
      out += std::string(severity_name(f.severity)) + ": " + f.message + "\n";
      continue;
    }
    out += f.file + ":" + std::to_string(f.line) + ": " +
           severity_name(f.severity) + ": [" + f.rule + "] " + f.message +
           "\n";
  }
  return out;
}

std::string to_json(const std::vector<Finding>& findings) {
  using obs::json::quote;
  std::string out = "{\"findings\":[";
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  bool first = true;
  for (const auto& f : findings) {
    switch (f.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
    if (!first) out += ',';
    first = false;
    out += "{\"file\":" + quote(f.file) +
           ",\"line\":" + std::to_string(f.line) +
           ",\"rule\":" + quote(f.rule) + ",\"severity\":" +
           quote(severity_name(f.severity)) +
           ",\"message\":" + quote(f.message) + "}";
  }
  out += "],\"errors\":" + std::to_string(errors) +
         ",\"warnings\":" + std::to_string(warnings) +
         ",\"notes\":" + std::to_string(notes) + "}";
  return out;
}

bool has_failure(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity != Severity::kNote;
  });
}

}  // namespace hvc::lint
