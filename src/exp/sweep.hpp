// Grid sweeps over scenarios, executed on a fixed-size thread pool.
//
// A sweep file wraps a scenario template ("base") with named axes:
//
//   {
//     "name": "table1_sweep",
//     "base": { ...any ScenarioSpec fields... },
//     "axes": {
//       "channels.0.profile": ["lowband-stationary", "lowband-driving"],
//       "policy": ["embb-only", {"name": "dchannel", "preset": "web-tuned"}],
//       "seed": {"range": [0, 32]}
//     }
//   }
//
// Axis paths are dotted JSON paths into the scenario (numeric segments
// index arrays); values are either an explicit JSON array (objects
// allowed) or an integer {"range": [lo, hi]} half-open interval with an
// optional step ({"range": [lo, hi, step]}). expand() takes the cross
// product — axes iterate in sorted path order with the last axis fastest
// — and validates every combination up front, so a bad grid fails before
// any simulation starts.
//
// run_sweep() executes the expanded runs on `jobs` worker threads. Runs
// are claimed from an atomic counter but results land in a vector slot
// fixed by grid position, so aggregated output is byte-identical for any
// thread count; each run is isolated by run_scenario()'s contract
// (runner.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/spec.hpp"

namespace hvc::exp {

struct SweepAxis {
  std::string path;                      ///< dotted path into the scenario
  std::vector<obs::json::Value> values;  ///< expanded value list
};

struct SweepSpec {
  std::string name = "sweep";
  obs::json::Value base;         ///< scenario template (JSON object)
  std::vector<SweepAxis> axes;   ///< sorted by path

  /// Parse + validate (strict, like ScenarioSpec). The base template is
  /// validated as a scenario immediately; axis combinations are
  /// validated by expand().
  static SweepSpec from_json(const obs::json::Value& v);
  static SweepSpec from_json_text(std::string_view text);
  static SweepSpec from_file(const std::string& path);

  /// Total number of runs in the grid (product of axis sizes; 1 when
  /// there are no axes).
  [[nodiscard]] std::size_t run_count() const;
};

/// One grid point: the fully substituted scenario plus the axis values
/// that produced it (as display strings, keyed by axis path).
struct ExpandedRun {
  ScenarioSpec spec;
  std::map<std::string, std::string> params;
};

/// Cross-product expansion in deterministic order (sorted axis paths,
/// last axis fastest). Throws SpecError if any combination fails
/// scenario validation, naming the run index and axis values.
std::vector<ExpandedRun> expand(const SweepSpec& sweep);

/// Called after each run completes (from worker threads, serialized by
/// an internal mutex). `done` counts completed runs so far.
using SweepProgress =
    std::function<void(const RunResult& result, std::size_t done,
                       std::size_t total)>;

/// Expand and execute the whole grid on `jobs` threads (clamped to
/// [1, run_count]). The result vector is ordered by grid position —
/// independent of `jobs` and of scheduling. Runs whose spec enables
/// telemetry write per-run artifacts named `<out_prefix>.run<i>.…` where
/// `i` is the grid index (so names, too, are independent of scheduling);
/// an empty `out_prefix` falls back to each spec's own prefix.
std::vector<RunResult> run_sweep(const SweepSpec& sweep, int jobs,
                                 const SweepProgress& progress = nullptr,
                                 const std::string& out_prefix = "");

/// Sharded execution for splitting one grid across machines/processes:
/// runs only the grid positions i with i % shard_count == shard_index
/// and returns just those results, still carrying their *global* grid
/// indices. Results from all shards of a grid, concatenated and sorted
/// by index, are byte-for-byte the unsharded run_sweep() result (every
/// run is isolated, and results.jsonl round-trips exactly), which is
/// what hvc_sweep --merge reassembles. Throws SpecError on
/// shard_index >= shard_count or shard_count == 0.
std::vector<RunResult> run_sweep_shard(const SweepSpec& sweep, int jobs,
                                       std::size_t shard_index,
                                       std::size_t shard_count,
                                       const SweepProgress& progress = nullptr,
                                       const std::string& out_prefix = "");

}  // namespace hvc::exp
