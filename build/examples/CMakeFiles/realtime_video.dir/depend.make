# Empty dependencies file for realtime_video.
# This may be replaced when dependencies are built.
