// A bidirectional virtual channel (a pair of Links) and HvcSet, the bundle
// of parallel heterogeneous channels between two endpoints that steering
// policies choose among.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/link.hpp"
#include "channel/profile.hpp"

namespace hvc::channel {

enum class Direction : std::uint8_t { kDownlink, kUplink };

/// One virtual channel: server→client (down) and client→server (up) links
/// sharing a profile.
class Channel {
 public:
  Channel(sim::Simulator& sim, ChannelProfile profile);

  [[nodiscard]] Link& link(Direction d) {
    return d == Direction::kDownlink ? down_ : up_;
  }
  [[nodiscard]] const Link& link(Direction d) const {
    return d == Direction::kDownlink ? down_ : up_;
  }
  [[nodiscard]] Link& downlink() { return down_; }
  [[nodiscard]] Link& uplink() { return up_; }

  [[nodiscard]] const ChannelProfile& profile() const { return profile_; }
  [[nodiscard]] const std::string& name() const { return profile_.name; }

  /// Total monetary cost accrued so far on both directions.
  [[nodiscard]] double cost_accrued() const;

 private:
  ChannelProfile profile_;
  Link down_;
  Link up_;
};

/// An ordered set of channels between the same endpoint pair. Index 0 is,
/// by convention, the default/high-bandwidth channel (eMBB-like) — every
/// steering policy falls back to it.
class HvcSet {
 public:
  explicit HvcSet(sim::Simulator& sim) : sim_(&sim) {}

  /// Add a channel; returns its index.
  std::size_t add(ChannelProfile profile);

  [[nodiscard]] std::size_t size() const { return channels_.size(); }
  [[nodiscard]] Channel& at(std::size_t i) { return *channels_.at(i); }
  [[nodiscard]] const Channel& at(std::size_t i) const {
    return *channels_.at(i);
  }

  /// Index of the first channel flagged `reliable`, or size() if none.
  [[nodiscard]] std::size_t first_reliable() const;

  /// Index of the channel with the lowest base RTT.
  [[nodiscard]] std::size_t lowest_latency() const;

  /// Index of the channel with the highest average rate (given direction).
  [[nodiscard]] std::size_t highest_bandwidth(Direction d) const;

 private:
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace hvc::channel
