// Bench run manifests: a machine-readable record of one benchmark
// execution — what ran (name, seed, scenario parameters), what it
// measured (a flattened MetricsRegistry snapshot), and how it went
// (wall time, trace event count). Every bench binary writes
// `<name>.manifest.json`; successive runs form the repo's perf
// trajectory for BENCH_*.json-style tracking.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hvc::obs {

class MetricsRegistry;

struct RunManifest {
  std::string name;
  std::uint64_t seed = 0;
  /// Scenario parameters, in insertion order (policy names, traces, …).
  std::vector<std::pair<std::string, std::string>> params;
  double wall_time_ms = 0.0;
  std::uint64_t trace_events = 0;  ///< tracer total_recorded(), 0 when off
  std::map<std::string, double> metrics;

  void add_param(std::string key, std::string value) {
    params.emplace_back(std::move(key), std::move(value));
  }

  /// Fill `metrics` from a registry's flattened snapshot.
  void capture_metrics(const MetricsRegistry& registry);

  [[nodiscard]] std::string to_json() const;
  static std::optional<RunManifest> from_json(const std::string& text);

  /// Write to / read back from a file. Returns false/nullopt on I/O or
  /// parse failure.
  bool write(const std::string& path) const;
  static std::optional<RunManifest> read(const std::string& path);
};

}  // namespace hvc::obs
