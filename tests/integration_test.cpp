// Cross-module integration tests: full transfers through steering shims
// over heterogeneous channels — the paper's core scenarios in miniature.
#include <gtest/gtest.h>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"
#include "steer/dchannel.hpp"
#include "steer/priority.hpp"
#include "transport/datagram.hpp"
#include "transport/tcp.hpp"

namespace hvc {
namespace {

using sim::milliseconds;
using sim::seconds;

std::unique_ptr<net::TwoHostNetwork> make_fig1_net(
    sim::Simulator& s, std::unique_ptr<steer::SteeringPolicy> up,
    std::unique_ptr<steer::SteeringPolicy> down,
    sim::Duration resequence = milliseconds(40)) {
  auto n = std::make_unique<net::TwoHostNetwork>(s, std::move(up),
                                                 std::move(down));
  n->add_channel(channel::embb_constant_profile());
  n->add_channel(channel::urllc_profile());
  if (resequence > 0) n->enable_resequencing(resequence);
  n->finalize();
  return n;
}

TEST(Integration, BulkTransferUnderDChannelSteeringCompletes) {
  sim::Simulator s;
  auto net = make_fig1_net(s, std::make_unique<steer::DChannelPolicy>(),
                           std::make_unique<steer::DChannelPolicy>());
  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net->server(), flows,
                           transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net->client(), flows);
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(10'000'000);
  s.run_until(seconds(30));
  EXPECT_EQ(received, 10'000'000);
  // DChannel must actually have used both channels.
  EXPECT_GT(net->downlink_shim().stats().packets_per_channel[1], 0);
  EXPECT_GT(net->downlink_shim().stats().packets_per_channel[0], 0);
}

TEST(Integration, DChannelSteersAcksToUrllc) {
  sim::Simulator s;
  auto net = make_fig1_net(s, std::make_unique<steer::DChannelPolicy>(),
                           std::make_unique<steer::DChannelPolicy>());
  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net->server(), flows,
                           transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net->client(), flows);
  snd.write(5'000'000);
  s.run_until(seconds(10));
  // ACKs travel uplink; most should ride URLLC (tiny, huge reward).
  const auto& up = net->uplink_shim().stats();
  EXPECT_GT(up.packets_per_channel[1], up.packets_per_channel[0]);
}

TEST(Integration, FlowPrioritySteeringAcceleratesSmallFlowUnderBulkLoad) {
  // A small transfer competing with a bulk flow (§3.3's scenario): plain
  // DChannel lets the bulk flow congest URLLC too, so only the
  // flow-priority variant reliably accelerates the foreground transfer.
  auto run_with = [&](auto make_policy, std::uint8_t bulk_priority) {
    sim::Simulator s;
    auto net = make_fig1_net(s, make_policy(), make_policy());
    // Background bulk flow building an eMBB downlink queue.
    const auto bulk_flows = transport::make_flow_pair();
    transport::TcpConfig bulk_cfg;
    bulk_cfg.flow_priority = bulk_priority;
    transport::TcpSender bulk(net->server(), bulk_flows,
                              transport::make_cca("cubic"), bulk_cfg);
    transport::TcpReceiver bulk_rcv(net->client(), bulk_flows, bulk_cfg);
    bulk.write(100'000'000);

    // At t=5s, a small 20 kB response-like transfer; measure completion.
    const auto flows = transport::make_flow_pair();
    transport::TcpSender snd(net->server(), flows,
                             transport::make_cca("cubic"));
    transport::TcpReceiver rcv(net->client(), flows);
    sim::Time done = -1;
    std::int64_t got = 0;
    rcv.set_on_data([&](std::int64_t n) {
      got += n;
      if (got >= 20'000 && done < 0) done = s.now();
    });
    s.at(seconds(5), [&] { snd.write(20'000); });
    s.run_until(seconds(15));
    return done < 0 ? seconds(999) : done - seconds(5);
  };

  const auto embb_only = run_with(
      [] { return std::make_unique<steer::SingleChannelPolicy>(0); }, 0);
  const auto dchannel = run_with(
      [] { return std::make_unique<steer::DChannelPolicy>(); }, 0);
  const auto dchannel_prio = run_with(
      [] {
        return std::make_unique<steer::DChannelPolicy>(
            steer::DChannelConfig{.use_flow_priority = true});
      },
      1);
  // Flow priority keeps the bulk flow off URLLC: the small transfer rides
  // an empty low-latency channel and beats both alternatives.
  EXPECT_LT(dchannel_prio, embb_only);
  EXPECT_LE(dchannel_prio, dchannel);
  // All schemes complete within the run.
  EXPECT_LT(embb_only, seconds(11));
  EXPECT_LT(dchannel, seconds(11));
}

TEST(Integration, PrioritySteeringProtectsLayer0UnderOutage) {
  // Outage-prone eMBB + URLLC; high-priority datagram messages keep
  // arriving on time only under the cross-layer policy.
  auto run_with = [&](std::unique_ptr<steer::SteeringPolicy> policy) {
    sim::Simulator s;
    auto net = std::make_unique<net::TwoHostNetwork>(
        s, std::make_unique<steer::SingleChannelPolicy>(0),
        std::move(policy));
    auto embb = channel::embb_constant_profile();
    // Replace the constant trace with one that has a 2 s outage.
    std::vector<sim::Time> opps;
    for (int ms = 0; ms < 10000; ++ms) {
      if (ms >= 4000 && ms < 6000) continue;  // outage
      for (int k = 0; k < 5; ++k) {           // 60 Mbps
        opps.push_back(milliseconds(ms) + k * milliseconds(1) / 5);
      }
    }
    embb.capacity_down =
        trace::CapacityTrace::from_opportunities(opps, seconds(10));
    net->add_channel(std::move(embb));
    net->add_channel(channel::urllc_profile());
    net->finalize();

    const auto flow = net::next_flow_id();
    transport::DatagramSocket tx(net->server(), flow);
    transport::DatagramSocket rx(net->client(), flow);
    sim::Summary latency_ms;
    std::map<std::uint64_t, sim::Time> sent_at;
    rx.set_on_message(
        [&](const transport::DatagramSocket::MessageEvent& ev) {
          if (ev.header.priority == 0) {
            latency_ms.add(
                sim::to_millis(ev.completed - sent_at[ev.header.message_id]));
          }
        });
    // 30 fps: layer 0 (1.6 kB) + layer 1 (17 kB) per frame.
    for (int f = 0; f < 270; ++f) {
      s.at(milliseconds(33 * f), [&, f] {
        (void)f;
        sent_at[tx.send_message(1600, 0)] = s.now();
        tx.send_message(17000, 1);
      });
    }
    s.run_until(seconds(10));
    return latency_ms;
  };

  auto embb_only = run_with(std::make_unique<steer::SingleChannelPolicy>(0));
  auto priority = run_with(std::make_unique<steer::MessagePriorityPolicy>());
  ASSERT_GT(priority.count(), 200u);
  // Under priority steering, layer-0 p95 latency stays low; eMBB-only
  // suffers the outage (~2 s tail).
  EXPECT_LT(priority.percentile(95), 60.0);
  EXPECT_GT(embb_only.percentile(95), 300.0);
}

TEST(Integration, FlowPriorityKeepsBackgroundOffUrllc) {
  sim::Simulator s;
  auto net = make_fig1_net(
      s,
      std::make_unique<steer::DChannelPolicy>(
          steer::DChannelConfig{.use_flow_priority = true}),
      std::make_unique<steer::DChannelPolicy>(
          steer::DChannelConfig{.use_flow_priority = true}));
  // Background flow with flow_priority 1.
  const auto bg_flows = transport::make_flow_pair();
  transport::TcpConfig bg_cfg;
  bg_cfg.flow_priority = 1;
  transport::TcpSender bg(net->server(), bg_flows,
                          transport::make_cca("cubic"), bg_cfg);
  transport::TcpReceiver bg_rcv(net->client(), bg_flows, bg_cfg);
  bg.write(20'000'000);
  s.run_until(seconds(5));
  // Nothing from the background flow (data or its acks) touched URLLC.
  EXPECT_EQ(net->downlink_shim().stats().packets_per_channel[1], 0);
  EXPECT_EQ(net->uplink_shim().stats().packets_per_channel[1], 0);
}

TEST(Integration, AdaptiveRackToleratesCrossChannelReordering) {
  // Steering across channels with a ~20 ms delay gap reorders packets
  // wholesale; the sender's adaptive RACK window must absorb it without a
  // spurious-retransmission storm. (Interesting ablation: a receiver-side
  // resequencer with too small a hold *hides* reordering from RACK's
  // adaptation and makes things worse — see bench/ablation_resequencer.)
  sim::Simulator s;
  auto net = make_fig1_net(s, std::make_unique<steer::DChannelPolicy>(),
                           std::make_unique<steer::DChannelPolicy>(),
                           /*resequence=*/0);
  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net->server(), flows,
                           transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net->client(), flows);
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(20'000'000);
  s.run_until(seconds(10));
  EXPECT_EQ(received, 20'000'000);
  // Lossless channels: every retransmission is spurious. Require < 2% of
  // packets.
  EXPECT_LT(snd.stats().retransmissions,
            snd.stats().packets_sent / 50);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run = [&] {
    sim::Simulator s;
    auto net = make_fig1_net(s, std::make_unique<steer::DChannelPolicy>(),
                             std::make_unique<steer::DChannelPolicy>());
    const auto flows = transport::make_flow_pair();
    transport::TcpSender snd(net->server(), flows,
                             transport::make_cca("bbr"));
    transport::TcpReceiver rcv(net->client(), flows);
    snd.write(5'000'000);
    s.run_until(seconds(10));
    return std::make_tuple(snd.stats().packets_sent,
                           snd.stats().bytes_acked,
                           snd.stats().retransmissions,
                           rcv.stats().acks_sent);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hvc
