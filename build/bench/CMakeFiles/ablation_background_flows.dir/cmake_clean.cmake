file(REMOVE_RECURSE
  "CMakeFiles/ablation_background_flows.dir/ablation_background_flows.cpp.o"
  "CMakeFiles/ablation_background_flows.dir/ablation_background_flows.cpp.o.d"
  "ablation_background_flows"
  "ablation_background_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_background_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
