#include "app/video/session.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace hvc::app::video {

using transport::DatagramSocket;

VideoSender::VideoSender(net::Node& node, net::FlowId flow, SvcConfig cfg)
    : socket(node, flow),
      sim_(node.simulator()),
      encoder_(std::move(cfg)) {}

sim::Time VideoSender::capture_time(int frame) const {
  const auto it = capture_times_.find(frame);
  return it == capture_times_.end() ? -1 : it->second;
}

void VideoSender::start(sim::Duration duration) {
  deadline_ = sim_.now() + duration;
  running_ = true;
  emit_frame();
}

void VideoSender::emit_frame() {
  if (!running_ || sim_.now() >= deadline_) return;
  const EncodedFrame f = encoder_.next_frame(sim_.now());
  capture_times_[f.index] = f.capture_time;
  for (std::size_t layer = 0; layer < f.layer_bytes.size(); ++layer) {
    socket.send_message_with_id(
        frame_layer_id(f.index, static_cast<int>(layer)),
        f.layer_bytes[layer], static_cast<std::uint8_t>(layer));
  }
  ++frames_sent_;
  sim_.after(encoder_.frame_interval(), [this] { emit_frame(); });
}

VideoReceiver::VideoReceiver(net::Node& node, net::FlowId flow,
                             const VideoSender& sender,
                             VideoReceiverConfig cfg)
    : sim_(node.simulator()),
      sender_(sender),
      cfg_(cfg),
      socket_(node, flow),
      rng_(cfg.seed) {
  socket_.set_on_message([this](const DatagramSocket::MessageEvent& ev) {
    on_message(ev);
  });
  spans_ = obs::SpanRecorder::active();
}

void VideoReceiver::on_message(const DatagramSocket::MessageEvent& ev) {
  const int frame = id_frame(ev.header.message_id);
  const int layer = id_layer(ev.header.message_id);
  if (layer < 0 || layer >= cfg_.layers) return;

  FrameState& fs = frames_[frame];
  if (fs.decoded) return;  // layers arriving after decode are discarded
  fs.layers[layer] = true;
  fs.bytes += ev.header.message_bytes;
  while (fs.layers.contains(fs.highest_contiguous + 1)) {
    ++fs.highest_contiguous;
  }

  if (layer == 0) {
    fs.layer0_seen = true;
    fs.layer0_at = sim_.now();
    // Paper's rule: decode after decode_wait, or as soon as layer 0 of the
    // next `lookahead_frames` frames has been seen.
    fs.decode_timer = std::make_unique<sim::Timer>(sim_, [this, frame] {
      decode(frame);
    });
    fs.decode_timer->arm(cfg_.decode_wait);

    // This layer-0 arrival may satisfy the lookahead of earlier frames.
    for (auto& [f, st] : frames_) {
      if (f >= frame || st.decoded || !st.layer0_seen) continue;
      int ahead = 0;
      for (int g = f + 1; g <= frame; ++g) {
        const auto it = frames_.find(g);
        if (it != frames_.end() && it->second.layer0_seen) ++ahead;
      }
      if (ahead >= cfg_.lookahead_frames) decode(f);
    }
  }
}

void VideoReceiver::decode(int frame) {
  FrameState& fs = frames_[frame];
  if (fs.decoded || !fs.layer0_seen) return;
  fs.decoded = true;
  if (fs.decode_timer) fs.decode_timer->cancel();

  const bool keyframe =
      cfg_.keyframe_interval > 0 && frame % cfg_.keyframe_interval == 0;

  // Layer 0 decodes on its own; layer k>0 additionally needs layer k of
  // the previous frame (unless this is a keyframe).
  int usable = 1;
  const auto prev = decoded_level_.find(frame - 1);
  const int prev_level =
      prev == decoded_level_.end() ? 0 : prev->second;
  for (int l = 1; l <= fs.highest_contiguous; ++l) {
    if (keyframe || prev_level >= l + 1) {
      usable = l + 1;
    } else {
      break;
    }
  }
  decoded_level_[frame] = usable;

  FrameRecord rec;
  rec.frame = frame;
  rec.keyframe = keyframe;
  rec.layers_decoded = usable;
  rec.ssim = ssim_for_layers(usable, rng_);
  const sim::Time captured = sender_.capture_time(frame);
  rec.latency = captured >= 0 ? sim_.now() - captured : 0;

  if (spans_ != nullptr && captured >= 0) {
    // One frame = one unit: queueing is the network transit until this
    // frame's layer 0 landed, decode-wait is the paper's hold-for-layers
    // rule after it. The two sum to the frame latency exactly.
    sbuild_.begin("video", "frame_ms",
                  static_cast<std::uint32_t>(std::max(frame, 0)), captured);
    sbuild_.begin_stage(captured, 0, "");
    sbuild_.leg_open(0, captured, fs.bytes, "mixed",
                     keyframe ? "video:keyframe" : "video:frame", 0);
    sbuild_.leg_charge(0, obs::SpanComp::kDecodeWait,
                       sim_.now() - fs.layer0_at);
    sbuild_.leg_close(0, sim_.now());
    sbuild_.end_stage(sim_.now());
    spans_->offer(sbuild_.finish(sim_.now(), rec.latency,
                                 sim::to_millis(rec.latency)));
  }

  ++stats_.frames_decoded;
  const int arrived = std::min(fs.highest_contiguous + 1, cfg_.layers);
  if (usable < arrived) ++stats_.frames_concealed;  // dependency-limited
  stats_.latency_ms.add(sim::to_millis(rec.latency));
  stats_.ssim.add(rec.ssim);
  stats_.decoded_at_layer[std::min(usable, 3)]++;

  auto& reg = obs::MetricsRegistry::current();
  reg.counter("app.video.frames_decoded").inc();
  if (usable < arrived) reg.counter("app.video.frames_concealed").inc();
  reg.histogram("app.video.frame_latency_ms").add(sim::to_millis(rec.latency));
  reg.histogram("app.video.ssim",
                {0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98, 1.0})
      .add(rec.ssim);
  if (on_frame_) on_frame_(rec);

  // Garbage-collect old frame state.
  while (!frames_.empty() && frames_.begin()->first < frame - 300) {
    frames_.erase(frames_.begin());
  }
  while (!decoded_level_.empty() &&
         decoded_level_.begin()->first < frame - 300) {
    decoded_level_.erase(decoded_level_.begin());
  }
}

}  // namespace hvc::app::video
