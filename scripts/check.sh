#!/usr/bin/env bash
# Full local gate: build + test both presets (default, sanitize).
#
#   scripts/check.sh            # everything
#   scripts/check.sh default    # just the default preset
#   scripts/check.sh sanitize   # just the sanitizer preset
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("${@:-default sanitize}")
# Word-split the default list when invoked with no arguments.
if [ $# -eq 0 ]; then presets=(default sanitize); fi

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}"
done

echo "All checks passed."
