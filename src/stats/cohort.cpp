#include "stats/cohort.hpp"

#include <algorithm>

namespace hvc::stats {

void JainAccumulator::add(double per_user_value) {
  const std::int64_t q = quantize(std::max(0.0, per_user_value));
  ++n_;
  sum_.add(q);
  sumsq_.add_product(q, q);
}

void JainAccumulator::merge(const JainAccumulator& o) {
  n_ += o.n_;
  sum_.merge(o.sum_);
  sumsq_.merge(o.sumsq_);
}

double JainAccumulator::index() const {
  if (n_ == 0) return 1.0;
  const double s = sum_.to_double();
  const double ss = sumsq_.to_double();
  if (ss <= 0.0) return 1.0;  // every user saw 0 — vacuously fair
  return (s * s) / (static_cast<double>(n_) * ss);
}

std::string JainAccumulator::to_json() const {
  return "{\"n\":" + std::to_string(n_) + ",\"sum\":" + sum_.to_decimal() +
         ",\"sumsq\":" + sumsq_.to_decimal() + '}';
}

std::string MetricStats::to_json() const {
  return "{\"moments\":" + moments.to_json() + ",\"hist\":" + hist.to_json() +
         '}';
}

void CohortStats::merge(const CohortStats& o) {
  for (const auto& [name, m] : o.metrics) {
    auto it = metrics.find(name);
    if (it == metrics.end()) {
      metrics.emplace(name, m);
    } else {
      it->second.merge(m);
    }
  }
  fairness.merge(o.fairness);
}

std::string CohortStats::to_json() const {
  std::string out = "{\"metrics\":{";
  bool first = true;
  for (const auto& [name, m] : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + m.to_json();
  }
  out += "},\"fairness\":" + fairness.to_json() + '}';
  return out;
}

void CohortSet::merge(const CohortSet& o) {
  for (const auto& [name, c] : o.cohorts_) {
    auto it = cohorts_.find(name);
    if (it == cohorts_.end()) {
      cohorts_.emplace(name, c);
    } else {
      it->second.merge(c);
    }
  }
}

void CohortSet::export_metrics(const std::string& prefix,
                               std::map<std::string, double>* out) const {
  for (const auto& [cname, c] : cohorts_) {
    for (const auto& [mname, m] : c.metrics) {
      const std::string base = prefix + '.' + cname + '.' + mname;
      (*out)[base + ".count"] = static_cast<double>(m.moments.count());
      (*out)[base + ".mean"] = m.moments.mean();
      (*out)[base + ".stddev"] = m.moments.stddev();
      (*out)[base + ".min"] = m.moments.min();
      (*out)[base + ".max"] = m.moments.max();
      for (const double p : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
        (*out)[base + ".p" + std::to_string(static_cast<int>(p))] =
            m.hist.percentile(p);
      }
    }
    if (c.fairness.users() > 0) {
      (*out)[prefix + ".jain." + cname] = c.fairness.index();
      (*out)[prefix + ".jain." + cname + ".users"] =
          static_cast<double>(c.fairness.users());
    }
  }
}

std::string CohortSet::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, c] : cohorts_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + c.to_json();
  }
  out += '}';
  return out;
}

std::size_t CohortSet::memory_bytes() const {
  std::size_t total = sizeof(CohortSet);
  for (const auto& [name, c] : cohorts_) {
    total += sizeof(CohortStats) + name.size();
    for (const auto& [mname, m] : c.metrics) {
      total += sizeof(MetricStats) + mname.size() +
               LogHistogram::memory_bytes();
    }
  }
  return total;
}

}  // namespace hvc::stats
