file(REMOVE_RECURSE
  "CMakeFiles/fig2_video_steering.dir/fig2_video_steering.cpp.o"
  "CMakeFiles/fig2_video_steering.dir/fig2_video_steering.cpp.o.d"
  "fig2_video_steering"
  "fig2_video_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_video_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
