// Property-based tests: invariants that must hold across the whole
// parameter space — packet conservation, per-channel FIFO, steering
// budget discipline, and transport reliability — exercised with
// parameterized sweeps (TEST_P) over policies, loads, and channel shapes.
#include <gtest/gtest.h>

#include <map>

#include "channel/profile.hpp"
#include "core/scenario.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"
#include "transport/datagram.hpp"
#include "transport/tcp.hpp"

namespace hvc {
namespace {

using sim::milliseconds;
using sim::seconds;

// ---- Conservation: every packet is delivered exactly once or dropped ---

class ConservationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConservationTest, NoPacketDuplicatedOrVanishes) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy(GetParam()),
                          core::make_policy(GetParam()));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();

  const auto flow = net::next_flow_id();
  std::map<std::uint64_t, int> seen;  // packet id -> deliveries
  net.server().register_flow(flow, [&](net::PacketPtr p) {
    ++seen[p->id];
  });
  sim::Rng rng(17);
  constexpr int kPackets = 2000;
  for (int i = 0; i < kPackets; ++i) {
    s.at(static_cast<sim::Time>(rng.uniform(0, 2e9)), [&] {
      auto p = net::make_packet();
      p->flow = flow;
      p->type = net::PacketType::kData;
      p->size_bytes = rng.uniform_int(41, 1500);
      net.client().send(std::move(p));
    });
  }
  s.run();

  std::int64_t delivered = 0;
  for (const auto& [id, n] : seen) {
    EXPECT_EQ(n, 1) << "packet delivered " << n << " times";
    delivered += n;
  }
  std::int64_t dropped = 0;
  std::int64_t dup_sent = net.uplink_shim().stats().duplicates_sent;
  for (std::size_t c = 0; c < net.channels().size(); ++c) {
    dropped += net.channels().at(c).uplink().stats().dropped_queue_packets;
    dropped += net.channels().at(c).uplink().stats().dropped_wire_packets;
  }
  // sent + duplicates == delivered + dropped + suppressed-duplicates
  EXPECT_EQ(kPackets + dup_sent,
            delivered + dropped + net.server().duplicates_suppressed());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ConservationTest,
                         ::testing::Values("embb-only", "urllc-only",
                                           "round-robin", "weighted",
                                           "min-delay", "dchannel",
                                           "msg-priority", "redundant",
                                           "cost-aware"));

// ---- FIFO within each channel ----

class FifoTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FifoTest, PerChannelOrderPreserved) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy(GetParam()),
                          core::make_policy(GetParam()));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();

  const auto flow = net::next_flow_id();
  std::map<int, std::uint64_t> last_id_per_channel;
  bool fifo = true;
  net.server().register_flow(flow, [&](net::PacketPtr p) {
    auto& last = last_id_per_channel[p->channel];
    if (p->id < last) fifo = false;
    last = p->id;
  });
  for (int i = 0; i < 3000; ++i) {
    s.at(milliseconds(i), [&] {
      auto p = net::make_packet();
      p->flow = flow;
      p->type = net::PacketType::kData;
      p->size_bytes = 500;
      net.client().send(std::move(p));
    });
  }
  s.run();
  EXPECT_TRUE(fifo);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FifoTest,
                         ::testing::Values("round-robin", "weighted",
                                           "min-delay", "dchannel"));

// ---- Transport reliability across loss rates (TEST_P sweep) ----

class ReliabilityTest
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ReliabilityTest, AllBytesDeliveredUnderLoss) {
  const auto [cca, loss] = GetParam();
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("dchannel"),
                          core::make_policy("dchannel"));
  auto embb = channel::embb_constant_profile();
  embb.loss.bernoulli = loss;
  net.add_channel(std::move(embb));
  net.add_channel(channel::urllc_profile());
  net.finalize();

  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net.server(), flows, transport::make_cca(cca));
  transport::TcpReceiver rcv(net.client(), flows);
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(1'000'000);
  s.run_until(seconds(120));
  EXPECT_EQ(received, 1'000'000)
      << cca << " with loss " << loss << " failed to deliver";
}

INSTANTIATE_TEST_SUITE_P(
    CcaLossGrid, ReliabilityTest,
    ::testing::Combine(::testing::Values("cubic", "bbr", "vegas", "hvc"),
                       ::testing::Values(0.0, 0.01, 0.05)));

// ---- Steering sanity across packet sizes ----

class DecisionRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(DecisionRangeTest, PolicyAlwaysReturnsValidChannel) {
  const int size = GetParam();
  for (const char* name :
       {"embb-only", "round-robin", "weighted", "min-delay", "dchannel",
        "msg-priority", "redundant", "cost-aware"}) {
    auto policy = core::make_policy(name);
    std::array<steer::ChannelView, 3> views{};
    sim::Rng rng(size);
    for (std::size_t i = 0; i < views.size(); ++i) {
      views[i].index = i;
      views[i].base_owd = milliseconds(rng.uniform_int(1, 50));
      views[i].avg_rate_bps = views[i].recent_rate_bps =
          rng.uniform(1e6, 100e6);
      views[i].queued_bytes = rng.uniform_int(0, 100000);
      views[i].queue_limit_bytes = 200000;
      views[i].cost_per_megabyte = rng.uniform(0.0, 0.1);
    }
    for (int trial = 0; trial < 200; ++trial) {
      net::Packet pkt;
      pkt.type = trial % 3 == 0 ? net::PacketType::kAck
                                : net::PacketType::kData;
      pkt.size_bytes = size;
      pkt.app.present = trial % 2 == 0;
      pkt.app.priority = static_cast<std::uint8_t>(trial % 4);
      const auto d =
          policy->steer(pkt, views, static_cast<sim::Time>(trial) * 1000);
      EXPECT_LT(d.channel, views.size()) << name;
      for (const auto dup : d.duplicate_on) {
        EXPECT_LT(dup, views.size()) << name;
        EXPECT_NE(dup, d.channel) << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecisionRangeTest,
                         ::testing::Values(40, 100, 576, 1500));

// ---- Datagram messages complete exactly once per id ----

TEST(MessageProperty, EachMessageCompletesAtMostOnce) {
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("redundant"),
                          core::make_policy("redundant"));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();

  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  transport::DatagramSocket rx(net.client(), flow);
  std::map<std::uint64_t, int> completions;
  rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
    ++completions[ev.header.message_id];
  });
  for (int i = 0; i < 500; ++i) {
    s.at(milliseconds(5 * i), [&] { tx.send_message(4000, 0); });
  }
  s.run();
  for (const auto& [id, n] : completions) EXPECT_EQ(n, 1);
  EXPECT_EQ(completions.size(), 500u);
}

// ---- Throughput never exceeds aggregate capacity ----

class CapacityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CapacityTest, GoodputBoundedByAggregateCapacity) {
  const auto r = core::run_bulk(core::ScenarioConfig::fig1(GetParam()),
                                "cubic", seconds(20));
  EXPECT_LE(r.goodput_bps, 62.5e6);  // 60 + 2 Mbps + measurement slack
}

INSTANTIATE_TEST_SUITE_P(Policies, CapacityTest,
                         ::testing::Values("embb-only", "dchannel",
                                           "min-delay", "weighted"));

// ---- Invariants under randomized fault plans (FaultFuzz*) ----
//
// Every core invariant above must also hold while a seeded-random
// FaultPlan (outages, rate cliffs, GE bursts, delay spikes, flaps) is
// disrupting the channels. The suites are named FaultFuzz* so the tsan
// preset (CMakePresets.json, scripts/check.sh) can select exactly them.

class FaultFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzzTest, ConservationFifoAndTerminationUnderFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  static constexpr const char* kPolicies[] = {
      "min-delay", "dchannel", "round-robin", "weighted", "redundant"};
  const char* policy = kPolicies[seed % std::size(kPolicies)];
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy(policy),
                          core::make_policy(policy));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();
  const auto plan = fault::FaultPlan::fuzzed(seed, 2, seconds(3));
  fault::FaultInjector inj(s, net.channels(), plan);

  const auto flow = net::next_flow_id();
  std::map<std::uint64_t, int> seen;
  std::map<int, std::uint64_t> last_id_per_channel;
  bool fifo = true;
  net.server().register_flow(flow, [&](net::PacketPtr p) {
    ++seen[p->id];
    auto& last = last_id_per_channel[p->channel];
    if (p->id < last) fifo = false;
    last = p->id;
  });
  sim::Rng rng(seed ^ 0xf00d);
  constexpr int kPackets = 1200;
  for (int i = 0; i < kPackets; ++i) {
    s.at(static_cast<sim::Time>(rng.uniform(0, 3e9)), [&] {
      auto p = net::make_packet();
      p->flow = flow;
      p->type = net::PacketType::kData;
      p->size_bytes = rng.uniform_int(41, 1500);
      net.client().send(std::move(p));
    });
  }
  // Termination: the injector's window list is finite and every window
  // ends with the fault reversed, so the event queue must drain.
  s.run();

  // Conservation: nothing vanishes, nothing is delivered twice.
  std::int64_t delivered = 0;
  for (const auto& [id, n] : seen) {
    EXPECT_EQ(n, 1) << "packet delivered " << n << " times (seed " << seed
                    << ", policy " << policy << ")";
    delivered += n;
  }
  std::int64_t dropped = 0;
  const std::int64_t dup_sent = net.uplink_shim().stats().duplicates_sent;
  for (std::size_t c = 0; c < net.channels().size(); ++c) {
    dropped += net.channels().at(c).uplink().stats().dropped_queue_packets;
    dropped += net.channels().at(c).uplink().stats().dropped_wire_packets;
  }
  EXPECT_EQ(kPackets + dup_sent,
            delivered + dropped + net.server().duplicates_suppressed())
      << "seed " << seed << ", policy " << policy;
  // Per-channel FIFO survives outages (queued packets keep their order).
  EXPECT_TRUE(fifo) << "seed " << seed << ", policy " << policy;
  // All faults reversed: every link serves again.
  for (std::size_t c = 0; c < net.channels().size(); ++c) {
    EXPECT_FALSE(net.channels().at(c).uplink().fault_down());
    EXPECT_FALSE(net.channels().at(c).downlink().fault_down());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzzTest, ::testing::Range(0, 50));

// TCP must still deliver every byte exactly once through arbitrary
// disruption episodes — blackouts stall it (bounded backoff) but must
// never corrupt or lose application data.

class FaultFuzzTcpTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzzTcpTest, TcpDeliversAllBytesThroughFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("dchannel"),
                          core::make_policy("dchannel"));
  net.add_channel(channel::embb_constant_profile());
  net.add_channel(channel::urllc_profile());
  net.finalize();
  const auto plan = fault::FaultPlan::fuzzed(seed, 2, seconds(5));
  fault::FaultInjector inj(s, net.channels(), plan);

  const auto flows = transport::make_flow_pair();
  transport::TcpSender snd(net.server(), flows,
                           transport::make_cca("cubic"));
  transport::TcpReceiver rcv(net.client(), flows);
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(600'000);
  s.run_until(seconds(120));
  EXPECT_EQ(received, 600'000) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzzTcpTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace hvc
