// Fixture: R8 (std-hash) — one seeded violation, line 11. Mentions in
// comments ("std::hash is banned"), bare `hash` identifiers, and
// other-namespace hashes must NOT fire.
#include <cstddef>
#include <string>

namespace fixture {

namespace my { template <class T> struct hash { std::size_t operator()(const T&) const; }; }

std::size_t bad(const std::string& s) { return std::hash<std::string>{}(s); }  // VIOLATION

std::size_t ok_other_ns(const std::string& s) { return my::hash<std::string>{}(s); }

std::size_t hash(int v) { return static_cast<std::size_t>(v); }  // bare name: fine

}  // namespace fixture
