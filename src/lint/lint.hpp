// hvc_lint: the repo's determinism & simulation-safety static-analysis
// pass (scripts/check.sh lint, tools/hvc_lint).
//
// Every exported artifact this repo ships — sweep CSV/JSONL, telemetry,
// audit logs, traces — is promised byte-identical for a given spec at any
// -j. The byte-identity *tests* (exp_test, telemetry_test) catch a broken
// build after the fact; this pass rejects the code patterns that break
// the promise before they run:
//
//   wallclock            (R1) wall-clock / entropy sources in simulation
//                             code — time comes from sim::Simulator,
//                             randomness from sim::Rng, nothing else
//   unordered-container  (R2) std::unordered_map/set — iteration order is
//                             unspecified, so any traversal that feeds an
//                             export or a steering decision is a latent
//                             nondeterminism bug; use std::map/set, sort
//                             before export, or prove order-independence
//   steer-missing-reason (R3) a return path in a steer() implementation
//                             that does not set a Decision audit reason
//                             tag (obs/audit.hpp records every decision)
//   raw-new-delete       (R4) raw new/delete — ownership goes through
//                             unique_ptr/containers in this codebase
//   float-equality       (R5) ==/!= against floating-point values —
//                             metric comparisons must use ordering or an
//                             explicit tolerance
//   header-not-self-sufficient
//                        (R6) a header that does not compile on its own
//                             (include-what-you-use-lite; needs the
//                             toolchain, so it runs only under
//                             Options::compile_check)
//   clock-island         (R7) an allow(wallclock) suppression outside the
//                             sanctioned clock island (src/obs/prof*,
//                             bench/). Host-time needs are met by calling
//                             obs::prof::now_ns()/cycles(); the wallclock
//                             ban has exactly one carve-out, not a
//                             per-file mute button. Island files skip R1
//                             entirely and need no allow.
//   std-hash             (R8) std::hash — libstdc++ and libc++ hash the
//                             same value differently, so anything derived
//                             from it (seeds, sampling keys, bucket
//                             choices) silently diverges across
//                             platforms; derive stable keys from
//                             sim::fnv1a64 / sim::seed_mix (sim/seed.hpp)
//   worker-shared-state  (R9) semantic: writes to non-thread_local /
//                             non-atomic / non-mutex-guarded globals or
//                             statics from code reachable off the
//                             exp::run_sweep worker threads, plus
//                             thread_local binding-protocol hazards
//                             (unguarded unbind, missing destructor
//                             clear) — see rules_semantic.hpp
//   unordered-taint     (R10) semantic: values produced by iterating an
//                             unordered_* container, tracked through
//                             assignments/returns/call edges, must not
//                             reach an export sink
//   hotpath-alloc       (R11) semantic: no allocation or container
//                             growth inside HVC_PROF_SCOPE functions or
//                             their callees to the configured depth
//
// Scanner, not a compiler: the per-file pass works on a comment/string-
// stripped token view of each file, and the semantic pass (R9–R11) on a
// heuristic repo-wide index built from the same tokens (index.hpp,
// graph.hpp) — no libclang dependency, which keeps it fast and
// dependency-free at the cost of AST precision. Rules are tuned so
// false positives are rare and every true hit is suppressible in place:
//
//   foo();  // hvc-lint: allow(unordered-container): keys are re-sorted
//           // before export, so iteration order cannot leak
//
// A suppression names the rule(s) it silences and MUST carry a
// justification after the closing colon; an allow without one is itself
// a finding. A suppression on its own comment line applies to the next
// code line; `allow-file(rule)` near the top of a file silences the rule
// for the whole file.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hvc::lint {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);

struct Finding {
  std::string file;
  int line = 1;  ///< 1-based
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string message;
  /// Semantic findings: the declaration the finding traces back to
  /// (e.g. the unordered container an exported value derives from).
  /// Empty for per-file findings. `hvc_lint --fix` rewrites here.
  std::string origin_file;
  int origin_line = 0;
};

/// R7 helper: true for files inside the sanctioned clock island
/// (src/obs/prof*, bench/) where host-clock reads are legal.
[[nodiscard]] bool in_clock_island(const std::string& path);

/// A rule's identity: the name used in diagnostics and allow() tags.
struct RuleInfo {
  const char* name;
  Severity severity;
  const char* summary;
};

/// Every rule the pass knows, in stable (R1..R8 + directive) order.
[[nodiscard]] const std::vector<RuleInfo>& rules();
[[nodiscard]] bool known_rule(std::string_view name);

struct Options {
  /// Run the R6 header self-sufficiency compile check (invokes the
  /// compiler once per header; needs a toolchain on PATH).
  bool compile_check = false;
  std::string compiler = "c++";
  /// -I directories for the compile check (transitive includes).
  std::vector<std::string> include_dirs;
  /// Run the semantic passes (R9–R11) in lint_tree. The semantic index
  /// always covers the whole tree; per-file rules and finding output
  /// respect `changed_files` when set.
  bool semantic = true;
  /// R11: call-edge radius of the HVC_PROF_SCOPE allocation ban.
  int hotpath_depth = 1;
  /// Incremental mode (hvc_lint --diff/--changed): when non-empty, only
  /// these files plus their transitive reverse-includers are linted and
  /// reported; everything else contributes to the index only.
  std::vector<std::string> changed_files;
  /// When non-empty, load/save the on-disk symbol index here (JSON
  /// keyed on file content hashes; stale entries re-index silently).
  std::string index_cache_path;
};

/// Cache counters from one lint_tree run (see TokenCache::Stats):
/// `tokenizations` vs `files` is the header re-tokenization saving;
/// `disk_cache_hits` counts summaries restored from index_cache_path.
struct TreeStats {
  int files = 0;
  int files_read = 0;
  int tokenizations = 0;
  int memo_hits = 0;
  int disk_cache_hits = 0;
};

/// Lint one file's contents (R1–R5, R8 + suppression diagnostics). `path`
/// is used for reporting only; nothing is read from disk.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               std::string_view text,
                                               const Options& opts = {});

/// Lint a file from disk; adds the R6 compile check for headers when
/// opts.compile_check is set. Unreadable file = one kError finding.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& opts = {});

/// Recursively lint every .hpp/.h/.cpp/.cc under `roots` (files are also
/// accepted directly): per-file rules R1–R8 plus, when opts.semantic,
/// the cross-TU passes R9–R11 over the whole-tree index. Results are
/// ordered by path then line, so output is byte-stable for a given
/// tree. `stats` (optional) receives the token-cache counters.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::vector<std::string>& roots, const Options& opts = {},
    TreeStats* stats = nullptr);

/// Human-readable report: "file:line: severity: [rule] message" lines.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

/// Machine-readable report:
///   {"findings":[{"file":...,"line":...,"rule":...,"severity":...,
///    "message":...}],"errors":N,"warnings":N,"notes":N}
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 report (one run, tool driver "hvc_lint", every known
/// rule listed, one result per finding) for CI code-scanning upload.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// The gate condition: any finding at warning severity or worse.
[[nodiscard]] bool has_failure(const std::vector<Finding>& findings);

// ---- baselines --------------------------------------------------------

/// A count-based debt ledger: (repo-relative file, rule) -> number of
/// findings tolerated there. Lets strict rules land without a flag-day
/// fix of every legacy hit, while any *new* finding (count exceeded)
/// still fails the gate. Entries match findings by path suffix, so
/// "src/x.hpp" covers "./src/x.hpp" and absolute paths alike.
struct Baseline {
  std::map<std::pair<std::string, std::string>, int> counts;
};

[[nodiscard]] std::string baseline_to_json(const Baseline& b);
[[nodiscard]] bool baseline_from_json(std::string_view text, Baseline* b);

/// Build a baseline that exactly covers `findings` (notes excluded).
[[nodiscard]] Baseline baseline_from_findings(
    const std::vector<Finding>& findings);

/// Drop findings covered by the baseline, consuming counts in sorted
/// finding order; everything beyond the budget survives.
[[nodiscard]] std::vector<Finding> apply_baseline(
    std::vector<Finding> findings, const Baseline& b);

}  // namespace hvc::lint
