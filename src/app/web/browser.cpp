#include "app/web/browser.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/metrics.hpp"
#include "sim/seed.hpp"

namespace hvc::app::web {

PageLoadSession::PageLoadSession(net::Node& client, net::Node& server,
                                 const WebPage& page, BrowserConfig cfg,
                                 std::function<void(sim::Time)> done)
    : client_(client),
      server_(server),
      page_(page),
      cfg_(std::move(cfg)),
      done_(std::move(done)),
      origins_(static_cast<std::size_t>(page.origins())),
      // Explicit mix instead of std::hash: libstdc++/libc++ hash strings
      // differently, and the per-page processing jitter must be the same
      // stream on every platform (sim/seed.hpp, DESIGN.md §4).
      processing_rng_(
          sim::seed_mix(cfg_.processing_seed, sim::fnv1a64(page.name))),
      deps_remaining_(page.objects.size(), 0),
      requested_(page.objects.size(), false),
      loaded_(page.objects.size(), false) {
  for (const auto& o : page_.objects) {
    deps_remaining_[o.id] = static_cast<int>(o.deps.size());
  }
  spans_ = obs::SpanRecorder::active();
  if (spans_ != nullptr) {
    requested_at_.assign(page_.objects.size(), 0);
    completed_at_.assign(page_.objects.size(), 0);
    processed_at_.assign(page_.objects.size(), 0);
    trigger_.assign(page_.objects.size(), -1);
  }
}

void PageLoadSession::start() {
  started_at_ = client_.simulator().now();
  for (const auto& o : page_.objects) {
    if (deps_remaining_[o.id] == 0) maybe_request(o.id);
  }
}

void PageLoadSession::maybe_request(int object_id) {
  if (requested_[object_id]) return;
  requested_[object_id] = true;
  const auto& obj = page_.objects[object_id];
  Origin& origin = origins_[obj.origin];

  if (!origin.conn) {
    origin.conn = std::make_unique<transport::Connection>(client_, server_,
                                                          cfg_.transport);
    const int origin_id = obj.origin;

    // Server side: a completed request message triggers the response.
    origin.conn->server_receiver().set_on_message(
        [this, origin_id](const net::AppHeader& hdr, sim::Time) {
          Origin& o = origins_[origin_id];
          const auto it = o.request_to_object.find(hdr.message_id);
          if (it == o.request_to_object.end()) return;
          const int object = it->second;
          const auto resp_id = o.conn->server_sender().write_message(
              page_.objects[object].bytes, 0);
          o.response_to_object[resp_id] = object;
        });

    // Client side: a completed response message finishes the object.
    origin.conn->client_receiver().set_on_message(
        [this, origin_id](const net::AppHeader& hdr, sim::Time) {
          Origin& o = origins_[origin_id];
          const auto it = o.response_to_object.find(hdr.message_id);
          if (it == o.response_to_object.end()) return;
          const int object = it->second;
          o.response_to_object.erase(it);
          --o.outstanding;
          pump_origin(origin_id);
          on_object_complete(object);
        });

    origin.conn->handshake([this, origin_id] {
      origins_[origin_id].ready = true;
      pump_origin(origin_id);
    });
  }

  origin.queue.push_back(object_id);
  if (origin.ready) pump_origin(obj.origin);
}

void PageLoadSession::pump_origin(int origin_id) {
  Origin& origin = origins_[origin_id];
  if (!origin.ready) return;
  while (!origin.queue.empty() &&
         origin.outstanding < cfg_.max_concurrent_per_origin) {
    const int object = origin.queue.front();
    origin.queue.erase(origin.queue.begin());
    ++origin.outstanding;
    if (spans_ != nullptr) {
      requested_at_[object] = client_.simulator().now();
    }
    const auto req_id =
        origin.conn->client_sender().write_message(cfg_.request_bytes, 0);
    origin.request_to_object[req_id] = object;
  }
}

void PageLoadSession::on_object_complete(int object_id) {
  if (loaded_[object_id]) return;
  loaded_[object_id] = true;
  ++loaded_count_;
  if (spans_ != nullptr) {
    completed_at_[object_id] = client_.simulator().now();
  }
  obs::MetricsRegistry::current().counter("app.web.objects_loaded").inc();

  // Model client compute: dependents are discovered only after the object
  // is parsed/executed. onLoad also waits for processing of the last
  // object.
  double mean = static_cast<double>(cfg_.processing_mean);
  if (page_.objects[object_id].render_blocking) mean *= cfg_.blocking_scale;
  sim::Duration delay = 0;
  if (mean > 0) {
    const double sigma = cfg_.processing_sigma;
    const double mu = std::log(mean) - sigma * sigma / 2.0;
    delay = static_cast<sim::Duration>(processing_rng_.lognormal(mu, sigma));
  }
  client_.simulator().after(delay, [this, object_id] {
    on_object_processed(object_id);
  });
}

void PageLoadSession::on_object_processed(int object_id) {
  if (spans_ != nullptr) {
    processed_at_[object_id] = client_.simulator().now();
  }
  for (const auto& o : page_.objects) {
    if (requested_[o.id] || loaded_[o.id]) continue;
    if (std::find(o.deps.begin(), o.deps.end(), object_id) != o.deps.end()) {
      if (--deps_remaining_[o.id] == 0) {
        if (spans_ != nullptr) trigger_[o.id] = object_id;
        maybe_request(o.id);
      }
    }
  }

  ++processed_count_;
  if (processed_count_ == static_cast<int>(page_.objects.size()) &&
      !finished_) {
    finished_ = true;
    plt_ = client_.simulator().now() - started_at_;
    if (spans_ != nullptr) offer_span(object_id);
    auto& reg = obs::MetricsRegistry::current();
    reg.counter("app.web.pages_loaded").inc();
    reg.histogram("app.web.plt_ms").add(sim::to_millis(plt_));
    if (done_) done_(plt_);
  }
}

void PageLoadSession::offer_span(int last_object) {
  // Reconstruct the critical request chain backwards from the object
  // whose processing fired onLoad: each hop is the dependency whose
  // processing unlocked the next request. Chain stages are contiguous
  // (stage t0 = predecessor's processed time), so the per-component sum
  // equals the measured PLT exactly.
  std::vector<int> chain;
  for (int cur = last_object; cur >= 0; cur = trigger_[cur]) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  obs::SpanUnitBuilder b;
  b.begin("web", "plt_ms", 0, started_at_);
  sim::Time prev = started_at_;
  for (const int id : chain) {
    const auto& obj = page_.objects[id];
    // Decomposition per hop: queueing = handshake/slot wait before the
    // request went out, serialization = the fetch itself (request +
    // response over the steered channels), decode-wait = client compute.
    b.begin_stage(prev, 0, "");
    b.leg_open(static_cast<std::uint32_t>(id), prev, obj.bytes, "mixed",
               trigger_[id] < 0 ? "web:root" : "web:object",
               completed_at_[id] - requested_at_[id]);
    b.leg_charge(static_cast<std::uint32_t>(id), obs::SpanComp::kDecodeWait,
                 processed_at_[id] - completed_at_[id]);
    b.leg_close(static_cast<std::uint32_t>(id), processed_at_[id]);
    b.end_stage(processed_at_[id]);
    prev = processed_at_[id];
  }
  spans_->offer(b.finish(client_.simulator().now(), plt_,
                         sim::to_millis(plt_)));
}

PageLoadSession::TransportTotals PageLoadSession::transport_totals() const {
  TransportTotals t;
  for (const auto& o : origins_) {
    if (!o.conn) continue;
    for (const auto* s :
         {&o.conn->client_sender().stats(), &o.conn->server_sender().stats()}) {
      t.packets_sent += s->packets_sent;
      t.retransmissions += s->retransmissions;
      t.rto_count += s->rto_count;
      t.spurious_loss_marks += s->spurious_loss_marks;
    }
  }
  return t;
}

BackgroundJsonFlow::BackgroundJsonFlow(net::Node& client, net::Node& server,
                                       Kind kind, std::int64_t bytes,
                                       transport::TcpConfig cfg)
    : client_(client),
      server_(server),
      kind_(kind),
      bytes_(bytes),
      conn_(client, server,
            [&cfg] {
              cfg.annotate_app_info = true;  // message framing
              return cfg;
            }()) {
  if (kind_ == Kind::kUpload) {
    conn_.server_receiver().set_on_message(
        [this](const net::AppHeader&, sim::Time) {
          ++completed_;
          next_transfer();
        });
  } else {
    // Downloader: tiny request upstream, `bytes_` response downstream.
    conn_.server_receiver().set_on_message(
        [this](const net::AppHeader&, sim::Time) {
          conn_.server_sender().write_message(bytes_, 0);
        });
    conn_.client_receiver().set_on_message(
        [this](const net::AppHeader&, sim::Time) {
          ++completed_;
          next_transfer();
        });
  }
}

void BackgroundJsonFlow::start() {
  running_ = true;
  conn_.handshake([this] { next_transfer(); });
}

void BackgroundJsonFlow::next_transfer() {
  if (!running_) return;
  if (kind_ == Kind::kUpload) {
    conn_.client_sender().write_message(bytes_, 0);
  } else {
    conn_.client_sender().write_message(200, 0);
  }
}

}  // namespace hvc::app::web
