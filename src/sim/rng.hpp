// Deterministic random number generation.
//
// xoshiro256** seeded via SplitMix64. Self-contained (no <random> engine
// state) so that results are identical across standard-library
// implementations — libstdc++ and libc++ do not guarantee matching
// distribution output, and reproducibility across machines is a design
// goal (DESIGN.md §4).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace hvc::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given mean (= 1/lambda).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Pareto with scale xm and shape alpha (heavy-tailed object sizes).
  double pareto(double xm, double alpha) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Derive an independent child stream; used to give each component its
  /// own RNG so adding a random draw in one module never perturbs another.
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace hvc::sim
