// Declarative descriptions of heterogeneous virtual channels (§2 of the
// paper), plus factory functions for the channel types the paper surveys:
// 5G eMBB/URLLC, Wi-Fi TSN/MLO links, and WAN channels (cISP microwave,
// LEO satellite, terrestrial fiber).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "channel/link.hpp"
#include "trace/gen5g.hpp"
#include "trace/tsn.hpp"
#include "trace/trace.hpp"

namespace hvc::channel {

struct ChannelProfile {
  std::string name = "channel";
  trace::CapacityTrace capacity_down =
      trace::CapacityTrace::constant(sim::mbps(10));
  trace::CapacityTrace capacity_up =
      trace::CapacityTrace::constant(sim::mbps(10));
  sim::Duration owd = sim::milliseconds(10);  ///< one-way propagation delay
  std::int64_t queue_limit_bytes = 2 * 1024 * 1024;
  LossConfig loss;

  /// Seed for this channel's loss processes. HvcSet::add() decorrelates
  /// channels automatically; set explicitly to control it. Correlated
  /// loss across channels would silently defeat replication policies.
  std::uint64_t loss_seed = 42;

  /// Monetary cost, for the latency-vs-cost trade-off (§3.1, cISP-style).
  double cost_per_megabyte = 0.0;

  /// Advertised reliability (URLLC's 99.999%); policies treat `reliable`
  /// channels as safe for critical control packets (§3.2).
  bool reliable = false;

  [[nodiscard]] sim::Duration rtt() const { return 2 * owd; }
};

// ---- Factories for the paper's channel types ----

/// URLLC per 3GPP numbers cited in §2.1: defaults to 5 ms RTT, 2 Mbps.
ChannelProfile urllc_profile(sim::Duration rtt = sim::milliseconds(5),
                             sim::RateBps rate = sim::mbps(2));

/// Constant-rate eMBB as used in Fig. 1: 50 ms RTT, 60 Mbps.
ChannelProfile embb_constant_profile(
    sim::Duration rtt = sim::milliseconds(50),
    sim::RateBps rate = sim::mbps(60));

/// Trace-driven eMBB for a named 5G profile (Fig. 2 / Table 1 setups).
/// Downlink follows the trace; uplink is scaled down (5G uplinks are much
/// slower — ~60 Mbps vs 2 Gbps down on mmWave [32]).
ChannelProfile embb_trace_profile(trace::FiveGProfile profile,
                                  sim::Duration duration, std::uint64_t seed);

/// Wi-Fi TSN-style deterministic low-latency slice (§2.2): low rate, very
/// low jitter, no loss.
ChannelProfile wifi_tsn_profile(sim::RateBps rate = sim::mbps(4),
                                sim::Duration rtt = sim::milliseconds(4));

/// An 802.1Qbv-gated Wi-Fi pair (§2.2): {TSN slice, best-effort slice}
/// sharing one medium under the given schedule. Returned as two profiles
/// suitable for HvcSet — the TSN slice is low-latency/low-jitter/
/// reliable, and the best-effort slice visibly pays for it.
std::pair<ChannelProfile, ChannelProfile> wifi_tsn_gated_pair(
    const trace::TsnSchedule& schedule = {},
    sim::Duration rtt = sim::milliseconds(6));

/// Ordinary contended Wi-Fi with bursty (Gilbert-Elliott) loss.
ChannelProfile wifi_contended_profile(sim::RateBps rate = sim::mbps(120),
                                      sim::Duration rtt = sim::milliseconds(20),
                                      double burst_loss = 0.05);

/// cISP-style microwave WAN (§2.3): near-speed-of-light latency, low
/// bandwidth, priced per byte.
ChannelProfile cisp_profile(sim::Duration rtt = sim::milliseconds(8),
                            sim::RateBps rate = sim::mbps(10),
                            double cost_per_mb = 0.05);

/// Terrestrial fiber WAN path.
ChannelProfile fiber_profile(sim::Duration rtt = sim::milliseconds(40),
                             sim::RateBps rate = sim::mbps(500));

/// LEO satellite path: lower latency than long fiber routes, moderate
/// bandwidth, periodic handover-induced capacity dips.
ChannelProfile leo_profile(std::uint64_t seed = 7,
                           sim::Duration duration = sim::seconds(60));

}  // namespace hvc::channel
