// R11 suppression: a true hot-path allocation carrying a justified
// allow must not surface from lint_tree.
namespace fx11f {

void fx11f_hot() {
  HVC_PROF_SCOPE(obs::prof::Hook::kFixture);
  std::vector<int> once;
  // hvc-lint: allow(hotpath-alloc): fixture exercising suppression of the allocation gate
  once.reserve(4);
}

}  // namespace fx11f
