// Per-cohort streaming aggregation: the telemetry shape the population
// engine (src/pop) emits. A cohort is a named user group ("web",
// "video", "background"); each cohort tracks one or more named metrics
// (PLT, chunk latency, throughput) as StreamingMoments + LogHistogram
// pairs, plus a Jain's-fairness accumulator fed one value per *user*
// (that user's mean), so the report can show how evenly the cell treats
// its population, not just how well on average.
//
// Everything is built from the exact-integer accumulators in
// streaming.hpp, so CohortSet::merge() is order-independent and
// to_json() is byte-identical however shards were combined. Memory is
// O(cohorts × metrics × bins) — independent of user and sample counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stats/streaming.hpp"

namespace hvc::stats {

/// Jain's fairness index J = (Σx)² / (n·Σx²) over per-user values,
/// accumulated as exact fixed-point integers. J = 1 is perfectly fair;
/// J → 1/n as one user dominates. Values are clamped to >= 0 (the index
/// is defined for non-negative allocations).
class JainAccumulator {
 public:
  void add(double per_user_value);
  void merge(const JainAccumulator& o);

  [[nodiscard]] std::uint64_t users() const { return n_; }
  /// The index; 1.0 for n == 0 or an all-zero population (vacuously fair).
  [[nodiscard]] double index() const;
  [[nodiscard]] std::string to_json() const;

  bool operator==(const JainAccumulator&) const = default;

 private:
  std::uint64_t n_ = 0;
  Acc128 sum_;
  Acc128 sumsq_;
};

/// One metric's samples: exact moments + log-bin quantile sketch.
struct MetricStats {
  StreamingMoments moments;
  LogHistogram hist;

  void add(double v) {
    moments.add(v);
    hist.add(v);
  }
  void merge(const MetricStats& o) {
    moments.merge(o.moments);
    hist.merge(o.hist);
  }
  [[nodiscard]] std::string to_json() const;

  bool operator==(const MetricStats&) const = default;
};

/// One cohort: named metrics plus the per-user fairness accumulator.
struct CohortStats {
  std::map<std::string, MetricStats> metrics;
  JainAccumulator fairness;

  void add(const std::string& metric, double v) { metrics[metric].add(v); }
  void merge(const CohortStats& o);
  [[nodiscard]] std::string to_json() const;

  bool operator==(const CohortStats&) const = default;
};

/// The full per-run cohort table, keyed by cohort name.
class CohortSet {
 public:
  CohortStats& cohort(const std::string& name) { return cohorts_[name]; }
  [[nodiscard]] const std::map<std::string, CohortStats>& cohorts() const {
    return cohorts_;
  }

  void merge(const CohortSet& o);

  /// Flatten into a metrics map:
  ///   <prefix>.<cohort>.<metric>.{count,mean,stddev,min,max,
  ///                               p5,p25,p50,p75,p90,p95,p99}
  ///   <prefix>.jain.<cohort>    (only for cohorts with >= 1 user value)
  void export_metrics(const std::string& prefix,
                      std::map<std::string, double>* out) const;

  /// Canonical serialization of the exact state (shard-merge identity).
  [[nodiscard]] std::string to_json() const;

  /// Accumulator memory footprint: a function of cohort/metric counts
  /// and the fixed bin layout only — never of how many samples or users
  /// were observed.
  [[nodiscard]] std::size_t memory_bytes() const;

  bool operator==(const CohortSet&) const = default;

 private:
  std::map<std::string, CohortStats> cohorts_;
};

}  // namespace hvc::stats
