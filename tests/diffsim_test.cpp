// Differential oracle for the sim-core hot-path replacements.
//
// The calendar queue (sim/event_queue.hpp) and the packet pool
// (net/pool.hpp) are performance substitutions that must be behaviorally
// invisible: HVC_REFERENCE_QUEUE selects the original binary heap,
// HVC_PACKET_POOL=0 the plain tracking allocator, and this suite proves
// that every combination of those switches produces byte-identical
// output.
//
//  * ScenarioDiffTest runs every scenario file under scenarios/ — grid
//    sweeps and single-run specs alike — once per configuration and
//    byte-compares the aggregated results.jsonl plus every artifact the
//    runs wrote (telemetry, steering audit, spans).
//  * FaultFuzzDiffTest does the same for 50 seeded-random fault plans
//    (the FaultFuzz corpus shape from property_test.cpp), comparing the
//    full steering audit log and the delivered packet-id sequence.
//
// A failure here means the optimized structures changed simulation
// behavior, not just speed — the one thing they must never do.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "channel/profile.hpp"
#include "core/scenario.hpp"
#include "exp/results.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "net/node.hpp"
#include "net/pool.hpp"
#include "obs/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace hvc {
namespace {

namespace fs = std::filesystem;

struct SimConfig {
  const char* tag;
  bool reference_queue;
  bool packet_pool;
};

// The full switch matrix: the production default first (it is the
// baseline the others are compared against), then each switch flipped
// alone, then both.
constexpr SimConfig kConfigs[] = {
    {"calendar-pool", false, true},
    {"heap-pool", true, true},
    {"calendar-heapalloc", false, false},
    {"heap-heapalloc", true, false},
};

// RAII: force one (queue, pool) configuration for the scope, restoring
// the environment-driven defaults on exit. Both overrides are sampled
// at Simulator construction / allocation time, so flipping them between
// runs is exactly the supported use.
class ScopedSimConfig {
 public:
  explicit ScopedSimConfig(const SimConfig& cfg) {
    sim::set_reference_queue_for_test(cfg.reference_queue);
    net::set_packet_pool_for_test(cfg.packet_pool);
  }
  ~ScopedSimConfig() {
    sim::clear_reference_queue_override_for_test();
    net::clear_packet_pool_override_for_test();
  }
  ScopedSimConfig(const ScopedSimConfig&) = delete;
  ScopedSimConfig& operator=(const ScopedSimConfig&) = delete;
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Byte equality with a failure message that points at the first
/// divergent offset instead of dumping both files.
void expect_bytes_equal(const std::string& label, const std::string& want,
                        const std::string& got) {
  if (want == got) return;
  std::size_t i = 0;
  while (i < want.size() && i < got.size() && want[i] == got[i]) ++i;
  const auto excerpt = [](const std::string& s, std::size_t at) {
    const std::size_t from = at < 60 ? 0 : at - 60;
    return s.substr(from, 120);
  };
  ADD_FAILURE() << label << ": diverges at byte " << i << " (sizes "
                << want.size() << " vs " << got.size() << ")\n  baseline: ..."
                << excerpt(want, i) << "...\n  got:      ..."
                << excerpt(got, i) << "...";
}

/// Every file the run wrote under `dir`, keyed by file name. Artifact
/// names embed only the run index (never the config), so keys line up
/// across config directories.
std::map<std::string, std::string> collect_artifacts(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& ent : fs::directory_iterator(dir)) {
    files[ent.path().filename().string()] = read_file(ent.path());
  }
  return files;
}

struct ScenarioOutput {
  std::string results_jsonl;
  std::map<std::string, std::string> artifacts;
};

/// Run one scenario file (sweep or single spec) under `cfg`, writing
/// artifacts into `out_dir`, and capture everything comparable.
ScenarioOutput run_scenario_file(const std::string& path,
                                 const SimConfig& cfg,
                                 const fs::path& out_dir) {
  ScopedSimConfig guard(cfg);
  fs::create_directories(out_dir);
  const std::string prefix = (out_dir / "run").string();

  std::vector<exp::RunResult> results;
  bool is_sweep = true;
  exp::SweepSpec sweep;
  try {
    sweep = exp::SweepSpec::from_file(path);
  } catch (const exp::SpecError&) {
    is_sweep = false;  // plain single-scenario spec, not a sweep grid
  }
  if (is_sweep) {
    results = exp::run_sweep(sweep, /*jobs=*/4, nullptr, prefix);
  } else {
    exp::RunOptions opts;
    opts.out_prefix = prefix;
    results.push_back(
        exp::run_scenario(exp::ScenarioSpec::from_file(path), opts));
  }
  for (const auto& r : results) {
    EXPECT_EQ(r.error, "")
        << path << " run " << r.index << " failed under " << cfg.tag;
  }
  ScenarioOutput out;
  out.results_jsonl = exp::to_jsonl(results);
  out.artifacts = collect_artifacts(out_dir);
  return out;
}

class ScenarioDiffTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioDiffTest, ByteIdenticalAcrossQueueAndPoolConfigs) {
  const std::string path =
      std::string(HVC_SCENARIO_DIR) + "/" + GetParam();
  const fs::path root =
      fs::path(::testing::TempDir()) / ("diffsim_" + GetParam());
  fs::remove_all(root);

  ScenarioOutput baseline;
  for (std::size_t i = 0; i < std::size(kConfigs); ++i) {
    const SimConfig& cfg = kConfigs[i];
    ScenarioOutput got = run_scenario_file(path, cfg, root / cfg.tag);
    if (i == 0) {
      EXPECT_FALSE(got.results_jsonl.empty()) << path;
      baseline = std::move(got);
      continue;
    }
    expect_bytes_equal(GetParam() + " results.jsonl under " + cfg.tag,
                       baseline.results_jsonl, got.results_jsonl);
    // Same artifact files, same bytes.
    auto names = [](const std::map<std::string, std::string>& m) {
      std::vector<std::string> out;
      for (const auto& [k, v] : m) out.push_back(k);
      return out;
    };
    ASSERT_EQ(names(got.artifacts), names(baseline.artifacts))
        << GetParam() << ": artifact set differs under " << cfg.tag;
    for (const auto& [name, bytes] : baseline.artifacts) {
      expect_bytes_equal(GetParam() + " " + name + " under " + cfg.tag,
                         bytes, got.artifacts.at(name));
    }
  }
  fs::remove_all(root);
}

std::vector<std::string> scenario_files() {
  std::vector<std::string> names;
  for (const auto& ent : fs::directory_iterator(HVC_SCENARIO_DIR)) {
    if (ent.path().extension() == ".json") {
      names.push_back(ent.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioDiffTest, ::testing::ValuesIn(scenario_files()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
      }
      return name;
    });

// ---- Fuzzed fault-plan corpus -------------------------------------------
//
// Scenario files exercise the steady-state paths; randomized fault plans
// (outages, rate cliffs, GE bursts, delay spikes, flaps) drive the queue
// through cancellations, zero-delay re-arms, and bursty same-instant
// schedules. Every seed's full steering audit log and delivered packet
// sequence must be identical under all four configurations.

struct FuzzOutput {
  std::string audit_jsonl;
  std::vector<std::uint64_t> delivered;
};

FuzzOutput run_fuzzed_plan(std::uint64_t seed, const SimConfig& cfg) {
  ScopedSimConfig guard(cfg);
  net::IdScope ids;  // packet/flow ids appear in the audit log: restart at 1
  obs::SteeringAuditLog audit;
  audit.enable();
  FuzzOutput out;
  {
    static constexpr const char* kPolicies[] = {
        "min-delay", "dchannel", "round-robin", "weighted", "redundant"};
    const char* policy = kPolicies[seed % std::size(kPolicies)];
    sim::Simulator s;
    net::TwoHostNetwork net(s, core::make_policy(policy),
                            core::make_policy(policy));
    net.add_channel(channel::embb_constant_profile());
    net.add_channel(channel::urllc_profile());
    net.finalize();
    const auto plan = fault::FaultPlan::fuzzed(seed, 2, sim::seconds(3));
    fault::FaultInjector inj(s, net.channels(), plan);

    const auto flow = net::next_flow_id();
    net.server().register_flow(flow, [&](net::PacketPtr p) {
      out.delivered.push_back(p->id);
    });
    sim::Rng rng(seed ^ 0xf00d);
    constexpr int kPackets = 1200;
    for (int i = 0; i < kPackets; ++i) {
      s.at(static_cast<sim::Time>(rng.uniform(0, 3e9)), [&] {
        auto p = net::make_packet();
        p->flow = flow;
        p->type = net::PacketType::kData;
        p->size_bytes = rng.uniform_int(41, 1500);
        net.client().send(std::move(p));
      });
    }
    s.run();
  }
  audit.disable();
  out.audit_jsonl = audit.to_jsonl();
  return out;
}

class FaultFuzzDiffTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzzDiffTest, AuditAndDeliveryIdenticalAcrossConfigs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const FuzzOutput baseline = run_fuzzed_plan(seed, kConfigs[0]);
  EXPECT_FALSE(baseline.audit_jsonl.empty()) << "seed " << seed;
  EXPECT_FALSE(baseline.delivered.empty()) << "seed " << seed;
  for (std::size_t i = 1; i < std::size(kConfigs); ++i) {
    const FuzzOutput got = run_fuzzed_plan(seed, kConfigs[i]);
    expect_bytes_equal("audit log, seed " + std::to_string(seed) +
                           " under " + kConfigs[i].tag,
                       baseline.audit_jsonl, got.audit_jsonl);
    EXPECT_EQ(got.delivered, baseline.delivered)
        << "delivered packet sequence, seed " << seed << " under "
        << kConfigs[i].tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzzDiffTest, ::testing::Range(0, 50));

}  // namespace
}  // namespace hvc
