// MPQUIC-style multipath message transport — the §3.2/§4 design made
// concrete: a transport that *knows the individual virtual channels
// exist*, steers its own packets (via Packet::requested_channel +
// PinnedChannelPolicy), keeps per-path RTT/congestion state, and accepts
// application intents per stream.
//
// Mechanisms from the paper it implements:
//   * per-segment path scheduling (not per-flow like Socket Intents);
//   * ACKs returned on the lowest-latency path regardless of the data
//     path (§4: "sends ACKs from a high bandwidth path subflow to a low
//     latency path");
//   * tail-segment acceleration: the last bytes of a message may ride the
//     fast path to cut head-of-line blocking (§3.2);
//   * priority pinning: streams whose intents mark them important keep
//     their messages on the fast path (§3.3).
//
// Reliability is QUIC-like: monotonic packet numbers per connection,
// packet-threshold + time-threshold loss detection, data re-enqueued on
// loss. Congestion control is per path (one CCA instance each), so a slow
// path cannot starve a fast one.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "quic/intents.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "transport/cca.hpp"
#include "transport/rtt.hpp"

namespace hvc::quic {

enum class SchedulerKind : std::uint8_t {
  kMinRtt,    ///< classic MPQUIC: fill the lowest-RTT path first
  kEcf,       ///< ECF [30]: earliest-completion-first across paths
  kHvcAware,  ///< §3.2: intents-, size- and channel-aware
};

struct MpConfig {
  SchedulerKind scheduler = SchedulerKind::kHvcAware;
  /// Return ACKs on the lowest-latency path.
  bool ack_on_fast_path = true;
  /// Accelerate the final bytes of any message once fewer than this many
  /// remain (0 disables). Only the HVC-aware scheduler uses it.
  std::int64_t tail_bytes = 4000;
  /// Streams with priority <= this are pinned to the fast path.
  std::uint8_t fast_path_max_priority = 1;
  /// Per-path congestion controller ("cubic", "bbr", ...).
  std::string cca = "cubic";
  /// QUIC loss detection: packet reordering threshold.
  int packet_threshold = 3;
  double time_threshold = 1.25;  ///< x max(srtt, latest_rtt)
};

struct MpStats {
  std::int64_t packets_sent = 0;
  std::int64_t retransmitted_chunks = 0;
  std::vector<std::int64_t> packets_per_path;
  sim::Summary message_latency_ms;  ///< per completed message (receiver)
};

class MpConnection;

/// One endpoint of a multipath connection. Create one at each node with
/// mirrored flow ids (see MpConnection::make_pair).
class MpEndpoint {
 public:
  MpEndpoint(net::Node& node, net::FlowId flow, std::size_t num_paths,
             MpConfig cfg);
  ~MpEndpoint();

  MpEndpoint(const MpEndpoint&) = delete;
  MpEndpoint& operator=(const MpEndpoint&) = delete;

  /// Declare a stream with intents. Returns the stream id.
  std::uint64_t open_stream(StreamIntents intents);

  /// Queue a message on a stream. Returns message id.
  std::uint64_t send_message(std::uint64_t stream, std::int64_t bytes);

  /// Completed inbound message: (stream, message, created→completed ms).
  struct MessageEvent {
    std::uint64_t stream = 0;
    std::uint64_t message = 0;
    std::uint8_t priority = 0;
    sim::Time sent_at = 0;
    sim::Time completed = 0;
  };
  void set_on_message(std::function<void(const MessageEvent&)> cb) {
    on_message_ = std::move(cb);
  }

  [[nodiscard]] const MpStats& stats() const { return stats_; }
  [[nodiscard]] sim::Duration path_srtt(std::size_t path) const;
  [[nodiscard]] bool idle() const;

 private:
  struct Chunk {  ///< a message fragment awaiting transmission
    std::uint64_t stream;
    std::uint64_t message;
    std::int64_t offset;
    std::int64_t len;
    std::int64_t message_bytes;
    std::uint8_t priority;
    TrafficClass traffic;
    sim::Time created_at;
  };

  struct SentPacket {
    Chunk chunk;
    sim::Time sent_at = 0;
    std::size_t path = 0;
    std::uint64_t path_seq = 0;  ///< per-path sequence (loss threshold)
    bool acked = false;
    bool lost = false;
  };

  struct Path {
    transport::CcaPtr cca;
    transport::RttEstimator rtt;
    std::int64_t in_flight = 0;
    std::int64_t round_trips = 0;
    std::uint64_t round_end_pkt = 0;
    std::uint64_t next_path_seq = 1;      ///< per-path number space
    std::uint64_t largest_acked_seq = 0;  ///< largest acked per-path seq
    // Delivery-rate estimate (bulk scheduling signal).
    std::int64_t epoch_bytes = 0;
    sim::Time epoch_start = 0;
    double rate_bps = 0.0;  ///< EWMA of acked bytes per epoch
  };

  struct Reassembly {
    std::set<std::uint32_t> offsets;  ///< unique chunk offsets received
    std::int64_t received = 0;
    std::int64_t total = 0;
    std::uint8_t priority = 0;
    sim::Time sent_at = 0;
  };

  void on_packet(const net::PacketPtr& p);
  void on_data(const net::PacketPtr& p);
  void on_ack(const net::PacketPtr& p);
  void try_send();
  std::size_t pick_path(const Chunk& chunk);
  void send_chunk(Chunk chunk, std::size_t path);
  void send_ack(std::uint64_t pkt_number, std::uint8_t channel,
                sim::Time ts_echo);
  void detect_losses();
  void arm_loss_timer();
  [[nodiscard]] std::size_t fastest_path() const;
  [[nodiscard]] std::size_t widest_path() const;

  net::Node& node_;
  sim::Simulator& sim_;
  net::FlowId flow_;
  MpConfig cfg_;
  std::vector<Path> paths_;

  std::uint64_t next_stream_ = 1;
  std::uint64_t next_message_ = 1;
  std::uint64_t next_packet_number_ = 1;
  std::uint64_t largest_acked_ = 0;
  std::map<std::uint64_t, StreamIntents> streams_;
  std::deque<Chunk> send_queue_;
  std::map<std::uint64_t, SentPacket> unacked_;  ///< by packet number

  std::map<std::uint64_t, Reassembly> reassembly_;  ///< by message id
  sim::Timer loss_timer_;

  std::function<void(const MessageEvent&)> on_message_;
  MpStats stats_;

  // Registry mirrors (aggregated across endpoints): transport.quic.*.
  obs::Counter* m_packets_sent_ = nullptr;
  obs::Counter* m_retx_chunks_ = nullptr;
  obs::Histogram* m_msg_latency_ = nullptr;
};

/// Client/server endpoint pair over a TwoHostNetwork whose shims must use
/// PinnedChannelPolicy (see make_pinned_network below).
struct MpConnection {
  std::unique_ptr<MpEndpoint> client;
  std::unique_ptr<MpEndpoint> server;

  static MpConnection make_pair(net::Node& client_node,
                                net::Node& server_node,
                                std::size_t num_paths, MpConfig cfg);
};

}  // namespace hvc::quic
