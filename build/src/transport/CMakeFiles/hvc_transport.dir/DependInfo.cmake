
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/bbr.cpp" "src/transport/CMakeFiles/hvc_transport.dir/bbr.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/bbr.cpp.o.d"
  "/root/repo/src/transport/cca_factory.cpp" "src/transport/CMakeFiles/hvc_transport.dir/cca_factory.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/cca_factory.cpp.o.d"
  "/root/repo/src/transport/connection.cpp" "src/transport/CMakeFiles/hvc_transport.dir/connection.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/connection.cpp.o.d"
  "/root/repo/src/transport/cubic.cpp" "src/transport/CMakeFiles/hvc_transport.dir/cubic.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/cubic.cpp.o.d"
  "/root/repo/src/transport/datagram.cpp" "src/transport/CMakeFiles/hvc_transport.dir/datagram.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/datagram.cpp.o.d"
  "/root/repo/src/transport/hvc_cc.cpp" "src/transport/CMakeFiles/hvc_transport.dir/hvc_cc.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/hvc_cc.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/hvc_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/tcp.cpp.o.d"
  "/root/repo/src/transport/vegas.cpp" "src/transport/CMakeFiles/hvc_transport.dir/vegas.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/vegas.cpp.o.d"
  "/root/repo/src/transport/vivace.cpp" "src/transport/CMakeFiles/hvc_transport.dir/vivace.cpp.o" "gcc" "src/transport/CMakeFiles/hvc_transport.dir/vivace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/steer/CMakeFiles/hvc_steer.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/hvc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hvc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
