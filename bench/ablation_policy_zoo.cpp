// Ablation: the full steering-policy zoo on the Fig. 2 video workload
// (Lowband driving). Shows why heterogeneity-blind schedulers
// (round-robin/weighted — the "MPTCP view") and greedy min-delay fall
// between eMBB-only and the cross-layer policy.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"
#include "trace/gen5g.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_policy_zoo");
  obs.set_seed(42);
  bench::print_header(
      "Ablation: steering-policy zoo on SVC video (Lowband driving, 60 s)");
  bench::print_row({"policy", "lat p50", "lat p95", "lat max", "ssim mean",
                    "frames"});

  for (const char* policy :
       {"embb-only", "urllc-only", "round-robin", "weighted", "min-delay",
        "flow-binding", "dchannel", "msg-priority", "redundant"}) {
    auto cfg = core::ScenarioConfig::traced(
        trace::FiveGProfile::kLowbandDriving, policy, sim::seconds(90), 42);
    const auto r = core::run_video(cfg, {}, {}, sim::seconds(60));
    bench::print_row({policy, bench::fmt(r.stats.latency_ms.percentile(50)),
                      bench::fmt(r.stats.latency_ms.percentile(95)),
                      bench::fmt(r.stats.latency_ms.max()),
                      bench::fmt(r.stats.ssim.mean(), 3),
                      std::to_string(r.stats.frames_decoded)});
  }
  std::printf(
      "\nExpected shape: urllc-only starves quality (2 Mbps < 12 Mbps\n"
      "offered); round-robin/weighted inherit eMBB's outage tail; only\n"
      "the priority-aware policy gets both low latency and high quality.\n");
  return 0;
}
