// Tests for the determinism & simulation-safety static-analysis pass
// (src/lint). Golden fixture files under tests/lint_fixtures/ seed one
// violation per rule; further cases cover the suppression grammar,
// severities, JSON output, and — the point of the whole exercise — that
// the real source tree lints clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "obs/json.hpp"

namespace hvc {
namespace {

using lint::Finding;
using lint::Options;
using lint::Severity;

std::string fixture(const std::string& name) {
  return std::string(HVC_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::vector<Finding> of_rule(const std::vector<Finding>& findings,
                             const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(LintRules, R1WallclockFiresOnceAtSeededLine) {
  const auto all = lint::lint_file(fixture("r1_wallclock.cpp"));
  const auto hits = of_rule(all, "wallclock");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 8);
  EXPECT_EQ(hits[0].severity, Severity::kError);
  EXPECT_EQ(all.size(), hits.size()) << "no other rule may fire";
}

TEST(LintRules, R2UnorderedContainerFiresOnDeclarationNotInclude) {
  const auto all = lint::lint_file(fixture("r2_unordered.cpp"));
  const auto hits = of_rule(all, "unordered-container");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 9);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(LintRules, R3SteerMissingReasonFiresOnBareExitPathOnly) {
  const auto all = lint::lint_file(fixture("r3_steer.cpp"));
  const auto hits = of_rule(all, "steer-missing-reason");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 18);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(LintRules, R4RawNewDeleteFiresButDeletedFunctionsDoNot) {
  const auto all = lint::lint_file(fixture("r4_new_delete.cpp"));
  const auto hits = of_rule(all, "raw-new-delete");
  ASSERT_EQ(hits.size(), 2u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 8);
  EXPECT_EQ(hits[1].line, 9);
}

TEST(LintRules, R5FloatEqualityFiresOnExactCompareOnly) {
  const auto all = lint::lint_file(fixture("r5_float_eq.cpp"));
  const auto hits = of_rule(all, "float-equality");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 8);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(LintRules, R6HeaderSelfSufficiencyNeedsCompileCheck) {
  // Without the compile check the header passes (nothing else wrong).
  EXPECT_TRUE(lint::lint_file(fixture("r6_header.hpp")).empty());

  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no c++ compiler on PATH";
  }
  Options opts;
  opts.compile_check = true;
  const auto all = lint::lint_file(fixture("r6_header.hpp"), opts);
  const auto hits = of_rule(all, "header-not-self-sufficient");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(LintRules, R7ClockIslandFilesSkipWallclockEntirely) {
  const std::string src =
      "#include <ctime>\n"
      "long t() { timespec ts{}; clock_gettime(0, &ts); return ts.tv_sec; }\n";
  // Outside the island the same source is an R1 error...
  EXPECT_FALSE(lint::lint_source("src/sim/x.cpp", src).empty());
  // ...inside it (prof implementation, bench harness) it is legal.
  EXPECT_TRUE(lint::lint_source("src/obs/prof.cpp", src).empty());
  EXPECT_TRUE(lint::lint_source("src/obs/prof.hpp", src).empty());
  EXPECT_TRUE(lint::lint_source("bench/bench_util.hpp", src).empty());
  EXPECT_TRUE(
      lint::lint_source("/abs/repo/bench/hotpath/harness.cpp", src).empty());
}

TEST(LintRules, R7AllowWallclockOutsideIslandIsAnError) {
  const std::string src =
      "// hvc-lint: allow(wallclock): stderr-only progress display that\n"
      "// never reaches a determinism-checked artifact.\n"
      "int x;\n";
  const auto all = lint::lint_source("tools/hvc_sweep.cpp", src);
  const auto hits = of_rule(all, "clock-island");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[0].severity, Severity::kError);

  // allow-file(wallclock) is equally banned outside the island.
  const std::string file_scope =
      "// hvc-lint: allow-file(wallclock): whole-file waiver attempt\n"
      "// outside the island, must not stand.\n"
      "int y;\n";
  EXPECT_EQ(
      of_rule(lint::lint_source("src/exp/runner.cpp", file_scope),
              "clock-island")
          .size(),
      1u);

  // Inside the island the (redundant) allow is tolerated, not an error.
  EXPECT_TRUE(lint::lint_source("bench/legacy.cpp", src).empty());
}

TEST(LintRules, R7CannotBeSuppressedByItsOwnAllow) {
  // clock-island findings ride the unsuppressible directive channel: an
  // allow(clock-island) wrapper around an allow(wallclock) changes
  // nothing.
  const std::string src =
      "// hvc-lint: allow(clock-island): trying to shield the wallclock\n"
      "// allow below from R7; this must not work.\n"
      "// hvc-lint: allow(wallclock): stderr-only progress display that\n"
      "// never reaches any determinism-checked artifact.\n"
      "int x;\n";
  const auto all = lint::lint_source("src/sim/y.cpp", src);
  EXPECT_EQ(of_rule(all, "clock-island").size(), 1u) << lint::to_text(all);
}

TEST(LintRules, R8StdHashFiresOnQualifiedUseOnly) {
  const auto all = lint::lint_file(fixture("r8_std_hash.cpp"));
  const auto hits = of_rule(all, "std-hash");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 11);
  EXPECT_EQ(hits[0].severity, Severity::kError);
  EXPECT_EQ(all.size(), hits.size()) << "no other rule may fire";
}

TEST(LintRules, R8ToleratesWhitespaceAndIsSuppressible) {
  // `std :: hash` is still std::hash.
  const std::string spaced =
      "#include <functional>\n"
      "unsigned long f() { return std :: hash<int>{}(1); }\n";
  EXPECT_EQ(of_rule(lint::lint_source("x.cpp", spaced), "std-hash").size(),
            1u);

  // A justified allow works like for any word-scanned rule.
  const std::string allowed =
      "// hvc-lint: allow(std-hash): interop shim hashing host-local map\n"
      "// keys that never reach an exported artifact.\n"
      "unsigned long g() { return std::hash<int>{}(1); }\n";
  EXPECT_TRUE(lint::lint_source("x.cpp", allowed).empty());
}

TEST(LintSuppression, JustifiedAllowsSilenceBothForms) {
  const auto all = lint::lint_file(fixture("suppressed.cpp"));
  EXPECT_TRUE(all.empty()) << lint::to_text(all);
}

TEST(LintSuppression, UnjustifiedAndUnknownAllowsAreFindings) {
  const auto all = lint::lint_file(fixture("bad_allow.cpp"));
  const auto missing = of_rule(all, "allow-needs-justification");
  ASSERT_EQ(missing.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(missing[0].line, 6);
  EXPECT_EQ(missing[0].severity, Severity::kError);

  const auto unknown = of_rule(all, "allow-unknown-rule");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].line, 9);

  // A broken directive must not silence the violation under it.
  EXPECT_EQ(of_rule(all, "unordered-container").size(), 2u);
}

TEST(LintSuppression, AllowFileSilencesWholeFile) {
  const std::string src =
      "// hvc-lint: allow-file(float-equality): fixture-wide waiver for\n"
      "// this synthetic test input.\n"
      "bool a(double x) { return x == 1.0; }\n"
      "bool b(double x) { return x != 2.5; }\n";
  EXPECT_TRUE(lint::lint_source("mem.cpp", src).empty());
}

TEST(LintOutput, TextFormatIsFileLineSeverityRule) {
  const auto all = lint::lint_file(fixture("r5_float_eq.cpp"));
  ASSERT_EQ(all.size(), 1u);
  const std::string text = lint::to_text(all);
  EXPECT_NE(text.find(":8: warning: [float-equality]"), std::string::npos)
      << text;
}

TEST(LintOutput, JsonIsValidAndCountsSeverities) {
  std::vector<Finding> findings = {
      {"a.cpp", 1, "wallclock", Severity::kError, "msg \"quoted\"", "", 0},
      {"b.cpp", 2, "float-equality", Severity::kWarning, "msg", "", 0},
      {"", 0, "compile-check-skipped", Severity::kNote, "msg", "", 0},
  };
  const std::string json = lint::to_json(findings);
  obs::json::Value v;
  ASSERT_TRUE(obs::json::parse(json, &v)) << json;
  EXPECT_EQ(v.number_or("errors", -1), 1);
  EXPECT_EQ(v.number_or("warnings", -1), 1);
  EXPECT_EQ(v.number_or("notes", -1), 1);
  ASSERT_TRUE(v.find("findings") != nullptr);
  EXPECT_EQ(v.find("findings")->array.size(), 3u);
}

TEST(LintOutput, HasFailureIgnoresNotes) {
  std::vector<Finding> notes = {
      {"", 0, "compile-check-skipped", Severity::kNote, "msg", "", 0}};
  EXPECT_FALSE(lint::has_failure(notes));
  notes.push_back({"a.cpp", 1, "wallclock", Severity::kError, "msg", "", 0});
  EXPECT_TRUE(lint::has_failure(notes));
}

TEST(LintOutput, RuleTableKnowsEveryRule) {
  for (const char* name :
       {"wallclock", "unordered-container", "steer-missing-reason",
        "raw-new-delete", "float-equality", "header-not-self-sufficient",
        "clock-island", "std-hash"}) {
    EXPECT_TRUE(lint::known_rule(name)) << name;
  }
  EXPECT_FALSE(lint::known_rule("no-such-rule"));
}

TEST(LintTree, FindingsAreSortedByPathThenLine) {
  const auto all = lint::lint_tree(
      {std::string(HVC_SOURCE_DIR) + "/tests/lint_fixtures"});
  ASSERT_GE(all.size(), 2u);
  const bool sorted = std::is_sorted(
      all.begin(), all.end(), [](const Finding& a, const Finding& b) {
        return a.file != b.file ? a.file < b.file : a.line < b.line;
      });
  EXPECT_TRUE(sorted) << lint::to_text(all);
}

// The acceptance gate: the real source tree is clean, meaning every
// remaining unordered container / clock use carries a justified allow.
// (The R6 compile check is exercised separately above and by
// scripts/check.sh lint; skipping it here keeps the suite fast.)
TEST(LintTree, RealSourceTreeLintsClean) {
  const std::string root = HVC_SOURCE_DIR;
  const auto all = lint::lint_tree(
      {root + "/src", root + "/tools", root + "/bench", root + "/examples"});
  EXPECT_TRUE(all.empty()) << lint::to_text(all);
}

}  // namespace
}  // namespace hvc
