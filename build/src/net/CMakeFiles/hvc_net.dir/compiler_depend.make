# Empty compiler generated dependencies file for hvc_net.
# This may be replaced when dependencies are built.
