// TCP CUBIC [28]: loss-based congestion control. Window growth is a cubic
// function of time since the last loss, anchored at the pre-loss window.
// CUBIC ignores delay entirely, which is why it is the one CCA in Fig. 1a
// that still fills the high-bandwidth channel under packet steering.
#pragma once

#include "transport/cca.hpp"

namespace hvc::transport {

struct CubicConfig {
  double c = 0.4;                  ///< cubic scaling constant (MSS units)
  double beta = 0.7;               ///< multiplicative decrease factor
  bool fast_convergence = true;
  bool hystart = true;  ///< delay-based slow-start exit
  /// No HyStart exit below this window (Linux's hystart_low_window):
  /// tiny-window delay signals are too noisy to act on.
  std::int64_t hystart_low_window = 16 * kMss;
  std::int64_t initial_cwnd = 10 * kMss;
  std::int64_t min_cwnd = 2 * kMss;
};

class Cubic final : public CcAlgorithm {
 public:
  explicit Cubic(CubicConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "cubic"; }
  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_spurious_loss(sim::Time now) override;
  [[nodiscard]] std::int64_t cwnd_bytes() const override { return cwnd_; }

  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  [[nodiscard]] double cubic_target(sim::Time now) const;

  CubicConfig cfg_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_;
  double w_max_mss_ = 0.0;       ///< window before last reduction (MSS)
  sim::Time epoch_start_ = -1;   ///< -1: no epoch yet
  double k_ = 0.0;               ///< time offset where cubic crosses w_max
  sim::Duration last_srtt_ = sim::milliseconds(100);
  sim::Duration min_rtt_ = 0;
  sim::Time last_loss_ = -1;
  // Undo state (restore on spurious-loss evidence).
  std::int64_t prior_cwnd_ = 0;
  std::int64_t prior_ssthresh_ = 0;
  double prior_w_max_mss_ = 0.0;
  // HyStart round tracking.
  std::int64_t hystart_round_ = -1;
  sim::Duration cur_round_min_ = 0;
  sim::Duration prev_round_min_ = 0;
};

}  // namespace hvc::transport
