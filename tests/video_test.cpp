// Tests for the SVC video application model: encoder statistics, the
// SSIM map, the decode-wait rule, and inter-frame dependencies.
#include <gtest/gtest.h>

#include "app/video/session.hpp"
#include "app/video/svc.hpp"
#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"
#include "steer/priority.hpp"

namespace hvc::app::video {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(SvcEncoder, LayerSizesMatchTargetBitrates) {
  SvcEncoder enc({});
  sim::Summary l0, l1, l2;
  sim::Time t = 0;
  for (int i = 0; i < 900; ++i) {  // 30 s of frames
    const auto f = enc.next_frame(t);
    t += enc.frame_interval();
    ASSERT_EQ(f.layer_bytes.size(), 3u);
    l0.add(static_cast<double>(f.layer_bytes[0]));
    l1.add(static_cast<double>(f.layer_bytes[1]));
    l2.add(static_cast<double>(f.layer_bytes[2]));
  }
  // Mean bytes/frame ~ bitrate / 8 / fps, inflated slightly by keyframes.
  EXPECT_NEAR(l0.mean(), 400e3 / 8 / 30, 400e3 / 8 / 30 * 0.25);
  EXPECT_NEAR(l1.mean(), 4100e3 / 8 / 30, 4100e3 / 8 / 30 * 0.25);
  EXPECT_NEAR(l2.mean(), 7500e3 / 8 / 30, 7500e3 / 8 / 30 * 0.25);
}

TEST(SvcEncoder, KeyframesAreLargerAndPeriodic) {
  SvcEncoder enc({});
  std::vector<EncodedFrame> frames;
  for (int i = 0; i < 61; ++i) frames.push_back(enc.next_frame(i));
  EXPECT_TRUE(frames[0].keyframe);
  EXPECT_TRUE(frames[30].keyframe);
  EXPECT_TRUE(frames[60].keyframe);
  EXPECT_FALSE(frames[1].keyframe);
  // Keyframes carry more bytes on average.
  double key = 0, nonkey = 0;
  int nk = 0, nn = 0;
  for (const auto& f : frames) {
    const double total = static_cast<double>(f.layer_bytes[0] +
                                             f.layer_bytes[1] +
                                             f.layer_bytes[2]);
    if (f.keyframe) {
      key += total;
      ++nk;
    } else {
      nonkey += total;
      ++nn;
    }
  }
  EXPECT_GT(key / nk, 1.5 * nonkey / nn);
}

TEST(SvcEncoder, DeterministicInSeed) {
  SvcEncoder a({});
  SvcEncoder b({});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_frame(i).layer_bytes, b.next_frame(i).layer_bytes);
  }
}

TEST(SsimModel, MonotoneInLayers) {
  EXPECT_LT(ssim_for_layers(0), ssim_for_layers(1));
  EXPECT_LT(ssim_for_layers(1), ssim_for_layers(2));
  EXPECT_LT(ssim_for_layers(2), ssim_for_layers(3));
  EXPECT_LE(ssim_for_layers(3), 1.0);
}

TEST(SsimModel, NoiseStaysInBounds) {
  sim::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = ssim_for_layers(3, rng);
    EXPECT_GE(v, 0.9);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FrameLayerId, RoundTrips) {
  for (int frame : {0, 1, 7, 1000, 123456}) {
    for (int layer : {0, 1, 2}) {
      const auto id = frame_layer_id(frame, layer);
      EXPECT_EQ(id_frame(id), frame);
      EXPECT_EQ(id_layer(id), layer);
    }
  }
}

// ---- Full sessions over emulated channels ----

struct VideoHarness {
  sim::Simulator s;
  std::unique_ptr<net::TwoHostNetwork> net;

  explicit VideoHarness(std::unique_ptr<steer::SteeringPolicy> policy,
                        channel::ChannelProfile embb =
                            channel::embb_constant_profile()) {
    net = std::make_unique<net::TwoHostNetwork>(
        s, std::make_unique<steer::SingleChannelPolicy>(0),
        std::move(policy));
    net->add_channel(std::move(embb));
    net->add_channel(channel::urllc_profile());
    net->finalize();
  }
};

TEST(VideoSession, AllFramesDecodeOnHealthyChannel) {
  VideoHarness h(std::make_unique<steer::SingleChannelPolicy>(0));
  const auto flow = net::next_flow_id();
  VideoSender tx(h.net->server(), flow, {});
  VideoReceiver rx(h.net->client(), flow, tx, {});
  tx.start(seconds(5));
  h.s.run_until(seconds(8));
  EXPECT_EQ(rx.stats().frames_decoded, tx.frames_sent());
  // Healthy 60 Mbps channel: nearly everything decodes at full quality.
  EXPECT_GT(rx.stats().decoded_at_layer[3],
            rx.stats().frames_decoded * 8 / 10);
  EXPECT_GT(rx.stats().ssim.mean(), 0.95);
}

TEST(VideoSession, DecodeWaitRuleBoundsLatencyFloor) {
  VideoHarness h(std::make_unique<steer::SingleChannelPolicy>(0));
  const auto flow = net::next_flow_id();
  VideoSender tx(h.net->server(), flow, {});
  VideoReceiver rx(h.net->client(), flow, tx, {});
  tx.start(seconds(3));
  h.s.run_until(seconds(6));
  // Latency ~ decode wait (60 ms) + one-way delay: the receiver always
  // waits for higher layers or two future layer-0s.
  EXPECT_GT(rx.stats().latency_ms.percentile(50), 25.0);
  EXPECT_LT(rx.stats().latency_ms.percentile(95), 120.0);
}

TEST(VideoSession, LookaheadDecodesEarlierThanFullWait) {
  // With lookahead 2 at 30 fps, two future layer-0s arrive ~66 ms after
  // capture; with a 200 ms wait and no early trigger the latency is higher.
  VideoReceiverConfig slow;
  slow.decode_wait = milliseconds(200);
  slow.lookahead_frames = 1000;  // effectively disabled

  VideoHarness h1(std::make_unique<steer::SingleChannelPolicy>(0));
  const auto f1 = net::next_flow_id();
  VideoSender tx1(h1.net->server(), f1, {});
  VideoReceiver rx1(h1.net->client(), f1, tx1, slow);
  tx1.start(seconds(3));
  h1.s.run_until(seconds(6));

  VideoReceiverConfig lookahead;
  lookahead.decode_wait = milliseconds(200);
  lookahead.lookahead_frames = 2;
  VideoHarness h2(std::make_unique<steer::SingleChannelPolicy>(0));
  const auto f2 = net::next_flow_id();
  VideoSender tx2(h2.net->server(), f2, {});
  VideoReceiver rx2(h2.net->client(), f2, tx2, lookahead);
  tx2.start(seconds(3));
  h2.s.run_until(seconds(6));

  EXPECT_LT(rx2.stats().latency_ms.percentile(50),
            rx1.stats().latency_ms.percentile(50) - 50.0);
}

TEST(VideoSession, UrllcOnlyDegradesQualityNotLatency) {
  // 12 Mbps of video into a 2 Mbps channel: layers 1-2 never make their
  // deadline, so quality pins at layer 0 while layer-0 latency stays sane.
  VideoHarness h(std::make_unique<steer::SingleChannelPolicy>(1));
  const auto flow = net::next_flow_id();
  VideoSender tx(h.net->server(), flow, {});
  VideoReceiver rx(h.net->client(), flow, tx, {});
  tx.start(seconds(5));
  h.s.run_until(seconds(10));
  EXPECT_GT(rx.stats().frames_decoded, 100);
  EXPECT_LT(rx.stats().ssim.mean(), 0.92);  // mostly layer 0
  EXPECT_GT(rx.stats().decoded_at_layer[1],
            rx.stats().decoded_at_layer[3]);
}

TEST(VideoSession, DependencyConcealsAfterMissingLayer) {
  // Force layer 1+2 to straggle behind layer 0 (priority steering with a
  // dead-slow eMBB): non-key frames cannot decode enhancement layers even
  // when they arrive, because the previous frame didn't.
  auto embb = channel::embb_constant_profile(milliseconds(50),
                                             sim::kbps(900));
  VideoHarness h(std::make_unique<steer::MessagePriorityPolicy>(),
                 std::move(embb));
  const auto flow = net::next_flow_id();
  VideoSender tx(h.net->server(), flow, {});
  VideoReceiver rx(h.net->client(), flow, tx, {});
  tx.start(seconds(5));
  h.s.run_until(seconds(12));
  // Everything decodes (layer 0 rides URLLC), almost nothing beyond L0.
  EXPECT_GT(rx.stats().frames_decoded, 140);
  EXPECT_GT(rx.stats().decoded_at_layer[1],
            rx.stats().frames_decoded * 9 / 10);
}

TEST(VideoSession, PrioritySteeringBeatsEmbbOnlyUnderOutage) {
  // Regression guard for the Fig. 2 headline: with an outage-prone eMBB,
  // the cross-layer policy keeps p95 latency bounded.
  auto outage_embb = [] {
    auto p = channel::embb_constant_profile();
    std::vector<sim::Time> opps;
    for (int ms = 0; ms < 8000; ++ms) {
      if (ms >= 3000 && ms < 5000) continue;
      for (int k = 0; k < 5; ++k) {
        opps.push_back(milliseconds(ms) + k * milliseconds(1) / 5);
      }
    }
    p.capacity_down =
        trace::CapacityTrace::from_opportunities(opps, sim::seconds(8));
    return p;
  };

  VideoHarness prio(std::make_unique<steer::MessagePriorityPolicy>(),
                    outage_embb());
  const auto f1 = net::next_flow_id();
  VideoSender tx1(prio.net->server(), f1, {});
  VideoReceiver rx1(prio.net->client(), f1, tx1, {});
  tx1.start(seconds(8));
  prio.s.run_until(seconds(16));

  VideoHarness embb(std::make_unique<steer::SingleChannelPolicy>(0),
                    outage_embb());
  const auto f2 = net::next_flow_id();
  VideoSender tx2(embb.net->server(), f2, {});
  VideoReceiver rx2(embb.net->client(), f2, tx2, {});
  tx2.start(seconds(8));
  embb.s.run_until(seconds(16));

  EXPECT_LT(rx1.stats().latency_ms.percentile(95), 120.0);
  EXPECT_GT(rx2.stats().latency_ms.percentile(95), 500.0);
  // The latency win costs some quality (layers 1-2 ride the outage).
  EXPECT_LE(rx1.stats().ssim.mean(), rx2.stats().ssim.mean() + 0.01);
}

}  // namespace
}  // namespace hvc::app::video
