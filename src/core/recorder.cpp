#include "core/recorder.hpp"

#include <sstream>

namespace hvc::core {

ChannelRecorder::ChannelRecorder(net::TwoHostNetwork& net,
                                 sim::Duration interval)
    : net_(net), interval_(interval) {
  series_.resize(net_.channels().size());
  gauges_.resize(net_.channels().size());
  auto& reg = obs::MetricsRegistry::current();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    series_[i].name = net_.channels().at(i).name();
    const std::string prefix = "channel." + series_[i].name + ".";
    gauges_[i].down_queue = &reg.gauge(prefix + "down.queue_bytes");
    gauges_[i].up_queue = &reg.gauge(prefix + "up.queue_bytes");
    gauges_[i].down_capacity = &reg.gauge(prefix + "down.capacity_mbps");
  }
  sample();
}

void ChannelRecorder::sample() {
  if (!running_) return;
  auto& sim = net_.client().simulator();
  const auto now = sim.now();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    auto& ch = net_.channels().at(i);
    const auto down_q = static_cast<double>(ch.downlink().queued_bytes());
    const auto up_q = static_cast<double>(ch.uplink().queued_bytes());
    const double down_mbps = ch.downlink().recent_delivery_rate_bps() / 1e6;
    series_[i].down_queue_bytes.add(now, down_q);
    series_[i].up_queue_bytes.add(now, up_q);
    series_[i].down_capacity_mbps.add(now, down_mbps);
    gauges_[i].down_queue->set(down_q);
    gauges_[i].up_queue->set(up_q);
    gauges_[i].down_capacity->set(down_mbps);
  }
  sim.after(interval_, [this] { sample(); });
}

std::string ChannelRecorder::to_csv() const {
  std::ostringstream out;
  out << "time_ms";
  for (const auto& s : series_) {
    out << ',' << s.name << "_down_queue," << s.name << "_up_queue,"
        << s.name << "_down_mbps";
  }
  out << '\n';
  if (series_.empty()) return out.str();
  const auto n = series_[0].down_queue_bytes.size();
  for (std::size_t row = 0; row < n; ++row) {
    out << sim::to_millis(series_[0].down_queue_bytes.points()[row].t);
    for (const auto& s : series_) {
      out << ',' << s.down_queue_bytes.points()[row].value << ','
          << s.up_queue_bytes.points()[row].value << ','
          << s.down_capacity_mbps.points()[row].value;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace hvc::core
