// Lifecycle tests for the hot-path storage structures: the packet block
// pool (net/pool.hpp), the generational slot map (sim/slot_map.hpp), and
// the dense flow table (net/flow_table.hpp).
//
// The properties under test are the ones the performance work must never
// trade away:
//  * a freed pool block goes back to the freelist the header says it
//    came from, even when HVC_PACKET_POOL flips between allocate and
//    free;
//  * pool exhaustion degrades to the heap without changing behavior;
//  * prof.alloc.* accounting is identical pool-on and pool-off (the
//    whole point of PooledAllocator mirroring TrackingAllocator);
//  * a stale slot-map handle aborts — in release builds too — instead of
//    silently reading a departed entity's memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "channel/profile.hpp"
#include "core/scenario.hpp"
#include "net/flow_table.hpp"
#include "net/node.hpp"
#include "net/pool.hpp"
#include "obs/prof.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/slot_map.hpp"

namespace hvc {
namespace {

// RAII pool-enable override so a test failure can't leak a forced state
// into the rest of the binary.
class ScopedPool {
 public:
  explicit ScopedPool(bool enabled) { net::set_packet_pool_for_test(enabled); }
  ~ScopedPool() { net::clear_packet_pool_override_for_test(); }
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;
};

// ---- BlockPool ----------------------------------------------------------

TEST(BlockPool, RecyclesBlocksLifo) {
  ScopedPool pool_on(true);
  net::BlockPool pool;
  void* a = pool.allocate(100);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0xab, 100);
  EXPECT_EQ(pool.slab_count(), 1u);
  EXPECT_EQ(pool.free_blocks(), net::BlockPool::kBlocksPerSlab - 1);
  pool.deallocate(a);
  EXPECT_EQ(pool.free_blocks(), net::BlockPool::kBlocksPerSlab);
  // LIFO freelist: the next allocation reuses the block just freed.
  void* b = pool.allocate(64);
  EXPECT_EQ(b, a);
  pool.deallocate(b);
}

TEST(BlockPool, OversizeRequestsBypassTheSlabs) {
  ScopedPool pool_on(true);
  net::BlockPool pool;
  void* p = pool.allocate(net::BlockPool::kBlockBytes + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5a, net::BlockPool::kBlockBytes + 1);
  EXPECT_EQ(pool.slab_count(), 0u);  // never grew a slab for it
  pool.deallocate(p);                // header says heap: returns there
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(BlockPool, DisabledPoolAllocatesFromHeap) {
  ScopedPool pool_off(false);
  net::BlockPool pool;
  void* p = pool.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.slab_count(), 0u);
  pool.deallocate(p);
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(BlockPool, HeaderTagRoutesFreesWhenSwitchFlipsMidRun) {
  net::BlockPool pool;
  // Allocate from the pool, then disable it before freeing: the block
  // must still go back to the freelist its header names.
  net::set_packet_pool_for_test(true);
  void* pooled = pool.allocate(100);
  EXPECT_EQ(pool.free_blocks(), net::BlockPool::kBlocksPerSlab - 1);
  net::set_packet_pool_for_test(false);
  pool.deallocate(pooled);
  EXPECT_EQ(pool.free_blocks(), net::BlockPool::kBlocksPerSlab);
  // And the reverse: a heap-tagged block freed while the pool is on
  // must not be injected into the freelist.
  void* heaped = pool.allocate(100);  // pool still disabled
  net::set_packet_pool_for_test(true);
  pool.deallocate(heaped);
  EXPECT_EQ(pool.free_blocks(), net::BlockPool::kBlocksPerSlab);
  net::clear_packet_pool_override_for_test();
}

TEST(BlockPool, ExhaustionFallsBackToHeapAndRecovers) {
  ScopedPool pool_on(true);
  net::BlockPool pool;
  constexpr std::size_t kCapacity =
      net::BlockPool::kMaxSlabs * net::BlockPool::kBlocksPerSlab;
  std::vector<void*> blocks;
  blocks.reserve(kCapacity + 8);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    blocks.push_back(pool.allocate(64));
  }
  EXPECT_EQ(pool.slab_count(), net::BlockPool::kMaxSlabs);
  // Past the cap: allocation keeps working (heap-tagged), the pool does
  // not grow further.
  for (int i = 0; i < 8; ++i) blocks.push_back(pool.allocate(64));
  EXPECT_EQ(pool.slab_count(), net::BlockPool::kMaxSlabs);
  for (void* p : blocks) pool.deallocate(p);
  // Every slab block returned; the 8 overflow blocks went to the heap.
  EXPECT_EQ(pool.free_blocks(), kCapacity);
  // And the pool serves again without growing.
  void* p = pool.allocate(64);
  EXPECT_EQ(pool.slab_count(), net::BlockPool::kMaxSlabs);
  pool.deallocate(p);
}

// ---- prof.alloc parity --------------------------------------------------

// Identical runs must report identical allocation traffic whether the
// pool serves the bytes or the heap does: PooledAllocator mirrors
// TrackingAllocator's hook_alloc/hook_free byte counts exactly.
obs::prof::AllocStats alloc_stats_for_run(bool pool) {
  ScopedPool scope(pool);
  net::IdScope ids;
  obs::prof::reset();
  obs::prof::enable();
  {
    sim::Simulator s;
    net::TwoHostNetwork net(s, core::make_policy("dchannel"),
                            core::make_policy("dchannel"));
    net.add_channel(channel::embb_constant_profile());
    net.add_channel(channel::urllc_profile());
    net.finalize();
    const auto flow = net::next_flow_id();
    net.server().register_flow(flow, [](net::PacketPtr) {});
    sim::Rng rng(11);
    for (int i = 0; i < 400; ++i) {
      s.at(static_cast<sim::Time>(rng.uniform(0, 1e9)), [&] {
        auto p = net::make_packet();
        p->flow = flow;
        p->type = net::PacketType::kData;
        p->size_bytes = rng.uniform_int(41, 1500);
        net.client().send(std::move(p));
      });
    }
    s.run();
  }
  obs::prof::disable();
  return obs::prof::alloc_stats();
}

TEST(PacketPoolProf, AllocAccountingIdenticalPoolOnAndOff) {
  const obs::prof::AllocStats on = alloc_stats_for_run(true);
  const obs::prof::AllocStats off = alloc_stats_for_run(false);
  EXPECT_GT(on.allocs, 0u);
  EXPECT_EQ(on.allocs, off.allocs);
  EXPECT_EQ(on.alloc_bytes, off.alloc_bytes);
  EXPECT_EQ(on.frees, off.frees);
  EXPECT_EQ(on.free_bytes, off.free_bytes);
}

// ---- SlotMap ------------------------------------------------------------

TEST(SlotMap, AcquireNeverReusesSlots) {
  sim::SlotMap<int> m;
  const auto a = m.acquire(1);
  m.retire(a);
  const auto b = m.acquire(2);
  EXPECT_NE(a.slot, b.slot);  // fresh slot even though one is free
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.live_count(), 1u);
}

TEST(SlotMap, AcquireReusingBumpsGeneration) {
  sim::SlotMap<int> m;
  const auto a = m.acquire_reusing(1);
  m.retire(a);
  const auto b = m.acquire_reusing(2);
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_GT(b.gen, a.gen);
  EXPECT_FALSE(m.alive(a));
  EXPECT_TRUE(m.alive(b));
  EXPECT_EQ(m.try_get(a), nullptr);
  ASSERT_NE(m.try_get(b), nullptr);
  EXPECT_EQ(*m.try_get(b), 2);
  EXPECT_EQ(m.size(), 1u);  // storage bounded under churn
}

TEST(SlotMap, RetiredDataStaysReadableThroughAt) {
  sim::SlotMap<int> m;
  const auto h = m.acquire(42);
  m.retire(h);
  // Departure bookkeeping (folding a departed user's stats) reads the
  // slot after retirement on purpose.
  EXPECT_EQ(m.at(h.slot), 42);
  EXPECT_FALSE(m.live(h.slot));
  EXPECT_EQ(m.gen(h.slot), h.gen + 1);
}

TEST(SlotMap, ForEachLiveVisitsSlotOrder) {
  sim::SlotMap<int> m;
  const auto a = m.acquire(10);
  const auto b = m.acquire(20);
  const auto c = m.acquire(30);
  m.retire(b);
  std::vector<std::pair<std::uint32_t, int>> seen;
  m.for_each_live([&](std::uint32_t slot, int v) { seen.emplace_back(slot, v); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(a.slot, 10));
  EXPECT_EQ(seen[1], std::make_pair(c.slot, 30));
}

// Reference-model fuzz: a SlotMap under random churn agrees with a
// std::map of handle -> value at every step.
TEST(SlotMap, MatchesReferenceModelUnderRandomChurn) {
  sim::Rng rng(2026);
  sim::SlotMap<std::uint64_t> m;
  struct LiveEntry {
    sim::SlotMap<std::uint64_t>::Handle h;
    std::uint64_t value;
  };
  std::vector<LiveEntry> live;
  std::vector<sim::SlotMap<std::uint64_t>::Handle> retired;
  for (std::uint64_t step = 0; step < 20000; ++step) {
    if (live.empty() || rng.uniform(0, 1) < 0.55) {
      const auto h = rng.uniform(0, 1) < 0.5 ? m.acquire(step)
                                             : m.acquire_reusing(step);
      live.push_back({h, step});
    } else {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      m.retire(live[idx].h);
      retired.push_back(live[idx].h);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(m.live_count(), live.size());
  for (const auto& e : live) {
    ASSERT_TRUE(m.alive(e.h));
    EXPECT_EQ(m.get(e.h), e.value);
  }
  for (const auto& h : retired) {
    EXPECT_FALSE(m.alive(h));
    EXPECT_EQ(m.try_get(h), nullptr);
  }
}

// The abort fires in every build type — stale reads are memory of a
// departed entity, never something to tolerate in release.
using SlotMapDeathTest = ::testing::Test;

TEST(SlotMapDeathTest, GetOnStaleHandleAborts) {
  sim::SlotMap<int> m;
  const auto h = m.acquire(7);
  m.retire(h);
  EXPECT_DEATH((void)m.get(h), "stale handle");
}

TEST(SlotMapDeathTest, DoubleRetireAborts) {
  sim::SlotMap<int> m;
  const auto h = m.acquire(7);
  m.retire(h);
  EXPECT_DEATH(m.retire(h), "stale handle");
}

TEST(SlotMapDeathTest, OutOfRangeHandleAborts) {
  sim::SlotMap<int> m;
  EXPECT_DEATH((void)m.get({5, 0}), "stale handle");
}

// ---- FlowTable ----------------------------------------------------------

TEST(FlowTable, DensePathStoresAndErases) {
  net::FlowTable<int> t;
  EXPECT_EQ(t.find(3), nullptr);
  auto [v, created] = t.try_emplace(3);
  EXPECT_TRUE(created);
  *v = 99;
  EXPECT_FALSE(t.try_emplace(3).second);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_EQ(*t.find(3), 99);
  EXPECT_TRUE(t.contains(3));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.find(3), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTable, SpillPathHandlesIdsPastTheDenseLimit) {
  net::FlowTable<int> t;
  const std::uint64_t big = net::FlowTable<int>::kDenseLimit + 12345;
  auto [v, created] = t.try_emplace(big);
  EXPECT_TRUE(created);
  *v = 7;
  ASSERT_NE(t.find(big), nullptr);
  EXPECT_EQ(*t.find(big), 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.erase(big));
  EXPECT_EQ(t.find(big), nullptr);
}

// Reference-model fuzz across the dense/spill boundary.
TEST(FlowTable, MatchesReferenceModelAcrossDenseBoundary) {
  sim::Rng rng(17);
  net::FlowTable<std::uint64_t> t;
  std::map<std::uint64_t, std::uint64_t> model;
  const auto limit = net::FlowTable<std::uint64_t>::kDenseLimit;
  for (std::uint64_t step = 0; step < 20000; ++step) {
    // Keys cluster around the dense/spill boundary on purpose.
    const std::uint64_t key =
        rng.uniform(0, 1) < 0.5
            ? static_cast<std::uint64_t>(rng.uniform_int(0, 300))
            : limit - 150 + static_cast<std::uint64_t>(
                                rng.uniform_int(0, 300));
    if (rng.uniform(0, 1) < 0.7) {
      auto [v, created] = t.try_emplace(key);
      EXPECT_EQ(created, model.find(key) == model.end());
      *v = step;
      model[key] = step;
    } else {
      EXPECT_EQ(t.erase(key), model.erase(key) == 1);
    }
    if (step % 1000 == 0) {
      EXPECT_EQ(t.size(), model.size());
    }
  }
  EXPECT_EQ(t.size(), model.size());
  for (const auto& [key, value] : model) {
    ASSERT_NE(t.find(key), nullptr) << key;
    EXPECT_EQ(*t.find(key), value);
  }
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  for (const auto& [key, value] : model) EXPECT_EQ(t.find(key), nullptr);
}

}  // namespace
}  // namespace hvc
