
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steer/cost_aware.cpp" "src/steer/CMakeFiles/hvc_steer.dir/cost_aware.cpp.o" "gcc" "src/steer/CMakeFiles/hvc_steer.dir/cost_aware.cpp.o.d"
  "/root/repo/src/steer/dchannel.cpp" "src/steer/CMakeFiles/hvc_steer.dir/dchannel.cpp.o" "gcc" "src/steer/CMakeFiles/hvc_steer.dir/dchannel.cpp.o.d"
  "/root/repo/src/steer/flow_binding.cpp" "src/steer/CMakeFiles/hvc_steer.dir/flow_binding.cpp.o" "gcc" "src/steer/CMakeFiles/hvc_steer.dir/flow_binding.cpp.o.d"
  "/root/repo/src/steer/priority.cpp" "src/steer/CMakeFiles/hvc_steer.dir/priority.cpp.o" "gcc" "src/steer/CMakeFiles/hvc_steer.dir/priority.cpp.o.d"
  "/root/repo/src/steer/redundant.cpp" "src/steer/CMakeFiles/hvc_steer.dir/redundant.cpp.o" "gcc" "src/steer/CMakeFiles/hvc_steer.dir/redundant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/hvc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hvc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
