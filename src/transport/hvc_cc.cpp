#include "transport/hvc_cc.hpp"

#include <cmath>
#include <algorithm>
#include <cmath>

namespace hvc::transport {

HvcAwareCc::HvcAwareCc(HvcCcConfig cfg)
    : cfg_(cfg), pacing_gain_(cfg.startup_gain) {
  for (auto& c : ch_) c.rtt_min.set_window(cfg_.rtt_window);
}

double HvcAwareCc::btl_bw_bps() const {
  double best = 0.0;
  for (const auto& s : bw_samples_) best = std::max(best, s.bps);
  return best;
}

sim::Duration HvcAwareCc::weighted_rtt() const {
  double weight_sum = 0.0;
  double weighted = 0.0;
  for (const auto& c : ch_) {
    if (!c.seen) continue;
    const double rtt = c.rtt_min.get();
    if (!std::isfinite(rtt)) continue;
    // Weight by the channel's observed share of delivered bytes; give a
    // small floor so a newly seen channel still participates.
    const double w = std::max(c.rate_bps, 1e3);
    weighted += w * rtt;
    weight_sum += w;
  }
  if (weight_sum <= 0.0) return srtt_;
  return static_cast<sim::Duration>(weighted / weight_sum);
}

std::int64_t HvcAwareCc::cwnd_bytes() const {
  const double bw = btl_bw_bps();
  if (bw <= 0.0) return cfg_.initial_cwnd;
  const auto bdp = static_cast<std::int64_t>(
      bw / 8.0 * sim::to_seconds(weighted_rtt()));
  return std::max(static_cast<std::int64_t>(cfg_.cwnd_gain *
                                            static_cast<double>(bdp)),
                  cfg_.min_cwnd);
}

double HvcAwareCc::pacing_rate_bps() const {
  const double bw = btl_bw_bps();
  if (bw <= 0.0) {
    return pacing_gain_ * static_cast<double>(cfg_.initial_cwnd) * 8.0 /
           sim::to_seconds(sim::milliseconds(100));
  }
  return pacing_gain_ * bw;
}

void HvcAwareCc::roll_epoch(sim::Time now) {
  if (now - epoch_start_ < cfg_.rate_epoch) return;
  const double secs = sim::to_seconds(now - epoch_start_);
  for (auto& c : ch_) {
    if (!c.seen) continue;
    const double rate = static_cast<double>(c.epoch_bytes) * 8.0 / secs;
    c.rate_bps = c.rate_bps <= 0.0 ? rate : 0.3 * rate + 0.7 * c.rate_bps;
    c.epoch_bytes = 0;
  }
  epoch_start_ = now;
}

void HvcAwareCc::on_packet_sent(sim::Time /*now*/, std::int64_t /*bytes*/,
                                std::int64_t /*in_flight*/) {}

void HvcAwareCc::on_ack(const AckEvent& ev) {
  const std::size_t idx =
      ev.channel < HvcCcConfig::kMaxChannels ? ev.channel : 0;
  auto& pc = ch_[idx];
  pc.seen = true;
  if (ev.rtt > 0) {
    pc.rtt_min.update(ev.now, static_cast<double>(ev.rtt));
    srtt_ = (7 * srtt_ + ev.rtt) / 8;
  }
  pc.epoch_bytes += ev.acked_bytes;
  roll_epoch(ev.now);

  if (ev.delivery_rate_bps > 0.0 &&
      (!ev.app_limited || ev.delivery_rate_bps > btl_bw_bps())) {
    bw_samples_.push_back({ev.round_trips, ev.delivery_rate_bps});
    std::erase_if(bw_samples_, [&](const BwSample& s) {
      return s.round < ev.round_trips - cfg_.bw_window_rounds;
    });
  }

  if (!filled_pipe_) {
    const double bw = btl_bw_bps();
    if (bw >= full_bw_ * 1.25) {
      full_bw_ = bw;
      full_bw_count_ = 0;
    } else if (++full_bw_count_ >= 3) {
      filled_pipe_ = true;
    }
  }

  switch (mode_) {
    case Mode::kStartup:
      pacing_gain_ = cfg_.startup_gain;
      if (filled_pipe_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = cfg_.drain_gain;
      }
      break;
    case Mode::kDrain: {
      const double bw = btl_bw_bps();
      const auto bdp = static_cast<std::int64_t>(
          bw / 8.0 * sim::to_seconds(weighted_rtt()));
      if (ev.bytes_in_flight <= bdp) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = ev.now;
        pacing_gain_ = kCycleGains[cycle_index_];
      }
      break;
    }
    case Mode::kProbeBw:
      if (ev.now - cycle_stamp_ > weighted_rtt()) {
        cycle_index_ = (cycle_index_ + 1) % 8;
        cycle_stamp_ = ev.now;
        pacing_gain_ = kCycleGains[cycle_index_];
      }
      break;
  }
}

void HvcAwareCc::on_loss(const LossEvent& ev) {
  if (ev.is_rto) {
    bw_samples_.clear();
    full_bw_ = 0.0;
    full_bw_count_ = 0;
    filled_pipe_ = false;
    mode_ = Mode::kStartup;
    pacing_gain_ = cfg_.startup_gain;
  }
}

}  // namespace hvc::transport
