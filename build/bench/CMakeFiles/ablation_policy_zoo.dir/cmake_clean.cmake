file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_zoo.dir/ablation_policy_zoo.cpp.o"
  "CMakeFiles/ablation_policy_zoo.dir/ablation_policy_zoo.cpp.o.d"
  "ablation_policy_zoo"
  "ablation_policy_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
