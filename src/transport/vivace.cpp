#include "transport/vivace.hpp"

#include <algorithm>
#include <cmath>

namespace hvc::transport {

Vivace::Vivace(VivaceConfig cfg)
    : cfg_(cfg), rate_bps_(cfg.initial_rate_bps) {}

sim::Duration Vivace::mi_duration() const {
  // One MI ~ 1 RTT, floored so an MI always spans several packets.
  return std::max<sim::Duration>(srtt_, sim::milliseconds(10));
}

double Vivace::MonitorInterval::utility(const VivaceConfig& cfg) const {
  const double duration =
      sim::to_seconds(std::max<sim::Duration>(end - start, 1));
  const double goodput_mbps =
      static_cast<double>(acked_bytes) * 8.0 / duration / 1e6;
  const double sent_mbps = rate_bps / 1e6;
  const double loss_frac =
      acked_bytes + lost_bytes > 0
          ? static_cast<double>(lost_bytes) /
                static_cast<double>(acked_bytes + lost_bytes)
          : 0.0;

  // RTT gradient via least-squares slope over the MI's samples (seconds
  // of RTT per second of time).
  double slope = 0.0;
  if (rtt_samples.size() >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto& [t, r] : rtt_samples) {
      const double x = sim::to_seconds(t - start);
      const double y = r / 1e9;
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const auto n = static_cast<double>(rtt_samples.size());
    const double denom = n * sxx - sx * sx;
    if (denom > 1e-12) slope = (n * sxy - sx * sy) / denom;
  }

  const double x = goodput_mbps > 0 ? goodput_mbps : 1e-3;
  return std::pow(x, cfg.exponent) -
         cfg.rtt_grad_coeff * sent_mbps * std::max(0.0, slope) -
         cfg.loss_coeff * sent_mbps * loss_frac;
}

void Vivace::ensure_current(sim::Time now) {
  if (mis_.empty() || mis_.back().end != 0) {
    MonitorInterval mi;
    mi.start = now;
    mi.sign = mis_.empty() ? +1 : -mis_.back().sign;
    mi.rate_bps = rate_bps_ * (1.0 + mi.sign * cfg_.probe_eps);
    mis_.push_back(mi);
  }
}

void Vivace::roll_interval(sim::Time now) {
  ensure_current(now);
  MonitorInterval& cur = mis_.back();
  if (now - cur.start < mi_duration()) return;
  cur.end = now;
  cur.lag = srtt_;
  ensure_current(now);
  // Bound memory if acks stall entirely.
  while (mis_.size() > 16) mis_.pop_front();
}

void Vivace::finalize_ready(sim::Time now) {
  while (!mis_.empty()) {
    MonitorInterval& front = mis_.front();
    if (front.end == 0 || now < front.end + front.lag) break;
    const double u = front.utility(cfg_);
    if (front.sign > 0) {
      utility_plus_ = u;
      have_plus_ = true;
    } else if (have_plus_) {
      const double d_rate_mbps = 2.0 * cfg_.probe_eps * rate_bps_ / 1e6;
      if (d_rate_mbps > 1e-9) {
        const double grad = (utility_plus_ - u) / d_rate_mbps;
        double step_mbps = cfg_.step_scale * grad;
        const double cap = cfg_.max_step_frac * rate_bps_ / 1e6;
        step_mbps = std::clamp(step_mbps, -cap, cap);
        rate_bps_ = std::clamp(rate_bps_ + step_mbps * 1e6,
                               cfg_.min_rate_bps, cfg_.max_rate_bps);
      }
      have_plus_ = false;
    }
    mis_.pop_front();
  }
}

void Vivace::attribute_ack(const AckEvent& ev) {
  // An ack at time T is evidence for the MI whose lag-shifted measurement
  // window [start+lag, end+lag) contains T (the sending MI uses srtt as a
  // provisional lag while open).
  for (auto& mi : mis_) {
    const sim::Duration lag = mi.end == 0 ? srtt_ : mi.lag;
    const sim::Time lo = mi.start + lag;
    const sim::Time hi = mi.end == 0 ? sim::kTimeNever : mi.end + lag;
    if (ev.now >= lo && ev.now < hi) {
      mi.acked_bytes += ev.acked_bytes;
      if (ev.rtt > 0) {
        mi.rtt_samples.emplace_back(ev.now, static_cast<double>(ev.rtt));
      }
      return;
    }
  }
}

void Vivace::on_packet_sent(sim::Time now, std::int64_t /*bytes*/,
                            std::int64_t /*in_flight*/) {
  roll_interval(now);
  finalize_ready(now);
}

void Vivace::on_ack(const AckEvent& ev) {
  if (ev.rtt > 0) srtt_ = (7 * srtt_ + ev.rtt) / 8;
  roll_interval(ev.now);
  attribute_ack(ev);
  finalize_ready(ev.now);
}

void Vivace::on_loss(const LossEvent& ev) {
  // Losses are detected roughly where acks are arriving: attribute to the
  // same lag-shifted window.
  for (auto& mi : mis_) {
    const sim::Duration lag = mi.end == 0 ? srtt_ : mi.lag;
    const sim::Time lo = mi.start + lag;
    const sim::Time hi = mi.end == 0 ? sim::kTimeNever : mi.end + lag;
    if (ev.now >= lo && ev.now < hi) {
      mi.lost_bytes += ev.lost_bytes;
      return;
    }
  }
}

std::int64_t Vivace::cwnd_bytes() const {
  // 2x the rate-delay product so pacing, not the window, governs.
  const double rate = pacing_rate_bps();
  const double bytes = 2.0 * rate / 8.0 * sim::to_seconds(srtt_) + 4 * kMss;
  return static_cast<std::int64_t>(bytes);
}

double Vivace::pacing_rate_bps() const {
  if (!mis_.empty() && mis_.back().end == 0) return mis_.back().rate_bps;
  return rate_bps_;
}

}  // namespace hvc::transport
