// A small command-line driver over the public API: compose a scenario
// from named channels and policies and run one of the three workloads.
// Useful for quick what-if exploration without writing code.
//
//   ./build/examples/hvc_sim_cli bulk  --cca bbr --policy dchannel
//   ./build/examples/hvc_sim_cli video --policy msg-priority --trace mmwave
//   ./build/examples/hvc_sim_cli web   --policy dchannel+prio --pages 10
//   ./build/examples/hvc_sim_cli bulk  --channels embb,urllc,tsn
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "trace/gen5g.hpp"

namespace {

using namespace hvc;

channel::ChannelProfile channel_by_name(const std::string& name,
                                        sim::Duration duration) {
  if (name == "embb") return channel::embb_constant_profile();
  if (name == "urllc") return channel::urllc_profile();
  if (name == "tsn") return channel::wifi_tsn_profile();
  if (name == "wifi") return channel::wifi_contended_profile();
  if (name == "cisp") return channel::cisp_profile();
  if (name == "fiber") return channel::fiber_profile();
  if (name == "leo") return channel::leo_profile(7, duration);
  if (name == "lowband-stationary" || name == "lowband" ||
      name == "mmwave") {
    const auto profile = name == "mmwave"
                             ? trace::FiveGProfile::kMmWaveDriving
                         : name == "lowband"
                             ? trace::FiveGProfile::kLowbandDriving
                             : trace::FiveGProfile::kLowbandStationary;
    return channel::embb_trace_profile(profile, duration, 42);
  }
  std::fprintf(stderr, "unknown channel '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

void usage() {
  std::printf(
      "usage: hvc_sim_cli <bulk|video|web> [options]\n"
      "  --policy <name>     steering policy (default dchannel)\n"
      "  --channels <a,b>    comma list: embb urllc tsn wifi cisp fiber\n"
      "                      leo lowband lowband-stationary mmwave\n"
      "                      (default embb,urllc)\n"
      "  --cca <name>        bulk only: cubic|bbr|vegas|vivace|hvc\n"
      "  --seconds <n>       run length (default 30)\n"
      "  --pages <n>         web only: corpus size (default 10)\n"
      "  --trace <name>      video/web shorthand for --channels <name>,urllc\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string mode = argv[1];
  std::map<std::string, std::string> opt;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      usage();
      return 1;
    }
    opt[argv[i] + 2] = argv[i + 1];
  }

  const auto seconds_opt =
      sim::seconds(opt.count("seconds") ? std::stoll(opt["seconds"]) : 30);
  const std::string policy =
      opt.count("policy") ? opt["policy"] : "dchannel";
  std::string channels_arg =
      opt.count("channels") ? opt["channels"] : "embb,urllc";
  if (opt.count("trace")) channels_arg = opt["trace"] + ",urllc";

  core::ScenarioConfig cfg;
  cfg.up_policy = cfg.down_policy = policy;
  for (const auto& name : split(channels_arg, ',')) {
    cfg.channels.push_back(channel_by_name(name, seconds_opt + sim::seconds(30)));
  }

  if (mode == "bulk") {
    const std::string cca = opt.count("cca") ? opt["cca"] : "cubic";
    const auto r = core::run_bulk(cfg, cca, seconds_opt);
    std::printf("bulk %s over %s: %.2f Mbps, retx=%lld, rto=%lld\n",
                cca.c_str(), policy.c_str(), r.goodput_bps / 1e6,
                static_cast<long long>(r.retransmissions),
                static_cast<long long>(r.rto_count));
    std::printf("packets per channel:");
    for (std::size_t i = 0; i < r.data_packets_per_channel.size(); ++i) {
      std::printf(" ch%zu=%lld", i,
                  static_cast<long long>(r.data_packets_per_channel[i]));
    }
    std::printf("\n");
  } else if (mode == "video") {
    const auto r = core::run_video(cfg, {}, {}, seconds_opt);
    std::printf("video over %s: %lld frames, latency p50 %.1f p95 %.1f "
                "max %.1f ms, ssim %.3f\n",
                policy.c_str(),
                static_cast<long long>(r.stats.frames_decoded),
                r.stats.latency_ms.percentile(50),
                r.stats.latency_ms.percentile(95), r.stats.latency_ms.max(),
                r.stats.ssim.mean());
  } else if (mode == "web") {
    const int pages = opt.count("pages") ? std::stoi(opt["pages"]) : 10;
    const auto corpus = app::web::generate_corpus(
        {.pages = pages, .seed = 2023});
    core::WebRunConfig web;
    web.loads_per_page = 3;
    const auto r = core::run_web(cfg, corpus, web);
    std::printf("web over %s: mean PLT %.1f ms (p50 %.1f, p95 %.1f), "
                "timeouts %d\n",
                policy.c_str(), r.plt_ms.mean(), r.plt_ms.percentile(50),
                r.plt_ms.percentile(95), r.timeouts);
  } else {
    usage();
    return 1;
  }
  return 0;
}
