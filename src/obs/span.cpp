#include "obs/span.hpp"

#include <algorithm>
#include <utility>

#include "obs/json.hpp"
#include "sim/seed.hpp"

namespace hvc::obs {

thread_local SpanRecorder* SpanRecorder::active_ = nullptr;

const char* span_comp_name(SpanComp c) {
  switch (c) {
    case SpanComp::kQueueing: return "queueing";
    case SpanComp::kSerialization: return "serialization";
    case SpanComp::kPropagation: return "propagation";
    case SpanComp::kRetransmission: return "retransmission";
    case SpanComp::kReorderWait: return "reorder-wait";
    case SpanComp::kSteeringWait: return "steering-wait";
    case SpanComp::kDecodeWait: return "decode-wait";
  }
  return "?";
}

// ---- SpanUnitBuilder --------------------------------------------------

void SpanUnitBuilder::begin(const char* cohort, const char* metric,
                            std::uint32_t user, sim::Time t0) {
  unit_ = SpanUnit{};
  unit_.cohort = cohort;
  unit_.metric = metric;
  unit_.user = user;
  unit_.seq = seq_++;
  unit_.t0 = t0;
  open_.clear();
  active_ = true;
  in_stage_ = false;
}

void SpanUnitBuilder::begin_stage(sim::Time t0, std::int64_t prop_ns,
                                  const char* prop_channel) {
  if (!active_) return;
  if (unit_.stages.size() >= kMaxStages) {
    ++truncated_;
    in_stage_ = false;
    return;
  }
  SpanStage st;
  st.t0 = t0;
  st.t1 = t0;
  st.prop_ns = prop_ns;
  st.prop_channel = prop_channel;
  unit_.stages.push_back(st);
  open_.clear();
  in_stage_ = true;
}

void SpanUnitBuilder::leg_open(std::uint32_t slot, sim::Time t0,
                               std::int64_t bytes, const char* channel,
                               const char* reason,
                               std::int64_t ser_hint_ns) {
  if (!active_ || !in_stage_) return;
  ++unit_.stages.back().legs;
  if (open_.size() >= kMaxOpenLegs) {
    ++truncated_;
    return;
  }
  OpenLeg ol;
  ol.leg.slot = slot;
  ol.leg.t0 = t0;
  ol.leg.t1 = t0;
  ol.leg.bytes = bytes;
  ol.leg.channel = channel;
  ol.leg.reason = reason;
  ol.ser_hint_ns = ser_hint_ns;
  ol.open = true;
  open_.push_back(ol);
}

void SpanUnitBuilder::leg_charge(std::uint32_t slot, SpanComp comp,
                                 std::int64_t ns) {
  if (!active_ || !in_stage_ || ns <= 0) return;
  for (OpenLeg& ol : open_) {
    if (ol.open && ol.leg.slot == slot) {
      ol.leg.parts[static_cast<std::size_t>(comp)] += ns;
      return;
    }
  }
}

void SpanUnitBuilder::leg_close(std::uint32_t slot, sim::Time t1) {
  if (!active_ || !in_stage_) return;
  for (OpenLeg& ol : open_) {
    if (!ol.open || ol.leg.slot != slot) continue;
    ol.open = false;
    SpanLeg& leg = ol.leg;
    leg.t1 = t1;
    // Exact integer decomposition: measured charges first (clamped to
    // the observed duration), serialization next, queueing = remainder.
    std::int64_t cap = std::max<std::int64_t>(0, t1 - leg.t0);
    static constexpr SpanComp kCharged[] = {
        SpanComp::kPropagation,     SpanComp::kRetransmission,
        SpanComp::kReorderWait,     SpanComp::kSteeringWait,
        SpanComp::kDecodeWait,
    };
    for (const SpanComp c : kCharged) {
      auto& p = leg.parts[static_cast<std::size_t>(c)];
      p = std::min(p, cap);
      cap -= p;
    }
    const std::int64_t ser =
        std::clamp<std::int64_t>(ol.ser_hint_ns, 0, cap);
    leg.parts[static_cast<std::size_t>(SpanComp::kSerialization)] = ser;
    leg.parts[static_cast<std::size_t>(SpanComp::kQueueing)] = cap - ser;
    unit_.stages.back().crit = leg;
    return;
  }
  ++truncated_;  // closed a leg the bounded recorder never held
}

void SpanUnitBuilder::end_stage(sim::Time t1) {
  if (!active_ || !in_stage_) return;
  unit_.stages.back().t1 = t1;
  in_stage_ = false;
  open_.clear();
}

SpanUnit SpanUnitBuilder::finish(sim::Time t1, std::int64_t total_ns,
                                 double value) {
  unit_.t1 = t1;
  unit_.total_ns = total_ns;
  unit_.value = value;
  // Exactness backstop: any slack between the measured total and the
  // accumulated components lands in the last leg-bearing stage's
  // queueing. The city/web/video instrumentation produces zero slack
  // (tested); this only matters when stages were truncated.
  std::int64_t parts = 0;
  SpanStage* last_crit = nullptr;
  for (SpanStage& st : unit_.stages) {
    parts += st.prop_ns;
    if (st.legs > 0) {
      last_crit = &st;
      for (const std::int64_t p : st.crit.parts) parts += p;
    }
  }
  const std::int64_t slack = total_ns - parts;
  if (slack != 0 && last_crit != nullptr) {
    auto& q = last_crit->crit
                  .parts[static_cast<std::size_t>(SpanComp::kQueueing)];
    auto& s = last_crit->crit
                  .parts[static_cast<std::size_t>(SpanComp::kSerialization)];
    q += slack;
    if (q < 0) {  // negative slack bigger than queueing: absorb into ser
      s = std::max<std::int64_t>(0, s + q);
      q = 0;
    }
  }
  active_ = false;
  in_stage_ = false;
  open_.clear();
  return std::move(unit_);
}

void SpanUnitBuilder::abort() {
  active_ = false;
  in_stage_ = false;
  open_.clear();
  unit_ = SpanUnit{};
}

std::size_t SpanUnitBuilder::memory_bytes() const {
  return sizeof(*this) + open_.capacity() * sizeof(OpenLeg) +
         unit_.stages.capacity() * sizeof(SpanStage);
}

// ---- SpanRecorder -----------------------------------------------------

void SpanRecorder::enable(SpanConfig cfg) {
  cfg_ = cfg;
  keys_.clear();
  offered_ = 0;
  aborted_ = 0;
  truncated_ = 0;
  enabled_ = true;
  active_ = this;
}

void SpanRecorder::disable() {
  enabled_ = false;
  if (active_ == this) active_ = nullptr;
}

void SpanRecorder::offer(SpanUnit&& unit) {
  if (!enabled_) return;
  ++offered_;
  const std::string key =
      std::string(unit.cohort) + "." + unit.metric;
  MetricState& ms = keys_[key];
  if (ms.offered == 0) {
    ms.key_seed = sim::seed_mix(cfg_.seed, sim::fnv1a64(key));
  }
  const std::uint64_t n = ms.offered++;
  const double v = unit.value;

  // Tail rule: at/above the live quantile once warmed up. The histogram
  // is fed *after* the decision, so the threshold is a pure function of
  // the prior offers — deterministic for any -j / shard split.
  bool kept = false;
  if (cfg_.tail_budget > 0 && !(v < ms.hist.percentile(cfg_.tail_quantile)) &&
      ms.hist.count() >= static_cast<std::uint64_t>(cfg_.warmup)) {
    if (ms.tail.size() < static_cast<std::size_t>(cfg_.tail_budget)) {
      ms.tail.push_back({std::move(unit), n, "tail"});
      kept = true;
    } else {
      // Full: keep the top-K by value — evict the smallest (value, n).
      auto worst = std::min_element(
          ms.tail.begin(), ms.tail.end(), [](const Kept& a, const Kept& b) {
            if (a.unit.value < b.unit.value) return true;
            if (b.unit.value < a.unit.value) return false;
            return a.n < b.n;
          });
      if (worst->unit.value < v) {
        ++ms.evicted;
        *worst = {std::move(unit), n, "tail"};
        kept = true;
      }
    }
  }

  // Counter-hash reservoir of "normal" exemplars: a fixed residue of the
  // splitmix64 stream keyed by (config seed, metric key) — no RNG state,
  // so retention cannot be perturbed by other components' draws.
  if (!kept && cfg_.reservoir_budget > 0 && cfg_.reservoir_period > 0 &&
      sim::splitmix64(ms.key_seed + n) %
              static_cast<std::uint64_t>(cfg_.reservoir_period) ==
          0) {
    if (ms.reservoir.size() >=
        static_cast<std::size_t>(cfg_.reservoir_budget)) {
      ms.reservoir.erase(ms.reservoir.begin());  // oldest out
      ++ms.evicted;
    }
    ms.reservoir.push_back({std::move(unit), n, "reservoir"});
  }

  ms.hist.add(v);
}

std::uint64_t SpanRecorder::retained() const {
  std::uint64_t n = 0;
  for (const auto& [key, ms] : keys_) {
    n += ms.tail.size() + ms.reservoir.size();
  }
  return n;
}

namespace {

std::size_t unit_bytes(const SpanUnit& u) {
  return sizeof(SpanUnit) + u.stages.capacity() * sizeof(SpanStage);
}

}  // namespace

std::size_t SpanRecorder::span_bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& [key, ms] : keys_) {
    total += key.size() + sizeof(MetricState) +
             stats::LogHistogram::memory_bytes();
    for (const auto& k : ms.tail) total += sizeof(Kept) + unit_bytes(k.unit);
    for (const auto& k : ms.reservoir) {
      total += sizeof(Kept) + unit_bytes(k.unit);
    }
  }
  return total;
}

namespace {

using json::number;
using json::quote;

void append_leg(std::string* out, const SpanLeg& leg) {
  *out += "{\"slot\":" + std::to_string(leg.slot);
  *out += ",\"ch\":" + quote(leg.channel);
  *out += ",\"reason\":" + quote(leg.reason);
  *out += ",\"bytes\":" + number(leg.bytes);
  *out += ",\"t0_ns\":" + number(leg.t0);
  *out += ",\"t1_ns\":" + number(leg.t1);
  *out += ",\"parts\":{";
  bool first = true;
  for (int c = 0; c < kSpanCompCount; ++c) {
    if (leg.parts[static_cast<std::size_t>(c)] == 0) continue;
    if (!first) *out += ',';
    first = false;
    *out += quote(span_comp_name(static_cast<SpanComp>(c))) + ":" +
            number(leg.parts[static_cast<std::size_t>(c)]);
  }
  *out += "}}";
}

}  // namespace

std::string SpanRecorder::to_jsonl() const {
  std::string out = "{\"meta\":{";
  out += "\"aborted\":" + number(aborted_);
  std::uint64_t evicted = 0;
  std::uint64_t tail = 0;
  std::uint64_t reservoir = 0;
  for (const auto& [key, ms] : keys_) {
    evicted += ms.evicted;
    tail += ms.tail.size();
    reservoir += ms.reservoir.size();
  }
  out += ",\"evicted\":" + number(evicted);
  out += ",\"keys\":" + number(static_cast<std::uint64_t>(keys_.size()));
  out += ",\"offered\":" + number(offered_);
  out += ",\"reservoir\":" + number(reservoir);
  out += ",\"retained\":" + number(tail + reservoir);
  out += ",\"span_bytes\":" + number(static_cast<std::uint64_t>(span_bytes()));
  out += ",\"tail\":" + number(tail);
  out += ",\"truncated\":" + number(truncated_);
  out += "}}\n";

  for (const auto& [key, ms] : keys_) {
    // Export in offer order: merge the two (already n-sorted) sets.
    std::vector<const Kept*> ordered;
    ordered.reserve(ms.tail.size() + ms.reservoir.size());
    for (const auto& k : ms.tail) ordered.push_back(&k);
    for (const auto& k : ms.reservoir) ordered.push_back(&k);
    std::sort(ordered.begin(), ordered.end(),
              [](const Kept* a, const Kept* b) { return a->n < b->n; });
    for (const Kept* k : ordered) {
      const SpanUnit& u = k->unit;
      out += "{\"k\":" + quote(key);
      out += ",\"n\":" + number(k->n);
      out += ",\"keep\":" + quote(k->keep);
      out += ",\"user\":" + std::to_string(u.user);
      out += ",\"seq\":" + number(u.seq);
      out += ",\"v\":" + number(u.value);
      out += ",\"t0_ns\":" + number(u.t0);
      out += ",\"t1_ns\":" + number(u.t1);
      out += ",\"total_ns\":" + number(u.total_ns);
      out += ",\"stages\":[";
      for (std::size_t i = 0; i < u.stages.size(); ++i) {
        const SpanStage& st = u.stages[i];
        if (i > 0) out += ',';
        out += "{\"t0_ns\":" + number(st.t0);
        out += ",\"t1_ns\":" + number(st.t1);
        out += ",\"prop_ns\":" + number(st.prop_ns);
        if (st.prop_channel[0] != '\0') {
          out += ",\"prop_ch\":" + quote(st.prop_channel);
        }
        out += ",\"legs\":" + std::to_string(st.legs);
        if (st.legs > 0) {
          out += ",\"crit\":";
          append_leg(&out, st.crit);
        }
        out += '}';
      }
      out += "]}\n";
    }
  }
  return out;
}

// ---- ScopedSpanRecorder -----------------------------------------------

ScopedSpanRecorder::ScopedSpanRecorder(SpanRecorder& rec)
    : prev_active_(SpanRecorder::active_) {
  SpanRecorder::active_ = rec.enabled() ? &rec : nullptr;
}

ScopedSpanRecorder::~ScopedSpanRecorder() {
  SpanRecorder::active_ = prev_active_;
}

}  // namespace hvc::obs
