#include "obs/perf_manifest.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace hvc::obs {

namespace {
constexpr const char* kThroughputKey = "items_per_sec.median";
}  // namespace

const PerfBenchResult* PerfManifest::find(const std::string& bench) const {
  for (const auto& b : benches) {
    if (b.name == bench) return &b;
  }
  return nullptr;
}

std::string PerfManifest::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": " +
         json::quote("hvc-perf-manifest/" + std::to_string(kSchemaVersion)) +
         ",\n";
  out += "  \"name\": " + json::quote(name) + ",\n";
  out += "  \"git_sha\": " + json::quote(git_sha) + ",\n";
  out += "  \"cpu_model\": " + json::quote(cpu_model) + ",\n";
  out += "  \"build_type\": " + json::quote(build_type) + ",\n";
  out += "  \"compiler\": " + json::quote(compiler) + ",\n";
  out += "  \"pinned_cpu\": " +
         json::number(static_cast<std::int64_t>(pinned_cpu)) + ",\n";
  out += "  \"cycles_per_ns\": " + json::number(cycles_per_ns) + ",\n";
  out += "  \"warmup\": " + json::number(static_cast<std::int64_t>(warmup)) +
         ",\n";
  out += "  \"repeats\": " + json::number(static_cast<std::int64_t>(repeats)) +
         ",\n";
  out += "  \"benches\": [";
  for (std::size_t i = 0; i < benches.size(); ++i) {
    const PerfBenchResult& b = benches[i];
    if (i > 0) out += ',';
    out += "\n    {\n";
    out += "      \"name\": " + json::quote(b.name) + ",\n";
    out += "      \"unit\": " + json::quote(b.unit) + ",\n";
    out += "      \"stats\": {";
    bool first = true;
    for (const auto& [key, value] : b.stats) {
      if (!first) out += ',';
      first = false;
      out += "\n        " + json::quote(key) + ": " + json::number(value);
    }
    out += b.stats.empty() ? "}\n" : "\n      }\n";
    out += "    }";
  }
  out += benches.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::optional<PerfManifest> PerfManifest::from_json(const std::string& text) {
  json::Value root;
  if (!json::parse(text, &root) || !root.is_object()) return std::nullopt;
  const std::string schema = root.string_or("schema", "");
  if (schema != "hvc-perf-manifest/" + std::to_string(kSchemaVersion)) {
    return std::nullopt;
  }
  PerfManifest m;
  m.name = root.string_or("name", "");
  m.git_sha = root.string_or("git_sha", "unknown");
  m.cpu_model = root.string_or("cpu_model", "unknown");
  m.build_type = root.string_or("build_type", "unknown");
  m.compiler = root.string_or("compiler", "unknown");
  m.pinned_cpu = static_cast<int>(root.number_or("pinned_cpu", -1));
  m.cycles_per_ns = root.number_or("cycles_per_ns", 0.0);
  m.warmup = static_cast<int>(root.number_or("warmup", 0));
  m.repeats = static_cast<int>(root.number_or("repeats", 0));
  if (const json::Value* bs = root.find("benches"); bs && bs->is_array()) {
    for (const json::Value& bv : bs->array) {
      if (!bv.is_object()) return std::nullopt;
      PerfBenchResult b;
      b.name = bv.string_or("name", "");
      b.unit = bv.string_or("unit", "");
      if (b.name.empty()) return std::nullopt;
      if (const json::Value* st = bv.find("stats"); st && st->is_object()) {
        for (const auto& [key, value] : st->object) {
          if (value.is_number()) b.stats[key] = value.num;
        }
      }
      m.benches.push_back(std::move(b));
    }
  }
  return m;
}

bool PerfManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

std::optional<PerfManifest> PerfManifest::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

std::string PerfCheck::to_text() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %14s %14s %8s  %s\n", "bench",
                "baseline/s", "current/s", "ratio", "status");
  out += buf;
  for (const PerfDelta& d : deltas) {
    std::snprintf(buf, sizeof(buf), "%-28s %14.0f %14.0f %7.2fx  %s%s%s\n",
                  d.bench.c_str(), d.baseline, d.current, d.ratio,
                  d.ok ? "ok" : "FAIL", d.note.empty() ? "" : " — ",
                  d.note.c_str());
    out += buf;
  }
  return out;
}

PerfCheck compare_perf(const PerfManifest& baseline,
                       const PerfManifest& current, double tolerance) {
  PerfCheck check;
  for (const PerfBenchResult& base : baseline.benches) {
    PerfDelta d;
    d.bench = base.name;
    const auto base_it = base.stats.find(kThroughputKey);
    d.baseline = base_it == base.stats.end() ? 0.0 : base_it->second;
    const PerfBenchResult* cur = current.find(base.name);
    if (cur == nullptr) {
      d.ok = false;
      d.note = "missing in current run";
      check.deltas.push_back(std::move(d));
      check.ok = false;
      continue;
    }
    const auto cur_it = cur->stats.find(kThroughputKey);
    d.current = cur_it == cur->stats.end() ? 0.0 : cur_it->second;
    if (d.baseline <= 0.0) {
      // Nothing to regress against; a zero baseline never fails.
      d.ratio = 0.0;
      d.ok = true;
      d.note = "no baseline throughput";
    } else {
      d.ratio = d.current / d.baseline;
      d.ok = d.current >= d.baseline * (1.0 - tolerance);
      if (!d.ok) d.note = "below tolerance";
    }
    if (!d.ok) check.ok = false;
    check.deltas.push_back(std::move(d));
  }
  return check;
}

}  // namespace hvc::obs
