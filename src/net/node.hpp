// End hosts and topology wiring.
//
// A Node owns a flow demultiplexer: transports register a handler per
// FlowId and the node routes arriving packets to it, deduplicating copies
// produced by redundancy policies. TwoHostNetwork builds the paper's
// standard topology — client and server joined by an HvcSet, with an
// independent steering shim per direction.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "channel/channel.hpp"
#include "net/flow_table.hpp"
#include "net/packet.hpp"
#include "net/reorder.hpp"
#include "net/shim.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace hvc::net {

using PacketHandler = std::function<void(PacketPtr)>;

/// Allocate a flow id, unique within this thread's current id scope.
FlowId next_flow_id();

/// Reset the flow-id counter. Test-only: lets determinism tests produce
/// byte-identical traces across repeated in-process runs.
void reset_flow_ids_for_test();

/// Raw access to the thread-local flow-id counter (next id to hand out).
[[nodiscard]] FlowId flow_id_counter();
void set_flow_id_counter(FlowId next);

/// RAII for an isolated simulation run: zeroes this thread's flow- and
/// packet-id counters on entry and restores the previous values on exit.
/// The sweep engine (src/exp) wraps every run in one, so a run's id
/// sequence — and therefore its trace/export bytes — is independent of
/// which runs executed before it on the same thread. Id *values* never
/// influence simulation dynamics (they are opaque lookup keys), so this
/// changes output bytes only, not behaviour.
class IdScope {
 public:
  IdScope()
      : prev_flow_(flow_id_counter()), prev_packet_(packet_id_counter()) {
    set_flow_id_counter(1);
    set_packet_id_counter(1);
  }
  ~IdScope() {
    set_flow_id_counter(prev_flow_);
    set_packet_id_counter(prev_packet_);
  }
  IdScope(const IdScope&) = delete;
  IdScope& operator=(const IdScope&) = delete;

 private:
  FlowId prev_flow_;
  std::uint64_t prev_packet_;
};

class Node {
 public:
  Node(sim::Simulator& sim, std::string name)
      : sim_(&sim), name_(std::move(name)) {
    auto& reg = obs::MetricsRegistry::current();
    m_dups_suppressed_ =
        &reg.counter("node." + name_ + ".duplicates_suppressed");
    m_unroutable_ = &reg.counter("node." + name_ + ".unroutable");
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// The shim carrying this node's outbound traffic.
  void set_egress(Shim* shim) { egress_ = shim; }
  [[nodiscard]] Shim* egress() { return egress_; }

  /// Register/unregister the handler for a flow's inbound packets.
  void register_flow(FlowId flow, PacketHandler handler);
  void unregister_flow(FlowId flow);
  [[nodiscard]] bool has_flow(FlowId flow) const {
    return handlers_.contains(flow);
  }

  /// Send a packet out through the egress shim.
  void send(PacketPtr p);

  /// Deliver an inbound packet (called by link receivers). Deduplicates
  /// redundant copies; drops packets for unknown flows (counted).
  void deliver(PacketPtr p);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] std::int64_t unroutable_packets() const {
    return unroutable_;
  }
  [[nodiscard]] std::int64_t duplicates_suppressed() const {
    return dups_suppressed_;
  }

 private:
  sim::Simulator* sim_;
  std::string name_;
  Shim* egress_ = nullptr;
  // Per-packet find() on the arriving flow id; ids are dense per run,
  // so the demux is a vector index (net/flow_table).
  FlowTable<PacketHandler> handlers_;

  // Bounded memory of recently seen duplicate groups. Membership tests
  // only; eviction order comes from seen_order_ (FIFO), not the set.
  // hvc-lint: allow(unordered-container): contains()/erase(key) only,
  // never iterated.
  std::unordered_set<std::uint64_t> seen_groups_;
  std::deque<std::uint64_t> seen_order_;
  std::int64_t unroutable_ = 0;
  std::int64_t dups_suppressed_ = 0;
  obs::Counter* m_dups_suppressed_ = nullptr;
  obs::Counter* m_unroutable_ = nullptr;
};

/// The standard two-host topology over an HvcSet. Owns everything.
class TwoHostNetwork {
 public:
  /// `up_policy` steers client→server, `down_policy` server→client.
  TwoHostNetwork(sim::Simulator& sim,
                 std::unique_ptr<steer::SteeringPolicy> up_policy,
                 std::unique_ptr<steer::SteeringPolicy> down_policy);

  /// Add a channel before starting traffic. Returns its index.
  std::size_t add_channel(channel::ChannelProfile profile);

  /// Enable DChannel-style receiver-side resequencing (see
  /// net/reorder.hpp). Call before finalize().
  void enable_resequencing(sim::Duration max_hold);

  /// Call once after all channels are added: builds the shims and wires
  /// link receivers to the nodes.
  void finalize();

  [[nodiscard]] Node& client() { return client_; }
  [[nodiscard]] Node& server() { return server_; }
  [[nodiscard]] channel::HvcSet& channels() { return channels_; }
  [[nodiscard]] Shim& uplink_shim() { return *up_shim_; }
  [[nodiscard]] Shim& downlink_shim() { return *down_shim_; }
  [[nodiscard]] bool finalized() const { return up_shim_ != nullptr; }

 private:
  sim::Simulator& sim_;
  channel::HvcSet channels_;
  Node client_;
  Node server_;
  std::unique_ptr<steer::SteeringPolicy> up_policy_;
  std::unique_ptr<steer::SteeringPolicy> down_policy_;
  std::unique_ptr<Shim> up_shim_;
  std::unique_ptr<Shim> down_shim_;
  sim::Duration resequence_hold_ = 0;  ///< 0 = resequencing disabled
  std::unique_ptr<ReorderBuffer> to_client_rsq_;
  std::unique_ptr<ReorderBuffer> to_server_rsq_;
};

}  // namespace hvc::net
