#include "core/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "steer/basic_policies.hpp"
#include "steer/cost_aware.hpp"
#include "steer/dchannel.hpp"
#include "steer/flow_binding.hpp"
#include "steer/priority.hpp"
#include "steer/redundant.hpp"

namespace hvc::core {

std::unique_ptr<steer::SteeringPolicy> make_policy(const std::string& name) {
  if (name == "embb-only") {
    return std::make_unique<steer::SingleChannelPolicy>(0);
  }
  if (name == "urllc-only") {
    return std::make_unique<steer::SingleChannelPolicy>(1);
  }
  if (name == "round-robin") {
    return std::make_unique<steer::RoundRobinPolicy>();
  }
  if (name == "weighted") return std::make_unique<steer::WeightedPolicy>();
  if (name == "min-delay") return std::make_unique<steer::MinDelayPolicy>();
  if (name == "dchannel") return std::make_unique<steer::DChannelPolicy>();
  if (name == "dchannel+prio") {
    return std::make_unique<steer::DChannelPolicy>(
        steer::DChannelConfig{.use_flow_priority = true});
  }
  if (name == "msg-priority") {
    return std::make_unique<steer::MessagePriorityPolicy>();
  }
  if (name == "redundant") {
    return std::make_unique<steer::RedundantPolicy>(
        std::make_unique<steer::MinDelayPolicy>(), steer::RedundantConfig{});
  }
  if (name == "cost-aware") {
    return std::make_unique<steer::CostAwarePolicy>();
  }
  if (name == "flow-binding") {
    return std::make_unique<steer::FlowBindingPolicy>();
  }
  throw std::invalid_argument("unknown steering policy: " + name);
}

ScenarioConfig ScenarioConfig::fig1(const std::string& policy) {
  ScenarioConfig cfg;
  cfg.channels = {channel::embb_constant_profile(),
                  channel::urllc_profile()};
  cfg.up_policy = policy;
  cfg.down_policy = policy;
  return cfg;
}

ScenarioConfig ScenarioConfig::traced(trace::FiveGProfile profile,
                                      const std::string& policy,
                                      sim::Duration duration,
                                      std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.channels = {channel::embb_trace_profile(profile, duration, seed),
                  channel::urllc_profile()};
  cfg.up_policy = policy;
  cfg.down_policy = policy;
  return cfg;
}

Scenario::Scenario(const ScenarioConfig& cfg) {
  auto up = cfg.up_factory ? cfg.up_factory() : make_policy(cfg.up_policy);
  auto down =
      cfg.down_factory ? cfg.down_factory() : make_policy(cfg.down_policy);
  net_ = std::make_unique<net::TwoHostNetwork>(sim_, std::move(up),
                                               std::move(down));
  for (const auto& profile : cfg.channels) net_->add_channel(profile);
  if (cfg.resequence_hold > 0) {
    net_->enable_resequencing(cfg.resequence_hold);
  }
  net_->finalize();
  // Fault injection arms against the finalized channel set — every
  // transition is on the simulator's calendar before the workload starts.
  if (!cfg.faults.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        sim_, net_->channels(), cfg.faults);
  }
  // Topology exists (links and shims registered their probes above):
  // start the periodic telemetry tick if sampling is on for this thread.
  if (auto* ts = obs::TelemetrySampler::active()) ts->attach(sim_);
}

BulkResult run_bulk(const ScenarioConfig& cfg, const std::string& cca,
                    sim::Duration duration) {
  Scenario sc(cfg);
  const auto flows = transport::make_flow_pair();
  transport::TcpSender sender(sc.server(), flows, transport::make_cca(cca));
  transport::TcpReceiver receiver(sc.client(), flows);
  sender.write(sim::bytes_in(duration, sim::gbps(2)));  // never app-limited
  sc.sim().run_until(duration);

  BulkResult r;
  r.goodput_bps = sender.goodput_bps(0, duration);
  r.rtt_ms = sender.stats().rtt_samples_ms;
  r.acked_bytes = sender.stats().acked_bytes_series;
  r.retransmissions = sender.stats().retransmissions;
  r.rto_count = sender.stats().rto_count;
  r.data_packets_per_channel =
      sc.network().downlink_shim().stats().packets_per_channel;
  if (auto* inj = sc.fault_injector()) {
    r.fault_blackout_committed_bytes = inj->blackout_committed_bytes();
    r.fault_blackout_dropped_packets = inj->blackout_dropped_packets();
  }

  // Per-second goodput from the cumulative acked series.
  double prev = 0.0;
  for (sim::Time t = sim::seconds(1); t <= duration; t += sim::seconds(1)) {
    double at = prev;
    for (const auto& p : sender.stats().acked_bytes_series.points()) {
      if (p.t <= t) {
        at = p.value;
      } else {
        break;
      }
    }
    r.goodput_mbps.add(t, (at - prev) * 8.0 / 1e6);
    prev = at;
  }
  return r;
}

VideoResult run_video(const ScenarioConfig& cfg,
                      const app::video::SvcConfig& svc,
                      const app::video::VideoReceiverConfig& rx,
                      sim::Duration duration) {
  Scenario sc(cfg);
  const auto flow = net::next_flow_id();
  app::video::VideoSender sender(sc.server(), flow, svc);
  app::video::VideoReceiver receiver(sc.client(), flow, sender, rx);
  sender.start(duration);
  // Allow late frames to drain (eMBB-only tails run to seconds).
  sc.sim().run_until(duration + sim::seconds(12));

  VideoResult r;
  r.stats = receiver.stats();
  r.latency_cdf_ms = r.stats.latency_ms.samples();
  std::sort(r.latency_cdf_ms.begin(), r.latency_cdf_ms.end());
  r.ssim_cdf = r.stats.ssim.samples();
  std::sort(r.ssim_cdf.begin(), r.ssim_cdf.end());
  return r;
}

WebResult run_web(const ScenarioConfig& cfg,
                  const std::vector<app::web::WebPage>& corpus,
                  const WebRunConfig& web) {
  Scenario sc(cfg);
  WebResult result;

  transport::TcpConfig bg_cfg = web.browser.transport;
  bg_cfg.flow_priority = web.bg_flow_priority;
  std::unique_ptr<app::web::BackgroundJsonFlow> uploader;
  std::unique_ptr<app::web::BackgroundJsonFlow> downloader;
  if (web.background_flows) {
    uploader = std::make_unique<app::web::BackgroundJsonFlow>(
        sc.client(), sc.server(), app::web::BackgroundJsonFlow::Kind::kUpload,
        web.bg_upload_bytes, bg_cfg);
    downloader = std::make_unique<app::web::BackgroundJsonFlow>(
        sc.client(), sc.server(),
        app::web::BackgroundJsonFlow::Kind::kDownload,
        web.bg_download_bytes, bg_cfg);
    uploader->start();
    downloader->start();
  }

  for (const auto& page : corpus) {
    sim::Summary page_plts;
    for (int load = 0; load < web.loads_per_page; ++load) {
      auto session = std::make_unique<app::web::PageLoadSession>(
          sc.client(), sc.server(), page, web.browser, nullptr);
      session->start();
      const sim::Time deadline = sc.sim().now() + web.per_load_timeout;
      while (!session->finished() && sc.sim().now() < deadline) {
        sc.sim().run_until(
            std::min(deadline, sc.sim().now() + sim::milliseconds(20)));
      }
      double plt_ms;
      if (session->finished()) {
        plt_ms = sim::to_millis(session->plt());
      } else {
        plt_ms = sim::to_millis(web.per_load_timeout);
        ++result.timeouts;
      }
      result.plt_ms.add(plt_ms);
      page_plts.add(plt_ms);
      // Small think-time gap between loads lets queues drain, matching
      // sequential page loads in the paper's harness.
      sc.sim().run_for(sim::milliseconds(250));
    }
    result.per_page_mean_ms.add(page_plts.mean());
  }
  return result;
}

}  // namespace hvc::core
