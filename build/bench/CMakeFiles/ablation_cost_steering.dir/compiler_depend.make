# Empty compiler generated dependencies file for ablation_cost_steering.
# This may be replaced when dependencies are built.
