// Transport tests: CCA unit behaviour, reliable delivery under loss,
// RTT estimation, messages, datagrams, and connections.
#include <gtest/gtest.h>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"
#include "transport/bbr.hpp"
#include "transport/connection.hpp"
#include "transport/cubic.hpp"
#include "transport/datagram.hpp"
#include "transport/hvc_cc.hpp"
#include "transport/rtt.hpp"
#include "transport/tcp.hpp"
#include "transport/vegas.hpp"
#include "transport/vivace.hpp"

namespace hvc::transport {
namespace {

using sim::milliseconds;
using sim::seconds;

// ---- RTT estimator ----

TEST(Rtt, FirstSampleInitializes) {
  RttEstimator r;
  r.add_sample(milliseconds(100));
  EXPECT_EQ(r.srtt(), milliseconds(100));
  EXPECT_EQ(r.rttvar(), milliseconds(50));
}

TEST(Rtt, ConvergesToStableValue) {
  RttEstimator r;
  for (int i = 0; i < 100; ++i) r.add_sample(milliseconds(80));
  EXPECT_NEAR(sim::to_millis(r.srtt()), 80.0, 1.0);
  EXPECT_LT(r.rttvar(), milliseconds(5));
}

TEST(Rtt, RtoHasFloorAndTracksVariance) {
  RttEstimator r;
  for (int i = 0; i < 50; ++i) r.add_sample(milliseconds(10));
  EXPECT_EQ(r.rto(), milliseconds(200));  // min RTO floor
  RttEstimator jittery;
  for (int i = 0; i < 50; ++i) {
    jittery.add_sample(milliseconds(i % 2 == 0 ? 50 : 250));
  }
  EXPECT_GT(jittery.rto(), milliseconds(300));
}

TEST(Rtt, IgnoresNonPositiveSamples) {
  RttEstimator r;
  r.add_sample(0);
  r.add_sample(-5);
  EXPECT_FALSE(r.has_sample());
}

// ---- CCA units ----

TEST(CubicCca, SlowStartDoublesPerRtt) {
  Cubic c;
  const auto initial = c.cwnd_bytes();
  AckEvent ev;
  ev.now = milliseconds(100);
  ev.rtt = milliseconds(50);
  ev.acked_bytes = initial;
  c.on_ack(ev);
  EXPECT_GE(c.cwnd_bytes(), 2 * initial - kMss);
}

TEST(CubicCca, LossReducesWindowByBeta) {
  Cubic c;
  AckEvent grow;
  grow.now = milliseconds(10);
  grow.rtt = milliseconds(50);
  grow.acked_bytes = 100 * kMss;
  c.on_ack(grow);
  const auto before = c.cwnd_bytes();
  c.on_loss({milliseconds(20), kMss, before, false});
  EXPECT_NEAR(static_cast<double>(c.cwnd_bytes()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kMss));
}

TEST(CubicCca, OneReductionPerRtt) {
  Cubic c;
  AckEvent grow;
  grow.now = milliseconds(10);
  grow.rtt = milliseconds(50);
  grow.acked_bytes = 100 * kMss;
  c.on_ack(grow);
  c.on_loss({milliseconds(20), kMss, c.cwnd_bytes(), false});
  const auto after_first = c.cwnd_bytes();
  c.on_loss({milliseconds(25), kMss, after_first, false});  // same window
  EXPECT_EQ(c.cwnd_bytes(), after_first);
}

TEST(CubicCca, GrowsTowardWmaxAfterLoss) {
  Cubic c;
  AckEvent grow;
  grow.now = milliseconds(10);
  grow.rtt = milliseconds(50);
  grow.acked_bytes = 200 * kMss;
  c.on_ack(grow);
  c.on_loss({milliseconds(20), kMss, c.cwnd_bytes(), false});
  const auto floor = c.cwnd_bytes();
  AckEvent ca;
  ca.rtt = milliseconds(50);
  ca.acked_bytes = kMss;
  for (int i = 0; i < 200; ++i) {
    ca.now = milliseconds(30 + i * 10);
    c.on_ack(ca);
  }
  EXPECT_GT(c.cwnd_bytes(), floor);
}

TEST(BbrCca, StartupExitsOnBandwidthPlateau) {
  Bbr b;
  EXPECT_EQ(b.mode(), Bbr::Mode::kStartup);
  AckEvent ev;
  ev.rtt = milliseconds(50);
  ev.acked_bytes = 10 * kMss;
  ev.delivery_rate_bps = 50e6;
  for (int i = 0; i < 10; ++i) {
    ev.now = milliseconds(50 * (i + 1));
    ev.round_trips = i;
    ev.bytes_in_flight = 100 * kMss;
    b.on_ack(ev);
  }
  EXPECT_NE(b.mode(), Bbr::Mode::kStartup);
  EXPECT_NEAR(b.btl_bw_bps(), 50e6, 1e6);
}

TEST(BbrCca, CwndIsGainTimesBdp) {
  Bbr b;
  AckEvent ev;
  ev.rtt = milliseconds(50);
  ev.acked_bytes = 10 * kMss;
  ev.delivery_rate_bps = 60e6;
  ev.now = milliseconds(50);
  b.on_ack(ev);
  // BDP = 60 Mbps * 50 ms = 375 kB; cwnd = 2x.
  EXPECT_NEAR(static_cast<double>(b.cwnd_bytes()), 2 * 375000.0, 40000.0);
}

TEST(BbrCca, MinRttPollutionShrinksCwnd) {
  // The Fig. 1 pathology in miniature: one 5 ms sample collapses RTprop.
  Bbr b;
  AckEvent ev;
  ev.rtt = milliseconds(50);
  ev.acked_bytes = 10 * kMss;
  ev.delivery_rate_bps = 60e6;
  ev.now = milliseconds(50);
  b.on_ack(ev);
  const auto before = b.cwnd_bytes();
  ev.now = milliseconds(100);
  ev.rtt = milliseconds(5);  // URLLC-steered probe
  b.on_ack(ev);
  EXPECT_LT(b.cwnd_bytes(), before / 5);
}

TEST(BbrCca, ProbeRttAfterWindowExpiry) {
  Bbr b;
  AckEvent ev;
  ev.acked_bytes = 10 * kMss;
  ev.delivery_rate_bps = 60e6;
  // One 50 ms minimum, then persistent queueing keeps samples above it:
  // the RTprop window expires after 10 s and PROBE_RTT engages.
  ev.rtt = milliseconds(50);
  ev.now = milliseconds(50);
  ev.bytes_in_flight = 2 * kMss;
  b.on_ack(ev);
  sim::Time t = milliseconds(50);
  for (int i = 0; i < 300; ++i) {
    t += milliseconds(50);
    ev.now = t;
    ev.round_trips = i;
    ev.bytes_in_flight = 2 * kMss;  // low inflight lets PROBE_RTT finish
    ev.rtt = milliseconds(51 + (i % 3));  // never beats the first min
    b.on_ack(ev);
    if (b.mode() == Bbr::Mode::kProbeRtt) break;
  }
  EXPECT_EQ(b.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_EQ(b.cwnd_bytes(), 4 * kMss);
}

TEST(BbrCca, ConstantRttKeepsRefreshingRtProp) {
  // With samples repeatedly matching the minimum, PROBE_RTT never fires
  // (matching Linux BBR's `rtt <= min_rtt` refresh rule).
  Bbr b;
  AckEvent ev;
  ev.acked_bytes = 10 * kMss;
  ev.delivery_rate_bps = 60e6;
  ev.bytes_in_flight = 2 * kMss;
  for (int i = 1; i < 400; ++i) {
    ev.now = milliseconds(50) * i;
    ev.round_trips = i;
    ev.rtt = milliseconds(50);
    b.on_ack(ev);
    ASSERT_NE(b.mode(), Bbr::Mode::kProbeRtt);
  }
}

TEST(VegasCca, HoldsWindowInsideAlphaBetaBand) {
  Vegas v;
  AckEvent ev;
  // Establish base RTT = 50 ms and leave slow start.
  ev.rtt = milliseconds(50);
  ev.now = milliseconds(50);
  ev.round_trips = 1;
  v.on_ack(ev);
  ev.rtt = milliseconds(80);  // diff > gamma: exits slow start
  ev.now = milliseconds(130);
  ev.round_trips = 2;
  v.on_ack(ev);
  // Choose an RTT that puts the backlog estimate between alpha and beta
  // for the current window; Vegas must hold the window there.
  const auto w = v.cwnd_bytes();
  const double w_pkts = static_cast<double>(w) / kMss;
  // diff = w_pkts * (rtt - 50)/rtt == 3  =>  rtt = 50 / (1 - 3/w_pkts).
  const auto rtt = static_cast<sim::Duration>(
      50e6 / (1.0 - 3.0 / w_pkts));
  for (int i = 3; i < 10; ++i) {
    ev.rtt = rtt;
    ev.now = milliseconds(80 * i);
    ev.round_trips = i;
    v.on_ack(ev);
    EXPECT_EQ(v.cwnd_bytes(), w) << "round " << i;
  }
}

TEST(VegasCca, BaseRttIsLifetimeMin) {
  Vegas v;
  AckEvent ev;
  ev.rtt = milliseconds(50);
  ev.now = milliseconds(50);
  ev.round_trips = 1;
  v.on_ack(ev);
  EXPECT_EQ(v.base_rtt(), milliseconds(50));
  ev.rtt = milliseconds(5);  // steered packet poisons the base
  ev.round_trips = 2;
  v.on_ack(ev);
  EXPECT_EQ(v.base_rtt(), milliseconds(5));
  ev.rtt = milliseconds(60);
  ev.round_trips = 3;
  v.on_ack(ev);
  EXPECT_EQ(v.base_rtt(), milliseconds(5));  // never recovers
}

TEST(VegasCca, ShrinksWhenDiffExceedsBeta) {
  Vegas v;
  AckEvent ev;
  // Poison base RTT at 5 ms, then run rounds at 50 ms.
  ev.rtt = milliseconds(5);
  ev.now = milliseconds(5);
  ev.round_trips = 1;
  v.on_ack(ev);
  const auto before = v.cwnd_bytes();
  ev.rtt = milliseconds(50);
  for (int i = 2; i < 30; ++i) {
    ev.round_trips = i;
    ev.now = milliseconds(50 * i);
    v.on_ack(ev);
  }
  EXPECT_LT(v.cwnd_bytes(), before);
  // Vegas settles where the backlog estimate falls inside (alpha, beta):
  // cwnd_pkts * 0.9 in (2, 4) -> at most ~4.4 packets.
  EXPECT_LE(v.cwnd_bytes(), 5 * kMss);
}

TEST(VivaceCca, RateStaysWithinBounds) {
  Vivace v;
  AckEvent ev;
  ev.rtt = milliseconds(30);
  ev.acked_bytes = kMss;
  for (int i = 0; i < 2000; ++i) {
    ev.now = milliseconds(5 * i);
    v.on_ack(ev);
  }
  EXPECT_GE(v.pacing_rate_bps(), 0.2e6 * 0.9);
  EXPECT_LE(v.pacing_rate_bps(), 500e6 * 1.1);
}

TEST(VivaceCca, RttRampPushesRateDown) {
  Vivace v;
  AckEvent ev;
  ev.acked_bytes = 2 * kMss;
  // Continuously rising RTT within every MI → negative utility gradient.
  for (int i = 0; i < 3000; ++i) {
    ev.now = milliseconds(2 * i);
    ev.rtt = milliseconds(20 + (i % 50));
    v.on_ack(ev);
  }
  EXPECT_LT(v.base_rate_bps(), VivaceConfig{}.initial_rate_bps * 1.5);
}

TEST(HvcCca, WeightedRttResistsPollution) {
  HvcAwareCc h;
  AckEvent embb;
  embb.rtt = milliseconds(50);
  embb.acked_bytes = 50 * kMss;
  embb.channel = 0;
  embb.delivery_rate_bps = 60e6;
  AckEvent urllc;
  urllc.rtt = milliseconds(5);
  urllc.acked_bytes = kMss;
  urllc.channel = 1;
  urllc.delivery_rate_bps = 60e6;
  sim::Time t = 0;
  for (int i = 0; i < 100; ++i) {
    t += milliseconds(25);
    embb.now = t;
    embb.round_trips = i;
    h.on_ack(embb);
    urllc.now = t + milliseconds(1);
    urllc.round_trips = i;
    h.on_ack(urllc);
  }
  // Weighted RTT should stay near eMBB's 50 ms, not collapse to 5 ms.
  EXPECT_GT(h.weighted_rtt(), milliseconds(35));
}

TEST(CcaFactory, CreatesAllAndRejectsUnknown) {
  for (const char* name : {"cubic", "bbr", "vegas", "vivace", "hvc"}) {
    EXPECT_EQ(make_cca(name)->name(), name);
  }
  EXPECT_THROW(make_cca("reno"), std::invalid_argument);
}

// ---- End-to-end transport over a single channel ----

struct Harness {
  sim::Simulator s;
  std::unique_ptr<net::TwoHostNetwork> net;
  FlowPair flows = make_flow_pair();

  explicit Harness(channel::ChannelProfile profile) {
    net = std::make_unique<net::TwoHostNetwork>(
        s, std::make_unique<steer::SingleChannelPolicy>(0),
        std::make_unique<steer::SingleChannelPolicy>(0));
    net->add_channel(std::move(profile));
    net->finalize();
  }
};

TEST(Tcp, TransfersAllBytesReliably) {
  Harness h(channel::embb_constant_profile());
  TcpConfig cfg;
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"), cfg);
  TcpReceiver rcv(h.net->client(), h.flows, cfg);
  // Server-side sender must egress via the downlink shim.
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(1'000'000);
  h.s.run_until(seconds(30));
  EXPECT_EQ(received, 1'000'000);
  EXPECT_TRUE(snd.idle());
}

TEST(Tcp, ThroughputApproachesLinkRate) {
  Harness h(channel::embb_constant_profile());  // 60 Mbps down
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"));
  TcpReceiver rcv(h.net->client(), h.flows);
  snd.write(200'000'000);
  h.s.run_until(seconds(20));
  const double goodput = snd.goodput_bps(seconds(5), seconds(20));
  EXPECT_GT(goodput, 45e6);
  EXPECT_LT(goodput, 62e6);
}

TEST(Tcp, RttSamplesReflectPathAndQueueing) {
  Harness h(channel::embb_constant_profile());
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"));
  TcpReceiver rcv(h.net->client(), h.flows);
  snd.write(5'000'000);
  h.s.run_until(seconds(10));
  ASSERT_FALSE(snd.stats().rtt_samples_ms.empty());
  for (const auto& pt : snd.stats().rtt_samples_ms.points()) {
    EXPECT_GE(pt.value, 49.0);  // never below the base RTT
  }
}

TEST(Tcp, RecoversFromRandomLoss) {
  auto profile = channel::embb_constant_profile();
  profile.loss.bernoulli = 0.02;
  Harness h(std::move(profile));
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"));
  TcpReceiver rcv(h.net->client(), h.flows);
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(2'000'000);
  h.s.run_until(seconds(60));
  EXPECT_EQ(received, 2'000'000);
  EXPECT_GT(snd.stats().retransmissions, 0);
}

TEST(Tcp, RecoversFromBurstLoss) {
  auto profile = channel::embb_constant_profile();
  profile.loss.ge_p_good_to_bad = 0.002;
  profile.loss.ge_p_bad_to_good = 0.1;
  profile.loss.ge_loss_in_bad = 0.5;
  Harness h(std::move(profile));
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"));
  TcpReceiver rcv(h.net->client(), h.flows);
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) { received += n; });
  snd.write(2'000'000);
  h.s.run_until(seconds(120));
  EXPECT_EQ(received, 2'000'000);
}

TEST(Tcp, MessageCompletionCallback) {
  Harness h(channel::embb_constant_profile());
  TcpConfig cfg;
  cfg.annotate_app_info = true;
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"), cfg);
  TcpReceiver rcv(h.net->client(), h.flows, cfg);
  std::vector<std::uint64_t> completed;
  rcv.set_on_message([&](const net::AppHeader& hdr, sim::Time) {
    completed.push_back(hdr.message_id);
  });
  const auto id1 = snd.write_message(10'000, 0);
  const auto id2 = snd.write_message(50'000, 1);
  h.s.run_until(seconds(10));
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0], id1);
  EXPECT_EQ(completed[1], id2);
}

TEST(Tcp, DelayedAckHalvesAckCount) {
  Harness h1(channel::embb_constant_profile());
  TcpSender s1(h1.net->server(), h1.flows, make_cca("cubic"));
  TcpReceiver r1(h1.net->client(), h1.flows);
  s1.write(1'000'000);
  h1.s.run_until(seconds(10));

  Harness h2(channel::embb_constant_profile());
  TcpConfig cfg;
  cfg.delayed_ack = true;
  TcpSender s2(h2.net->server(), h2.flows, make_cca("cubic"), cfg);
  TcpReceiver r2(h2.net->client(), h2.flows, cfg);
  s2.write(1'000'000);
  h2.s.run_until(seconds(10));

  EXPECT_LT(r2.stats().acks_sent, r1.stats().acks_sent * 3 / 4);
}

TEST(Tcp, SmallTransferLatencyDominatedByRtt) {
  Harness h(channel::embb_constant_profile());
  TcpSender snd(h.net->server(), h.flows, make_cca("cubic"));
  TcpReceiver rcv(h.net->client(), h.flows);
  sim::Time done = -1;
  std::int64_t received = 0;
  rcv.set_on_data([&](std::int64_t n) {
    received += n;
    if (received >= 10'000) done = h.s.now();
  });
  snd.write(10'000);
  h.s.run();
  // 10 kB in the initial window: one-way delay + serialization, well
  // under 2 RTTs.
  EXPECT_GT(done, milliseconds(25));
  EXPECT_LT(done, milliseconds(100));
}

TEST(Datagram, MessageReassemblyAndTiming) {
  Harness h(channel::urllc_profile());
  const auto flow = net::next_flow_id();
  DatagramSocket tx(h.net->server(), flow);
  DatagramSocket rx(h.net->client(), flow);
  net::AppHeader done_hdr;
  sim::Time done_at = -1;
  rx.set_on_message([&](const DatagramSocket::MessageEvent& ev) {
    done_hdr = ev.header;
    done_at = ev.completed;
    EXPECT_EQ(ev.sent_at, 0);  // sent at t=0
    EXPECT_LE(ev.first_arrival, ev.completed);
  });
  tx.send_message(4000, 1);  // 3 packets at 2 Mbps
  h.s.run();
  EXPECT_EQ(done_hdr.message_bytes, 4000u);
  EXPECT_EQ(done_hdr.priority, 1);
  // ~16.5 ms serialization + 2.5 ms OWD.
  EXPECT_GT(done_at, milliseconds(15));
  EXPECT_LT(done_at, milliseconds(30));
}

TEST(Datagram, NoRetransmissionOnLoss) {
  auto profile = channel::urllc_profile();
  profile.loss.bernoulli = 0.5;
  profile.loss.ge_loss_in_bad = 0.0;
  Harness h(std::move(profile));
  const auto flow = net::next_flow_id();
  DatagramSocket tx(h.net->server(), flow);
  DatagramSocket rx(h.net->client(), flow);
  int messages = 0;
  rx.set_on_message(
      [&](const DatagramSocket::MessageEvent&) { ++messages; });
  for (int i = 0; i < 50; ++i) tx.send_message(10'000, 0);  // 7 pkts each
  h.s.run();
  // With 50% loss, nearly all multi-packet messages lose something and
  // are never completed (no retransmission exists).
  EXPECT_LT(messages, 10);
}

TEST(Connection, HandshakeCompletesInOneRtt) {
  Harness h(channel::embb_constant_profile());
  Connection conn(h.net->client(), h.net->server());
  sim::Time ready_at = -1;
  conn.handshake([&] { ready_at = h.s.now(); });
  h.s.run();
  EXPECT_TRUE(conn.established());
  EXPECT_GE(ready_at, milliseconds(50));
  EXPECT_LT(ready_at, milliseconds(60));
}

TEST(Connection, RequestResponseExchange) {
  Harness h(channel::embb_constant_profile());
  TcpConfig cfg;
  cfg.annotate_app_info = true;
  Connection conn(h.net->client(), h.net->server(), cfg);

  // Server: on request message, respond with 100 kB.
  conn.server_receiver().set_on_message(
      [&](const net::AppHeader&, sim::Time) {
        conn.server_sender().write_message(100'000, 0);
      });
  sim::Time response_done = -1;
  conn.client_receiver().set_on_message(
      [&](const net::AppHeader&, sim::Time t) { response_done = t; });
  conn.handshake([&] { conn.client_sender().write_message(400, 0); });
  h.s.run_until(seconds(5));
  EXPECT_GT(response_done, milliseconds(100));  // 2 RTT + transfer
  EXPECT_LT(response_done, milliseconds(600));
}

}  // namespace
}  // namespace hvc::transport
