// The one place retained-sample summaries (sim::Summary) are flattened
// into named scalar stats. Consumers:
//   * MetricsRegistry::snapshot() — histogram expansion in every bench
//     manifest (<name>.count/.mean/.p50/.p95/.p99/.max),
//   * obs::PerfManifest / bench/hotpath — repeat statistics
//     (median + IQR) for the BENCH_*.json perf trajectory,
//   * bench table helpers — percentile rows.
// Before this header, the registry snapshot and the bench harness each
// re-derived mean/percentile expansions by hand; keep any new flattening
// here so the stat names stay consistent across exports.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hpp"

namespace hvc::obs {

/// The registry/manifest flattening: <prefix>.count always; when samples
/// exist also <prefix>.mean/.p50/.p95/.p99/.max.
void flatten_summary(const sim::Summary& s, const std::string& prefix,
                     std::map<std::string, double>* out);

/// Robust statistics over benchmark repeats (small n, outlier-prone):
/// median + interquartile range, plus the extremes and mean.
struct RepeatStats {
  std::uint64_t count = 0;
  double median = 0.0;
  double iqr = 0.0;  ///< p75 - p25
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

[[nodiscard]] RepeatStats repeat_stats(const sim::Summary& s);

/// Flatten repeat_stats as <prefix>.median/.iqr/.min/.max/.mean
/// (count is implied by the manifest's `repeats` field).
void flatten_repeat_stats(const sim::Summary& s, const std::string& prefix,
                          std::map<std::string, double>* out);

}  // namespace hvc::obs
