file(REMOVE_RECURSE
  "CMakeFiles/ablation_cost_steering.dir/ablation_cost_steering.cpp.o"
  "CMakeFiles/ablation_cost_steering.dir/ablation_cost_steering.cpp.o.d"
  "ablation_cost_steering"
  "ablation_cost_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cost_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
