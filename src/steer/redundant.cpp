#include "steer/redundant.hpp"

namespace hvc::steer {

Decision RedundantPolicy::steer(const net::Packet& pkt,
                                std::span<const ChannelView> channels,
                                sim::Time now) {
  Decision d = base_->steer(pkt, channels, now);
  if (channels.size() < 2) return d;

  // Never leave the primary copy on a dark channel, even if the base
  // policy (possibly fault-unaware) chose one: move it to the fastest
  // surviving channel and mirror from there.
  if (d.channel < channels.size() && channels[d.channel].down) {
    d.channel = best_up_channel(channels, pkt.size_bytes);
    d.reason = "redundant:failover";
  }

  const bool qualifies =
      cfg_.mirror_all ||
      (pkt.type != net::PacketType::kData && cfg_.mirror_control) ||
      (pkt.app.present && pkt.app.priority <= cfg_.max_priority_to_mirror);
  if (!qualifies) return d;

  // Mirror on the lowest-estimated-delay channel other than the primary.
  std::size_t mirror = SIZE_MAX;
  sim::Duration mirror_delay = sim::kTimeNever;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (i == d.channel) continue;
    if (channels[i].down) continue;  // a dead mirror protects nothing
    if (channels[i].queue_fill() > cfg_.mirror_max_queue_fill) continue;
    const auto delay = channels[i].est_delivery_delay(pkt.size_bytes);
    if (delay < mirror_delay) {
      mirror_delay = delay;
      mirror = i;
    }
  }
  if (mirror != SIZE_MAX) {
    // hvc-lint: allow(hotpath-alloc): one-element duplicate list per redundant decision; Decision is stack-local
    d.duplicate_on.push_back(mirror);
    d.reason = "redundant:mirror";
  }
  return d;
}

}  // namespace hvc::steer
