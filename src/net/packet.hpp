// The packet: the common currency between transports, the steering shim,
// and emulated channels.
//
// Because the whole stack is ours, the packet carries its transport header
// directly (no serialization), plus an optional cross-layer application
// header (message id / boundary / priority). Network-layer policies such as
// DChannel must not read `app` — that separation is what §3.1 vs §3.3 of
// the paper is about, and the policy base class enforces it (see
// steer/steering_policy.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/units.hpp"

namespace hvc::net {

using FlowId = std::uint64_t;

enum class PacketType : std::uint8_t {
  kData,     ///< transport payload
  kAck,      ///< pure acknowledgment
  kControl,  ///< handshake / probe / other control
};

/// Cross-layer application header (§3.3): present only when the
/// application opted in through the intents API.
struct AppHeader {
  bool present = false;
  std::uint64_t message_id = 0;
  std::uint32_t message_bytes = 0;     ///< total size of the message
  std::uint32_t offset = 0;            ///< this packet's offset in message
  bool message_end = false;            ///< last packet of the message
  std::uint8_t priority = 0;           ///< 0 = most important
};

/// Transport header, shared by the TCP-like and QUIC-like transports.
struct TransportHeader {
  std::uint64_t seq = 0;       ///< first payload byte / packet number
  std::uint32_t len = 0;       ///< payload bytes
  std::uint64_t ack = 0;       ///< cumulative ack (next expected)
  bool has_ack = false;
  sim::Time ts = 0;            ///< sender timestamp
  sim::Time ts_echo = 0;       ///< echoed timestamp (RTT measurement)

  /// SACK blocks: [first, last) byte ranges received out of order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack;

  /// Channel the acked data packet arrived on (receiver echo); lets the
  /// HVC-aware CCA (§3.2) attribute RTT samples to channels. 255 = none.
  std::uint8_t channel_echo = 255;
};

struct Packet {
  std::uint64_t id = 0;    ///< globally unique (assigned by make_packet)
  FlowId flow = 0;
  PacketType type = PacketType::kData;
  std::int64_t size_bytes = 0;  ///< wire size including all headers

  TransportHeader tp;
  AppHeader app;

  /// Flow-level priority (§3.3 Table 1): 0 = foreground/interactive,
  /// larger = more background. Network-layer policies may not read it;
  /// flow-priority-aware DChannel may.
  std::uint8_t flow_priority = 0;

  /// Bookkeeping stamped by the stack (not "on the wire").
  sim::Time enqueued_at = 0;   ///< when the shim accepted it
  std::uint8_t channel = 0;    ///< channel index it was steered to
  std::uint32_t copies = 1;    ///< >1 when a redundancy policy duplicated it
  std::uint64_t dup_group = 0; ///< shared across copies; receiver dedup key

  /// Transport-chosen path (§3.2: the endpoint, not the network, steers).
  /// Honored by steer::PinnedChannelPolicy; -1 = no preference.
  std::int8_t requested_channel = -1;

  /// Extension slot for the QUIC-like transport's frame payloads.
  std::shared_ptr<void> ext;
};

using PacketPtr = std::shared_ptr<Packet>;

/// Wire overhead we charge per packet (rough IP+transport header cost).
inline constexpr std::int64_t kHeaderBytes = 40;
/// Conventional MTU; transports segment to this.
inline constexpr std::int64_t kMtuBytes = 1500;
/// Max payload per packet.
inline constexpr std::int64_t kMaxPayload = kMtuBytes - kHeaderBytes;

/// Allocate a packet with a fresh id, unique within this thread's current
/// id scope (the counter is thread-local; see net::IdScope in node.hpp).
PacketPtr make_packet();

/// Reset the packet-id counter. Test-only: lets determinism tests produce
/// byte-identical traces across repeated in-process runs.
void reset_packet_ids_for_test();

/// Raw access to the thread-local packet-id counter (next id to hand
/// out). Used by net::IdScope to save/restore around isolated runs.
[[nodiscard]] std::uint64_t packet_id_counter();
void set_packet_id_counter(std::uint64_t next);

/// Convenience: a pure-ACK packet for `flow` acking `ack`.
PacketPtr make_ack(FlowId flow, std::uint64_t ack, sim::Time ts_echo);

/// Deep copy with a fresh id (used by redundancy policies).
PacketPtr clone_packet(const Packet& p);

}  // namespace hvc::net
