#include "steer/cost_aware.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace hvc::steer {

Decision CostAwarePolicy::steer(const net::Packet& pkt,
                                std::span<const ChannelView> channels,
                                sim::Time now) {
  if (channels.size() < 2) return {0, {}, "cost-aware:single-channel"};

  bucket_ = std::min(
      cfg_.max_budget,
      bucket_ + cfg_.budget_per_second * sim::to_seconds(now - last_refill_));
  last_refill_ = now;

  if (channels[0].down) {
    // Availability beats economics: during a default-channel outage the
    // budget gate is suspended and traffic moves to the fastest survivor
    // (costs keep accruing at the channel, so the spend stays visible).
    return {best_up_channel(channels, pkt.size_bytes), {},
            "cost-aware:failover"};
  }
  const sim::Duration t_default =
      channels[0].est_delivery_delay(pkt.size_bytes);

  std::size_t best = 0;
  double best_value = 0.0;  // ms saved per dollar beyond threshold
  double best_cost = 0.0;
  bool best_free = false;
  for (std::size_t i = 1; i < channels.size(); ++i) {
    const ChannelView& c = channels[i];
    if (c.down) continue;
    if (c.queue_fill() > 0.9) continue;
    const sim::Duration t = c.est_delivery_delay(pkt.size_bytes);
    if (t >= t_default) continue;
    const double saved_ms = sim::to_millis(t_default - t);
    const double cost =
        c.cost_per_megabyte * static_cast<double>(pkt.size_bytes) / 1e6;
    const bool free_control = pkt.type != net::PacketType::kData &&
                              pkt.size_bytes <= cfg_.free_control_bytes;
    if (cost <= 0.0 || free_control) {
      // Free (or comped) improvement: take the fastest such channel.
      if (saved_ms > best_value && 0.0 <= bucket_) {
        best = i;
        best_value = saved_ms;
        best_cost = cost > 0.0 && !free_control ? cost : 0.0;
        best_free = true;
      }
      continue;
    }
    if (cost > bucket_) continue;
    const double value = saved_ms / cost;
    if (value >= cfg_.min_ms_saved_per_dollar && saved_ms > best_value) {
      best = i;
      best_value = saved_ms;
      best_cost = cost;
      best_free = false;
    }
  }
  if (best != 0 && best_cost > 0.0) {
    bucket_ -= best_cost;
    spent_ += best_cost;
    auto& reg = obs::MetricsRegistry::current();
    reg.gauge("steer.cost-aware.spent_dollars").set(spent_);
    reg.gauge("steer.cost-aware.bucket_dollars").set(bucket_);
  }
  if (best == 0) return {0, {}, "cost-aware:default"};
  return {best, {},
          best_free ? "cost-aware:free-upgrade" : "cost-aware:paid-upgrade"};
}

}  // namespace hvc::steer
