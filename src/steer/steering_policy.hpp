// Steering policy interface (§3 of the paper).
//
// A policy is a pure decision object: given a packet and a view of every
// channel's state, pick the channel(s) to carry it. The *layer* a scheme
// lives at is encoded in what it is allowed to observe:
//
//   * network layer (§3.1): packet size/type and channel state only
//     (`uses_app_info() == false`, `uses_flow_priority() == false`) — the
//     shim blanks the cross-layer fields before the policy sees them;
//   * network layer + minimal flow input (Table 1): `uses_flow_priority()`;
//   * cross-layer (§3.3): `uses_app_info()` — message boundaries and
//     message priorities are visible.
//
// This enforcement is what lets the benchmarks compare layers honestly:
// DChannel cannot accidentally peek at SVC layer priorities.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/units.hpp"

namespace hvc::steer {

/// What a policy may observe about one channel at decision time.
/// Fields mirror what a deployable shim can actually know: its own queue
/// backlog, the channel's advertised properties, and (if the MAC/PHY
/// exports it, §3.1) a recent delivery-rate estimate.
struct ChannelView {
  std::size_t index = 0;
  sim::Duration base_owd = 0;
  double avg_rate_bps = 0.0;     ///< long-run configured rate (this direction)
  double recent_rate_bps = 0.0;  ///< MAC/PHY hint; == avg when unavailable
  std::int64_t queued_bytes = 0; ///< local backlog awaiting service
  std::int64_t queue_limit_bytes = 0;
  double loss_rate = 0.0;        ///< configured/estimated wire loss
  bool reliable = false;
  double cost_per_megabyte = 0.0;
  /// Channel is in a full outage (fault injection / MAC-reported link
  /// down, §3). Policies must treat a down channel as unusable and fail
  /// over; est_delivery_delay() already returns kTimeNever for it.
  bool down = false;

  /// Estimated one-way delivery delay if `bytes` were enqueued now.
  [[nodiscard]] sim::Duration est_delivery_delay(std::int64_t bytes) const {
    if (down) return sim::kTimeNever;
    const double rate = recent_rate_bps > 0.0 ? recent_rate_bps : avg_rate_bps;
    if (rate <= 0.0) return sim::kTimeNever;
    const double secs =
        static_cast<double>(queued_bytes + bytes) * 8.0 / rate;
    return sim::seconds_f(secs) + base_owd;
  }

  /// Fraction of the queue already occupied.
  [[nodiscard]] double queue_fill() const {
    return queue_limit_bytes <= 0
               ? 0.0
               : static_cast<double>(queued_bytes) /
                     static_cast<double>(queue_limit_bytes);
  }
};

/// Index of the first channel not marked down; 0 when every channel is
/// down (nothing better exists — the packet queues at the default and
/// rides out the blackout). The standard failover target for policies
/// whose preferred channel is down.
[[nodiscard]] inline std::size_t first_up_channel(
    std::span<const ChannelView> channels) {
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (!channels[i].down) return i;
  }
  return 0;
}

/// Among channels that are up, the one with the smallest estimated
/// delivery delay for `bytes`; falls back to first_up_channel semantics
/// (0) when everything is down.
[[nodiscard]] inline std::size_t best_up_channel(
    std::span<const ChannelView> channels, std::int64_t bytes) {
  std::size_t best = first_up_channel(channels);
  sim::Duration best_d = channels[best].est_delivery_delay(bytes);
  for (std::size_t i = best + 1; i < channels.size(); ++i) {
    if (channels[i].down) continue;
    const sim::Duration d = channels[i].est_delivery_delay(bytes);
    if (d < best_d) {
      best = i;
      best_d = d;
    }
  }
  return best;
}

/// The outcome of steering one packet.
struct Decision {
  std::size_t channel = 0;
  /// Additional channels to carry duplicates (redundancy policies).
  std::vector<std::size_t> duplicate_on;
  /// Why the policy chose `channel`: a static-string tag like
  /// "dchannel:small-object" or "min-delay:tie-break", recorded by the
  /// steering-decision audit log (obs/audit.hpp). Must point at a string
  /// literal (the shim stores the pointer, never a copy); nullptr = the
  /// policy did not say.
  const char* reason = nullptr;
};

class SteeringPolicy {
 public:
  virtual ~SteeringPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Layer declaration; the shim blanks fields the policy may not read.
  [[nodiscard]] virtual bool uses_app_info() const { return false; }
  [[nodiscard]] virtual bool uses_flow_priority() const { return false; }

  /// Choose channel(s) for `pkt`. `channels` is never empty; index 0 is
  /// the default (high-bandwidth) channel.
  virtual Decision steer(const net::Packet& pkt,
                         std::span<const ChannelView> channels,
                         sim::Time now) = 0;
};

}  // namespace hvc::steer
