# Empty compiler generated dependencies file for ablation_tsn_gating.
# This may be replaced when dependencies are built.
