// Unit tests for the simulation kernel: event ordering, timers, RNG
// determinism, and the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace hvc::sim {
namespace {

TEST(Units, TransmissionTimeRoundsUp) {
  // 1500 bytes at 12 Mbps = exactly 1 ms.
  EXPECT_EQ(transmission_time(1500, mbps(12)), milliseconds(1));
  // One byte at 1 Gbps = 8 ns.
  EXPECT_EQ(transmission_time(1, gbps(1)), 8);
  // Never zero for a non-empty packet.
  EXPECT_GT(transmission_time(1, gbps(100)), 0);
}

TEST(Units, BytesInInvertsTransmissionTime) {
  const RateBps rate = mbps(60);
  const Duration d = seconds(2);
  const std::int64_t bytes = bytes_in(d, rate);
  EXPECT_EQ(bytes, 15'000'000);  // 60 Mbps * 2 s = 120 Mbit = 15 MB
}

TEST(Units, ZeroAndNegativeGuards) {
  EXPECT_EQ(transmission_time(1500, 0), kTimeNever);
  EXPECT_EQ(bytes_in(-5, mbps(1)), 0);
  EXPECT_EQ(bytes_in(seconds(1), 0), 0);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(milliseconds(30), [&] { order.push_back(3); });
  s.at(milliseconds(10), [&] { order.push_back(1); });
  s.at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(Simulator, SameTimeEventsAreFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int fired = 0;
  s.at(milliseconds(1), [&] {
    s.after(milliseconds(1), [&] {
      ++fired;
      s.after(milliseconds(1), [&] { ++fired; });
    });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), milliseconds(3));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(20), [&] { ++fired; });
  s.run_until(milliseconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), milliseconds(15));
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.at(milliseconds(15), [&] { ++fired; });
  s.run_until(milliseconds(15));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(20), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.at(milliseconds(10), [] {});
  s.run();
  EXPECT_THROW(s.at(milliseconds(5), [] {}), std::logic_error);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.at(milliseconds(10), [&] {
    s.after(-milliseconds(5), [] {});  // must not throw
  });
  EXPECT_NO_THROW(s.run());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm(milliseconds(10));
  t.arm(milliseconds(30));  // supersedes the first arm
  s.run_until(milliseconds(20));
  EXPECT_EQ(fired, 0);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, CancelWorks) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm(milliseconds(10));
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DestructionCancelsPendingFire) {
  Simulator s;
  int fired = 0;
  {
    Timer t(s, [&] { ++fired; });
    t.arm(milliseconds(5));
  }
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(11);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  Summary s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(40.0));
  EXPECT_NEAR(s.mean(), 40.0, 1.5);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.fork();
  // Consuming the child must not perturb the parent's future values.
  Rng parent2(5);
  (void)parent2.fork();
  for (int i = 0; i < 100; ++i) (void)child.next_u64();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
}

TEST(Summary, PercentilesExact) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.011);
}

TEST(Summary, MeanMinMaxStddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(Summary, StddevIsNumericallyStableForLargeMeans) {
  // The naive sum-of-squares formula catastrophically cancels when the
  // mean dwarfs the spread (timestamps in ns, say): E[x^2] - E[x]^2
  // computes 1e18-ish minus 1e18-ish. The two-pass form must not.
  Summary s;
  const double base = 1e9;
  for (double v : {base - 1.0, base, base + 1.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-9);

  Summary tight;
  for (int i = 0; i < 1000; ++i) tight.add(7.25e12);
  EXPECT_DOUBLE_EQ(tight.stddev(), 0.0);  // never NaN from sqrt(negative)
}

TEST(Summary, CdfIsMonotone) {
  Summary s;
  Rng r(3);
  for (int i = 0; i < 1000; ++i) s.add(r.uniform());
  const auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 1000u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Summary, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(WindowedFilters, MinTracksWindow) {
  WindowedMin f(milliseconds(100));
  f.update(milliseconds(0), 10.0);
  f.update(milliseconds(50), 20.0);
  EXPECT_DOUBLE_EQ(f.get(), 10.0);
  // The 10.0 sample ages out of the window.
  f.update(milliseconds(150), 30.0);
  EXPECT_DOUBLE_EQ(f.get(), 20.0);
  f.update(milliseconds(250), 40.0);
  EXPECT_DOUBLE_EQ(f.get(), 30.0);  // the 150 ms sample is still in window
}

TEST(WindowedFilters, MaxTracksWindow) {
  WindowedMax f(milliseconds(100));
  f.update(milliseconds(0), 100.0);
  f.update(milliseconds(50), 50.0);
  EXPECT_DOUBLE_EQ(f.get(), 100.0);
  f.update(milliseconds(150), 10.0);
  EXPECT_DOUBLE_EQ(f.get(), 50.0);
}

TEST(WindowedFilters, NewExtremeReplacesImmediately) {
  WindowedMin f(seconds(10));
  f.update(seconds(1), 50.0);
  f.update(seconds(2), 5.0);
  EXPECT_DOUBLE_EQ(f.get(), 5.0);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.125);
  EXPECT_FALSE(e.initialized());
  e.update(80.0);
  EXPECT_DOUBLE_EQ(e.get(), 80.0);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.get(), 70.0);
}

TEST(TimeSeries, BucketedMeans) {
  TimeSeries ts;
  ts.add(milliseconds(10), 1.0);
  ts.add(milliseconds(20), 3.0);
  ts.add(milliseconds(110), 10.0);
  const auto buckets = ts.bucketed(milliseconds(100));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 2.0);
  EXPECT_DOUBLE_EQ(buckets[1].value, 10.0);
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(milliseconds(i * 10), i);
  EXPECT_DOUBLE_EQ(ts.mean_in(milliseconds(0), milliseconds(50)), 2.0);
}

// ---- Calendar-queue edge cases ------------------------------------------
//
// The calendar queue must pop in exactly the (at, id) order the reference
// heap defines through every structural transition: a geometry rebuild
// mid-drain, far-future entries migrating out of the overflow heap, and
// same-instant pushes landing in a bucket that is already draining. Each
// test drives a raw CalendarQueue and DebugHeapQueue in lockstep so a
// divergence names the exact pop where order broke.

namespace {

class QueuePair {
 public:
  void push(Time at) {
    cal_.enqueue(at, id_, EventFn([] {}));
    heap_.enqueue(at, id_, EventFn([] {}));
    ++id_;
  }

  /// Pop one entry from both queues; returns false (after recording a
  /// failure) when they disagree.
  bool pop_and_compare(const char* phase) {
    EventEntry* c = cal_.peek();
    EventEntry* h = heap_.peek();
    if (c == nullptr || h == nullptr) {
      ADD_FAILURE() << phase << ": a queue drained early (pop " << pops_
                    << ")";
      return false;
    }
    const bool same = c->at == h->at && c->id == h->id;
    EXPECT_TRUE(same) << phase << ": pop " << pops_ << " calendar=("
                      << c->at << "," << c->id << ") heap=(" << h->at
                      << "," << h->id << ")";
    cal_.drop_front();
    heap_.drop_front();
    ++pops_;
    return same;
  }

  void drain_and_compare(const char* phase) {
    while (cal_.entries() > 0 || heap_.entries() > 0) {
      if (!pop_and_compare(phase)) return;
    }
  }

  [[nodiscard]] CalendarQueue& calendar() { return cal_; }
  [[nodiscard]] std::size_t pending() const { return cal_.entries(); }

 private:
  CalendarQueue cal_;
  DebugHeapQueue heap_;
  EventId id_ = 0;
  std::uint64_t pops_ = 0;
};

}  // namespace

TEST(CalendarQueue, SameTimestampFifoSurvivesBucketRebuild) {
  QueuePair q;
  const std::int64_t initial_width = q.calendar().tick_width();
  // Crowded buckets: 40 same-instant events per tick across 300 ticks
  // pushes the average drained bucket far past the narrow threshold, so
  // a rebuild (shift change) triggers mid-stream — with thousands of
  // same-timestamp groups still pending across it.
  const Time tick = initial_width;
  for (int t = 0; t < 300; ++t) {
    for (int k = 0; k < 40; ++k) q.push(t * tick + 5);
  }
  q.drain_and_compare("crowded");
  EXPECT_LT(q.calendar().tick_width(), initial_width)
      << "workload was built to trigger a narrowing retune";
}

TEST(CalendarQueue, WidensTicksOnSparseWorkloadsWithoutReordering) {
  QueuePair q;
  const std::int64_t initial_width = q.calendar().tick_width();
  // Sparse: one event per ~250 ticks, so the bitmap scan walks hundreds
  // of empty slots per pop and the retune widens the ticks.
  for (int i = 0; i < 6000; ++i) {
    q.push(static_cast<Time>(i) * 250 * initial_width + (i % 7));
  }
  q.drain_and_compare("sparse");
  EXPECT_GT(q.calendar().tick_width(), initial_width)
      << "workload was built to trigger a widening retune";
}

TEST(CalendarQueue, FarFutureEntriesMigrateFromOverflowInOrder) {
  QueuePair q;
  Rng r(7);
  // The initial ring spans ~2 ms; spread entries over 100 seconds so
  // nearly everything starts in the overflow heap and must migrate into
  // the ring as the wheel turns — interleaved with near-term entries.
  for (int i = 0; i < 4000; ++i) {
    q.push(static_cast<Time>(r.uniform(0, 100e9)));
  }
  for (int i = 0; i < 400; ++i) {
    q.push(static_cast<Time>(r.uniform(0, 2e6)));
  }
  q.drain_and_compare("far-future");
}

TEST(CalendarQueue, SameTickPushDuringDrainPopsInIdOrder) {
  QueuePair q;
  const Time at = 12345;  // all in one tick
  for (int i = 0; i < 10; ++i) q.push(at);
  // Start draining the bucket, then land more same-instant entries in
  // it: they must insert after the drain cursor, in id order.
  for (int i = 0; i < 3; ++i) q.pop_and_compare("pre-push");
  for (int i = 0; i < 5; ++i) q.push(at);
  // And a push into an *earlier* instant of the draining tick still
  // sorts correctly relative to the pending remainder.
  q.push(at - 1);
  q.drain_and_compare("drain-insert");
}

TEST(CalendarQueue, RandomizedDifferentialAgainstReferenceHeap) {
  QueuePair q;
  Rng r(99);
  Time watermark = 0;  // pops only move forward; pushes stay >= popped time
  for (int round = 0; round < 40000; ++round) {
    const double dice = r.uniform(0, 1);
    if (q.pending() == 0 || dice < 0.55) {
      // Mix of near, same-instant, and far-future pushes.
      const double kind = r.uniform(0, 1);
      Time at = watermark;
      if (kind < 0.3) {
        at += static_cast<Time>(r.uniform(0, 1e4));
      } else if (kind < 0.9) {
        at += static_cast<Time>(r.uniform(0, 1e7));
      } else {
        at += static_cast<Time>(r.uniform(0, 5e9));
      }
      q.push(at);
    } else {
      if (!q.pop_and_compare("randomized")) return;
    }
  }
  q.drain_and_compare("randomized-drain");
}

TEST(Simulator, ZeroDelaySelfPushRunsAfterAllSameInstantEvents) {
  Simulator s;
  std::vector<std::string> order;
  const Time t = milliseconds(1);
  // e0 schedules z0 at the current instant while the instant is still
  // draining; z0 chains z1 the same way. Both must run after e0..e4
  // (FIFO by schedule id), not jump the queue.
  s.at(t, [&] {
    order.push_back("e0");
    s.at(s.now(), [&] {
      order.push_back("z0");
      s.at(s.now(), [&] { order.push_back("z1"); });
    });
  });
  for (int i = 1; i < 5; ++i) {
    s.at(t, [&order, i] { order.push_back("e" + std::to_string(i)); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<std::string>{"e0", "e1", "e2", "e3", "e4",
                                             "z0", "z1"}));
  EXPECT_EQ(s.now(), t);
}

TEST(EventQueueStress, ManyRandomEventsStayOrdered) {
  Simulator s;
  Rng r(99);
  Time last = -1;
  bool ordered = true;
  for (int i = 0; i < 20000; ++i) {
    const Time at = r.uniform_int(0, 1'000'000'000);
    s.at(at, [&, at] {
      if (at < last) ordered = false;
      last = at;
    });
  }
  s.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace hvc::sim
