// Tests for the hot-path profiler (obs/prof) and the perf-manifest layer
// (obs/perf_manifest): scoped-timer accounting, allocation tracking via
// make_packet, the MetricsRegistry fold, the BENCH_*.json schema, the
// regression gate, and — the property the whole design hangs on — that
// profiling on vs off leaves simulation output byte-identical.
#include <gtest/gtest.h>

#include <string>

#include "core/scenario.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_manifest.hpp"
#include "obs/prof.hpp"
#include "obs/summary.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace hvc {
namespace {

namespace prof = obs::prof;

/// Every prof test starts from a clean slate and leaves one behind
/// (profiling state is process-global + thread-local).
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::disable();
    prof::reset();
  }
  void TearDown() override {
    prof::disable();
    prof::reset();
  }
};

TEST_F(ProfTest, ScopedTimerCountsCallsAndCycles) {
  prof::enable();
  for (int i = 0; i < 10; ++i) {
    prof::ScopedTimer t(prof::Hook::kLinkServe);
  }
  prof::disable();
  const prof::HookStats& s = prof::stats(prof::Hook::kLinkServe);
  EXPECT_EQ(s.calls, 10u);
  // TSC deltas are nonnegative; 10 scopes on real hardware take >0 cycles
  // in total (each scope spans at least the two counter reads).
  EXPECT_GT(s.cycles, 0u);
  EXPECT_EQ(prof::stats(prof::Hook::kSteer).calls, 0u);
}

TEST_F(ProfTest, NestedScopesCreditEachHookAndIncludeInnerTime) {
  prof::enable();
  {
    prof::ScopedTimer outer(prof::Hook::kEventPop);
    {
      prof::ScopedTimer inner(prof::Hook::kSteer);
    }
  }
  prof::disable();
  EXPECT_EQ(prof::stats(prof::Hook::kEventPop).calls, 1u);
  EXPECT_EQ(prof::stats(prof::Hook::kSteer).calls, 1u);
  // Inclusive timing: the outer scope contains the inner one.
  EXPECT_GE(prof::stats(prof::Hook::kEventPop).cycles,
            prof::stats(prof::Hook::kSteer).cycles);
}

TEST_F(ProfTest, DisabledHooksRecordNothing) {
  {
    prof::ScopedTimer t(prof::Hook::kLinkServe);
  }
  prof::hook_alloc(64);
  EXPECT_EQ(prof::stats(prof::Hook::kLinkServe).calls, 0u);
  EXPECT_EQ(prof::alloc_stats().allocs, 0u);
}

TEST_F(ProfTest, TimerArmedAtConstructionNotDestruction) {
  // A timer born disabled stays unarmed even if profiling flips on
  // before it dies — otherwise it would record garbage (start_ == 0).
  {
    prof::ScopedTimer t(prof::Hook::kLinkServe);
    prof::enable();
  }
  prof::disable();
  EXPECT_EQ(prof::stats(prof::Hook::kLinkServe).calls, 0u);
}

#if HVC_PROF_ENABLED
TEST_F(ProfTest, MakePacketRoutesThroughTrackingAllocator) {
  prof::enable();
  {
    auto p = net::make_packet();
    auto c = net::clone_packet(*p);
    // p and c free here
  }
  prof::disable();
  const prof::AllocStats& a = prof::alloc_stats();
  EXPECT_EQ(a.allocs, 2u);
  EXPECT_EQ(a.frees, 2u);
  EXPECT_EQ(a.alloc_bytes, a.free_bytes);
  EXPECT_GE(a.alloc_bytes, 2 * sizeof(net::Packet));
  // The counting hooks also bump the packet hook call counters.
  EXPECT_EQ(prof::stats(prof::Hook::kPacketFree).calls, 2u);
  // kPacketAlloc counts both the allocator hook and the scoped timer in
  // make_packet/clone_packet.
  EXPECT_EQ(prof::stats(prof::Hook::kPacketAlloc).calls, 4u);
}
#endif  // HVC_PROF_ENABLED — with hooks compiled out nothing is counted

TEST_F(ProfTest, FoldIntoEmitsStableSchemaIncludingZeros) {
  prof::enable();
  {
    prof::ScopedTimer t(prof::Hook::kSteer);
  }
  prof::disable();

  obs::MetricsRegistry reg;
  prof::fold_into(reg);
  const auto snap = reg.snapshot();
  // Touched hook carries its counts...
  EXPECT_EQ(snap.at("prof.steer.calls"), 1.0);
  EXPECT_GT(snap.at("prof.steer.cycles"), 0.0);
  // ...and untouched hooks still emit zeros (stable manifest schema).
  EXPECT_EQ(snap.at("prof.event_push.calls"), 0.0);
  EXPECT_EQ(snap.at("prof.telemetry_sample.cycles"), 0.0);
  EXPECT_EQ(snap.at("prof.alloc.count"), 0.0);
  EXPECT_EQ(snap.at("prof.free.bytes"), 0.0);
}

TEST_F(ProfTest, HookNamesAreStable) {
  EXPECT_STREQ(prof::hook_name(prof::Hook::kEventPush), "event_push");
  EXPECT_STREQ(prof::hook_name(prof::Hook::kEventPop), "event_pop");
  EXPECT_STREQ(prof::hook_name(prof::Hook::kPacketAlloc), "packet_alloc");
  EXPECT_STREQ(prof::hook_name(prof::Hook::kPacketFree), "packet_free");
  EXPECT_STREQ(prof::hook_name(prof::Hook::kLinkServe), "link_serve");
  EXPECT_STREQ(prof::hook_name(prof::Hook::kSteer), "steer");
  EXPECT_STREQ(prof::hook_name(prof::Hook::kTelemetrySample),
               "telemetry_sample");
}

TEST_F(ProfTest, MonotonicClockAndCalibration) {
  const std::uint64_t a = prof::now_ns();
  const std::uint64_t b = prof::now_ns();
  EXPECT_GE(b, a);
  const double rate = prof::cycles_per_ns();
  EXPECT_GT(rate, 0.0);
  EXPECT_EQ(rate, prof::cycles_per_ns()) << "calibration must be cached";
}

// ---- repeat statistics (obs/summary) -----------------------------------

TEST(RepeatStats, MedianAndIqrFromSummary) {
  sim::Summary s;
  for (const double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(v);
  const obs::RepeatStats r = obs::repeat_stats(s);
  EXPECT_EQ(r.count, 5u);
  EXPECT_DOUBLE_EQ(r.median, 30.0);
  EXPECT_DOUBLE_EQ(r.min, 10.0);
  EXPECT_DOUBLE_EQ(r.max, 50.0);
  EXPECT_DOUBLE_EQ(r.mean, 30.0);
  EXPECT_GT(r.iqr, 0.0);
  EXPECT_LT(r.iqr, 40.0);  // p75-p25 is strictly inside the range

  std::map<std::string, double> flat;
  obs::flatten_repeat_stats(s, "items_per_sec", &flat);
  EXPECT_DOUBLE_EQ(flat.at("items_per_sec.median"), 30.0);
  EXPECT_DOUBLE_EQ(flat.at("items_per_sec.mean"), 30.0);
  EXPECT_EQ(flat.count("items_per_sec.iqr"), 1u);
}

// ---- perf manifest schema ----------------------------------------------

obs::PerfManifest sample_manifest() {
  obs::PerfManifest m;
  m.name = "hotpath";
  m.git_sha = "abc123";
  m.cpu_model = "Test CPU";
  m.build_type = "RelWithDebInfo";
  m.compiler = "g++ 12.2.0";
  m.pinned_cpu = 0;
  m.cycles_per_ns = 2.5;
  m.warmup = 2;
  m.repeats = 7;
  obs::PerfBenchResult b;
  b.name = "event_queue_churn";
  b.unit = "events";
  b.stats = {{"items_per_sec.median", 8e6}, {"items_per_sec.iqr", 1e5}};
  m.benches.push_back(b);
  return m;
}

TEST(PerfManifest, GoldenJsonSchema) {
  const std::string json = sample_manifest().to_json();
  const std::string expected = R"({
  "schema": "hvc-perf-manifest/1",
  "name": "hotpath",
  "git_sha": "abc123",
  "cpu_model": "Test CPU",
  "build_type": "RelWithDebInfo",
  "compiler": "g++ 12.2.0",
  "pinned_cpu": 0,
  "cycles_per_ns": 2.5,
  "warmup": 2,
  "repeats": 7,
  "benches": [
    {
      "name": "event_queue_churn",
      "unit": "events",
      "stats": {
        "items_per_sec.iqr": 1e+05,
        "items_per_sec.median": 8e+06
      }
    }
  ]
}
)";
  EXPECT_EQ(json, expected);
}

TEST(PerfManifest, RoundTripsThroughJson) {
  const obs::PerfManifest m = sample_manifest();
  const auto back = obs::PerfManifest::from_json(m.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, m.name);
  EXPECT_EQ(back->git_sha, m.git_sha);
  EXPECT_EQ(back->cpu_model, m.cpu_model);
  EXPECT_EQ(back->pinned_cpu, m.pinned_cpu);
  EXPECT_DOUBLE_EQ(back->cycles_per_ns, m.cycles_per_ns);
  EXPECT_EQ(back->warmup, m.warmup);
  EXPECT_EQ(back->repeats, m.repeats);
  ASSERT_EQ(back->benches.size(), 1u);
  EXPECT_EQ(back->benches[0].name, "event_queue_churn");
  EXPECT_EQ(back->benches[0].unit, "events");
  EXPECT_DOUBLE_EQ(back->benches[0].stats.at("items_per_sec.median"), 8e6);
  // Serializing the parsed manifest reproduces the bytes exactly.
  EXPECT_EQ(back->to_json(), m.to_json());
}

TEST(PerfManifest, RejectsUnknownSchemaAndGarbage) {
  EXPECT_FALSE(obs::PerfManifest::from_json("not json").has_value());
  EXPECT_FALSE(obs::PerfManifest::from_json("{}").has_value());
  std::string wrong = sample_manifest().to_json();
  const auto at = wrong.find("hvc-perf-manifest/1");
  wrong.replace(at, std::string("hvc-perf-manifest/1").size(),
                "hvc-perf-manifest/999");
  EXPECT_FALSE(obs::PerfManifest::from_json(wrong).has_value());
}

TEST(PerfCompare, ToleranceGateAndMissingBench) {
  const obs::PerfManifest baseline = sample_manifest();

  obs::PerfManifest same = baseline;
  EXPECT_TRUE(obs::compare_perf(baseline, same, 0.5).ok);

  // 40% slower passes a 50% tolerance, fails a 30% one.
  obs::PerfManifest slower = baseline;
  slower.benches[0].stats["items_per_sec.median"] = 8e6 * 0.6;
  EXPECT_TRUE(obs::compare_perf(baseline, slower, 0.5).ok);
  const auto fail = obs::compare_perf(baseline, slower, 0.3);
  EXPECT_FALSE(fail.ok);
  ASSERT_EQ(fail.deltas.size(), 1u);
  EXPECT_FALSE(fail.deltas[0].ok);
  EXPECT_NEAR(fail.deltas[0].ratio, 0.6, 1e-9);

  // A baseline bench missing from the current run always fails.
  obs::PerfManifest empty = baseline;
  empty.benches.clear();
  const auto missing = obs::compare_perf(baseline, empty, 0.99);
  EXPECT_FALSE(missing.ok);
  ASSERT_EQ(missing.deltas.size(), 1u);
  EXPECT_EQ(missing.deltas[0].note, "missing in current run");

  // Extra benches in the current run are growth, not failure.
  obs::PerfBenchResult extra;
  extra.name = "new_bench";
  same.benches.push_back(extra);
  EXPECT_TRUE(obs::compare_perf(baseline, same, 0.5).ok);
}

// ---- the determinism pin ------------------------------------------------

/// One fixed scenario run in a fresh metrics/id scope; returns the full
/// registry snapshot as CSV — the byte format the determinism promise
/// covers.
std::string run_fig1_snapshot() {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  net::IdScope ids;
  (void)core::run_bulk(core::ScenarioConfig::fig1(), "cubic",
                       sim::seconds(2));
  return obs::snapshot_to_csv(reg.snapshot());
}

TEST_F(ProfTest, ProfilingOnVsOffIsByteIdentical) {
  const std::string off = run_fig1_snapshot();

  prof::reset();
  prof::enable();
  const std::string on = run_fig1_snapshot();
  prof::disable();

  EXPECT_EQ(on, off) << "profiling must never perturb simulation output";
#if HVC_PROF_ENABLED
  // And the profiled run actually measured the hot paths (the hooks are
  // live, they just stay out of the simulation's exports).
  EXPECT_GT(prof::stats(prof::Hook::kEventPop).calls, 0u);
  EXPECT_GT(prof::stats(prof::Hook::kSteer).calls, 0u);
  EXPECT_GT(prof::alloc_stats().allocs, 0u);
#endif
  // prof.* metrics never leak into a registry unless fold_into is called.
  EXPECT_EQ(on.find("prof."), std::string::npos);
}

}  // namespace
}  // namespace hvc
