// Figure 1a: throughput achieved by CCAs under DChannel steering on two
// channels with a latency-bandwidth trade-off (eMBB 50 ms/60 Mbps, URLLC
// 5 ms/2 Mbps). Paper reference values: CUBIC ~60, BBR 26.5, Vegas 2.73,
// Vivace 1.49 Mbps. We additionally report the §3.2 HVC-aware CCA
// (ablation C covers it in detail) and a no-steering baseline per CCA.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("fig1a_cca_throughput");
  bench::print_header(
      "Figure 1a: CCA throughput under DChannel steering (60 s bulk)");
  bench::print_row({"cca", "steered Mbps", "paper Mbps", "baseline Mbps",
                    "pkts eMBB", "pkts URLLC"});

  const struct {
    const char* cca;
    double paper;
  } rows[] = {
      {"cubic", 60.0}, {"bbr", 26.5}, {"vegas", 2.73},
      {"vivace", 1.49}, {"hvc", -1.0},
  };

  for (const auto& row : rows) {
    const auto steered = core::run_bulk(core::ScenarioConfig::fig1(), row.cca,
                                        sim::seconds(60));
    // Baseline: same CCA on eMBB alone (no steering).
    const auto baseline = core::run_bulk(
        core::ScenarioConfig::fig1("embb-only"), row.cca, sim::seconds(60));
    bench::print_row(
        {row.cca, bench::fmt(steered.goodput_bps / 1e6, 2),
         row.paper > 0 ? bench::fmt(row.paper, 2) : std::string("n/a"),
         bench::fmt(baseline.goodput_bps / 1e6, 2),
         std::to_string(steered.data_packets_per_channel[0]),
         std::to_string(steered.data_packets_per_channel[1])});
  }
  std::printf(
      "\nShape check (paper): loss-based CUBIC keeps the high-bandwidth\n"
      "channel busy; every delay-based CCA (BBR/Vegas/Vivace) collapses\n"
      "because steering corrupts its delay signal; the HVC-aware CCA\n"
      "(our §3.2 implementation) restores full utilization.\n");
  return 0;
}
