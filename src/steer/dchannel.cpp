#include "steer/dchannel.hpp"

namespace hvc::steer {

namespace {

/// Serialization time of `bytes` at the channel's effective rate.
sim::Duration serialization(const ChannelView& c, std::int64_t bytes) {
  const double rate = c.recent_rate_bps > 0.0 ? c.recent_rate_bps
                                              : c.avg_rate_bps;
  if (rate <= 0.0) return sim::kTimeNever;
  return sim::seconds_f(static_cast<double>(bytes) * 8.0 / rate);
}

}  // namespace

std::size_t dchannel_choose(const net::Packet& pkt,
                            std::span<const ChannelView> channels,
                            const DChannelConfig& cfg) {
  return dchannel_choose(pkt, channels, cfg, nullptr);
}

std::size_t dchannel_choose(const net::Packet& pkt,
                            std::span<const ChannelView> channels,
                            const DChannelConfig& cfg, const char** reason) {
  if (reason != nullptr) *reason = "dchannel:default";
  if (channels.size() < 2) return 0;

  const ChannelView& primary = channels[0];
  if (primary.down) {
    // The default channel is dark: the reward/cost test is moot — pick
    // the fastest surviving channel outright.
    const std::size_t best = best_up_channel(channels, pkt.size_bytes);
    if (best != 0 && reason != nullptr) *reason = "dchannel:failover";
    return best;
  }
  const sim::Duration t_primary =
      primary.est_delivery_delay(pkt.size_bytes);

  const bool control =
      pkt.type != net::PacketType::kData && cfg.accelerate_control;

  std::size_t best = 0;
  sim::Duration best_net_reward = 0;
  const double fill_cap =
      control ? cfg.max_queue_fill : cfg.max_data_queue_fill;
  for (std::size_t i = 1; i < channels.size(); ++i) {
    const ChannelView& sec = channels[i];
    if (sec.down) continue;
    if (sec.queue_fill() > fill_cap) continue;
    const sim::Duration t_sec = sec.est_delivery_delay(pkt.size_bytes);
    if (t_sec >= t_primary) continue;
    const sim::Duration reward = t_primary - t_sec;
    auto cost = static_cast<sim::Duration>(
        cfg.cost_factor *
        static_cast<double>(serialization(sec, pkt.size_bytes)));
    if (!control && cfg.queue_risk > 0.0) {
      cost += static_cast<sim::Duration>(
          cfg.queue_risk * static_cast<double>(serialization(
                               sec, sec.queued_bytes)));
    }
    const sim::Duration margin = control ? 0 : cfg.min_margin;
    const sim::Duration net = reward - cost - margin;
    if (net > best_net_reward) {
      best_net_reward = net;
      best = i;
    }
  }
  if (best != 0 && reason != nullptr) {
    // Distinguish *why* data won the reward test: a small object rides
    // almost free (the §3.2 ACK-acceleration effect extended to tiny
    // responses), bulk data genuinely beat the margin.
    if (control) {
      *reason = "dchannel:control";
    } else if (pkt.size_bytes <= 512) {
      *reason = "dchannel:small-object";
    } else {
      *reason = "dchannel:reward";
    }
  }
  return best;
}

Decision DChannelPolicy::steer(const net::Packet& pkt,
                               std::span<const ChannelView> channels,
                               sim::Time /*now*/) {
  if (cfg_.use_flow_priority && pkt.flow_priority > 0 &&
      (channels.empty() || !channels[0].down)) {
    // Background flows stay on the default channel: the whole point of
    // the Table 1 experiment is keeping them out of URLLC's tiny queue.
    // During a channel-0 outage the rule yields to failover below.
    return {0, {}, "dchannel:flow-priority"};
  }
  const char* reason = nullptr;
  const std::size_t ch = dchannel_choose(pkt, channels, cfg_, &reason);
  return {ch, {}, reason};
}

}  // namespace hvc::steer
