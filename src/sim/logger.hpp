// Minimal leveled logger stamped with simulated time.
//
// Logging is off by default (benchmarks must not pay for I/O); tests and
// examples can raise the level per-component. Not thread-safe by design:
// the simulator is single-threaded.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "sim/units.hpp"

namespace hvc::sim {

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Parse "off|error|warn|info|debug|trace" (case-insensitive) or a
/// numeric level; returns `fallback` for unrecognized input.
LogLevel parse_log_level(std::string_view text, LogLevel fallback);

class Logger {
 public:
  Logger(std::string component, const class Simulator* sim)
      : component_(std::move(component)), sim_(sim) {}

  void set_level(LogLevel lvl) { level_ = lvl; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel lvl) const { return lvl <= level_; }

  void log(LogLevel lvl, std::string_view msg) const;

  /// printf-style formatting overload; the format string is only
  /// evaluated when `lvl` is enabled.
  void logf(LogLevel lvl, const char* fmt, ...) const
      __attribute__((format(printf, 3, 4)));

  void error(std::string_view m) const { log(LogLevel::kError, m); }
  void warn(std::string_view m) const { log(LogLevel::kWarn, m); }
  void info(std::string_view m) const { log(LogLevel::kInfo, m); }
  void debug(std::string_view m) const { log(LogLevel::kDebug, m); }
  void trace(std::string_view m) const { log(LogLevel::kTrace, m); }

  /// Global default level applied to newly created loggers. The first
  /// call honours an `HVC_LOG=<level>` environment override (level name
  /// or number, e.g. HVC_LOG=debug or HVC_LOG=4), so examples and
  /// benches can enable logging without recompiling; an explicit
  /// set_global_level() afterwards still wins.
  static void set_global_level(LogLevel lvl);
  static LogLevel global_level();

 private:
  std::string component_;
  const Simulator* sim_;
  LogLevel level_ = global_level();
};

}  // namespace hvc::sim
