// Browser + origin-server model: loads a WebPage over the emulated
// network and reports PLT (the onLoad analogue: all objects fetched).
//
// One Connection per origin (HTTP/2 style), created on first use with a
// one-RTT handshake. Objects become requestable when their dependencies
// complete; requests are small upstream messages, responses are
// object-sized downstream messages. Everything rides the steering shims,
// so request/response/ACK acceleration behaves exactly as in the paper's
// Table 1 setup.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "app/web/page.hpp"
#include "net/node.hpp"
#include "obs/span.hpp"
#include "transport/connection.hpp"

namespace hvc::app::web {

struct BrowserConfig {
  transport::TcpConfig transport;  ///< applied to every origin connection
  std::int64_t request_bytes = 400;
  /// Max requests outstanding per origin connection (HTTP/2 streams).
  int max_concurrent_per_origin = 6;

  /// Client-side compute per completed object (parse/style/execute)
  /// before its dependents are discovered and requested. Chromium's
  /// main-thread time is a large PLT component; it also paces the request
  /// stream, which matters to steering. Lognormal; render-blocking
  /// objects (CSS/JS) cost `blocking_scale` more.
  sim::Duration processing_mean = sim::milliseconds(12);
  double processing_sigma = 0.5;   ///< lognormal sigma
  double blocking_scale = 2.0;
  std::uint64_t processing_seed = 77;

  BrowserConfig() {
    transport.cca = "cubic";           // the paper's Table 1 uses CUBIC
    transport.annotate_app_info = true;  // message framing for req/resp
  }
};

/// Loads one page once; self-contained (owns its connections).
class PageLoadSession {
 public:
  PageLoadSession(net::Node& client, net::Node& server, const WebPage& page,
                  BrowserConfig cfg, std::function<void(sim::Time)> done);

  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] sim::Time plt() const { return plt_; }
  [[nodiscard]] int objects_loaded() const { return loaded_count_; }

  /// Aggregate transport counters over all origin connections (both
  /// directions) — retransmissions, RTOs, spurious loss marks.
  struct TransportTotals {
    std::int64_t packets_sent = 0;
    std::int64_t retransmissions = 0;
    std::int64_t rto_count = 0;
    std::int64_t spurious_loss_marks = 0;
  };
  [[nodiscard]] TransportTotals transport_totals() const;

 private:
  struct Origin {
    std::unique_ptr<transport::Connection> conn;
    bool ready = false;           ///< handshake complete
    int outstanding = 0;
    std::vector<int> queue;       ///< requestable objects awaiting a slot
    std::map<std::uint64_t, int> request_to_object;
    std::map<std::uint64_t, int> response_to_object;
  };

  void maybe_request(int object_id);
  void pump_origin(int origin_id);
  void on_object_complete(int object_id);
  void on_object_processed(int object_id);
  void offer_span(int last_object);

  net::Node& client_;
  net::Node& server_;
  const WebPage& page_;
  BrowserConfig cfg_;
  std::function<void(sim::Time)> done_;

  std::vector<Origin> origins_;
  sim::Rng processing_rng_;
  std::vector<int> deps_remaining_;
  std::vector<bool> requested_;
  std::vector<bool> loaded_;
  int loaded_count_ = 0;
  int processed_count_ = 0;
  sim::Time started_at_ = 0;
  sim::Time plt_ = -1;
  bool finished_ = false;

  /// Span support (obs/span.hpp): per-object milestones recorded only
  /// when a recorder is active, so the critical request chain can be
  /// reconstructed post-hoc and offered as one exact-sum span unit.
  obs::SpanRecorder* spans_ = nullptr;
  std::vector<sim::Time> requested_at_;   ///< write_message time
  std::vector<sim::Time> completed_at_;   ///< response fully received
  std::vector<sim::Time> processed_at_;   ///< client compute done
  std::vector<int> trigger_;              ///< dep whose processing unlocked
};

/// Repeating background JSON traffic (the Table 1 interferers): an
/// uploader pushes `bytes` upstream back-to-back; a downloader requests
/// `bytes` downstream back-to-back.
class BackgroundJsonFlow {
 public:
  enum class Kind { kUpload, kDownload };

  BackgroundJsonFlow(net::Node& client, net::Node& server, Kind kind,
                     std::int64_t bytes, transport::TcpConfig cfg);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] std::int64_t transfers_completed() const {
    return completed_;
  }

 private:
  void next_transfer();

  net::Node& client_;
  net::Node& server_;
  Kind kind_;
  std::int64_t bytes_;
  transport::Connection conn_;
  bool running_ = false;
  std::int64_t completed_ = 0;
};

}  // namespace hvc::app::web
