// R11 depth bound: the allocation is two call-edges below the profiled
// function — invisible at the default depth of 1, flagged at depth 2.
namespace fx11e {

void fx11e_inner() {
  std::vector<int> held;
  held.reserve(16);
}

void fx11e_middle() { fx11e_inner(); }

void fx11e_hot() {
  HVC_PROF_SCOPE(obs::prof::Hook::kFixture);
  fx11e_middle();
}

}  // namespace fx11e
