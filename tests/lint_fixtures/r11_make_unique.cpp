// R11 seed: std::make_unique inside a profiled function.
namespace fx11b {

void fx11b_hot() {
  HVC_PROF_SCOPE(obs::prof::Hook::kFixture);
  auto p = std::make_unique<int>(3);
  fx11b_use(p);
}

}  // namespace fx11b
