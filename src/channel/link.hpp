// A unidirectional emulated link: droptail queue → trace-driven service →
// loss model → propagation delay → receiver.
//
// Service follows Mahimahi's delivery-opportunity model (trace/trace.hpp).
// Two service disciplines are provided:
//   * kBytesPerOpportunity (default): each opportunity grants MTU bytes of
//     credit (with small carryover) and the queue drains while credit
//     covers the head packet — byte-accurate for small-packet traffic such
//     as ACK streams on URLLC.
//   * kPacketPerOpportunity: strict Mahimahi semantics, one packet (of any
//     size up to MTU) per opportunity — used for cross-validation tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "channel/loss.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace hvc::channel {

using PacketHandler = std::function<void(net::PacketPtr)>;

enum class ServiceMode : std::uint8_t {
  kBytesPerOpportunity,
  kPacketPerOpportunity,
};

struct LinkConfig {
  std::string name = "link";
  trace::CapacityTrace capacity = trace::CapacityTrace::constant(sim::mbps(10));
  sim::Duration prop_delay = sim::milliseconds(10);
  std::int64_t queue_limit_bytes = 2 * 1024 * 1024;
  LossConfig loss;
  ServiceMode mode = ServiceMode::kBytesPerOpportunity;
  /// Max unused credit carried across opportunities (bytes mode).
  std::int64_t max_credit_bytes = 2 * net::kMtuBytes;
  std::uint64_t loss_seed = 42;
};

struct LinkStats {
  std::int64_t enqueued_packets = 0;
  std::int64_t enqueued_bytes = 0;
  std::int64_t delivered_packets = 0;
  std::int64_t delivered_bytes = 0;
  std::int64_t dropped_queue_packets = 0;   ///< droptail
  std::int64_t dropped_wire_packets = 0;    ///< loss model
  sim::Summary queue_delay_ms;              ///< per delivered packet
};

class Link {
 public:
  Link(sim::Simulator& sim, LinkConfig cfg);
  /// Folds stats_ into the registry counters (see note below).
  ~Link();

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Submit a packet. May drop immediately (droptail).
  void send(net::PacketPtr p);

  void set_receiver(PacketHandler h) { receiver_ = std::move(h); }

  /// Observer invoked on droptail drops (e.g. for monitors/tests).
  void set_drop_observer(PacketHandler h) { drop_observer_ = std::move(h); }

  // ---- Introspection used by steering policies and monitors ----

  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] std::size_t queued_packets() const { return queue_.size(); }

  /// Expected delay for a byte entering the queue now: current backlog
  /// divided by the trace's average rate, plus one serialization slot.
  /// This mirrors what a DChannel-style shim can actually estimate.
  [[nodiscard]] sim::Duration estimated_queue_delay() const;

  /// Estimated delivery time for a hypothetical enqueue of `bytes` now
  /// (queue delay + serialization + propagation).
  [[nodiscard]] sim::Duration estimated_delivery_delay(
      std::int64_t bytes) const;

  [[nodiscard]] sim::Duration prop_delay() const { return cfg_.prop_delay; }
  [[nodiscard]] double average_rate_bps() const {
    return avg_rate_bps_;  // trace property, fixed at construction
  }
  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }

  /// Short-horizon delivery-rate estimate (EWMA over service events),
  /// the kind of MAC/PHY hint §3.1 proposes exporting to steering.
  [[nodiscard]] double recent_delivery_rate_bps() const;

  /// Tag this link with its channel index/direction for the packet
  /// lifecycle tracer (HvcSet::add does this for set members); links used
  /// standalone fall back to the channel id stamped on each packet.
  void set_trace_ids(std::uint8_t channel, std::uint8_t direction) {
    trace_channel_ = channel;
    trace_direction_ = direction;
  }

  // ---- Fault-injection hooks (driven by fault::FaultInjector) ----
  //
  // Faults layer on top of the configured trace/loss model without
  // mutating cfg_, so clearing a fault restores the exact pre-fault
  // behavior. Packets already committed to the wire (inside their
  // propagation delay) are not recalled — like a real outage, only
  // service of queued packets stops.

  /// Full outage: no delivery opportunities are served while down.
  /// Queued packets stay queued; new sends still enqueue (and may
  /// droptail) so the blackout cost is observable. Coming back up
  /// reschedules service immediately.
  void fault_set_down(bool down);

  /// Handover rate cliff: serve only ~`scale` of delivery opportunities
  /// (deterministic credit accumulator, no RNG). `scale >= 1` clears.
  void fault_set_rate_scale(double scale);

  /// Propagation-delay spike added on top of cfg_.prop_delay.
  void fault_set_extra_delay(sim::Duration extra) {
    fault_extra_delay_ = extra;
  }

  /// Gilbert-Elliott burst-loss episode layered over the configured loss
  /// model, with its own deterministic RNG stream.
  void fault_set_episode_loss(const LossConfig& cfg, std::uint64_t seed);
  void fault_clear_episode_loss() { episode_loss_.reset(); }

  [[nodiscard]] bool fault_down() const { return fault_down_; }
  [[nodiscard]] double fault_rate_scale() const { return fault_rate_scale_; }
  [[nodiscard]] sim::Duration fault_extra_delay() const {
    return fault_extra_delay_;
  }

 private:
  [[nodiscard]] std::uint8_t trace_channel(const net::Packet& p) const {
    return trace_channel_ != obs::kNoChannel ? trace_channel_ : p.channel;
  }

  void note_dequeue(const net::Packet& p) {
    if (auto* tr = obs::PacketTracer::active()) {
      tr->record(obs::EventKind::kDequeue, sim_.now(), p.id, p.flow,
                 trace_channel(p), trace_direction_,
                 static_cast<std::uint32_t>(p.size_bytes));
    }
  }
  void schedule_service();
  [[nodiscard]] sim::Time next_opportunity_after(sim::Time t);
  void on_opportunity();
  void deliver(net::PacketPtr p);

  sim::Simulator& sim_;
  LinkConfig cfg_;
  PacketHandler receiver_;
  PacketHandler drop_observer_;
  LossModel loss_;

  // Fault-injection state (see the fault_* hooks above).
  bool fault_down_ = false;
  double fault_rate_scale_ = 1.0;
  double avg_rate_bps_ = 0.0;  ///< cfg_.capacity.average_rate_bps()
  // recent_delivery_rate_bps() memo: the answer only depends on
  // sim-now and the fault knobs, and steering snapshots ask for it
  // once per channel per packet — bursts at one timestamp hit the
  // cache. The fault setters invalidate it (same-timestamp safety).
  mutable sim::Time recent_rate_at_ = -1;
  mutable double recent_rate_bps_ = 0.0;
  // Monotonic cursor over the capacity trace: schedule_service() asks
  // for the next opportunity at nondecreasing sim times, so a cursor
  // beats the trace's binary search. (next_opportunity_after: link.cpp)
  std::size_t opp_idx_ = 0;
  sim::Time opp_cycle_base_ = 0;
  double fault_rate_acc_ = 0.0;
  sim::Duration fault_extra_delay_ = 0;
  std::optional<LossModel> episode_loss_;
  /// Links never reorder: when a delay spike clears while packets are in
  /// flight, later packets are held back to this timestamp instead of
  /// overtaking (kept as the wire FIFO invariant under fault injection).
  sim::Time last_rx_at_ = 0;

  std::deque<net::PacketPtr> queue_;
  std::int64_t queued_bytes_ = 0;
  std::int64_t credit_bytes_ = 0;
  bool service_scheduled_ = false;
  sim::EventId service_event_ = 0;

  // Delivery-rate estimator state.
  sim::Time rate_window_start_ = 0;
  std::int64_t rate_window_bytes_ = 0;
  double rate_estimate_bps_ = 0.0;

  // Observability: lifecycle-tracer track ids and registry counters.
  // stats_ stays the only per-packet accounting; the destructor folds it
  // into these counters so the hot path pays nothing for the registry.
  std::uint8_t trace_channel_ = obs::kNoChannel;
  std::uint8_t trace_direction_ = obs::kNoDirection;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_delivered_bytes_ = nullptr;
  obs::Counter* m_dropped_queue_ = nullptr;
  obs::Counter* m_dropped_wire_ = nullptr;

  // Telemetry time series (pull-based; sampled on the sim-time tick):
  //   link.<name>.{queued_bytes,dropped_packets} — queue dynamics,
  //   channel.<name>.{est_delay_ms,rate_mbps,loss_rate} — the channel
  //   estimates steering policies decide on.
  obs::TelemetryProbes probes_;

  LinkStats stats_;
};

}  // namespace hvc::channel
