// hvc_sweep — expand a sweep file into its run grid and execute it on a
// thread pool.
//
//   hvc_sweep <sweep.json> [-j N] [--out <prefix>] [--dry-run]
//
// Progress goes to stderr; the aggregated results land in
// <prefix>.results.csv / <prefix>.results.jsonl (default prefix:
// bench/out/<sweep name>). Output bytes are independent of -j (see
// src/exp/sweep.hpp), so `diff` between a -j1 and -j8 run of the same
// sweep is empty.
//
// Exit codes: 0 all runs succeeded, 1 at least one run errored,
// 2 bad usage / invalid spec.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/results.hpp"
#include "exp/sweep.hpp"
#include "obs/prof.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hvc_sweep <sweep.json> [-j N] [--out <prefix>] "
               "[--dry-run]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;
  std::string path;
  std::string prefix;
  int jobs = 1;
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-j") == 0) {
      if (i + 1 >= argc) return usage();
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) return usage();
    } else if (std::strncmp(argv[i], "-j", 2) == 0 && argv[i][2] != '\0') {
      jobs = std::atoi(argv[i] + 2);
      if (jobs < 1) return usage();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) return usage();
      prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      dry_run = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  exp::SweepSpec sweep;
  std::vector<exp::ExpandedRun> grid;
  try {
    sweep = exp::SweepSpec::from_file(path);
    grid = exp::expand(sweep);
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_sweep: %s\n", e.what());
    return 2;
  }
  if (prefix.empty()) prefix = exp::default_out_prefix(sweep.name);

  std::fprintf(stderr, "sweep %s: %zu runs", sweep.name.c_str(), grid.size());
  for (const auto& axis : sweep.axes) {
    std::fprintf(stderr, " %s[%zu]", axis.path.c_str(), axis.values.size());
  }
  std::fprintf(stderr, ", -j %d\n", jobs);

  if (dry_run) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::fprintf(stderr, "  run %zu:", i);
      for (const auto& [k, v] : grid[i].params) {
        std::fprintf(stderr, " %s=%s", k.c_str(), v.c_str());
      }
      std::fprintf(stderr, "\n");
    }
    return 0;
  }

  // Wall-clock progress stays on stderr only: the aggregated result
  // files must remain byte-identical across -j and across machines.
  // obs::prof::now_ns() is the sanctioned host-clock accessor (clock
  // island), so the ETA needs no wallclock lint carve-out.
  const std::uint64_t sweep_start = hvc::obs::prof::now_ns();
  const auto results = exp::run_sweep(
      sweep, jobs,
      [sweep_start](const exp::RunResult& r, std::size_t done,
                    std::size_t total) {
        const double elapsed_s =
            static_cast<double>(hvc::obs::prof::now_ns() - sweep_start) *
            1e-9;
        const double rate = elapsed_s > 0 ? static_cast<double>(done) /
                                                elapsed_s
                                          : 0.0;
        const double eta_s =
            rate > 0 ? static_cast<double>(total - done) / rate : 0.0;
        std::fprintf(stderr,
                     "[%zu/%zu] run %zu %s (%.0f ms) | elapsed %.1fs, "
                     "%.2f runs/s, eta %.0fs%s%s\n",
                     done, total, r.index, r.name.c_str(), r.wall_ms,
                     elapsed_s, rate, eta_s,
                     r.error.empty() ? "" : " ERROR: ",
                     r.error.empty() ? "" : r.error.c_str());
      },
      prefix);

  int failed = 0;
  for (const auto& r : results) {
    if (!r.error.empty()) ++failed;
  }

  try {
    exp::write_file(prefix + ".results.csv", exp::to_csv(results));
    exp::write_file(prefix + ".results.jsonl", exp::to_jsonl(results));
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_sweep: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "wrote %s.results.csv, %s.results.jsonl (%zu runs, %d "
               "failed)\n",
               prefix.c_str(), prefix.c_str(), results.size(), failed);
  return failed == 0 ? 0 : 1;
}
