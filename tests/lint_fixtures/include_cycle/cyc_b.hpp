// Include-graph cycle fixture: b <-> a must not hang the reverse-closure.
#pragma once
#include "cyc_a.hpp"
inline int cyc_b_value() { return 2; }
