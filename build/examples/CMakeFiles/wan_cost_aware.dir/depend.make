# Empty dependencies file for wan_cost_aware.
# This may be replaced when dependencies are built.
