file(REMOVE_RECURSE
  "libhvc_trace.a"
)
