// Tests for steering policies: baselines, the DChannel heuristic, the
// cross-layer priority policy, redundancy, and cost-aware steering.
#include <gtest/gtest.h>

#include <array>

#include "steer/basic_policies.hpp"
#include "steer/cost_aware.hpp"
#include "steer/dchannel.hpp"
#include "steer/flow_binding.hpp"
#include "steer/priority.hpp"
#include "steer/redundant.hpp"

namespace hvc::steer {
namespace {

using net::AppHeader;
using net::Packet;
using net::PacketType;
using sim::milliseconds;

/// Two-channel view mirroring the Fig. 1 setup: eMBB (25 ms OWD, 60 Mbps)
/// and URLLC (2.5 ms OWD, 2 Mbps), with adjustable backlogs.
std::array<ChannelView, 2> fig1_views(std::int64_t embb_queue = 0,
                                      std::int64_t urllc_queue = 0) {
  ChannelView embb;
  embb.index = 0;
  embb.base_owd = sim::microseconds(25000);
  embb.avg_rate_bps = 60e6;
  embb.recent_rate_bps = 60e6;
  embb.queued_bytes = embb_queue;
  embb.queue_limit_bytes = 4 * 1024 * 1024;

  ChannelView urllc;
  urllc.index = 1;
  urllc.base_owd = sim::microseconds(2500);
  urllc.avg_rate_bps = 2e6;
  urllc.recent_rate_bps = 2e6;
  urllc.queued_bytes = urllc_queue;
  urllc.queue_limit_bytes = 64 * 1024;
  urllc.reliable = true;
  return {embb, urllc};
}

Packet data_packet(std::int64_t size) {
  Packet p;
  p.type = PacketType::kData;
  p.size_bytes = size;
  return p;
}

Packet ack_packet() {
  Packet p;
  p.type = PacketType::kAck;
  p.size_bytes = net::kHeaderBytes;
  return p;
}

Packet priority_packet(std::uint8_t prio, std::int64_t size = 1200) {
  Packet p = data_packet(size);
  p.app.present = true;
  p.app.message_id = 1;
  p.app.message_bytes = 5000;
  p.app.priority = prio;
  return p;
}

TEST(ChannelViewTest, DeliveryDelayEstimate) {
  const auto v = fig1_views()[1];
  // 1500 B at 2 Mbps = 6 ms serialization + 2.5 ms OWD.
  EXPECT_NEAR(sim::to_millis(v.est_delivery_delay(1500)), 8.5, 0.1);
}

TEST(ChannelViewTest, QueueFillFraction) {
  auto v = fig1_views()[1];
  v.queued_bytes = 32 * 1024;
  EXPECT_NEAR(v.queue_fill(), 0.5, 0.01);
}

TEST(SingleChannel, AlwaysPicksConfigured) {
  SingleChannelPolicy p(1);
  const auto views = fig1_views();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.steer(data_packet(1500), views, 0).channel, 1u);
  }
}

TEST(SingleChannel, OutOfRangeFallsBackToZero) {
  SingleChannelPolicy p(7);
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(), 0).channel, 0u);
}

TEST(RoundRobin, Alternates) {
  RoundRobinPolicy p;
  const auto views = fig1_views();
  EXPECT_EQ(p.steer(data_packet(100), views, 0).channel, 0u);
  EXPECT_EQ(p.steer(data_packet(100), views, 0).channel, 1u);
  EXPECT_EQ(p.steer(data_packet(100), views, 0).channel, 0u);
}

TEST(Weighted, SplitsProportionallyToBandwidth) {
  WeightedPolicy p;
  const auto views = fig1_views();
  std::array<int, 2> counts{0, 0};
  for (int i = 0; i < 620; ++i) {
    ++counts[p.steer(data_packet(1500), views, 0).channel];
  }
  // 60:2 bandwidth ratio -> ~20 packets on URLLC out of 620.
  EXPECT_NEAR(counts[1], 20, 5);
}

TEST(MinDelay, PrefersUrllcWhenEmpty) {
  MinDelayPolicy p;
  // Empty queues: URLLC wins for a small packet (2.66 ms vs 25.2 ms).
  EXPECT_EQ(p.steer(data_packet(100), fig1_views(), 0).channel, 1u);
}

TEST(MinDelay, AvoidsBackloggedUrllc) {
  MinDelayPolicy p;
  // 20 KB backlog on URLLC = 80 ms queue: eMBB wins.
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(0, 20000), 0).channel, 0u);
}

// ---- DChannel heuristic ----

TEST(DChannel, AccelleratesAcksToUrllc) {
  DChannelPolicy p;
  EXPECT_EQ(p.steer(ack_packet(), fig1_views(), 0).channel, 1u);
}

TEST(DChannel, SteersFirstDataPacketWhenRewardExceedsCost) {
  DChannelPolicy p;
  // Empty queues: reward = 25.2 - 8.5 = ~16.7 ms; cost = 6 ms -> steer.
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(), 0).channel, 1u);
}

TEST(DChannel, StopsSteeringWhenUrllcBacklogErasesReward) {
  DChannelPolicy p;
  // 8 KB backlog: est delay = (8000+1500)*8/2e6 + 2.5 ms = 40.5 ms;
  // reward vs 25.2 ms eMBB is negative.
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(0, 8000), 0).channel, 0u);
}

TEST(DChannel, SteersMoreAggressivelyWhenEmbbCongested) {
  DChannelPolicy p;
  // 300 KB on eMBB = 40 ms queue; URLLC with 6 KB backlog still wins.
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(300000, 6000), 0).channel,
            1u);
}

TEST(DChannel, RespectsQueueFillCap) {
  DChannelPolicy p;
  // URLLC nearly full: never steer into it, however attractive.
  auto views = fig1_views(4 * 1024 * 1024, 60 * 1024);
  EXPECT_EQ(p.steer(ack_packet(), views, 0).channel, 0u);
}

TEST(DChannel, IsBlindToAppPriorities) {
  DChannelPolicy p;
  EXPECT_FALSE(p.uses_app_info());
  // Identical decisions for priority-0 and priority-2 packets of the same
  // size and channel state.
  const auto d0 = p.steer(priority_packet(0), fig1_views(0, 5000), 0);
  const auto d2 = p.steer(priority_packet(2), fig1_views(0, 5000), 0);
  EXPECT_EQ(d0.channel, d2.channel);
}

TEST(DChannel, FlowPriorityVariantBarsBackgroundFlows) {
  DChannelPolicy p(DChannelConfig{.use_flow_priority = true});
  EXPECT_TRUE(p.uses_flow_priority());
  Packet bg = ack_packet();
  bg.flow_priority = 1;
  EXPECT_EQ(p.steer(bg, fig1_views(), 0).channel, 0u);
  Packet fg = ack_packet();
  EXPECT_EQ(p.steer(fg, fig1_views(), 0).channel, 1u);
}

TEST(DChannel, SingleChannelDegradesGracefully) {
  DChannelPolicy p;
  std::array<ChannelView, 1> one{fig1_views()[0]};
  EXPECT_EQ(p.steer(data_packet(1500), one, 0).channel, 0u);
}

// ---- Message-priority (cross-layer) policy ----

TEST(MsgPriority, PinsLayer0ToFastChannel) {
  MessagePriorityPolicy p;
  EXPECT_TRUE(p.uses_app_info());
  EXPECT_EQ(p.steer(priority_packet(0), fig1_views(), 0).channel, 1u);
}

TEST(MsgPriority, SendsLowerLayersToEmbb) {
  MessagePriorityPolicy p;
  EXPECT_EQ(p.steer(priority_packet(1), fig1_views(), 0).channel, 0u);
  EXPECT_EQ(p.steer(priority_packet(2), fig1_views(), 0).channel, 0u);
}

TEST(MsgPriority, KeepsWholeMessageOnFastChannelUnderBacklog) {
  // Unlike DChannel, a moderate URLLC backlog does not strand the rest of
  // a high-priority message on eMBB.
  MessagePriorityPolicy p;
  DChannelPolicy dc;
  const auto views = fig1_views(0, 8000);
  EXPECT_EQ(p.steer(priority_packet(0), views, 0).channel, 1u);
  EXPECT_EQ(dc.steer(priority_packet(0), views, 0).channel, 0u);
}

TEST(MsgPriority, OverflowsWhenFastChannelNearlyFull) {
  MessagePriorityPolicy p;
  const auto views = fig1_views(0, 63 * 1024);
  EXPECT_EQ(p.steer(priority_packet(0), views, 0).channel, 0u);
}

TEST(MsgPriority, BackgroundFlowsBarred) {
  MessagePriorityPolicy p;
  Packet bg = priority_packet(0);
  bg.flow_priority = 2;
  EXPECT_EQ(p.steer(bg, fig1_views(), 0).channel, 0u);
}

TEST(MsgPriority, UnannotatedPacketsUseFallbackHeuristic) {
  MessagePriorityPolicy p;
  // Without app info, behaves like DChannel: steer while reward positive.
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(), 0).channel, 1u);
  EXPECT_EQ(p.steer(data_packet(1500), fig1_views(0, 8000), 0).channel, 0u);
}

TEST(MsgPriority, TailAccelerationOption) {
  PrioritySteerConfig cfg;
  cfg.accelerate_tail_bytes = 3000;
  MessagePriorityPolicy p(cfg);
  Packet tail = priority_packet(2);
  tail.app.message_bytes = 50000;
  tail.app.offset = 48000;  // 2000 bytes remain
  EXPECT_EQ(p.steer(tail, fig1_views(), 0).channel, 1u);
  Packet head = priority_packet(2);
  head.app.message_bytes = 50000;
  head.app.offset = 0;
  EXPECT_EQ(p.steer(head, fig1_views(), 0).channel, 0u);
}

// ---- Flow-binding (IANS / Socket Intents granularity) ----

TEST(FlowBinding, BindsByDeclaredIntent) {
  FlowBindingPolicy p;
  Packet sensitive = data_packet(500);
  sensitive.flow = 10;
  sensitive.flow_priority = 0;  // latency-sensitive intent
  Packet bulk = data_packet(1500);
  bulk.flow = 11;
  bulk.flow_priority = 3;
  EXPECT_EQ(p.steer(sensitive, fig1_views(), 0).channel, 1u);
  EXPECT_EQ(p.steer(bulk, fig1_views(), 0).channel, 0u);
}

TEST(FlowBinding, BindingIsSticky) {
  // Whole-flow granularity: once bound, every packet of the flow follows,
  // regardless of instantaneous channel state — the paper's critique.
  FlowBindingPolicy p;
  Packet pkt = data_packet(1000);
  pkt.flow = 20;
  pkt.flow_priority = 0;
  EXPECT_EQ(p.steer(pkt, fig1_views(), 0).channel, 1u);
  // URLLC now deeply backlogged; a per-packet policy would divert.
  EXPECT_EQ(p.steer(pkt, fig1_views(0, 50000), 0).channel, 1u);
  EXPECT_EQ(p.binding(20), 1u);
}

TEST(FlowBinding, DemandEscapeRebindsBigFlows) {
  FlowBindingConfig cfg;
  cfg.max_bytes_on_fast_channel = 10'000;
  FlowBindingPolicy p(cfg);
  Packet pkt = data_packet(1500);
  pkt.flow = 30;
  pkt.flow_priority = 0;
  // First packets ride the fast channel...
  EXPECT_EQ(p.steer(pkt, fig1_views(), 0).channel, 1u);
  // ...until cumulative demand exceeds the cap: re-bound to wide.
  for (int i = 0; i < 10; ++i) (void)p.steer(pkt, fig1_views(), 0);
  EXPECT_EQ(p.steer(pkt, fig1_views(), 0).channel, 0u);
  EXPECT_EQ(p.binding(30), 0u);
}

TEST(FlowBinding, DistinctFlowsBindIndependently) {
  FlowBindingPolicy p;
  for (net::FlowId f = 100; f < 110; ++f) {
    Packet pkt = data_packet(500);
    pkt.flow = f;
    pkt.flow_priority = static_cast<std::uint8_t>(f % 2);
    const auto d = p.steer(pkt, fig1_views(), 0);
    EXPECT_EQ(d.channel, f % 2 == 0 ? 1u : 0u);
  }
}

// ---- Redundant policy ----

TEST(Redundant, MirrorsEverythingWhenConfigured) {
  RedundantPolicy p(std::make_unique<SingleChannelPolicy>(0),
                    RedundantConfig{.mirror_all = true});
  const auto d = p.steer(data_packet(1000), fig1_views(), 0);
  EXPECT_EQ(d.channel, 0u);
  ASSERT_EQ(d.duplicate_on.size(), 1u);
  EXPECT_EQ(d.duplicate_on[0], 1u);
}

TEST(Redundant, MirrorsOnlyImportantByDefault) {
  RedundantPolicy p(std::make_unique<SingleChannelPolicy>(0),
                    RedundantConfig{});
  EXPECT_TRUE(p.steer(priority_packet(0), fig1_views(), 0)
                  .duplicate_on.size() == 1);
  EXPECT_TRUE(
      p.steer(priority_packet(2), fig1_views(), 0).duplicate_on.empty());
  EXPECT_EQ(p.steer(ack_packet(), fig1_views(), 0).duplicate_on.size(), 1u);
}

TEST(Redundant, SkipsFullMirror) {
  RedundantPolicy p(std::make_unique<SingleChannelPolicy>(0),
                    RedundantConfig{.mirror_all = true});
  const auto views = fig1_views(0, 60 * 1024);  // URLLC ~full
  EXPECT_TRUE(p.steer(data_packet(1000), views, 0).duplicate_on.empty());
}

TEST(Redundant, NoMirrorWithSingleChannel) {
  RedundantPolicy p(std::make_unique<SingleChannelPolicy>(0),
                    RedundantConfig{.mirror_all = true});
  std::array<ChannelView, 1> one{fig1_views()[0]};
  EXPECT_TRUE(p.steer(data_packet(1000), one, 0).duplicate_on.empty());
}

// ---- Cost-aware policy ----

std::array<ChannelView, 2> cisp_views() {
  ChannelView fiber;
  fiber.index = 0;
  fiber.base_owd = milliseconds(20);
  fiber.avg_rate_bps = 500e6;
  fiber.recent_rate_bps = 500e6;
  fiber.queue_limit_bytes = 8 * 1024 * 1024;

  ChannelView cisp;
  cisp.index = 1;
  cisp.base_owd = milliseconds(4);
  cisp.avg_rate_bps = 10e6;
  cisp.recent_rate_bps = 10e6;
  cisp.queue_limit_bytes = 256 * 1024;
  cisp.cost_per_megabyte = 0.05;
  return {fiber, cisp};
}

TEST(CostAware, BuysLatencyWithinBudget) {
  CostAwareConfig cfg;
  cfg.budget_per_second = 1.0;
  cfg.max_budget = 1.0;
  cfg.min_ms_saved_per_dollar = 10.0;
  CostAwarePolicy p(cfg);
  const auto d = p.steer(data_packet(1500), cisp_views(), sim::seconds(1));
  EXPECT_EQ(d.channel, 1u);
  EXPECT_GT(p.total_spent(), 0.0);
}

TEST(CostAware, StopsWhenBudgetExhausted) {
  CostAwareConfig cfg;
  cfg.budget_per_second = 0.0;  // nothing accrues
  cfg.max_budget = 0.0;
  CostAwarePolicy p(cfg);
  const auto d = p.steer(data_packet(1500), cisp_views(), sim::seconds(1));
  EXPECT_EQ(d.channel, 0u);
  EXPECT_DOUBLE_EQ(p.total_spent(), 0.0);
}

TEST(CostAware, RejectsPoorValue) {
  CostAwareConfig cfg;
  cfg.budget_per_second = 10.0;
  cfg.max_budget = 10.0;
  cfg.min_ms_saved_per_dollar = 1e9;  // nothing is ever worth it
  cfg.free_control_bytes = 0;
  CostAwarePolicy p(cfg);
  EXPECT_EQ(p.steer(data_packet(1500), cisp_views(), sim::seconds(1)).channel,
            0u);
}

TEST(CostAware, ControlPacketsRideFree) {
  CostAwareConfig cfg;
  cfg.budget_per_second = 0.001;
  cfg.min_ms_saved_per_dollar = 1e9;
  CostAwarePolicy p(cfg);
  EXPECT_EQ(p.steer(ack_packet(), cisp_views(), sim::seconds(1)).channel, 1u);
}

TEST(CostAware, BudgetRefillsOverTime) {
  CostAwareConfig cfg;
  cfg.budget_per_second = 0.0001;
  cfg.max_budget = 0.01;
  cfg.min_ms_saved_per_dollar = 1.0;
  CostAwarePolicy p(cfg);
  // Drain the initial (zero) budget, then advance time to refill.
  EXPECT_EQ(p.steer(data_packet(1500), cisp_views(), 0).channel, 0u);
  const auto late = sim::seconds(100);
  EXPECT_EQ(p.steer(data_packet(1500), cisp_views(), late).channel, 1u);
}

}  // namespace
}  // namespace hvc::steer
