// R10 seed: cross-function taint through a call argument — the tainted
// loop variable is handed to a helper whose parameter reaches the sink.
namespace fx10d {

void fx10d_emit(const std::string& line) {
  write_csv(line);
}

void fx10d_walk() {
  std::unordered_map<int, int> bins;
  for (const auto& [bin, count] : bins) {
    fx10d_emit(bin);
  }
}

}  // namespace fx10d
