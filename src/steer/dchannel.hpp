// Reimplementation of the DChannel packet-steering heuristic [42]
// (Sentosa et al., NSDI '23), the network-layer state of the art the paper
// builds on and critiques (§3.1).
//
// Per packet, DChannel weighs the *reward* of sending it on a low-latency
// secondary channel (the delivery-time saving vs the default channel)
// against the *cost* (the serialization time it occupies on the scarce
// secondary, delaying future packets). Small packets — ACKs, control —
// have near-zero cost and large reward, so they are preferentially
// accelerated; bulk data fills the secondary only until its queue estimate
// erases the reward. This is completely application-agnostic: it treats
// every packet as its own message (the exact limitation §3.3 demonstrates
// against SVC video).
#pragma once

#include <cstdint>

#include "steer/steering_policy.hpp"

namespace hvc::steer {

struct DChannelConfig {
  /// Weight on the secondary-occupancy cost term. 1.0 = count the full
  /// serialization time of the packet as cost.
  double cost_factor = 1.5;

  /// Steer only when reward exceeds cost by at least this margin.
  sim::Duration min_margin = sim::milliseconds(1);

  /// Never steer into a secondary whose queue is fuller than this.
  double max_queue_fill = 0.9;

  /// Stricter cap for bulk data: DChannel keeps the low-latency channel's
  /// queue shallow so small/control packets always find it fast.
  double max_data_queue_fill = 0.5;

  /// Risk weight on the secondary channel's *queueing* delay for data
  /// packets. Queueing committed to a slow channel is certain (it drains
  /// at 2 Mbps), while the primary's queue estimate is transient (bursts
  /// drain at full rate and the estimate is stale within tens of ms), so
  /// the heuristic prices secondary backlog above its face value. This is
  /// what keeps DChannel a win on *stationary* eMBB (Table 1): without
  /// it, object tail-bytes get parked behind deep URLLC queues that
  /// outlive the primary's burst.
  double queue_risk = 0.0;

  /// Treat ACK/control packets with a relaxed (zero) margin — DChannel
  /// derives much of its PLT gain from accelerating ACKs (§3.2).
  bool accelerate_control = true;

  /// Table 1 variant ("DChannel w. priority"): background flows
  /// (flow_priority > 0) are barred from the secondary channel.
  bool use_flow_priority = false;

  /// The defaults above steer aggressively (data moves to the secondary
  /// whenever the instantaneous estimate favors it) — the configuration
  /// whose interaction with delay-based CCAs Fig. 1 studies.
  static DChannelConfig aggressive() { return {}; }

  /// Deployment tuning for TCP request/response traffic (Table 1): a
  /// higher occupancy cost and margin keep bulk data off the secondary
  /// unless the primary shows sustained queueing, so transient
  /// slow-start bursts don't scatter a flow across channels and confuse
  /// the sender's delay heuristics (HyStart, RACK).
  static DChannelConfig web_tuned() {
    DChannelConfig cfg;
    cfg.cost_factor = 3.0;
    cfg.min_margin = sim::milliseconds(5);
    return cfg;
  }
};

class DChannelPolicy final : public SteeringPolicy {
 public:
  explicit DChannelPolicy(DChannelConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override {
    return cfg_.use_flow_priority ? "dchannel+flowprio" : "dchannel";
  }
  [[nodiscard]] bool uses_flow_priority() const override {
    return cfg_.use_flow_priority;
  }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override;

  [[nodiscard]] const DChannelConfig& config() const { return cfg_; }

 private:
  DChannelConfig cfg_;
};

/// The reward/cost core, exposed so cross-layer policies can reuse it as
/// their fallback for packets without application metadata.
/// Returns the chosen channel index. When `reason` is non-null it
/// receives a static audit tag explaining the outcome:
///   dchannel:control       control/ACK accelerated (relaxed margin)
///   dchannel:small-object  small data packet steered (cheap, big reward)
///   dchannel:reward        bulk data steered, net reward beat the margin
///   dchannel:default       stayed on the primary channel
std::size_t dchannel_choose(const net::Packet& pkt,
                            std::span<const ChannelView> channels,
                            const DChannelConfig& cfg,
                            const char** reason);
std::size_t dchannel_choose(const net::Packet& pkt,
                            std::span<const ChannelView> channels,
                            const DChannelConfig& cfg);

}  // namespace hvc::steer
