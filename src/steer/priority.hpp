// Cross-layer, message-priority-aware steering (§3.3).
//
// The application marks each packet with the message it belongs to and the
// message's priority (e.g. SVC spatial layer: layer 0 = priority 0). The
// policy keeps *whole* high-priority messages on the low-latency reliable
// channel — the property DChannel cannot provide, since it treats every
// packet as its own message and strands parts of layer 0 on eMBB whenever
// the URLLC queue estimate momentarily loses (Fig. 2 discussion).
#pragma once

#include <cstdint>

#include "steer/dchannel.hpp"
#include "steer/steering_policy.hpp"

namespace hvc::steer {

struct PrioritySteerConfig {
  /// Messages with priority <= this are pinned to the accelerated channel.
  std::uint8_t accelerate_max_priority = 0;

  /// Index of the channel used for accelerated messages; by convention the
  /// low-latency channel. SIZE_MAX = auto (lowest base OWD).
  std::size_t fast_channel = SIZE_MAX;

  /// If the fast channel's queue is fuller than this, overflow to the
  /// default channel rather than build unbounded delay. The paper's video
  /// scheme sizes layer 0 under URLLC capacity so this rarely triggers.
  double max_queue_fill = 0.95;

  /// Also accelerate ACK/control packets (as DChannel does).
  bool accelerate_control = true;

  /// Bar background flows (flow_priority > 0) from the fast channel.
  bool use_flow_priority = true;

  /// §3.2 option: accelerate the tail of any message once fewer than this
  /// many bytes remain, to cut head-of-line blocking on the last RTT.
  /// 0 disables.
  std::uint32_t accelerate_tail_bytes = 0;

  /// Heuristic used for packets carrying no application metadata.
  DChannelConfig fallback;
};

class MessagePriorityPolicy final : public SteeringPolicy {
 public:
  explicit MessagePriorityPolicy(PrioritySteerConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "msg-priority"; }
  [[nodiscard]] bool uses_app_info() const override { return true; }
  [[nodiscard]] bool uses_flow_priority() const override {
    return cfg_.use_flow_priority;
  }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override;

  [[nodiscard]] const PrioritySteerConfig& config() const { return cfg_; }

 private:
  std::size_t fast_channel(std::span<const ChannelView> channels) const;

  PrioritySteerConfig cfg_;
};

}  // namespace hvc::steer
