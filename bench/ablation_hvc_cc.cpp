// Ablation C (§3.2): an HVC-aware congestion controller vs vanilla BBR
// under DChannel steering. Identical setup to Fig. 1a; the HVC-aware CCA
// attributes RTT samples to channels (receiver echoes the channel index)
// and computes the BDP against the bandwidth-weighted cross-channel RTT.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_hvc_cc");
  bench::print_header("Ablation C: HVC-aware CC vs BBR under steering");
  bench::print_row({"cca", "steered Mbps", "of eMBB-only", "retx"});

  for (const char* cca : {"bbr", "hvc", "cubic"}) {
    const auto steered =
        core::run_bulk(core::ScenarioConfig::fig1(), cca, sim::seconds(60));
    const auto solo = core::run_bulk(core::ScenarioConfig::fig1("embb-only"),
                                     cca, sim::seconds(60));
    bench::print_row(
        {cca, bench::fmt(steered.goodput_bps / 1e6, 2),
         bench::fmt(steered.goodput_bps / solo.goodput_bps * 100.0) + "%",
         std::to_string(steered.retransmissions)});
  }

  // Per-second goodput series for bbr vs hvc: shows the collapse/recover
  // sawtooth vs steady utilization.
  for (const char* cca : {"bbr", "hvc"}) {
    const auto r =
        core::run_bulk(core::ScenarioConfig::fig1(), cca, sim::seconds(30));
    std::printf("\n%s goodput (Mbps/s):", cca);
    for (const auto& p : r.goodput_mbps.points()) {
      std::printf(" %.0f", p.value);
    }
    std::printf("\n");
  }
  return 0;
}
