#include "net/node.hpp"

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace hvc::net {

namespace {
constexpr std::size_t kDedupMemory = 4096;
// Thread-local so concurrent simulations (src/exp sweeps) never contend
// or perturb each other's id sequences.
thread_local FlowId g_next_flow = 1;
}  // namespace

FlowId next_flow_id() { return g_next_flow++; }

void reset_flow_ids_for_test() { g_next_flow = 1; }

FlowId flow_id_counter() { return g_next_flow; }

void set_flow_id_counter(FlowId next) { g_next_flow = next; }

void Node::register_flow(FlowId flow, PacketHandler handler) {
  *handlers_.try_emplace(flow).first = std::move(handler);
}

void Node::unregister_flow(FlowId flow) { handlers_.erase(flow); }

void Node::send(PacketPtr p) {
  if (egress_ == nullptr) {
    ++unroutable_;
    return;
  }
  egress_->send(std::move(p));
}

void Node::deliver(PacketPtr p) {
  if (p->dup_group != 0) {
    if (seen_groups_.contains(p->dup_group)) {
      ++dups_suppressed_;
      m_dups_suppressed_->inc();
      if (auto* tr = obs::PacketTracer::active()) {
        tr->record(obs::EventKind::kDrop, sim_->now(), p->id, p->flow,
                   p->channel, obs::kNoDirection,
                   static_cast<std::uint32_t>(p->size_bytes),
                   obs::kDropDuplicate);
      }
      return;
    }
    seen_groups_.insert(p->dup_group);
    seen_order_.push_back(p->dup_group);
    if (seen_order_.size() > kDedupMemory) {
      seen_groups_.erase(seen_order_.front());
      seen_order_.pop_front();
    }
  }
  const PacketHandler* entry = handlers_.find(p->flow);
  if (entry == nullptr) {
    ++unroutable_;
    m_unroutable_->inc();
    if (auto* tr = obs::PacketTracer::active()) {
      tr->record(obs::EventKind::kDrop, sim_->now(), p->id, p->flow,
                 p->channel, obs::kNoDirection,
                 static_cast<std::uint32_t>(p->size_bytes),
                 obs::kDropUnroutable);
    }
    return;
  }
  // Copy the handler before invoking: a handler may unregister itself
  // (e.g. one-shot handshake flows), which would destroy the closure we
  // are executing.
  const PacketHandler handler = *entry;
  handler(std::move(p));
}

TwoHostNetwork::TwoHostNetwork(
    sim::Simulator& sim, std::unique_ptr<steer::SteeringPolicy> up_policy,
    std::unique_ptr<steer::SteeringPolicy> down_policy)
    : sim_(sim),
      channels_(sim),
      client_(sim, "client"),
      server_(sim, "server"),
      up_policy_(std::move(up_policy)),
      down_policy_(std::move(down_policy)) {}

std::size_t TwoHostNetwork::add_channel(channel::ChannelProfile profile) {
  return channels_.add(std::move(profile));
}

void TwoHostNetwork::enable_resequencing(sim::Duration max_hold) {
  resequence_hold_ = max_hold;
}

void TwoHostNetwork::finalize() {
  up_shim_ = std::make_unique<Shim>(sim_, channels_,
                                    channel::Direction::kUplink,
                                    std::move(up_policy_));
  down_shim_ = std::make_unique<Shim>(sim_, channels_,
                                      channel::Direction::kDownlink,
                                      std::move(down_policy_));
  client_.set_egress(up_shim_.get());
  server_.set_egress(down_shim_.get());

  std::function<void(PacketPtr)> to_server = [this](PacketPtr p) {
    server_.deliver(std::move(p));
  };
  std::function<void(PacketPtr)> to_client = [this](PacketPtr p) {
    client_.deliver(std::move(p));
  };
  if (resequence_hold_ > 0) {
    to_server_rsq_ = std::make_unique<ReorderBuffer>(sim_, resequence_hold_,
                                                     std::move(to_server));
    to_client_rsq_ = std::make_unique<ReorderBuffer>(sim_, resequence_hold_,
                                                     std::move(to_client));
    to_server = [this](PacketPtr p) { to_server_rsq_->accept(std::move(p)); };
    to_client = [this](PacketPtr p) { to_client_rsq_->accept(std::move(p)); };
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_.at(i).uplink().set_receiver(to_server);
    channels_.at(i).downlink().set_receiver(to_client);
  }
}

}  // namespace hvc::net
