// Declarative experiment specs — the JSON surface of the scenario engine.
//
// A ScenarioSpec names everything one experiment needs: the channel set
// (profiles or synthetic traces), the steering policy and its parameters,
// the transport CCA, the application workload and its knobs, duration and
// seeds. specs parse with the in-repo obs::json parser (no external
// dependency), validate strictly (unknown keys and out-of-range values
// are errors, reported with their JSON path), and round-trip through
// to_json() so tools can record exactly what ran.
//
// The mapping from spec fields onto the src/channel, src/steer,
// src/transport and src/app factories lives in runner.cpp; this header is
// pure data.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "pop/spec.hpp"

namespace hvc::exp {

/// Malformed or invalid scenario/sweep JSON. what() carries a
/// "<json path>: <problem>" message suitable for CLI error output.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One virtual channel. `type` selects the factory in channel/profile.hpp:
///   "embb"   constant-rate eMBB        "urllc"  3GPP URLLC
///   "5g"     trace-driven eMBB (requires `profile`: lowband-stationary |
///            lowband-driving | mmwave-driving)
///   "tsn"    Wi-Fi TSN slice           "wifi"   contended Wi-Fi
///   "cisp"   priced microwave WAN      "fiber"  terrestrial fiber
///   "leo"    LEO satellite
/// Negative numeric fields mean "use the factory default".
struct ChannelSpec {
  std::string type = "embb";
  std::string profile;        ///< 5g only
  double rtt_ms = -1;
  double rate_mbps = -1;
  double duration_s = -1;     ///< trace horizon (5g/leo); -1 = scenario's
  std::int64_t seed = -1;     ///< trace seed (5g/leo); -1 = scenario's
};

/// Steering policy. `name` accepts every core::make_policy() name; for
/// the DChannel family, `preset` ("aggressive" | "web-tuned") picks a
/// DChannelConfig baseline and the numeric fields override individual
/// knobs (negative / -1 = keep the preset's value).
struct PolicySpec {
  std::string name = "dchannel";
  std::string preset;
  double cost_factor = -1;
  double min_margin_ms = -1;
  double max_queue_fill = -1;
  double max_data_queue_fill = -1;
  double queue_risk = -1;
  int accelerate_control = -1;  ///< tri-state: -1 default / 0 / 1
  int use_flow_priority = -1;   ///< tri-state

  /// Human-readable scheme label for tables/CSV ("dchannel+prio" style).
  [[nodiscard]] std::string label() const;
};

/// Table 1-style web workload (core::run_web).
struct WebSpec {
  int pages = 30;
  double landing_fraction = 0.5;
  std::int64_t corpus_seed = 2023;
  int loads_per_page = 5;
  bool background_flows = true;
  std::int64_t bg_upload_bytes = 5 * 1000;
  std::int64_t bg_download_bytes = 10 * 1000;
  int bg_flow_priority = 1;
  double per_load_timeout_s = 60;
};

/// Fig. 2-style real-time SVC video workload (core::run_video).
struct VideoSpec {
  double duration_s = -1;       ///< -1 = scenario duration
  double drain_s = 12;          ///< post-run drain for late frames
  int fps = 30;
  std::vector<double> layer_kbps = {400, 4100, 7500};
  int keyframe_interval = 30;
  double decode_wait_ms = 60;
  int lookahead_frames = 2;
  std::int64_t encoder_seed = 17;
  std::int64_t receiver_seed = 23;
};

/// Fig. 1-style bulk download (core::run_bulk).
struct BulkSpec {
  double duration_s = -1;       ///< -1 = scenario duration
};

/// City-cell population workload (pop::run_city): 10⁴–10⁶ archetype-mixed
/// users on a flow-level shared cell with O(1)-memory streaming
/// statistics. The cell itself comes from the scenario's channel list
/// (first "embb" = shared link, first "urllc" = scarce steering pool);
/// duration and seed come from the scenario. Runs with an "embb-only"
/// policy disable URLLC steering.
struct CitySpec {
  pop::PopulationSpec population;
};

/// One injected disruption episode (src/fault). `kind` picks the fault
/// and which kind-specific knobs apply — supplying another kind's knob is
/// an error, so specs can't silently carry dead parameters:
///   "outage"       full blackout of the link(s) for the window
///   "rate_cliff"   capacity drops to `rate_scale` (handover cliff)
///   "ge_burst"     Gilbert-Elliott burst-loss episode (p_good_to_bad,
///                  p_bad_to_good, loss_in_bad, loss_in_good, seed)
///   "delay_spike"  `extra_delay_ms` added to propagation delay
///   "flap"         down/up toggling every `period_s`, up `up_fraction`
///                  of each period; `seed` >= 0 jitters the down spans
/// Windows of the same family (outage/flap share link availability) may
/// not overlap on the same channel+direction.
struct FaultSpec {
  std::string kind = "outage";
  std::int64_t channel = 0;
  std::string direction = "both";  ///< "down" | "up" | "both"
  double start_s = 0;
  double duration_s = 1;
  double rate_scale = 0.1;         ///< rate_cliff only, (0, 1)
  double extra_delay_ms = 100;     ///< delay_spike only
  double p_good_to_bad = 0.05;     ///< ge_burst only
  double p_bad_to_good = 0.25;     ///< ge_burst only
  double loss_in_bad = 0.9;        ///< ge_burst only
  double loss_in_good = 0;         ///< ge_burst only
  /// ge_burst/flap RNG seed; -1 = derive from the scenario seed
  /// (ge_burst) / strictly periodic toggling (flap).
  std::int64_t seed = -1;
  double period_s = 0.5;           ///< flap only
  double up_fraction = 0.5;        ///< flap only

  bool operator==(const FaultSpec&) const = default;
};

/// Optional time-series telemetry and steering-decision audit
/// (obs/telemetry.hpp, obs/audit.hpp). The block's *presence* turns
/// sampling on (`enabled` defaults to true inside it, so `"telemetry":{}`
/// is the minimal opt-in); the runner writes `<prefix>.telemetry.jsonl`
/// and — with `audit` — `<prefix>.audit.jsonl` after the run.
struct TelemetrySpec {
  bool enabled = false;      ///< default-constructed == telemetry off
  double period_ms = 10;     ///< sim-time sampling period
  /// Probe groups to sample ("channel" | "link" | "steer" | "transport" |
  /// "fault"); empty = all groups.
  std::vector<std::string> series;
  bool audit = false;        ///< also record per-steer() audit log
  std::int64_t max_samples = 16384;    ///< ring capacity per series
  std::int64_t max_series = 512;       ///< series-count cap
  std::int64_t audit_capacity = 65536; ///< audit ring capacity
  std::string out_prefix;    ///< artifact path prefix; "" = scenario name

  bool operator==(const TelemetrySpec&) const = default;
};

/// Optional causal span tracing (obs/span.hpp). The block's presence
/// turns the recorder on (`enabled` defaults to true inside it, so
/// `"spans": {}` is the minimal opt-in); the runner writes
/// `<prefix>.spans.jsonl` after the run. Retention is tail-based: a
/// completed unit's full tree is kept when its sample lands at/above
/// `tail_quantile` of the live per-metric histogram (after `warmup`
/// samples), plus a deterministic counter-hash reservoir of normal
/// exemplars — cost is O(exemplars), never O(packets).
struct SpansSpec {
  bool enabled = false;          ///< default-constructed == spans off
  double tail_quantile = 95.0;
  std::int64_t tail_budget = 16;
  std::int64_t reservoir_budget = 8;
  std::int64_t reservoir_period = 64;
  std::int64_t warmup = 32;

  bool operator==(const SpansSpec&) const = default;
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::string workload = "web";  ///< "bulk" | "video" | "web" | "city"
  double duration_s = 60;        ///< trace horizon & default run length
  std::uint64_t seed = 42;
  std::string cca = "cubic";     ///< bulk/web transports
  std::vector<ChannelSpec> channels;  ///< default: {embb, urllc}
  PolicySpec up_policy;
  PolicySpec down_policy;
  double resequence_hold_ms = 0;
  WebSpec web;
  VideoSpec video;
  BulkSpec bulk;
  CitySpec city;
  std::vector<FaultSpec> faults;  ///< injected disruptions; empty = none
  TelemetrySpec telemetry;
  SpansSpec spans;

  /// Parse + validate. Throw SpecError with a path-qualified message on
  /// any unknown key, wrong type, or out-of-range value.
  static ScenarioSpec from_json(const obs::json::Value& v);
  static ScenarioSpec from_json_text(std::string_view text);
  static ScenarioSpec from_file(const std::string& path);

  /// Canonical serialization (sorted keys); from_json(to_json(s)) == s.
  [[nodiscard]] std::string to_json() const;
};

/// Read a whole file; throws SpecError on I/O failure.
std::string read_file(const std::string& path);

}  // namespace hvc::exp
