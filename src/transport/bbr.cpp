#include "transport/bbr.hpp"

#include <cmath>

#include <algorithm>

namespace hvc::transport {

Bbr::Bbr(BbrConfig cfg)
    : cfg_(cfg),
      rt_prop_filter_(cfg.min_rtt_window),
      pacing_gain_(cfg.startup_gain) {}

double Bbr::btl_bw_bps() const {
  double best = 0.0;
  for (const auto& s : bw_samples_) best = std::max(best, s.bps);
  return best;
}

sim::Duration Bbr::rt_prop() const {
  const double v = rt_prop_filter_.get();
  return std::isfinite(v) ? static_cast<sim::Duration>(v)
                          : sim::milliseconds(100);
}

std::int64_t Bbr::bdp_bytes() const {
  const double bw = btl_bw_bps();
  if (bw <= 0.0) return cfg_.initial_cwnd;
  return static_cast<std::int64_t>(bw / 8.0 * sim::to_seconds(rt_prop()));
}

std::int64_t Bbr::cwnd_bytes() const {
  if (mode_ == Mode::kProbeRtt) return cfg_.min_cwnd;
  const std::int64_t target = static_cast<std::int64_t>(
      cfg_.cwnd_gain * static_cast<double>(bdp_bytes()));
  return std::max({target, cfg_.min_cwnd,
                   btl_bw_bps() <= 0.0 ? cfg_.initial_cwnd : 0});
}

double Bbr::pacing_rate_bps() const {
  const double bw = btl_bw_bps();
  if (bw <= 0.0) {
    // No bandwidth estimate yet: pace the initial window over the
    // (assumed) initial RTT, scaled by the startup gain.
    return pacing_gain_ * static_cast<double>(cfg_.initial_cwnd) * 8.0 /
           sim::to_seconds(sim::milliseconds(100));
  }
  return pacing_gain_ * bw;
}

void Bbr::on_packet_sent(sim::Time /*now*/, std::int64_t /*bytes*/,
                         std::int64_t bytes_in_flight) {
  inflight_at_last_sent_ = bytes_in_flight;
}

void Bbr::update_btl_bw(const AckEvent& ev) {
  current_round_ = ev.round_trips;
  if (ev.delivery_rate_bps <= 0.0) return;
  // App-limited samples only count if they exceed the current estimate
  // (standard BBR rule: an app-limited flow can't underestimate the pipe).
  if (ev.app_limited && ev.delivery_rate_bps < btl_bw_bps()) return;
  bw_samples_.push_back({current_round_, ev.delivery_rate_bps});
  std::erase_if(bw_samples_, [&](const BwSample& s) {
    return s.round < current_round_ - cfg_.bw_window_rounds;
  });
}

void Bbr::update_rt_prop(const AckEvent& ev) {
  if (ev.rtt <= 0) return;
  const double prev = rt_prop_filter_.get();
  rt_prop_filter_.update(ev.now, static_cast<double>(ev.rtt));
  if (static_cast<double>(ev.rtt) <= prev || !std::isfinite(prev)) {
    rt_prop_stamp_ = ev.now;
  }
}

void Bbr::check_full_pipe(const AckEvent& /*ev*/) {
  if (filled_pipe_) return;
  const double bw = btl_bw_bps();
  if (bw >= full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void Bbr::advance_cycle(const AckEvent& ev) {
  if (mode_ != Mode::kProbeBw) return;
  const bool elapsed = ev.now - cycle_stamp_ > rt_prop();
  // Leave the drain phase (cycle slot 1, gain 0.75) as soon as inflight
  // has drained to BDP.
  constexpr int kDrainPhase = 1;
  const bool drained = cycle_index_ == kDrainPhase &&
                       ev.bytes_in_flight <= bdp_bytes();
  if (elapsed || drained) {
    cycle_index_ = (cycle_index_ + 1) % 8;
    cycle_stamp_ = ev.now;
    pacing_gain_ = kCycleGains[cycle_index_];
  }
}

void Bbr::maybe_enter_or_exit_probe_rtt(const AckEvent& ev) {
  const bool expired = ev.now - rt_prop_stamp_ > cfg_.min_rtt_window;
  if (mode_ != Mode::kProbeRtt && expired) {
    mode_ = Mode::kProbeRtt;
    cwnd_before_probe_rtt_ = cwnd_bytes();
    probe_rtt_done_ = -1;
  }
  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_ < 0 && ev.bytes_in_flight <= cfg_.min_cwnd) {
      probe_rtt_done_ = ev.now + cfg_.probe_rtt_duration;
    }
    if (probe_rtt_done_ >= 0 && ev.now >= probe_rtt_done_) {
      rt_prop_stamp_ = ev.now;
      mode_ = filled_pipe_ ? Mode::kProbeBw : Mode::kStartup;
      pacing_gain_ = mode_ == Mode::kProbeBw ? kCycleGains[cycle_index_]
                                             : cfg_.startup_gain;
      cycle_stamp_ = ev.now;
    }
  }
}

void Bbr::on_ack(const AckEvent& ev) {
  update_btl_bw(ev);
  update_rt_prop(ev);
  check_full_pipe(ev);

  switch (mode_) {
    case Mode::kStartup:
      pacing_gain_ = cfg_.startup_gain;
      if (filled_pipe_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = cfg_.drain_gain;
      }
      break;
    case Mode::kDrain:
      if (ev.bytes_in_flight <= bdp_bytes()) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = ev.now;
        pacing_gain_ = kCycleGains[cycle_index_];
      }
      break;
    case Mode::kProbeBw:
      advance_cycle(ev);
      break;
    case Mode::kProbeRtt:
      break;
  }
  maybe_enter_or_exit_probe_rtt(ev);
}

void Bbr::on_loss(const LossEvent& ev) {
  // BBRv1 mostly ignores loss; on RTO it conservatively restarts the model.
  if (ev.is_rto) {
    bw_samples_.clear();
    full_bw_ = 0.0;
    full_bw_count_ = 0;
    filled_pipe_ = false;
    mode_ = Mode::kStartup;
    pacing_gain_ = cfg_.startup_gain;
  }
}

}  // namespace hvc::transport
