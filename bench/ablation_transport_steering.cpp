// Ablation D (§3.2/§4): transport-layer segment steering with the
// MPQUIC-style multipath transport. Compares the classic minRTT scheduler
// against the HVC-aware scheduler (intents + tail acceleration), and ACKs
// on the data path vs ACKs on the low-latency path, on a mixed workload:
// one bulk stream + a stream of small interactive messages.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "channel/profile.hpp"
#include "net/node.hpp"
#include "quic/mp_connection.hpp"
#include "steer/basic_policies.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_transport_steering");
  bench::print_header(
      "Ablation D: MPQUIC-style schedulers (bulk + interactive mix, 8 s)");
  bench::print_row({"scheduler", "acks", "small p50", "small p95", "done",
                    "bulk Mbps", "retx"});

  for (const auto sched :
       {quic::SchedulerKind::kMinRtt, quic::SchedulerKind::kEcf,
        quic::SchedulerKind::kHvcAware}) {
    for (const bool ack_fast : {false, true}) {
      sim::Simulator s;
      net::TwoHostNetwork net(
          s, std::make_unique<steer::PinnedChannelPolicy>(),
          std::make_unique<steer::PinnedChannelPolicy>());
      net.add_channel(channel::embb_constant_profile());
      net.add_channel(channel::urllc_profile());
      net.finalize();

      quic::MpConfig cfg;
      cfg.scheduler = sched;
      cfg.ack_on_fast_path = ack_fast;
      auto conn =
          quic::MpConnection::make_pair(net.client(), net.server(), 2, cfg);
      const auto interactive =
          conn.server->open_stream(quic::StreamIntents::interactive(0));
      const auto bulk = conn.server->open_stream(quic::StreamIntents::bulk());

      sim::Summary small_lat;
      std::int64_t bulk_bytes = 0;
      conn.client->set_on_message(
          [&](const quic::MpEndpoint::MessageEvent& ev) {
            if (ev.priority == 0) {
              small_lat.add(sim::to_millis(ev.completed - ev.sent_at));
            } else {
              bulk_bytes += 400'000;
            }
          });
      for (int i = 0; i < 120; ++i) {
        s.at(sim::milliseconds(50 * i),
             [&] { conn.server->send_message(bulk, 400'000); });
      }
      for (int i = 0; i < 240; ++i) {
        s.at(sim::milliseconds(25 * i),
             [&] { conn.server->send_message(interactive, 3'000); });
      }
      s.run_until(sim::seconds(8));

      bench::print_row(
          {sched == quic::SchedulerKind::kMinRtt
               ? "minRTT"
               : sched == quic::SchedulerKind::kEcf ? "ECF" : "hvc-aware",
           ack_fast ? "fast-path" : "data-path",
           bench::fmt(small_lat.percentile(50)),
           bench::fmt(small_lat.percentile(95)),
           std::to_string(small_lat.count()) + "/240",
           bench::fmt(static_cast<double>(bulk_bytes) * 8.0 / 8.0 / 1e6, 1),
           std::to_string(conn.server->stats().retransmitted_chunks)});
    }
  }
  std::printf(
      "\nExpected shape: the HVC-aware scheduler pins interactive messages\n"
      "to URLLC and keeps bulk on eMBB — small-message latency drops ~3x\n"
      "vs minRTT, which floods the low-latency path with bulk data.\n");
  return 0;
}
