// Fixture: every violation here carries a justified allow, so the file
// must lint clean.
#include <unordered_map>

namespace fixture {

// hvc-lint: allow(unordered-container): fixture exercising a same-line
// suppression; never iterated.
std::unordered_map<int, int> g_inline_allowed;

std::unordered_map<int, int> g_trailing_allowed;  // hvc-lint: allow(unordered-container): trailing-comment form of the same suppression.

}  // namespace fixture
