#!/usr/bin/env bash
# Full local gate: build + test the default and sanitize presets, run
# the concurrent-sweep suites (ExpSweep*) and the seeded fault-plan fuzz
# loop (FaultFuzz*, >=50 randomized plans) under ThreadSanitizer, smoke
# the hvc_run → hvc_report telemetry pipeline end to end, and run the
# static-analysis stage (hvc_lint + clang-tidy when installed).
#
#   scripts/check.sh            # everything
#   scripts/check.sh default    # just the default preset
#   scripts/check.sh sanitize   # just the sanitizer preset
#   scripts/check.sh tsan       # just the tsan stage
#   scripts/check.sh report     # just the hvc_report smoke
#   scripts/check.sh lint       # just the static-analysis stage
#   scripts/check.sh perf       # just the hvc_perf regression smoke
#   scripts/check.sh diffsim    # just the differential sim-core oracle
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("${@:-default sanitize}")
# Word-split the default list when invoked with no arguments.
if [ $# -eq 0 ]; then presets=(default sanitize tsan report lint perf diffsim); fi

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  if [ "${preset}" = "tsan" ]; then
    # Only the concurrency tests and the fault fuzz loop run under tsan;
    # build just their binaries (gtest_discover_tests would otherwise
    # inject <target>_NOT_BUILT failures for every unbuilt test target).
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)" \
      --target exp_test telemetry_test property_test
    ctest --preset "${preset}"
  elif [ "${preset}" = "report" ]; then
    # End-to-end report smoke covering every hvc_report mode:
    #  1. hvc_run + telemetry/audit/trace -> default render, --trace,
    #     --merged (Chrome trace with telemetry + audit + lifecycle).
    #  2. hvc_sweep over the city smoke (spans enabled) -> cohort and
    #     capacity tables, --capacity JSON export, and --explain (the
    #     critical-path waterfall; every unit must pass its exact-sum
    #     check against the measured PLT/chunk latency).
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" \
      --target hvc_run hvc_sweep hvc_report
    out="$(mktemp -d)"
    build/tools/hvc_run scenarios/fig2_video_telemetry.json \
      --out "${out}/f2t" --trace "${out}/f2t.lifecycle.json" >/dev/null
    build/tools/hvc_report "${out}/f2t" \
      --trace "${out}/f2t.lifecycle.json" \
      --merged "${out}/f2t.merged.json" >"${out}/report.txt"
    grep -q "dchannel:small-object" "${out}/report.txt"
    grep -q "== telemetry ==" "${out}/report.txt"
    test -s "${out}/f2t.merged.json"

    build/tools/hvc_sweep scenarios/city_cell_smoke.json -j 2 \
      --out "${out}/city" >/dev/null
    build/tools/hvc_report "${out}/city" \
      --capacity "${out}/city.capacity.json" \
      --merged "${out}/city.merged.json" >"${out}/city_report.txt"
    grep -q "cohort" "${out}/city_report.txt"
    test -s "${out}/city.capacity.json"
    test -s "${out}/city.run0.spans.jsonl"
    build/tools/hvc_report "${out}/city" --explain >"${out}/city_explain.txt"
    grep -q "components sum to" "${out}/city_explain.txt"
    if grep -q "MISMATCH" "${out}/city_explain.txt"; then
      echo "span attribution mismatch:" >&2
      grep "MISMATCH" "${out}/city_explain.txt" >&2
      exit 1
    fi
    rm -rf "${out}"
    echo "hvc_report smoke OK"
  elif [ "${preset}" = "perf" ]; then
    # Hot-path perf regression smoke: quick-mode hvc_perf vs the
    # committed BENCH_hotpath.json baseline. The tolerance is generous
    # (90% slowdown allowed) because shared/CI machines are noisy and
    # quick mode uses reduced scales — the gate catches order-of-
    # magnitude regressions (accidental O(n^2), debug logging in a hot
    # loop), not single-digit drift. Full-fidelity numbers come from
    # `hvc_perf` (no --quick) on a quiet pinned machine.
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target hvc_perf
    out="$(mktemp -d)"
    build/tools/hvc_perf --quick --out "${out}/BENCH_hotpath.json" \
      --baseline BENCH_hotpath.json --check --tolerance 0.9
    rm -rf "${out}"
    echo "hvc_perf smoke OK"
  elif [ "${preset}" = "diffsim" ]; then
    # Differential sim-core oracle (tests/diffsim_test): every scenario
    # file and a 50-seed fuzzed fault corpus must produce byte-identical
    # artifacts under the calendar queue vs the reference binary heap,
    # packet pool on vs off. The suite flips the switches in-process via
    # the test overrides; on top, prove the *environment* escape hatches
    # reach the same code: a city smoke sweep under HVC_REFERENCE_QUEUE=1
    # HVC_PACKET_POOL=0 must be byte-identical to the default run.
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" \
      --target diffsim_test hvc_sweep
    build/tests/diffsim_test
    out="$(mktemp -d)"
    build/tools/hvc_sweep scenarios/city_cell_smoke.json -j 2 \
      --out "${out}/default" >/dev/null
    HVC_REFERENCE_QUEUE=1 HVC_PACKET_POOL=0 \
      build/tools/hvc_sweep scenarios/city_cell_smoke.json -j 2 \
      --out "${out}/ref" >/dev/null
    for f in "${out}"/default.*; do
      cmp "$f" "${out}/ref.${f##*/default.}"
    done
    rm -rf "${out}"
    echo "diffsim oracle OK"
  elif [ "${preset}" = "lint" ]; then
    # Static analysis. Three gates:
    #  1. tools/hvc_lint — the repo's determinism/simulation-safety rules:
    #     per-file R1–R8 plus the semantic passes R9–R11 (worker races,
    #     unordered-taint dataflow, hot-path allocation gating; see
    #     src/lint/lint.hpp), including the R6 header self-sufficiency
    #     compile check. Runs against the committed lint_baseline.json
    #     debt ledger, persists the symbol index cache across runs, and
    #     writes a SARIF report next to the build tree. Always runs.
    #  2. An incremental-mode smoke: `--changed` on one file must agree
    #     with the full run (both clean here), proving the PR-time
    #     --diff path stays wired.
    #  3. clang-tidy over compile_commands.json — generic C++ hygiene
    #     (.clang-tidy). Runs only when clang-tidy is installed; the
    #     build image does not ship LLVM, so absence is a skip, not a
    #     failure.
    cmake --preset lint
    cmake --build --preset lint -j "$(nproc)"
    build-lint/tools/hvc_lint --compile-check -I src \
      --baseline lint_baseline.json \
      --index-cache build-lint/hvc_lint_index.json \
      --sarif build-lint/hvc_lint.sarif \
      src tools bench examples
    test -s build-lint/hvc_lint.sarif
    echo "hvc_lint OK"
    build-lint/tools/hvc_lint --changed src/lint/lint.cpp \
      --baseline lint_baseline.json \
      --index-cache build-lint/hvc_lint_index.json \
      src tools bench examples
    echo "hvc_lint incremental OK"
    if command -v clang-tidy >/dev/null 2>&1; then
      # Lint the compiled sources under src/ and tools/ (bench/tests
      # would need gtest/benchmark headers resolvable to clang).
      mapfile -t tidy_sources < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp')
      clang-tidy -p build-lint --quiet "${tidy_sources[@]}"
      echo "clang-tidy OK"
    else
      echo "clang-tidy not installed; skipping (hvc_lint gate still ran)"
    fi
  else
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)"
    ctest --preset "${preset}"
  fi
done

echo "All checks passed."
