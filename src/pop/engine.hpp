// The city-cell population engine: a flow-level (fluid) simulation of
// 10⁴–10⁶ users sharing one bottleneck eMBB cell and a scarce URLLC
// pool.
//
// Why flow-level: the packet-level stack (src/transport, src/quic) costs
// hundreds of events per page load; at 10⁶ users that is days of CPU.
// Here a transfer is a *fluid* through a processor-sharing link — the
// classic PS model of a fair-shared cell — so one transfer costs O(log n)
// heap work regardless of its size, and a 10k-user minute simulates in
// seconds while still exhibiting the paper's §2 scarcity dynamics:
// contention grows with population, small-object latency degrades, and
// the URLLC pool's admission rule starts spilling.
//
// PsLink uses the virtual-work formulation: V(t) advances at C/n(t)
// bytes of *per-flow* service per second; a transfer of s bytes entering
// at V₀ completes when V reaches V₀ + s. One re-armed timer fires at the
// earliest completion; arrivals and completions advance V and re-arm.
// The heap is ordered by (v_end, sequence) so completions are
// deterministic, and every random draw comes from a per-user
// counter-based splitmix64 stream (sim/seed.hpp) keyed by (scenario
// seed, user slot) — draws can never be perturbed by event interleaving
// or by another user's behaviour.
//
// Statistics are streaming only (src/stats): per-cohort PLT / chunk
// latency / throughput go into exact-integer moments + log-bin
// histograms, and each departing user's mean folds into a Jain fairness
// accumulator. Telemetry memory is O(cohorts × bins) at any population.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "pop/spec.hpp"
#include "sim/seed.hpp"
#include "sim/simulator.hpp"
#include "sim/slot_map.hpp"
#include "sim/units.hpp"
#include "stats/cohort.hpp"

namespace hvc::pop {

/// The cell the population shares: one bulk eMBB link and (optionally)
/// a URLLC pool, both as equal-share processor-sharing resources.
struct CellConfig {
  double embb_rate_bps = 60e6;
  sim::Duration embb_rtt = sim::milliseconds(50);
  bool has_urllc = true;
  double urllc_rate_bps = 2e6;
  sim::Duration urllc_rtt = sim::milliseconds(5);
};

struct CityConfig {
  PopulationSpec population;
  CellConfig cell;
  std::uint64_t seed = 42;
  sim::Duration duration = sim::seconds(60);
};

struct CityResult {
  stats::CohortSet cohorts;      ///< "web"/"video"/"background" streams
  std::uint64_t arrivals = 0;    ///< churn arrivals (excludes initial)
  std::uint64_t departures = 0;
  std::uint64_t peak_active = 0;
  std::uint64_t pages = 0;
  std::uint64_t chunks = 0;
  std::uint64_t bg_transfers = 0;
  std::uint64_t urllc_admitted = 0;
  std::uint64_t urllc_spilled = 0;  ///< admission-test failures
  std::uint64_t events = 0;         ///< simulator events executed
};

/// An equal-share processor-sharing link (virtual-work formulation).
/// Transfers are identified by an opaque (user, tag) pair so completion
/// dispatch needs no per-transfer allocation.
class PsLink {
 public:
  using DoneFn = std::function<void(std::uint32_t user, std::uint32_t tag)>;

  PsLink(sim::Simulator& sim, double rate_bytes_per_s);

  void set_on_done(DoneFn fn) { on_done_ = std::move(fn); }

  /// Begin a transfer of `bytes` (> 0) for (user, tag).
  void start(std::uint32_t user, std::uint32_t tag, double bytes);

  [[nodiscard]] std::size_t active() const { return heap_.size(); }
  [[nodiscard]] double rate_bytes_per_s() const { return rate_; }

  /// Predicted completion time (seconds) of a `bytes` transfer admitted
  /// now, assuming the current flow count persists: bytes·(n+1)/C.
  [[nodiscard]] double predicted_completion_s(double bytes) const;

 private:
  struct Xfer {
    double v_end = 0;        ///< virtual-work completion mark
    std::uint64_t seq = 0;   ///< FIFO tie-break (determinism)
    std::uint32_t user = 0;
    std::uint32_t tag = 0;
  };

  void advance_to_now();
  void pop_and_dispatch();
  void rearm();
  static bool later(const Xfer& a, const Xfer& b) {
    return a.v_end != b.v_end ? a.v_end > b.v_end : a.seq > b.seq;
  }

  sim::Simulator& sim_;
  double rate_;             ///< bytes per second
  DoneFn on_done_;
  std::vector<Xfer> heap_;  ///< min-heap via std::push_heap(later)
  std::vector<Xfer> done_scratch_;
  double vwork_ = 0;        ///< cumulative per-flow service (bytes)
  sim::Time last_ = 0;
  std::uint64_t seq_ = 0;
  sim::Timer timer_;
};

/// The lazily-expanded population. Construct, start(), drive the
/// simulator to the horizon, then finish() to fold still-active users
/// into the fairness accumulators.
class CityEngine {
 public:
  CityEngine(sim::Simulator& sim, const CityConfig& cfg);

  void start();
  void finish();
  [[nodiscard]] CityResult& result() { return result_; }

  [[nodiscard]] std::uint64_t active_users() const { return active_; }

 private:
  enum Kind : std::uint8_t { kWeb = 0, kVideo = 1, kBackground = 2 };
  // Transfer-tag layout: top byte = transfer kind, bits 16–23 = the
  // object slot within its dependency level (span-leg identity), low 16
  // bits = the owner's epoch at start (stale completions are dropped; a
  // user slot departs at most once, so 16 bits cannot wrap in anger).
  enum Tag : std::uint32_t {
    kTagWebObject = 0u << 24,
    kTagVideoChunk = 1u << 24,
    kTagBgTransfer = 2u << 24,
  };

  // Liveness and the departure epoch now live in the slot map: the
  // map's per-slot generation IS the epoch (retire_slot bumps it), and
  // its live bit replaces the old `active` flag. Slots are acquired
  // append-only — RNG streams are keyed by (seed, slot), so a reused
  // slot would replay a departed user's randomness.
  struct User {
    sim::CounterStream rng;
    sim::Time op_start = 0;    ///< page / transfer start
    sim::Time chunk_due = 0;   ///< video pacing deadline
    double metric_sum = 0;     ///< running sum of this user's samples
    double metric_aux = 0;     ///< in-flight background transfer bytes
    std::uint32_t metric_n = 0;
    std::uint16_t objs_in_flight = 0;
    std::uint8_t levels_left = 0;
    Kind kind = kWeb;
  };

  void add_user();
  void activate(std::uint32_t u);
  void depart(std::uint32_t u);
  void fold_user(std::uint32_t u);
  [[nodiscard]] const char* cohort_name(Kind k) const;

  void schedule_think(std::uint32_t u);
  void start_page(std::uint32_t u);
  void begin_level(std::uint32_t u);
  void start_object(std::uint32_t u, std::uint32_t slot, double bytes);
  void schedule_chunk(std::uint32_t u);
  void start_chunk(std::uint32_t u);
  void schedule_bg(std::uint32_t u);
  void start_bg(std::uint32_t u);
  void on_transfer_done(std::uint32_t u, std::uint32_t tag);
  void schedule_arrival();

  [[nodiscard]] double exponential(sim::CounterStream& s, double mean);
  [[nodiscard]] double pareto(sim::CounterStream& s, double xm, double alpha,
                              double cap);

  sim::Simulator& sim_;
  CityConfig cfg_;
  PsLink embb_;
  PsLink urllc_;
  sim::SlotMap<User> users_;
  sim::CounterStream engine_rng_;
  std::uint64_t active_ = 0;
  CityResult result_;
  obs::TelemetryProbes probes_;
  /// Span layer (obs/span.hpp): non-null only when the run installed an
  /// enabled recorder; every hot-path hook is behind one pointer test.
  obs::SpanRecorder* spans_ = nullptr;
  std::vector<obs::SpanUnitBuilder> sbuild_;  ///< per-user flight recorder
  std::uint64_t admissions_ = 0;  ///< audit-join record counter
};

/// Run one city-cell scenario start to finish on a private simulator.
/// Uses the calling thread's active telemetry sampler / metrics registry
/// (the src/exp isolation contract), so concurrent sweep runs stay
/// independent.
CityResult run_city(const CityConfig& cfg);

}  // namespace hvc::pop
