#include "trace/tsn.hpp"

#include <stdexcept>

namespace hvc::trace {

namespace {

/// Emit delivery opportunities at `rate`/`mtu` granularity within
/// [from, to) of a cycle, replicated across enough cycles to make the
/// trace's loop period exactly one cycle.
std::vector<sim::Time> window_opportunities(sim::Duration from,
                                            sim::Duration to,
                                            sim::RateBps rate,
                                            std::int64_t mtu) {
  std::vector<sim::Time> opps;
  const sim::Duration gap = sim::transmission_time(mtu, rate);
  for (sim::Time at = from; at + gap <= to; at += gap) {
    opps.push_back(at);
  }
  return opps;
}

void validate(const TsnSchedule& s) {
  if (s.cycle <= 0) throw std::invalid_argument("tsn: cycle <= 0");
  if (s.tsn_window < 0 || s.guard < 0 ||
      s.guard + s.tsn_window > s.cycle) {
    throw std::invalid_argument("tsn: window/guard exceed cycle");
  }
  if (s.medium_rate <= 0) throw std::invalid_argument("tsn: rate <= 0");
}

}  // namespace

CapacityTrace tsn_slice_trace(const TsnSchedule& s) {
  validate(s);
  // Protected window occupies [guard, guard + tsn_window) of each cycle.
  auto opps = window_opportunities(s.guard, s.guard + s.tsn_window,
                                   s.medium_rate, s.tsn_mtu);
  return CapacityTrace::from_opportunities(std::move(opps), s.cycle,
                                           s.tsn_mtu);
}

CapacityTrace best_effort_slice_trace(const TsnSchedule& s) {
  validate(s);
  // Best effort gets [window end, cycle - guard): the trailing guard
  // protects the *next* cycle's TSN window.
  auto opps = window_opportunities(s.guard + s.tsn_window, s.cycle - s.guard,
                                   s.medium_rate, s.best_effort_mtu);
  return CapacityTrace::from_opportunities(std::move(opps), s.cycle,
                                           s.best_effort_mtu);
}

}  // namespace hvc::trace
