// O(bins)-memory streaming statistics with merge-order-independent state.
//
// The fleet-scale scenarios (src/pop) produce 10⁴–10⁶ users' worth of
// samples per run; retaining them (sim::Summary) is O(samples) and the
// sharded sweep needs per-shard partial results that merge into the same
// bytes in any order. Both problems are solved the same way: every
// accumulator here is a set of *exact integers* — counts, fixed-point
// sums, histogram bins — so "merge" is integer addition, which is
// associative and commutative, and every exported double is a pure
// function of those integers. Two shards merged A+B or B+A, or a single
// unsharded pass, all serialize byte-identically.
//
// Floating-point alternatives were rejected deliberately: Welford
// mean/variance merges and t-digest centroid merges both depend on merge
// order in the low bits, which breaks the repo's byte-identity contract
// (DESIGN.md §4). The quantile sketch is therefore an HDR-style
// log-spaced fixed-bin histogram — the same O(bins) memory and bounded
// relative error as a t-digest, with exact integer bins.
//
// Accuracy bounds (documented, tested in tests/stats_test.cpp):
//   * StreamingMoments quantizes samples to 2^-16 (≈1.5e-5) absolute
//     steps, clamped to |v| <= 2^32; mean error <= 2^-17 + clamping,
//     variance error <= ~2^-15 * (|mean| + stddev).
//   * LogHistogram has 32 sub-bins per octave: quantile relative error
//     <= 2^(1/32) - 1 ≈ 2.2% (bin width), range [2^-20, 2^40) with
//     underflow/overflow bins (underflow holds zeros and negatives).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hvc::stats {

/// 128-bit signed accumulator for fixed-point sums. A thin wrapper over
/// the compiler's __int128 (already relied on by sim/units.hpp) so the
/// width is explicit at API boundaries.
struct Acc128 {
  __int128 v = 0;

  constexpr void add(std::int64_t x) { v += x; }
  constexpr void add_product(std::int64_t a, std::int64_t b) {
    v += static_cast<__int128>(a) * b;
  }
  constexpr void merge(const Acc128& o) { v += o.v; }
  [[nodiscard]] double to_double() const { return static_cast<double>(v); }
  /// Exact decimal rendering (for canonical JSON; doubles would round).
  [[nodiscard]] std::string to_decimal() const;

  constexpr bool operator==(const Acc128&) const = default;
};

/// Fixed-point sample quantization shared by the accumulators: samples
/// are mapped to integer multiples of 2^-16, clamped to |v| <= 2^32.
/// Non-finite samples do not quantize (callers count and drop them).
inline constexpr int kFracBits = 16;
inline constexpr double kQuantScale = 65536.0;  // 2^kFracBits
[[nodiscard]] std::int64_t quantize(double v);
[[nodiscard]] constexpr double dequantize(std::int64_t q) {
  return static_cast<double>(q) / kQuantScale;
}

/// Streaming count/mean/variance/min/max over quantized samples. All
/// state is exact integers; merge() in any order or grouping yields the
/// same state as one sequential pass.
class StreamingMoments {
 public:
  void add(double v);
  void merge(const StreamingMoments& o);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] double mean() const;
  /// Population variance (n, not n-1); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? dequantize(min_q_) : 0.0; }
  [[nodiscard]] double max() const { return n_ ? dequantize(max_q_) : 0.0; }

  /// Canonical serialization of the exact state (merge-identity tests).
  [[nodiscard]] std::string to_json() const;

  bool operator==(const StreamingMoments&) const = default;

 private:
  std::uint64_t n_ = 0;
  std::uint64_t dropped_ = 0;  ///< non-finite samples
  Acc128 sum_;                 ///< sum of quantized samples
  Acc128 sumsq_;               ///< sum of squared quantized samples
  std::int64_t min_q_ = 0;
  std::int64_t max_q_ = 0;
};

/// HDR-style log-spaced histogram: 32 sub-bins per power of two across
/// [2^-20, 2^40), plus an underflow bin (zeros, negatives, tiny values)
/// and an overflow bin. Memory is a fixed ~15 KiB regardless of sample
/// count; merge is elementwise bin addition.
class LogHistogram {
 public:
  static constexpr int kSubBins = 32;   ///< per octave
  static constexpr int kExpLo = -20;    ///< smallest binned exponent
  static constexpr int kExpHi = 40;     ///< one past the largest
  static constexpr int kBins = 2 + (kExpHi - kExpLo) * kSubBins;

  LogHistogram() : counts_(kBins, 0) {}

  void add(double v) { add_n(v, 1); }
  void add_n(double v, std::uint64_t n);
  void merge(const LogHistogram& o);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  /// Quantile in [0, 100]; returns the geometric midpoint of the bin
  /// holding the rank-ceil(p/100 * n) sample (0 when empty).
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::uint64_t underflow() const { return counts_.front(); }
  [[nodiscard]] std::uint64_t overflow() const { return counts_.back(); }

  /// Nonzero bins as sorted [index, count] pairs.
  [[nodiscard]] std::string to_json() const;
  /// Fixed memory footprint of the bin array (the O(bins) claim).
  [[nodiscard]] static constexpr std::size_t memory_bytes() {
    return kBins * sizeof(std::uint64_t);
  }

  bool operator==(const LogHistogram&) const = default;

 private:
  [[nodiscard]] static int bin_index(double v);
  [[nodiscard]] static double bin_mid(int idx);

  std::uint64_t n_ = 0;
  std::vector<std::uint64_t> counts_;  ///< size kBins, fixed
};

/// Classic fixed-edge histogram (counts per [edge[i-1], edge[i]) bucket
/// plus overflow). Merging requires identical edges; used where a figure
/// wants specific, human-chosen buckets rather than log spacing.
class FixedBinHistogram {
 public:
  FixedBinHistogram() = default;
  explicit FixedBinHistogram(std::vector<double> upper_edges);

  void add(double v);
  /// Throws std::invalid_argument when edge vectors differ.
  void merge(const FixedBinHistogram& o);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// counts().size() == edges().size() + 1 (last bucket = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::string to_json() const;

  bool operator==(const FixedBinHistogram&) const = default;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_{0};
  std::uint64_t n_ = 0;
};

}  // namespace hvc::stats
