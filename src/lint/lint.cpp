#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/graph.hpp"
#include "lint/index.hpp"
#include "lint/rules_semantic.hpp"
#include "obs/json.hpp"

namespace hvc::lint {

/// R7: the sanctioned clock island — the only places host clocks are
/// legal. src/obs/prof* implements the sanctioned accessors; bench/ is
/// harness code that measures the host by design (and never feeds
/// simulation state). Paths are compared as-given plus with '\\'
/// normalized, so both "bench/x.cpp" and "/abs/repo/bench/x.cpp" match.
bool in_clock_island(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  if (p.find("src/obs/prof") != std::string::npos) return true;
  if (p.rfind("bench/", 0) == 0) return true;
  return p.find("/bench/") != std::string::npos;
}

namespace {

namespace fs = std::filesystem;

// Diagnostics about the suppression machinery itself; not suppressible.
constexpr const char* kAllowNeedsJustification = "allow-needs-justification";
constexpr const char* kAllowUnknownRule = "allow-unknown-rule";

[[nodiscard]] bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

// ---- R1: wallclock / entropy ------------------------------------------

struct IdentPattern {
  std::string_view ident;
  bool must_be_call;  ///< require '(' after (C library functions)
  std::string_view what;
};

constexpr IdentPattern kWallclockPatterns[] = {
    {"system_clock", false, "std::chrono::system_clock"},
    {"steady_clock", false, "std::chrono::steady_clock"},
    {"high_resolution_clock", false, "std::chrono::high_resolution_clock"},
    {"random_device", false, "std::random_device"},
    {"rand", true, "rand()"},
    {"srand", true, "srand()"},
    {"random", true, "random()"},
    {"time", true, "time()"},
    {"clock", true, "clock()"},
    {"gettimeofday", true, "gettimeofday()"},
    {"clock_gettime", true, "clock_gettime()"},
};

void check_wallclock(const std::string& path, const Scrubbed& sc,
                     std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  for (const auto& pat : kWallclockPatterns) {
    std::size_t at = 0;
    while ((at = code.find(pat.ident, at)) != std::string::npos) {
      const std::size_t end = at + pat.ident.size();
      const char before = at > 0 ? code[at - 1] : '\0';
      const char after = end < code.size() ? code[end] : '\0';
      const bool bounded = !is_word(before) && !is_word(after);
      // C-library calls: exclude member/qualified uses (.time(, ::time()
      // would be something else entirely) and require a call.
      bool fires = bounded;
      if (fires && pat.must_be_call) {
        std::size_t p = end;
        while (p < code.size() && is_space(code[p])) ++p;
        fires = p < code.size() && code[p] == '(';
        if (before == '.' || before == ':' || before == '>') fires = false;
      }
      if (fires) {
        findings->push_back(
            {path, sc.line_of(at), "wallclock", Severity::kError,
             std::string(pat.what) +
                 ": wall-clock/entropy source in simulation code (derive "
                 "time from sim::Simulator and randomness from sim::Rng so "
                 "runs stay reproducible)",
             {},
             0});
      }
      at = end;
    }
  }
}

// ---- R2: unordered containers -----------------------------------------

void check_unordered(const std::string& path, const Scrubbed& sc,
                     std::vector<Finding>* findings) {
  for (const std::string_view ident : {std::string_view("unordered_map"),
                                       std::string_view("unordered_set")}) {
    std::size_t at = 0;
    while ((at = sc.code.find(ident, at)) != std::string::npos) {
      const std::size_t end = at + ident.size();
      const char before = at > 0 ? sc.code[at - 1] : '\0';
      const char after = end < sc.code.size() ? sc.code[end] : '\0';
      const int line = sc.line_of(at);
      // #include <unordered_map> lines are not uses.
      const bool preprocessor =
          trim(sc.code_line(line)).rfind("#", 0) == 0;
      if (!is_word(before) && !is_word(after) && !preprocessor) {
        findings->push_back(
            {path, line, "unordered-container", Severity::kWarning,
             "std::" + std::string(ident) +
                 ": iteration order is unspecified, so any traversal "
                 "feeding an export or steering decision is a latent "
                 "nondeterminism bug; use std::map/std::set, sort before "
                 "export, or allow-tag with a proof of order-independence",
             {},
             0});
      }
      at = end;
    }
  }
}

// ---- R3: steer() audit reasons ----------------------------------------

/// Find the offset of the matching close brace/paren for the open one at
/// `open` (which must point at '(' or '{'). npos if unbalanced.
std::size_t match_forward(const std::string& code, std::size_t open) {
  const char oc = code[open];
  const char cc = oc == '(' ? ')' : '}';
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == oc) ++depth;
    if (code[i] == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Collect identifiers that provably carry a reason inside `body`:
/// `X.reason` mentions and `Decision X = ...steer(...)` initializations.
std::set<std::string> reason_carrying_vars(const std::string& body) {
  std::set<std::string> vars;
  std::size_t at = 0;
  while ((at = body.find(".reason", at)) != std::string::npos) {
    std::size_t s = at;
    while (s > 0 && is_word(body[s - 1])) --s;
    if (s < at) vars.insert(body.substr(s, at - s));
    at += 7;
  }
  at = 0;
  while ((at = body.find("Decision", at)) != std::string::npos) {
    std::size_t p = at + 8;
    while (p < body.size() && is_space(body[p])) ++p;
    std::size_t vs = p;
    while (p < body.size() && is_word(body[p])) ++p;
    if (p > vs) {
      const std::size_t semi = body.find(';', p);
      const std::string init =
          body.substr(p, semi == std::string::npos ? std::string::npos
                                                   : semi - p);
      if (init.find("steer") != std::string::npos ||
          init.find("reason") != std::string::npos) {
        vars.insert(body.substr(vs, p - vs));
      }
    }
    at = p;
  }
  return vars;
}

void check_steer_reasons(const std::string& path, const Scrubbed& sc,
                         std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  std::size_t at = 0;
  while ((at = code.find("steer", at)) != std::string::npos) {
    const std::size_t end = at + 5;
    const char before = at > 0 ? code[at - 1] : '\0';
    if (is_word(before) || (end < code.size() && is_word(code[end]))) {
      at = end;
      continue;
    }
    // Must be a call/definition: next non-space char is '('.
    std::size_t paren = end;
    while (paren < code.size() && is_space(code[paren])) ++paren;
    if (paren >= code.size() || code[paren] != '(') {
      at = end;
      continue;
    }
    // Walk back over the qualifier chain (Class::steer) and whitespace;
    // a *definition* has the return type `Decision` right before it.
    std::size_t q = at;
    while (q > 0 && (is_word(code[q - 1]) || code[q - 1] == ':')) --q;
    while (q > 0 && is_space(code[q - 1])) --q;
    if (q < 8 || code.compare(q - 8, 8, "Decision") != 0 ||
        (q >= 9 && is_word(code[q - 9]))) {
      at = end;
      continue;
    }
    const std::size_t close = match_forward(code, paren);
    if (close == std::string::npos) {
      at = end;
      continue;
    }
    // Skim const/override/final/noexcept; stop at '{' (definition) or
    // ';' / '=' (declaration, defaulted, pure virtual).
    std::size_t p = close + 1;
    while (p < code.size() && code[p] != '{' && code[p] != ';' &&
           code[p] != '=') {
      ++p;
    }
    if (p >= code.size() || code[p] != '{') {
      at = end;
      continue;
    }
    const std::size_t body_end = match_forward(code, p);
    if (body_end == std::string::npos) {
      at = end;
      continue;
    }
    const std::string body = code.substr(p, body_end - p);
    const std::set<std::string> ok_vars = reason_carrying_vars(body);

    std::size_t r = 0;
    while ((r = body.find("return", r)) != std::string::npos) {
      const char rb = r > 0 ? body[r - 1] : '\0';
      const char ra = r + 6 < body.size() ? body[r + 6] : '\0';
      if (is_word(rb) || is_word(ra)) {
        r += 6;
        continue;
      }
      const std::size_t semi = body.find(';', r);
      const std::string stmt =
          body.substr(r, semi == std::string::npos ? std::string::npos
                                                   : semi - r);
      // A reason is present when the return carries a string literal
      // (aggregate init with a reason tag), mentions `reason` directly,
      // or delegates to another steer() — the delegate's own exit paths
      // are checked wherever they are defined.
      bool ok = stmt.find('"') != std::string::npos ||
                stmt.find("reason") != std::string::npos ||
                stmt.find("steer") != std::string::npos;
      if (!ok) {
        // `return X;` where X provably carries a reason.
        const std::string_view expr = trim(std::string_view(stmt).substr(6));
        ok = !expr.empty() && ok_vars.count(std::string(expr)) > 0;
      }
      if (!ok) {
        findings->push_back(
            {path, sc.line_of(p + r), "steer-missing-reason",
             Severity::kError,
             "return in a steer() implementation without an audit reason "
             "tag (set Decision::reason on every exit path so the "
             "steering-decision audit log stays complete)",
             {},
             0});
      }
      r = semi == std::string::npos ? body.size() : semi;
    }
    at = body_end;
  }
}

// ---- R4: raw new / delete ---------------------------------------------

void check_new_delete(const std::string& path, const Scrubbed& sc,
                      std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  for (const std::string_view kw : {std::string_view("new"),
                                    std::string_view("delete")}) {
    std::size_t at = 0;
    while ((at = code.find(kw, at)) != std::string::npos) {
      const std::size_t end = at + kw.size();
      const char after = end < code.size() ? code[end] : '\0';
      if ((at > 0 && is_word(code[at - 1])) || is_word(after)) {
        at = end;
        continue;
      }
      // `= delete;` (deleted special members) and `operator new/delete`
      // declarations are not ownership transfers.
      std::size_t b = at;
      while (b > 0 && is_space(code[b - 1])) --b;
      const bool deleted_fn = kw == "delete" && b > 0 && code[b - 1] == '=';
      bool operator_decl = false;
      if (b >= 8 && code.compare(b - 8, 8, "operator") == 0) {
        operator_decl = true;
      }
      if (!deleted_fn && !operator_decl) {
        findings->push_back(
            {path, sc.line_of(at), "raw-new-delete", Severity::kError,
             "raw " + std::string(kw) +
                 ": ownership goes through std::unique_ptr / containers "
                 "in this codebase (leaks in long sweep runs are silent)",
             {},
             0});
      }
      at = end;
    }
  }
}

// ---- R5: floating-point equality --------------------------------------

/// True when `expr` contains a floating-point literal token (1.0, .5,
/// 2e5, 0x1.0p-53).
bool has_float_literal(std::string_view expr) {
  for (std::size_t i = 0; i < expr.size(); ++i) {
    const char c = expr[i];
    if (c != '.' && (std::isdigit(static_cast<unsigned char>(c)) == 0)) {
      continue;
    }
    // Token must not be glued to an identifier: `p50` is not a float.
    if (i > 0 && is_word(expr[i - 1])) continue;
    std::size_t j = i;
    bool saw_digit = false;
    bool saw_dot = false;
    bool saw_exp = false;
    while (j < expr.size()) {
      const char d = expr[j];
      if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
        saw_digit = true;
      } else if (d == '.' && !saw_dot) {
        saw_dot = true;
      } else if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && saw_digit &&
                 j + 1 < expr.size() &&
                 (std::isdigit(static_cast<unsigned char>(expr[j + 1])) !=
                      0 ||
                  expr[j + 1] == '+' || expr[j + 1] == '-')) {
        saw_exp = true;
        ++j;  // consume sign/first digit marker
      } else if (d == 'x' || d == 'X' || (d >= 'a' && d <= 'f') ||
                 (d >= 'A' && d <= 'F')) {
        // hex digits / prefix, only meaningful if a float marker follows
      } else {
        break;
      }
      ++j;
    }
    if (saw_digit && (saw_dot || saw_exp)) {
      // `1.` / `1.0` / `2e5`: also require not glued to an identifier
      // char on the right (e.g. `1.foo` cannot happen in valid C++).
      if (j >= expr.size() || !is_word(expr[j]) || expr[j] == 'f') return true;
    }
    i = j;
  }
  return false;
}

void check_float_equality(const std::string& path, const Scrubbed& sc,
                          std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const bool eq = code[i] == '=' && code[i + 1] == '=';
    const bool ne = code[i] == '!' && code[i + 1] == '=';
    if (!eq && !ne) continue;
    const char before = i > 0 ? code[i - 1] : '\0';
    if (before == '=' || before == '!' || before == '<' || before == '>') {
      continue;
    }
    if (i + 2 < code.size() && code[i + 2] == '=') continue;
    // Operand windows: out to the nearest expression boundary.
    constexpr std::string_view kStops = ",;(){}?&|!<>=";
    std::size_t ls = i;
    while (ls > 0 && kStops.find(code[ls - 1]) == std::string_view::npos &&
           code[ls - 1] != '\n') {
      --ls;
    }
    std::size_t re = i + 2;
    while (re < code.size() &&
           kStops.find(code[re]) == std::string_view::npos &&
           code[re] != '\n') {
      ++re;
    }
    const std::string_view lhs =
        trim(std::string_view(code).substr(ls, i - ls));
    const std::string_view rhs =
        trim(std::string_view(code).substr(i + 2, re - i - 2));
    if (has_float_literal(lhs) || has_float_literal(rhs)) {
      findings->push_back(
          {path, sc.line_of(i), "float-equality", Severity::kWarning,
           "floating-point ==/!= comparison: metric values must be "
           "compared with an ordering or an explicit tolerance (exact "
           "equality is representation-dependent)",
           {},
           0});
    }
    ++i;
  }
}

// ---- R8: std::hash ----------------------------------------------------

void check_std_hash(const std::string& path, const Scrubbed& sc,
                    std::vector<Finding>* findings) {
  const std::string& code = sc.code;
  std::size_t at = 0;
  while ((at = code.find("hash", at)) != std::string::npos) {
    const std::size_t end = at + 4;
    const char before = at > 0 ? code[at - 1] : '\0';
    const char after = end < code.size() ? code[end] : '\0';
    if (is_word(before) || is_word(after)) {
      at = end;
      continue;
    }
    // Only the qualified form `std :: hash` (whitespace-tolerant); bare
    // `hash` identifiers and other-namespace hashes are fine.
    std::size_t p = at;
    while (p > 0 && is_space(code[p - 1])) --p;
    if (p < 2 || code[p - 1] != ':' || code[p - 2] != ':') {
      at = end;
      continue;
    }
    p -= 2;
    while (p > 0 && is_space(code[p - 1])) --p;
    if (p < 3 || code.compare(p - 3, 3, "std") != 0 ||
        (p > 3 && (is_word(code[p - 4]) || code[p - 4] == ':'))) {
      at = end;
      continue;
    }
    findings->push_back(
        {path, sc.line_of(at), "std-hash", Severity::kError,
         "std::hash: libstdc++ and libc++ hash the same value "
         "differently, so seeds/sampling keys derived from it diverge "
         "across platforms; use sim::fnv1a64 / sim::seed_mix "
         "(sim/seed.hpp) instead",
         {},
         0});
    at = end;
  }
}

// ---- R6: header self-sufficiency --------------------------------------

bool compiler_available(const std::string& compiler) {
  const std::string cmd = compiler + " --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;  // NOLINT
}

void check_header_self_sufficient(const std::string& path,
                                  const Options& opts,
                                  std::vector<Finding>* findings) {
  static int counter = 0;
  const fs::path tmp_dir = fs::temp_directory_path();
  const std::string tag = std::to_string(++counter);
  const fs::path tu = tmp_dir / ("hvc_lint_hdr_" + tag + ".cpp");
  const fs::path err = tmp_dir / ("hvc_lint_hdr_" + tag + ".err");
  {
    std::ofstream out(tu);
    out << "#include \"" << fs::absolute(path).string() << "\"\n"
        << "int hvc_lint_header_check;\n";
  }
  std::string cmd = opts.compiler + " -fsyntax-only -std=c++20 -x c++";
  for (const auto& dir : opts.include_dirs) cmd += " -I " + dir;
  cmd += " " + tu.string() + " 2> " + err.string();
  const int rc = std::system(cmd.c_str());  // NOLINT
  if (rc != 0) {
    std::ifstream in(err);
    std::string first_error;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("error:") != std::string::npos) {
        first_error = line;
        break;
      }
    }
    findings->push_back(
        {path, 1, "header-not-self-sufficient", Severity::kError,
         "header does not compile on its own (include what you use)" +
             (first_error.empty() ? std::string{}
                                  : ": " + first_error),
         {},
         0});
  }
  std::error_code ec;
  fs::remove(tu, ec);
  fs::remove(err, ec);
}

void sort_findings(std::vector<Finding>* findings) {
  std::stable_sort(findings->begin(), findings->end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

/// The per-file rule battery (R1–R5, R8) over one scrubbed file;
/// results are unsuppressed.
void run_per_file_checks(const std::string& path, const Scrubbed& sc,
                         std::vector<Finding>* raw) {
  // The clock island may read host clocks freely; everywhere else R1
  // applies and (per R7) cannot be suppressed away.
  if (!in_clock_island(path)) check_wallclock(path, sc, raw);
  check_unordered(path, sc, raw);
  check_steer_reasons(path, sc, raw);
  check_new_delete(path, sc, raw);
  check_float_equality(path, sc, raw);
  check_std_hash(path, sc, raw);
}

std::string normalize_path(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

/// True when `path` is `suffix` or ends with "/<suffix>" (either way
/// around — baseline entries are repo-relative, findings may carry
/// longer or shorter spellings of the same file).
bool path_suffix_match(const std::string& a, const std::string& b) {
  const std::string na = normalize_path(a);
  const std::string nb = normalize_path(b);
  if (na == nb) return true;
  const auto ends_with = [](const std::string& hay, const std::string& s) {
    return hay.size() > s.size() &&
           hay.compare(hay.size() - s.size(), s.size(), s) == 0 &&
           hay[hay.size() - s.size() - 1] == '/';
  };
  return ends_with(na, nb) || ends_with(nb, na);
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wallclock", Severity::kError,
       "no wall-clock/entropy sources in simulation code (R1)"},
      {"unordered-container", Severity::kWarning,
       "no std::unordered_map/set where order can leak into exports (R2)"},
      {"steer-missing-reason", Severity::kError,
       "every steer() return must set an audit reason tag (R3)"},
      {"raw-new-delete", Severity::kError,
       "no raw new/delete outside allow-tagged files (R4)"},
      {"float-equality", Severity::kWarning,
       "no floating-point ==/!= on metric values (R5)"},
      {"header-not-self-sufficient", Severity::kError,
       "headers must compile on their own (R6, --compile-check)"},
      {"clock-island", Severity::kError,
       "allow(wallclock) only inside src/obs/prof* and bench/ (R7)"},
      {"std-hash", Severity::kError,
       "no std::hash — platform-dependent; use sim/seed.hpp mixes (R8)"},
      {"worker-shared-state", Severity::kError,
       "no unguarded global/static writes on sweep worker threads (R9)"},
      {"unordered-taint", Severity::kError,
       "no unordered-iteration values flowing into export sinks (R10)"},
      {"hotpath-alloc", Severity::kError,
       "no allocation in HVC_PROF_SCOPE functions or callees (R11)"},
      {kAllowNeedsJustification, Severity::kError,
       "every allow() carries a justification"},
      {kAllowUnknownRule, Severity::kError,
       "allow() names only known rules"},
  };
  return kRules;
}

bool known_rule(std::string_view name) {
  for (const auto& r : rules()) {
    if (name == r.name) return true;
  }
  return false;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text,
                                 const Options& /*opts*/) {
  const Scrubbed sc = scrub(text);
  std::vector<Finding> directives;
  const FileSuppressions allows =
      collect_suppressions(path, sc, &directives);

  std::vector<Finding> raw;
  run_per_file_checks(path, sc, &raw);

  std::vector<Finding> out = std::move(directives);  // never suppressible
  for (auto& f : raw) {
    if (!allows.suppressed(f.rule, f.line)) out.push_back(std::move(f));
  }
  sort_findings(&out);
  return out;
}

std::vector<Finding> lint_file(const std::string& path, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 1, "io-error", Severity::kError, "cannot read file",
             {}, 0}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<Finding> out = lint_source(path, buf.str(), opts);

  const bool is_header = path.size() >= 4 &&
                         (path.rfind(".hpp") == path.size() - 4 ||
                          path.rfind(".h") == path.size() - 2);
  if (opts.compile_check && is_header) {
    // A file-scope allow silences R6 too (umbrella headers that need a
    // specific include order would tag themselves; none do today).
    const Scrubbed sc = scrub(buf.str());
    std::vector<Finding> scratch;
    const FileSuppressions allows =
        collect_suppressions(path, sc, &scratch);
    if (!allows.suppressed("header-not-self-sufficient", 1)) {
      check_header_self_sufficient(path, opts, &out);
    }
    sort_findings(&out);
  }
  return out;
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots,
                               const Options& opts, TreeStats* stats) {
  Options effective = opts;
  if (effective.compile_check &&
      !compiler_available(effective.compiler)) {
    effective.compile_check = false;
  }

  std::vector<std::string> files;
  for (const auto& root : roots) {
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
        files.push_back(entry.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Every file is indexed exactly once (cache-restored summaries skip
  // tokenization entirely); headers shared by many TUs are no longer
  // re-read per includer.
  TokenCache cache;
  if (!opts.index_cache_path.empty()) {
    cache.load_index_cache(opts.index_cache_path);
  }

  std::vector<Finding> out;
  std::vector<const TokenCache::FileData*> fds;
  for (const auto& f : files) {
    const TokenCache::FileData& fd = cache.get(f);
    if (!fd.readable) {
      out.push_back({f, 1, "io-error", Severity::kError,
                     "cannot read file", {}, 0});
      continue;
    }
    fds.push_back(&fd);
  }

  // Incremental mode: changed files plus their transitive reverse-
  // includers get the per-file rules and appear in the report; the rest
  // of the tree only feeds the semantic index.
  const bool incremental = !opts.changed_files.empty();
  std::set<std::string> affected;
  if (incremental) {
    const IncludeGraph ig(fds);
    affected = ig.affected(opts.changed_files);
  }
  const auto is_affected = [&](const std::string& path) {
    return !incremental || affected.count(normalize_path(path)) > 0;
  };

  for (const TokenCache::FileData* fd : fds) {
    if (!is_affected(fd->path)) continue;
    const TokenCache::FileData& full = cache.ensure_tokens(fd->path);
    out.insert(out.end(), full.directive_findings.begin(),
               full.directive_findings.end());
    std::vector<Finding> raw;
    run_per_file_checks(full.path, full.scrubbed, &raw);
    for (auto& f : raw) {
      if (!full.allows.suppressed(f.rule, f.line)) {
        out.push_back(std::move(f));
      }
    }
    const bool is_header =
        full.path.size() >= 4 &&
        (full.path.rfind(".hpp") == full.path.size() - 4 ||
         full.path.rfind(".h") == full.path.size() - 2);
    if (effective.compile_check && is_header &&
        !full.allows.suppressed("header-not-self-sufficient", 1)) {
      check_header_self_sufficient(full.path, effective, &out);
    }
  }

  if (opts.semantic) {
    const Index idx = build_index(fds);
    SemanticOptions sopts;
    sopts.hotpath_depth = opts.hotpath_depth;
    for (auto& f : run_semantic_rules(idx, sopts)) {
      if (!is_affected(f.file)) continue;
      const TokenCache::FileData& fd = cache.get(f.file);
      if (fd.readable && fd.allows.suppressed(f.rule, f.line)) continue;
      out.push_back(std::move(f));
    }
  }

  if (opts.compile_check && !effective.compile_check) {
    out.push_back({"", 0, "compile-check-skipped", Severity::kNote,
                   "compiler '" + opts.compiler +
                       "' not found; header self-sufficiency (R6) not "
                       "checked",
                   {}, 0});
  }
  if (!opts.index_cache_path.empty()) {
    cache.save_index_cache(opts.index_cache_path);
  }
  if (stats != nullptr) {
    const TokenCache::Stats& cs = cache.stats();
    stats->files = static_cast<int>(fds.size());
    stats->files_read = cs.files_read;
    stats->tokenizations = cs.tokenizations;
    stats->memo_hits = cs.memo_hits;
    stats->disk_cache_hits = cs.disk_cache_hits;
  }
  sort_findings(&out);
  return out;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    if (f.file.empty()) {
      out += std::string(severity_name(f.severity)) + ": " + f.message + "\n";
      continue;
    }
    out += f.file + ":" + std::to_string(f.line) + ": " +
           severity_name(f.severity) + ": [" + f.rule + "] " + f.message +
           "\n";
  }
  return out;
}

std::string to_json(const std::vector<Finding>& findings) {
  using obs::json::quote;
  std::string out = "{\"findings\":[";
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  bool first = true;
  for (const auto& f : findings) {
    switch (f.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
    if (!first) out += ',';
    first = false;
    out += "{\"file\":" + quote(f.file) +
           ",\"line\":" + std::to_string(f.line) +
           ",\"rule\":" + quote(f.rule) + ",\"severity\":" +
           quote(severity_name(f.severity)) +
           ",\"message\":" + quote(f.message) + "}";
  }
  out += "],\"errors\":" + std::to_string(errors) +
         ",\"warnings\":" + std::to_string(warnings) +
         ",\"notes\":" + std::to_string(notes) + "}";
  return out;
}

bool has_failure(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity != Severity::kNote;
  });
}

std::string to_sarif(const std::vector<Finding>& findings) {
  using obs::json::quote;
  std::string out =
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"hvc_lint\",\"rules\":[";
  bool first = true;
  for (const auto& r : rules()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + quote(r.name) +
           ",\"shortDescription\":{\"text\":" + quote(r.summary) + "}}";
  }
  out += "]}},\"results\":[";
  first = true;
  for (const auto& f : findings) {
    if (!first) out += ',';
    first = false;
    const char* level = f.severity == Severity::kError     ? "error"
                        : f.severity == Severity::kWarning ? "warning"
                                                           : "note";
    out += "{\"ruleId\":" + quote(f.rule) + ",\"level\":" +
           quote(level) + ",\"message\":{\"text\":" + quote(f.message) +
           "}";
    if (!f.file.empty()) {
      out += ",\"locations\":[{\"physicalLocation\":{"
             "\"artifactLocation\":{\"uri\":" +
             quote(f.file) + "},\"region\":{\"startLine\":" +
             std::to_string(f.line > 0 ? f.line : 1) + "}}}]";
    }
    out += "}";
  }
  out += "]}]}";
  return out;
}

// ---- baselines --------------------------------------------------------

std::string baseline_to_json(const Baseline& b) {
  using obs::json::quote;
  std::string out = "{\"hvc-lint-baseline\":1,\"entries\":[";
  bool first = true;
  for (const auto& [key, count] : b.counts) {
    if (count <= 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"file\":" + quote(key.first) + ",\"rule\":" +
           quote(key.second) + ",\"count\":" + std::to_string(count) + "}";
  }
  out += "]}";
  return out;
}

bool baseline_from_json(std::string_view text, Baseline* b) {
  obs::json::Value root;
  if (!obs::json::parse(text, &root) || !root.is_object()) return false;
  const obs::json::Value* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) return false;
  b->counts.clear();
  for (const auto& e : entries->array) {
    if (!e.is_object()) return false;
    const std::string file = e.string_or("file", "");
    const std::string rule = e.string_or("rule", "");
    const int count = static_cast<int>(e.number_or("count", 0));
    if (file.empty() || rule.empty() || count <= 0) return false;
    b->counts[{file, rule}] += count;
  }
  return true;
}

Baseline baseline_from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const auto& f : findings) {
    if (f.severity == Severity::kNote || f.file.empty()) continue;
    ++b.counts[{normalize_path(f.file), f.rule}];
  }
  return b;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const Baseline& b) {
  sort_findings(&findings);
  std::map<std::pair<std::string, std::string>, int> budget = b.counts;
  std::vector<Finding> out;
  for (auto& f : findings) {
    bool covered = false;
    for (auto& [key, remaining] : budget) {
      if (remaining > 0 && key.second == f.rule &&
          path_suffix_match(key.first, f.file)) {
        --remaining;
        covered = true;
        break;
      }
    }
    if (!covered) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace hvc::lint
