#include "sim/logger.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdlib>

#include "sim/simulator.hpp"

namespace hvc::sim {

namespace {
// Atomic so concurrent simulations (src/exp sweep workers constructing
// Loggers) read it race-free; writes happen only at startup/in tests.
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?";
  }
}

/// One-time HVC_LOG environment override for the global level.
void apply_env_override_once() {
  static const bool applied = [] {
    if (const char* env = std::getenv("HVC_LOG")) {
      g_level = parse_log_level(env, g_level);
    }
    return true;
  }();
  (void)applied;
}
}  // namespace

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
  std::string lowered;
  lowered.reserve(text.size());
  for (const char c : text) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "trace") return LogLevel::kTrace;
  if (!lowered.empty() && lowered.size() == 1 && lowered[0] >= '0' &&
      lowered[0] <= '5') {
    return static_cast<LogLevel>(lowered[0] - '0');
  }
  return fallback;
}

void Logger::set_global_level(LogLevel lvl) {
  apply_env_override_once();  // latch the env first so this call wins
  g_level = lvl;
}

LogLevel Logger::global_level() {
  apply_env_override_once();
  return g_level;
}

void Logger::log(LogLevel lvl, std::string_view msg) const {
  if (!enabled(lvl)) return;
  const double t = sim_ ? to_millis(sim_->now()) : 0.0;
  std::fprintf(stderr, "[%12.3f ms] %s %-12s %.*s\n", t, level_name(lvl),
               component_.c_str(), static_cast<int>(msg.size()), msg.data());
}

void Logger::logf(LogLevel lvl, const char* fmt, ...) const {
  if (!enabled(lvl)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log(lvl, std::string_view(buf, n < 0 ? 0 : std::min<std::size_t>(
                                                  static_cast<std::size_t>(n),
                                                  sizeof(buf) - 1)));
}

}  // namespace hvc::sim
