// Tests for capacity traces and the synthetic 5G generators.
#include <gtest/gtest.h>

#include "trace/gen5g.hpp"
#include "trace/trace.hpp"

namespace hvc::trace {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(CapacityTrace, ConstantRateSpacing) {
  const auto t = CapacityTrace::constant(sim::mbps(12));  // 1 ms per MTU
  EXPECT_EQ(t.next_opportunity(0), milliseconds(1));
  EXPECT_EQ(t.next_opportunity(milliseconds(1)), milliseconds(2));
  EXPECT_NEAR(t.average_rate_bps(), 12e6, 12e6 * 0.01);
}

TEST(CapacityTrace, LoopsAcrossPeriod) {
  const auto t = CapacityTrace::constant(sim::mbps(12), seconds(1));
  // Near the end of the first period, the next opportunity wraps.
  const sim::Time late = seconds(1) - 1;
  const sim::Time next = t.next_opportunity(late);
  EXPECT_GE(next, seconds(1));
  EXPECT_LT(next, seconds(1) + milliseconds(2));
  // Far future queries work too.
  const sim::Time far = seconds(100) + milliseconds(500);
  EXPECT_GT(t.next_opportunity(far), far);
}

TEST(CapacityTrace, NextOpportunityStrictlyAfter) {
  const auto t = CapacityTrace::constant(sim::mbps(12));
  const sim::Time opp = t.next_opportunity(0);
  EXPECT_GT(t.next_opportunity(opp), opp);
}

TEST(CapacityTrace, OpportunitiesInCounts) {
  const auto t = CapacityTrace::constant(sim::mbps(12), seconds(1));
  // 12 Mbps / (1500 B * 8) = 1000 opportunities per second.
  EXPECT_EQ(t.opportunities_in(0, seconds(1)), 1000);
  EXPECT_EQ(t.opportunities_in(0, seconds(10)), 10000);
  EXPECT_EQ(t.opportunities_in(seconds(5), seconds(5)), 0);
}

TEST(CapacityTrace, FromOpportunitiesValidates) {
  EXPECT_THROW(
      CapacityTrace::from_opportunities({seconds(2)}, seconds(1)),
      std::invalid_argument);
  EXPECT_THROW(CapacityTrace::from_opportunities({}, 0),
               std::invalid_argument);
  EXPECT_NO_THROW(
      CapacityTrace::from_opportunities({0, milliseconds(5)}, seconds(1)));
}

TEST(CapacityTrace, EmptyTraceNeverDelivers) {
  const auto t = CapacityTrace::from_opportunities({}, seconds(1));
  EXPECT_EQ(t.next_opportunity(0), sim::kTimeNever);
  EXPECT_DOUBLE_EQ(t.average_rate_bps(), 0.0);
}

TEST(Mahimahi, ParsesAndRoundTrips) {
  const std::string text = "1\n2\n2\n5\n";
  const auto t = CapacityTrace::parse_mahimahi(text);
  EXPECT_EQ(t.opportunities_per_period(), 4u);
  EXPECT_EQ(t.period(), milliseconds(6));  // last ts + 1 ms
  EXPECT_EQ(t.to_mahimahi(), text);
}

TEST(Mahimahi, RejectsMalformedInput) {
  EXPECT_THROW(CapacityTrace::parse_mahimahi(""), std::invalid_argument);
  EXPECT_THROW(CapacityTrace::parse_mahimahi("5\n3\n"),
               std::invalid_argument);
}

TEST(Mahimahi, SkipsComments) {
  const auto t = CapacityTrace::parse_mahimahi("# header\n1\n2\n");
  EXPECT_EQ(t.opportunities_per_period(), 2u);
}

TEST(MarkovGen, DeterministicInSeed) {
  const auto a = make_5g_trace(FiveGProfile::kLowbandDriving, seconds(10), 42);
  const auto b = make_5g_trace(FiveGProfile::kLowbandDriving, seconds(10), 42);
  EXPECT_EQ(a.opportunities(), b.opportunities());
}

TEST(MarkovGen, DifferentSeedsDiffer) {
  const auto a = make_5g_trace(FiveGProfile::kLowbandDriving, seconds(10), 1);
  const auto b = make_5g_trace(FiveGProfile::kLowbandDriving, seconds(10), 2);
  EXPECT_NE(a.opportunities(), b.opportunities());
}

TEST(MarkovGen, ValidatesModel) {
  MarkovRateModel m;
  EXPECT_THROW(generate_markov_trace(m, seconds(1), 1),
               std::invalid_argument);
  m.states = {{"a", sim::mbps(1), 0.0, milliseconds(100), 0, {}}};
  EXPECT_THROW(generate_markov_trace(m, seconds(1), 1),
               std::invalid_argument);  // bad transition row
}

struct ProfileCase {
  FiveGProfile profile;
  double min_avg_mbps;
  double max_avg_mbps;
};

class FiveGProfileTest : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(FiveGProfileTest, AverageRateInCalibratedBand) {
  const auto& pc = GetParam();
  const auto t = make_5g_trace(pc.profile, seconds(60), 7);
  const double avg = sim::to_mbps(
      static_cast<sim::RateBps>(t.average_rate_bps()));
  EXPECT_GE(avg, pc.min_avg_mbps) << to_string(pc.profile);
  EXPECT_LE(avg, pc.max_avg_mbps) << to_string(pc.profile);
}

TEST_P(FiveGProfileTest, TraceCoversRequestedDuration) {
  const auto& pc = GetParam();
  const auto t = make_5g_trace(pc.profile, seconds(30), 3);
  EXPECT_EQ(t.period(), seconds(30));
  EXPECT_GT(t.opportunities_per_period(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FiveGProfileTest,
    ::testing::Values(
        ProfileCase{FiveGProfile::kLowbandStationary, 35.0, 70.0},
        ProfileCase{FiveGProfile::kLowbandDriving, 12.0, 55.0},
        ProfileCase{FiveGProfile::kMmWaveDriving, 80.0, 600.0}));

TEST(FiveGProfiles, DrivingHasOutages) {
  // The driving profile must contain windows where throughput collapses —
  // that is what produces the paper's latency tails.
  const auto t =
      make_5g_trace(FiveGProfile::kLowbandDriving, seconds(120), 11);
  const double worst = t.min_windowed_rate_bps(milliseconds(400));
  EXPECT_LT(worst, 2e6);
}

TEST(FiveGProfiles, StationaryHasNoDeepOutages) {
  const auto t =
      make_5g_trace(FiveGProfile::kLowbandStationary, seconds(120), 11);
  const double worst = t.min_windowed_rate_bps(milliseconds(400));
  EXPECT_GT(worst, 5e6);
}

TEST(FiveGProfiles, MmWaveHasMultiSecondBlockages) {
  const auto t = make_5g_trace(FiveGProfile::kMmWaveDriving, seconds(180), 5);
  // Look for at least one ~1.5 s window with nearly zero capacity.
  double worst = t.min_windowed_rate_bps(milliseconds(1500));
  EXPECT_LT(worst, 1e6);
}

TEST(FiveGProfiles, BaseOwdMatchesPaperSetup) {
  EXPECT_EQ(embb_base_owd(FiveGProfile::kLowbandDriving), milliseconds(25));
  EXPECT_EQ(embb_base_owd(FiveGProfile::kMmWaveDriving), milliseconds(15));
}

}  // namespace
}  // namespace hvc::trace
