// Receiver-side resequencing buffer, as deployed by DChannel [42].
//
// Steering a flow's packets across channels with very different one-way
// delays reorders them wholesale (URLLC copies overtake eMBB copies by
// tens of ms). DChannel hides this from the transport with a small
// resequencer where the channels rejoin; without one, SACK/dupack logic
// sees phantom holes and fast-retransmits spuriously. The buffer holds a
// packet that is ahead of the flow's next expected sequence for at most
// `max_hold`, releasing early whenever the gap fills.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace hvc::net {

struct ReorderBufferStats {
  std::int64_t passed_through = 0;  ///< delivered immediately
  std::int64_t held = 0;            ///< buffered at least briefly
  std::int64_t released_by_gap_fill = 0;
  std::int64_t released_by_timeout = 0;
};

class ReorderBuffer {
 public:
  ReorderBuffer(sim::Simulator& sim, sim::Duration max_hold,
                std::function<void(PacketPtr)> downstream)
      : sim_(sim), max_hold_(max_hold), downstream_(std::move(downstream)) {
    auto& reg = obs::MetricsRegistry::current();
    m_passed_ = &reg.counter("reorder.passed_through");
    m_held_ = &reg.counter("reorder.held");
    m_gap_fill_ = &reg.counter("reorder.released_by_gap_fill");
    m_timeout_ = &reg.counter("reorder.released_by_timeout");
  }

  /// stats_ is the only per-packet accounting; fold it into the registry
  /// counters when the buffer retires.
  ~ReorderBuffer() {
    m_passed_->inc(stats_.passed_through);
    m_held_->inc(stats_.held);
    m_gap_fill_->inc(stats_.released_by_gap_fill);
    m_timeout_->inc(stats_.released_by_timeout);
  }

  /// Accept a packet from the channels. Non-data packets and flows with
  /// no sequencing bypass the buffer.
  void accept(PacketPtr p);

  [[nodiscard]] const ReorderBufferStats& stats() const { return stats_; }

 private:
  struct FlowState {
    bool initialized = false;
    std::uint64_t expected = 0;                 ///< next expected seq
    std::map<std::uint64_t, PacketPtr> held;    ///< by seq
    std::map<std::uint64_t, sim::Time> deadlines;
  };

  void release_ready(FlowState& fs);
  void on_timeout(FlowId flow);

  sim::Simulator& sim_;
  sim::Duration max_hold_;
  std::function<void(PacketPtr)> downstream_;
  // hvc-lint: allow(unordered-container): per-flow find-or-create only.
  // Release order within a flow comes from the ordered `held` map and
  // timeout events are scheduled per-flow on the simulator, so flows_
  // iteration order is never observed.
  std::unordered_map<FlowId, FlowState> flows_;
  ReorderBufferStats stats_;
  obs::Counter* m_passed_ = nullptr;
  obs::Counter* m_held_ = nullptr;
  obs::Counter* m_gap_fill_ = nullptr;
  obs::Counter* m_timeout_ = nullptr;
};

}  // namespace hvc::net
