// Figure 2: latency and quality (SSIM) distributions of decoded frames
// for three steering algorithms — eMBB-only, DChannel, and cross-layer
// priority-aware steering — on emulated 5G Lowband-driving and
// mmWave-driving eMBB plus URLLC.
//
// Paper reference (mmWave driving): priority steering cuts p95 latency by
// 1980 ms (26x) vs eMBB-only and 98 ms (2.26x: 176 -> 78 ms) vs DChannel,
// while costing only 0.068 / 0.002 mean SSIM respectively.
//
// This binary is a thin wrapper over the scenario engine: the grid lives
// in scenarios/fig2_video.json and src/exp executes it. `hvc_sweep
// scenarios/fig2_video.json` runs the same experiment; this wrapper adds
// the paper-style tables and CDF series.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "exp/results.hpp"
#include "exp/sweep.hpp"

namespace {

void print_metric_cdf(const std::string& label,
                      const std::map<std::string, double>& m,
                      const std::string& prefix, int prec) {
  std::printf("%s CDF:", label.c_str());
  for (const char* p : {"p5", "p25", "p50", "p75", "p90", "p95", "p99"}) {
    std::printf("  %s=%.*f", p, prec, m.at(prefix + "." + p));
  }
  std::printf("  p100=%.*f\n", prec, m.at(prefix + ".max"));
}

}  // namespace

int main() {
  using namespace hvc;
  bench::ObsSession obs("fig2_video_steering");
  obs.set_seed(42);
  obs.param("schemes", "embb-only,dchannel,msg-priority");
  obs.param("video", "3-layer SVC, 12 Mbps, 30 fps, 60 s");
  bench::print_header(
      "Figure 2: SVC video (3 layers, 12 Mbps, 30 fps, 60 s) per steering "
      "scheme");

  const std::string path = bench::find_scenario("scenarios/fig2_video.json");
  if (path.empty()) {
    std::fprintf(stderr,
                 "fig2_video_steering: scenarios/fig2_video.json not found "
                 "(run from the repo root or build tree)\n");
    return 1;
  }
  const auto sweep = exp::SweepSpec::from_file(path);
  const auto results = exp::run_sweep(sweep, 1);
  for (const auto& r : results) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "run %zu failed: %s\n", r.index, r.error.c_str());
      return 1;
    }
  }

  // The grid is profile-major (the profile axis sorts first), so group
  // rows per trace in grid order.
  std::vector<const exp::RunResult*> rows;
  std::string current_profile;
  auto flush = [&] {
    if (rows.empty()) return;
    for (const auto* r : rows) {
      print_metric_cdf("latency(ms) " + r->params.at("policy"), r->metrics,
                       "video.latency_ms", 1);
    }
    for (const auto* r : rows) {
      print_metric_cdf("ssim        " + r->params.at("policy"), r->metrics,
                       "video.ssim", 3);
    }
    const double embb_p95 = rows[0]->metrics.at("video.latency_ms.p95");
    const double dch_p95 = rows[1]->metrics.at("video.latency_ms.p95");
    const double pri_p95 = rows[2]->metrics.at("video.latency_ms.p95");
    std::printf(
        "p95 latency: priority %.0f ms vs DChannel %.0f ms (%.2fx) vs "
        "eMBB-only %.0f ms (%.1fx); SSIM cost vs eMBB-only: %.3f\n",
        pri_p95, dch_p95, dch_p95 / pri_p95, embb_p95, embb_p95 / pri_p95,
        rows[0]->metrics.at("video.ssim.mean") -
            rows[2]->metrics.at("video.ssim.mean"));
    rows.clear();
  };

  for (const auto& r : results) {
    const std::string& profile = r.params.at("channels.0.profile");
    if (profile != current_profile) {
      flush();
      current_profile = profile;
      std::printf("\n-- eMBB trace: %s --\n", profile.c_str());
      bench::print_row({"scheme", "lat p50", "lat p95", "lat max",
                        "ssim mean", "ssim p5", "L0-only", "full"},
                       13);
    }
    // decoded_at_layer histogram: index 1 = layer-0-only, 3 = all layers.
    bench::print_row(
        {r.params.at("policy"), bench::fmt(r.metrics.at("video.latency_ms.p50")),
         bench::fmt(r.metrics.at("video.latency_ms.p95")),
         bench::fmt(r.metrics.at("video.latency_ms.max")),
         bench::fmt(r.metrics.at("video.ssim.mean"), 3),
         bench::fmt(r.metrics.at("video.ssim.p5"), 3),
         bench::fmt(r.metrics.at("video.decoded_at_layer1"), 0),
         bench::fmt(r.metrics.at("video.decoded_at_layer3"), 0)},
        13);
    rows.push_back(&r);
  }
  flush();

  exp::write_file(bench::out_path("fig2_video_steering.results.csv"),
                  exp::to_csv(results));
  exp::write_file(bench::out_path("fig2_video_steering.results.jsonl"),
                  exp::to_jsonl(results));
  return 0;
}
