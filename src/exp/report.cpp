#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "exp/results.hpp"
#include "obs/json.hpp"
#include "sim/stats.hpp"

namespace hvc::exp {

namespace {

using obs::json::Value;

/// Optional-artifact read: "" when the file does not exist (a missing
/// telemetry/audit file just means that recorder was off).
std::string read_if_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Split JSONL into parsed objects, skipping blank lines.
std::vector<Value> parse_lines(std::string_view text,
                               const std::string& what) {
  std::vector<Value> out;
  std::size_t start = 0;
  std::size_t lineno = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++lineno;
    if (line.empty()) continue;
    Value v;
    if (!obs::json::parse(line, &v) || !v.is_object()) {
      throw SpecError(what + " line " + std::to_string(lineno) +
                      ": malformed JSON object");
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::map<std::string, double> number_map(const Value& obj) {
  std::map<std::string, double> out;
  for (const auto& [k, v] : obj.object) {
    if (v.is_number()) out[k] = v.num;
  }
  return out;
}

void append_row(std::string* out, const std::string& label, double count,
                double mean, double p50, double p99, double mn, double mx) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-46s %8.0f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                label.c_str(), count, mean, p50, p99, mn, mx);
  *out += buf;
}

/// City cohort stats of one run, reassembled from the flattened metric
/// keys "city.<cohort>.<metric>.<stat>" plus "city.jain.<cohort>".
struct CohortRows {
  // (cohort, metric) -> stat name -> value
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, double>>
      stats;
  std::map<std::string, double> jain;  ///< cohort -> index
};

CohortRows cohort_rows(const RunResult& r) {
  CohortRows rows;
  static const std::string kPrefix = "city.";
  for (const auto& [k, v] : r.metrics) {
    if (k.rfind(kPrefix, 0) != 0) continue;
    const std::string rest = k.substr(kPrefix.size());
    const std::size_t d1 = rest.find('.');
    if (d1 == std::string::npos) continue;  // scalar (city.pages, …)
    const std::string cohort = rest.substr(0, d1);
    if (cohort == "jain") {
      // "jain.<cohort>" is the index; "jain.<cohort>.users" is support.
      const std::string tail = rest.substr(d1 + 1);
      if (tail.find('.') == std::string::npos) rows.jain[tail] = v;
      continue;
    }
    const std::size_t d2 = rest.find('.', d1 + 1);
    if (d2 == std::string::npos) continue;
    rows.stats[{cohort, rest.substr(d1 + 1, d2 - d1 - 1)}]
        [rest.substr(d2 + 1)] = v;
  }
  return rows;
}

double metric_or(const RunResult& r, const std::string& key, double dflt) {
  const auto it = r.metrics.find(key);
  return it != r.metrics.end() ? it->second : dflt;
}

/// One capacity-curve family: every axis param except the population
/// axis. Returns the family key ("policy=embb-only …" or "(all runs)")
/// and the population via `users`.
std::string family_key(const RunResult& r, double* users) {
  *users = metric_or(r, "city.users", -1);
  std::string key;
  for (const auto& [k, v] : r.params) {
    if (k == "city.users" || k == "users") {
      // Prefer the axis value (covers churn-grown populations where the
      // metric reports the initial count — identical here, but the axis
      // is the sweep's declared x).
      *users = std::atof(v.c_str());
      continue;
    }
    if (!key.empty()) key += " ";
    key += k + "=" + v;
  }
  return key.empty() ? "(all runs)" : key;
}

/// The headline columns of one capacity point.
struct CapacityPoint {
  double users = 0;
  const RunResult* run = nullptr;
};

std::map<std::string, std::vector<CapacityPoint>> capacity_curves(
    const std::vector<RunResult>& runs) {
  std::map<std::string, std::vector<CapacityPoint>> curves;
  for (const auto& r : runs) {
    if (!r.error.empty()) continue;
    double users = -1;
    const std::string key = family_key(r, &users);
    if (users < 0) continue;  // not a city run
    curves[key].push_back({users, &r});
  }
  for (auto& [key, points] : curves) {
    std::sort(points.begin(), points.end(),
              [](const CapacityPoint& a, const CapacityPoint& b) {
                return a.users != b.users
                           ? a.users < b.users
                           : a.run->index < b.run->index;
              });
  }
  return curves;
}

}  // namespace

std::vector<RunResult> Report::parse_results(std::string_view jsonl) {
  std::vector<RunResult> out;
  for (const Value& v : parse_lines(jsonl, "results.jsonl")) {
    RunResult r;
    r.index = static_cast<std::size_t>(v.number_or("run", 0));
    r.name = v.string_or("name", "");
    if (const Value* params = v.find("params"); params != nullptr) {
      for (const auto& [k, pv] : params->object) {
        if (pv.is_string()) r.params[k] = pv.str;
      }
    }
    if (const Value* m = v.find("metrics")) r.metrics = number_map(*m);
    if (const Value* o = v.find("obs")) r.obs = number_map(*o);
    r.error = v.string_or("error", "");
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<ReportSample> Report::parse_telemetry(
    std::string_view jsonl, std::map<std::string, double>* meta) {
  std::vector<ReportSample> out;
  for (const Value& v : parse_lines(jsonl, "telemetry.jsonl")) {
    if (const Value* m = v.find("meta")) {
      if (meta != nullptr) *meta = number_map(*m);
      continue;
    }
    ReportSample s;
    s.t_us = v.number_or("t_us", 0);
    s.series = v.string_or("series", "");
    s.value = v.number_or("v", 0);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ReportAuditRow> Report::parse_audit(std::string_view jsonl) {
  std::vector<ReportAuditRow> out;
  for (const Value& v : parse_lines(jsonl, "audit.jsonl")) {
    ReportAuditRow r;
    r.t_us = v.number_or("t_us", 0);
    r.pkt = static_cast<std::uint64_t>(v.number_or("pkt", 0));
    r.flow = static_cast<std::uint64_t>(v.number_or("flow", 0));
    r.dir = v.string_or("dir", "-");
    r.type = v.string_or("type", "data");
    r.policy = v.string_or("policy", "");
    r.reason = v.string_or("reason", "unspecified");
    r.prio = static_cast<int>(v.number_or("prio", 0));
    r.app_prio = static_cast<int>(v.number_or("app_prio", -1));
    r.bytes = static_cast<std::int64_t>(v.number_or("bytes", 0));
    r.chosen = static_cast<int>(v.number_or("ch", 0));
    r.duplicates = static_cast<int>(v.number_or("dups", 0));
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<ReportSpanUnit> Report::parse_spans(
    std::string_view jsonl, std::map<std::string, double>* meta) {
  std::vector<ReportSpanUnit> out;
  for (const Value& v : parse_lines(jsonl, "spans.jsonl")) {
    if (const Value* m = v.find("meta")) {
      if (meta != nullptr) {
        // Sum across shards: every field is a count.
        for (const auto& [k, mv] : number_map(*m)) (*meta)[k] += mv;
      }
      continue;
    }
    ReportSpanUnit u;
    u.key = v.string_or("k", "");
    u.n = static_cast<std::uint64_t>(v.number_or("n", 0));
    u.keep = v.string_or("keep", "");
    u.user = static_cast<std::uint64_t>(v.number_or("user", 0));
    u.seq = static_cast<std::uint64_t>(v.number_or("seq", 0));
    u.value = v.number_or("v", 0);
    u.t0_ns = static_cast<std::int64_t>(v.number_or("t0_ns", 0));
    u.t1_ns = static_cast<std::int64_t>(v.number_or("t1_ns", 0));
    u.total_ns = static_cast<std::int64_t>(v.number_or("total_ns", 0));
    if (const Value* stages = v.find("stages")) {
      for (const Value& sv : stages->array) {
        ReportSpanStage st;
        st.t0_ns = static_cast<std::int64_t>(sv.number_or("t0_ns", 0));
        st.t1_ns = static_cast<std::int64_t>(sv.number_or("t1_ns", 0));
        st.prop_ns = static_cast<std::int64_t>(sv.number_or("prop_ns", 0));
        st.prop_channel = sv.string_or("prop_ch", "");
        st.legs = static_cast<int>(sv.number_or("legs", 0));
        if (const Value* c = sv.find("crit")) {
          st.crit.slot = static_cast<int>(c->number_or("slot", 0));
          st.crit.channel = c->string_or("ch", "");
          st.crit.reason = c->string_or("reason", "");
          st.crit.bytes = static_cast<std::int64_t>(c->number_or("bytes", 0));
          st.crit.t0_ns = static_cast<std::int64_t>(c->number_or("t0_ns", 0));
          st.crit.t1_ns = static_cast<std::int64_t>(c->number_or("t1_ns", 0));
          if (const Value* parts = c->find("parts")) {
            for (const auto& [pk, pv] : parts->object) {
              if (pv.is_number()) {
                st.crit.parts_ns[pk] = static_cast<std::int64_t>(pv.num);
              }
            }
          }
        }
        u.stages.push_back(std::move(st));
      }
    }
    out.push_back(std::move(u));
  }
  return out;
}

Report Report::load(const std::string& prefix,
                    const std::string& trace_path) {
  Report rep;
  rep.prefix = prefix;
  rep.runs = parse_results(read_file(prefix + ".results.jsonl"));
  const std::string telemetry = read_if_exists(prefix + ".telemetry.jsonl");
  if (!telemetry.empty()) {
    rep.telemetry = parse_telemetry(telemetry, &rep.telemetry_meta);
  }
  const std::string audit = read_if_exists(prefix + ".audit.jsonl");
  if (!audit.empty()) rep.audit = parse_audit(audit);
  // Spans: a single run writes <prefix>.spans.jsonl; a sweep writes one
  // artifact per run as <prefix>.run<i>.spans.jsonl. Load whichever
  // exists, tagging sweep exemplars with their run index.
  const std::string spans = read_if_exists(prefix + ".spans.jsonl");
  if (!spans.empty()) rep.spans = parse_spans(spans, &rep.spans_meta);
  for (const auto& r : rep.runs) {
    const std::string per_run = read_if_exists(
        prefix + ".run" + std::to_string(r.index) + ".spans.jsonl");
    if (per_run.empty()) continue;
    std::vector<ReportSpanUnit> units =
        parse_spans(per_run, &rep.spans_meta);
    for (auto& u : units) {
      u.run = static_cast<int>(r.index);
      rep.spans.push_back(std::move(u));
    }
  }
  if (!trace_path.empty()) {
    rep.lifecycle_trace = read_file(trace_path);  // explicit: must exist
  }
  return rep;
}

std::string Report::render_summary() const {
  std::string out = "== runs (" + std::to_string(runs.size()) + ") ==\n";
  for (const auto& r : runs) {
    out += "run " + std::to_string(r.index) + " " + r.name;
    for (const auto& [k, v] : r.params) out += " " + k + "=" + v;
    out += "\n";
    if (!r.error.empty()) {
      out += "  ERROR: " + r.error + "\n";
      continue;
    }
    for (const auto& [k, v] : r.metrics) {
      char buf[192];
      std::snprintf(buf, sizeof(buf), "  %-40s %s\n", k.c_str(),
                    obs::json::number(v).c_str());
      out += buf;
    }
  }
  return out;
}

std::string Report::render_decisions() const {
  std::string out = "== steering decisions ==\n";
  // Per-channel shares from the runs' registry counters:
  //   steer.<policy>.<dir>.decisions.ch<i>
  for (const auto& r : runs) {
    // group key "policy.dir" -> channel -> count
    std::map<std::string, std::map<int, double>> groups;
    for (const auto& [k, v] : r.obs) {
      static const std::string kPrefix = "steer.";
      static const std::string kInfix = ".decisions.ch";
      if (k.rfind(kPrefix, 0) != 0) continue;
      const std::size_t at = k.find(kInfix);
      if (at == std::string::npos) continue;
      const std::string who = k.substr(kPrefix.size(), at - kPrefix.size());
      const int ch = std::atoi(k.c_str() + at + kInfix.size());
      groups[who][ch] += v;
    }
    if (groups.empty()) continue;
    out += "run " + std::to_string(r.index) + " " + r.name + "\n";
    for (const auto& [who, per_ch] : groups) {
      double total = 0;
      for (const auto& [ch, n] : per_ch) total += n;
      out += "  " + who + ":";
      for (const auto& [ch, n] : per_ch) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), " ch%d %.1f%% (%.0f)", ch,
                      total > 0 ? 100.0 * n / total : 0.0, n);
        out += buf;
      }
      out += "\n";
    }
  }
  if (!audit.empty()) {
    out += "== decision reasons (audit, " + std::to_string(audit.size()) +
           " records) ==\n";
    // policy/dir -> reason -> count
    std::map<std::string, std::map<std::string, std::size_t>> reasons;
    std::map<std::string, std::size_t> totals;
    for (const auto& a : audit) {
      const std::string who = a.policy + "/" + a.dir;
      ++reasons[who][a.reason];
      ++totals[who];
    }
    for (const auto& [who, by_reason] : reasons) {
      out += "  " + who + " (" + std::to_string(totals[who]) + "):\n";
      // Highest-share reasons first; ties alphabetical for determinism.
      std::vector<std::pair<std::string, std::size_t>> ordered(
          by_reason.begin(), by_reason.end());
      std::sort(ordered.begin(), ordered.end(),
                [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
                });
      for (const auto& [reason, n] : ordered) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "    %-36s %6.1f%% (%zu)\n",
                      reason.c_str(),
                      100.0 * static_cast<double>(n) /
                          static_cast<double>(totals[who]),
                      n);
        out += buf;
      }
    }
  }
  return out;
}

std::string Report::render_telemetry() const {
  std::string out = "== telemetry ==\n";
  if (telemetry.empty()) {
    out += "  (no telemetry samples)\n";
    return out;
  }
  if (!telemetry_meta.empty()) {
    out += "  meta:";
    for (const auto& [k, v] : telemetry_meta) {
      out += " " + k + "=" + obs::json::number(v);
    }
    out += "\n";
  }
  std::map<std::string, sim::Summary> by_series;
  for (const auto& s : telemetry) by_series[s.series].add(s.value);
  char head[256];
  std::snprintf(head, sizeof(head), "  %-46s %8s %12s %12s %12s %12s %12s\n",
                "series", "samples", "mean", "p50", "p99", "min", "max");
  out += head;
  for (const auto& [name, sum] : by_series) {
    append_row(&out, name, static_cast<double>(sum.count()), sum.mean(),
               sum.percentile(50), sum.percentile(99), sum.min(), sum.max());
  }
  return out;
}

std::string Report::render_cohorts() const {
  std::string out;
  for (const auto& r : runs) {
    const CohortRows rows = cohort_rows(r);
    if (rows.stats.empty()) continue;
    if (out.empty()) out = "== cohorts ==\n";
    out += "run " + std::to_string(r.index) + " " + r.name;
    for (const auto& [k, v] : r.params) out += " " + k + "=" + v;
    out += "\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-12s %-12s %8s %10s %10s %10s %10s %8s\n", "cohort",
                  "metric", "count", "mean", "p50", "p95", "p99", "jain");
    out += buf;
    for (const auto& [key, stats] : rows.stats) {
      const auto& [cohort, metric] = key;
      const auto stat = [&stats](const char* name) {
        const auto it = stats.find(name);
        return it != stats.end() ? it->second : 0.0;
      };
      const auto jain = rows.jain.find(cohort);
      std::snprintf(buf, sizeof(buf),
                    "  %-12s %-12s %8.0f %10.2f %10.2f %10.2f %10.2f",
                    cohort.c_str(), metric.c_str(), stat("count"),
                    stat("mean"), stat("p50"), stat("p95"), stat("p99"));
      out += buf;
      if (jain != rows.jain.end()) {
        std::snprintf(buf, sizeof(buf), " %8.4f", jain->second);
        out += buf;
      } else {
        out += "        -";
      }
      out += "\n";
    }
  }
  return out;
}

std::string Report::render_capacity() const {
  const auto curves = capacity_curves(runs);
  if (curves.empty()) return "";
  std::string out = "== capacity curve ==\n";
  for (const auto& [key, points] : curves) {
    out += key + "\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %10s %14s %14s %14s %12s %10s\n", "users",
                  "web_plt_p50ms", "web_plt_p95ms", "video_p95ms",
                  "spill_rate", "jain_web");
    out += buf;
    for (const auto& p : points) {
      const RunResult& r = *p.run;
      std::snprintf(buf, sizeof(buf),
                    "  %10.0f %14.2f %14.2f %14.2f %12.4f %10.4f\n",
                    p.users, metric_or(r, "city.web.plt_ms.p50", 0),
                    metric_or(r, "city.web.plt_ms.p95", 0),
                    metric_or(r, "city.video.latency_ms.p95", 0),
                    metric_or(r, "city.urllc_spill_rate", 0),
                    metric_or(r, "city.jain.web", 0));
      out += buf;
    }
  }
  return out;
}

std::string Report::capacity_json() const {
  using obs::json::number;
  using obs::json::quote;
  const auto curves = capacity_curves(runs);
  std::string out = "{\"curves\":[";
  bool first_curve = true;
  for (const auto& [key, points] : curves) {
    if (!first_curve) out += ',';
    first_curve = false;
    out += "{\"params\":{";
    bool first_param = true;
    if (!points.empty()) {
      for (const auto& [k, v] : points.front().run->params) {
        if (k == "city.users" || k == "users") continue;
        if (!first_param) out += ',';
        first_param = false;
        out += quote(k) + ":" + quote(v);
      }
    }
    out += "},\"points\":[";
    bool first_point = true;
    for (const auto& p : points) {
      const RunResult& r = *p.run;
      if (!first_point) out += ',';
      first_point = false;
      out += "{\"users\":" + number(p.users);
      // Every city metric rides along so plots are not limited to the
      // table's headline columns.
      for (const auto& [k, v] : r.metrics) {
        if (k.rfind("city.", 0) != 0 || k == "city.users") continue;
        out += "," + quote(k.substr(5)) + ":" + number(v);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string Report::render_explain() const {
  if (spans.empty()) return "";
  // Fixed component order: the waterfall reads causally (propagation
  // before queueing before serialization), channels alphabetical.
  static const char* kComps[] = {"propagation",   "steering-wait",
                                 "queueing",      "retransmission",
                                 "reorder-wait",  "serialization",
                                 "decode-wait"};
  std::string out = "== span exemplars (" + std::to_string(spans.size()) +
                    " retained) ==\n";
  if (!spans_meta.empty()) {
    out += "  meta:";
    for (const auto& [k, v] : spans_meta) {
      out += " " + k + "=" + obs::json::number(v);
    }
    out += "\n";
  }
  char buf[256];
  for (const auto& u : spans) {
    out += "\n-- " + u.key;
    if (u.run >= 0) out += " run=" + std::to_string(u.run);
    std::snprintf(buf, sizeof(buf),
                  " n=%llu keep=%s user=%llu seq=%llu value=%s --\n",
                  static_cast<unsigned long long>(u.n), u.keep.c_str(),
                  static_cast<unsigned long long>(u.user),
                  static_cast<unsigned long long>(u.seq),
                  obs::json::number(u.value).c_str());
    out += buf;
    // Waterfall: stage windows relative to the unit's start.
    std::snprintf(buf, sizeof(buf), "  waterfall (t0 = %.3f ms):\n",
                  static_cast<double>(u.t0_ns) * 1e-6);
    out += buf;
    for (std::size_t i = 0; i < u.stages.size(); ++i) {
      const ReportSpanStage& st = u.stages[i];
      std::snprintf(buf, sizeof(buf), "    stage %zu [%10.3f ..%10.3f ms]",
                    i + 1, static_cast<double>(st.t0_ns - u.t0_ns) * 1e-6,
                    static_cast<double>(st.t1_ns - u.t0_ns) * 1e-6);
      out += buf;
      if (st.prop_ns > 0) {
        std::snprintf(buf, sizeof(buf), "  prop %.3f ms %s",
                      static_cast<double>(st.prop_ns) * 1e-6,
                      st.prop_channel.c_str());
        out += buf;
      }
      if (st.legs > 0) {
        std::snprintf(buf, sizeof(buf),
                      "  | crit leg slot%d %s %lldB %s (of %d)",
                      st.crit.slot, st.crit.channel.c_str(),
                      static_cast<long long>(st.crit.bytes),
                      st.crit.reason.c_str(), st.legs);
        out += buf;
      }
      out += "\n";
    }
    // Attribution: component x channel, exact integer ns, shown in ms.
    // Propagation rides the stage's prop_channel; leg parts ride the
    // critical leg's channel.
    std::map<std::string, std::map<std::string, std::int64_t>> attr;
    std::int64_t sum_ns = 0;
    for (const ReportSpanStage& st : u.stages) {
      if (st.prop_ns > 0) {
        const std::string ch =
            st.prop_channel.empty() ? "-" : st.prop_channel;
        attr["propagation"][ch] += st.prop_ns;
        sum_ns += st.prop_ns;
      }
      if (st.legs > 0) {
        const std::string ch =
            st.crit.channel.empty() ? "-" : st.crit.channel;
        for (const auto& [comp, ns] : st.crit.parts_ns) {
          attr[comp][ch] += ns;
          sum_ns += ns;
        }
      }
    }
    std::vector<std::string> channels;
    for (const auto& [comp, by_ch] : attr) {
      for (const auto& [ch, ns] : by_ch) {
        if (std::find(channels.begin(), channels.end(), ch) ==
            channels.end()) {
          channels.push_back(ch);
        }
      }
    }
    std::sort(channels.begin(), channels.end());
    out += "  attribution (ms):\n";
    out += "    component        ";
    for (const auto& ch : channels) {
      std::snprintf(buf, sizeof(buf), " %12s", ch.c_str());
      out += buf;
    }
    out += "        total\n";
    std::map<std::string, std::int64_t> ch_total;
    for (const char* comp : kComps) {
      const auto it = attr.find(comp);
      if (it == attr.end()) continue;
      std::int64_t row = 0;
      std::snprintf(buf, sizeof(buf), "    %-16s ", comp);
      out += buf;
      for (const auto& ch : channels) {
        const auto cit = it->second.find(ch);
        const std::int64_t ns = cit != it->second.end() ? cit->second : 0;
        row += ns;
        ch_total[ch] += ns;
        std::snprintf(buf, sizeof(buf), " %12.3f",
                      static_cast<double>(ns) * 1e-6);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), " %12.3f\n",
                    static_cast<double>(row) * 1e-6);
      out += buf;
    }
    out += "    total            ";
    for (const auto& ch : channels) {
      std::snprintf(buf, sizeof(buf), " %12.3f",
                    static_cast<double>(ch_total[ch]) * 1e-6);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), " %12.3f\n",
                  static_cast<double>(sum_ns) * 1e-6);
    out += buf;
    if (sum_ns == u.total_ns) {
      std::snprintf(buf, sizeof(buf),
                    "  check: components sum to %lld ns == measured total"
                    " (exact)\n",
                    static_cast<long long>(sum_ns));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  check: MISMATCH components %lld ns != measured"
                    " %lld ns\n",
                    static_cast<long long>(sum_ns),
                    static_cast<long long>(u.total_ns));
    }
    out += buf;
  }
  return out;
}

std::string Report::to_chrome_trace() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& ev) {
    if (!first) out += ',';
    first = false;
    out += ev;
  };

  // Lifecycle events pass through verbatim (same pid 0 / sim-time base).
  if (!lifecycle_trace.empty()) {
    Value v;
    if (obs::json::parse(lifecycle_trace, &v)) {
      if (const Value* events = v.find("traceEvents")) {
        for (const Value& e : events->array) emit(obs::json::serialize(e));
      }
    }
  }

  if (!audit.empty()) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":3000,"
         "\"args\":{\"name\":\"steering decisions\"}}");
  }

  char buf[96];
  for (const auto& s : telemetry) {
    std::snprintf(buf, sizeof(buf), "%.3f", s.t_us);
    emit("{\"name\":" + obs::json::quote(s.series) +
         ",\"ph\":\"C\",\"pid\":0,\"ts\":" + buf + ",\"args\":{\"value\":" +
         obs::json::number(s.value) + "}}");
  }
  for (const auto& a : audit) {
    std::snprintf(buf, sizeof(buf), "%.3f", a.t_us);
    emit("{\"name\":" + obs::json::quote(a.reason) +
         ",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":3000,\"ts\":" + buf +
         ",\"args\":{\"pkt\":" + std::to_string(a.pkt) +
         ",\"flow\":" + std::to_string(a.flow) +
         ",\"ch\":" + std::to_string(a.chosen) +
         ",\"policy\":" + obs::json::quote(a.policy) +
         ",\"dir\":" + obs::json::quote(a.dir) + "}}");
  }

  // Retained span trees nest under the shared sim-time base: one tid per
  // exemplar (overlapping units on a shared tid would break nesting).
  int span_tid = 4000;
  char ts[64];
  char dur[64];
  const auto window = [&ts, &dur](std::int64_t t0_ns, std::int64_t t1_ns) {
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(t0_ns) * 1e-3);
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(t1_ns - t0_ns) * 1e-3);
  };
  for (const auto& u : spans) {
    const int tid = span_tid++;
    std::string label = "span " + u.key + " n=" + std::to_string(u.n) +
                        " (" + u.keep + ")";
    if (u.run >= 0) label += " run" + std::to_string(u.run);
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"name\":" +
         obs::json::quote(label) + "}}");
    window(u.t0_ns, u.t1_ns);
    emit("{\"name\":" + obs::json::quote(u.key) +
         ",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(tid) +
         ",\"ts\":" + ts + ",\"dur\":" + dur +
         ",\"args\":{\"user\":" + std::to_string(u.user) +
         ",\"value\":" + obs::json::number(u.value) + "}}");
    for (std::size_t i = 0; i < u.stages.size(); ++i) {
      const ReportSpanStage& st = u.stages[i];
      window(st.t0_ns, st.t1_ns);
      emit("{\"name\":\"stage " + std::to_string(i + 1) +
           "\",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + ts + ",\"dur\":" + dur +
           ",\"args\":{\"legs\":" + std::to_string(st.legs) + "}}");
      if (st.legs == 0) continue;
      window(st.crit.t0_ns, st.crit.t1_ns);
      std::string args = "{\"channel\":" + obs::json::quote(st.crit.channel) +
                         ",\"bytes\":" + std::to_string(st.crit.bytes);
      for (const auto& [comp, ns] : st.crit.parts_ns) {
        args += "," + obs::json::quote(comp + "_ms") + ":" +
                obs::json::number(static_cast<double>(ns) * 1e-6);
      }
      args += "}";
      emit("{\"name\":" + obs::json::quote(st.crit.reason) +
           ",\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + ts + ",\"dur\":" + dur + ",\"args\":" + args + "}");
    }
  }
  out += "]}";
  return out;
}

}  // namespace hvc::exp
