// The discrete-event simulation kernel.
//
// Single-threaded and deterministic: given the same schedule of callbacks
// and the same RNG seeds, a run is bit-for-bit reproducible. All other
// modules (channels, transports, applications) are written against this
// clock and never read wall-clock time.
#pragma once

#include <cassert>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/units.hpp"

namespace hvc::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()). Accepts any
  /// void() callable; small captures are stored inline (see EventFn)
  /// instead of round-tripping through std::function's allocator.
  template <class F>
  EventId at(Time when, F&& fn) {
    if (when < now_) {
      throw std::logic_error("Simulator::at: scheduling in the past");
    }
    return queue_.push(when, EventFn(std::forward<F>(fn)));
  }

  /// Schedule `fn` to run `delay` from now.
  template <class F>
  EventId after(Duration delay, F&& fn) {
    return at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  /// Cancel a pending event (no-op if it already ran).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the event queue drains or `deadline` is reached, whichever
  /// comes first. Events scheduled exactly at `deadline` still run.
  /// Returns the number of events executed.
  std::size_t run_until(Time deadline) {
    std::size_t executed = 0;
    EventQueue::Popped ev;
    // pop_due is a single find-min per event where next_time() + pop()
    // was two; the loop body is otherwise the historical one.
    while (queue_.pop_due(deadline, ev)) {
      now_ = ev.at;
      ev.fn();
      ++executed;
    }
    if (deadline != kTimeNever && now_ < deadline) now_ = deadline;
    return executed;
  }

  /// Run until the queue drains completely.
  std::size_t run() { return run_until(kTimeNever); }

  /// Run for a span of simulated time from now.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
};

/// A cancellable, re-armable one-shot timer bound to a Simulator.
///
/// Owns its pending event: rearming cancels the previous one, destruction
/// cancels any pending fire. Components hold Timers by value for RTOs,
/// pacing releases, decode deadlines, etc.
class Timer {
 public:
  explicit Timer(Simulator& sim, std::function<void()> fn)
      : sim_(&sim), fn_(std::move(fn)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm to fire `delay` from now.
  void arm(Duration delay) {
    cancel();
    deadline_ = sim_->now() + (delay < 0 ? 0 : delay);
    armed_ = true;
    id_ = sim_->after(delay, [this] {
      armed_ = false;
      fn_();
    });
  }

  /// (Re)arm to fire at absolute time `when`.
  void arm_at(Time when) {
    cancel();
    deadline_ = when;
    armed_ = true;
    id_ = sim_->at(when, [this] {
      armed_ = false;
      fn_();
    });
  }

  void cancel() {
    if (armed_) {
      sim_->cancel(id_);
      armed_ = false;
    }
  }

  [[nodiscard]] bool armed() const { return armed_; }
  /// Absolute fire time of the currently armed timer (valid while armed()).
  [[nodiscard]] Time deadline() const { return deadline_; }

 private:
  Simulator* sim_;
  std::function<void()> fn_;
  EventId id_ = 0;
  Time deadline_ = kTimeNever;
  bool armed_ = false;
};

}  // namespace hvc::sim
