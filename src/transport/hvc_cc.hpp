// HVC-aware congestion control — the §3.2 proposal made concrete.
//
// Structurally a BBR-style model-based controller, but *aware that
// multiple heterogeneous channels exist*: every RTT sample is attributed
// to the channel the acked packet actually traversed (the receiver echoes
// the channel index), and the controller keeps a windowed-min RTT filter
// per channel. The BDP is computed against the *bandwidth-weighted* RTT
// across channels, so a 5 ms URLLC sample carrying 3% of the bytes cannot
// collapse the model the way it collapses vanilla BBR's RTprop
// (ablation C / bench/ablation_hvc_cc).
#pragma once

#include <array>

#include "sim/stats.hpp"
#include "transport/cca.hpp"

namespace hvc::transport {

struct HvcCcConfig {
  double startup_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  sim::Duration rtt_window = sim::seconds(10);
  int bw_window_rounds = 10;
  std::int64_t min_cwnd = 4 * kMss;
  std::int64_t initial_cwnd = 10 * kMss;
  sim::Duration rate_epoch = sim::milliseconds(100);
  static constexpr std::size_t kMaxChannels = 8;
};

class HvcAwareCc final : public CcAlgorithm {
 public:
  explicit HvcAwareCc(HvcCcConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "hvc"; }
  void on_packet_sent(sim::Time now, std::int64_t bytes,
                      std::int64_t bytes_in_flight) override;
  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  [[nodiscard]] std::int64_t cwnd_bytes() const override;
  [[nodiscard]] double pacing_rate_bps() const override;

  /// Bandwidth-weighted cross-channel propagation delay estimate.
  [[nodiscard]] sim::Duration weighted_rtt() const;
  [[nodiscard]] double btl_bw_bps() const;

  enum class Mode { kStartup, kDrain, kProbeBw };
  [[nodiscard]] Mode mode() const { return mode_; }

 private:
  struct PerChannel {
    sim::WindowedMin rtt_min{sim::seconds(10)};
    std::int64_t epoch_bytes = 0;
    double rate_bps = 0.0;  ///< EWMA of per-epoch throughput share
    bool seen = false;
  };

  void roll_epoch(sim::Time now);

  HvcCcConfig cfg_;
  Mode mode_ = Mode::kStartup;
  std::array<PerChannel, HvcCcConfig::kMaxChannels> ch_{};

  struct BwSample {
    std::int64_t round;
    double bps;
  };
  std::vector<BwSample> bw_samples_;

  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  static constexpr double kCycleGains[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
  int cycle_index_ = 0;
  sim::Time cycle_stamp_ = 0;
  double pacing_gain_;

  sim::Time epoch_start_ = 0;
  sim::Duration srtt_ = sim::milliseconds(100);
};

}  // namespace hvc::transport
