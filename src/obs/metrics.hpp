// MetricsRegistry: the single namespace for every counter, gauge and
// histogram the stack produces. Modules resolve their instruments by name
// once (at construction) and hold stable pointers. Per-packet hot paths
// keep accounting in their own stats structs and fold the totals into the
// counters on destruction, so steady-state cost is zero; low-rate
// producers (per-frame, per-message) update instruments live.
//
// Names are dot-separated, lowest-level component first, e.g.
//   shim.up.ch0.packets        link.eMBB-down.delivered_packets
//   transport.tcp.retransmissions   app.video.frame_latency_ms
//
// A process-global default registry (MetricsRegistry::global()) is the
// collection point for bench manifests; instruments accumulate across
// every scenario a binary runs unless reset_values() is called. Local
// registries can be constructed for isolated measurement (tests do).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace hvc::obs {

class Counter {
 public:
  void inc(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts samples in [edges[i-1],
/// edges[i]), with an implicit overflow bucket for v >= edges.back().
/// A sim::Summary rides along so exact moments/percentiles stay available
/// (samples are retained there, as everywhere else in the repo).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void add(double v);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// counts().size() == edges().size() + 1 (last bucket = overflow).
  [[nodiscard]] const std::vector<std::int64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::int64_t count() const {
    return static_cast<std::int64_t>(summary_.count());
  }
  [[nodiscard]] const sim::Summary& summary() const { return summary_; }
  void reset();

  /// A log-spaced default for latency-in-ms style metrics (0.1 .. 10^5).
  static std::vector<double> default_latency_edges();

 private:
  std::vector<double> edges_;
  std::vector<std::int64_t> counts_;
  sim::Summary summary_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry.
  static MetricsRegistry& global();

  /// The registry instruments bind to: the innermost ScopedMetricsRegistry
  /// installed on the calling thread, or global() when none is. Modules
  /// resolve instruments through current() so concurrent simulations (the
  /// sweep engine, src/exp) can give every run a private registry without
  /// threading a pointer through every constructor.
  static MetricsRegistry& current();

  /// Find-or-create. Returned references are stable for the registry's
  /// lifetime; same name always yields the same instrument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_edges = {});

  /// Flattened snapshot: counters and gauges by name; histograms expand
  /// into <name>.count / .mean / .p50 / .p95 / .p99 / .max.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

  /// Full JSON export (counters, gauges, histograms with buckets).
  [[nodiscard]] std::string to_json() const;

  /// CSV export of the flattened snapshot: a `metric,value` header then
  /// one sorted row per metric. Same formatter the sweep engine uses for
  /// aggregated results (see snapshot_to_csv), so single-run and sweep
  /// outputs stay diff-able.
  [[nodiscard]] std::string to_csv() const;

  /// Zero all values but keep every registration (pointers stay valid).
  void reset_values();

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>&
  gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
  histograms() const {
    return histograms_;
  }

 private:
  // Ordered maps: every iteration (snapshot, to_json, to_csv) is then
  // export-safe by construction. Find-or-create runs once per module at
  // construction time, never on per-packet paths, so the O(log n) lookup
  // is irrelevant.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII: installs a registry as the calling thread's
/// MetricsRegistry::current() for the scope's lifetime. Nests; the
/// previous registry (or global()) is restored on destruction. Each sweep
/// run lives inside one of these, so runs never share instruments even
/// when executing concurrently.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

/// CSV cell escaping per RFC 4180: fields containing commas, quotes or
/// newlines are quoted, embedded quotes doubled.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// The shared metric-snapshot CSV formatter ("metric,value" header, rows
/// sorted by name, shortest round-trippable numbers).
[[nodiscard]] std::string snapshot_to_csv(
    const std::map<std::string, double>& snapshot);

}  // namespace hvc::obs
