# Empty dependencies file for hvc_sim.
# This may be replaced when dependencies are built.
