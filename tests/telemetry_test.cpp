// Tests for the telemetry subsystem: TelemetrySampler ring/cap behavior
// and exports, the steering-decision audit log, the "telemetry" spec
// block, sweep byte-identity with telemetry both off and on, and the
// report library behind hvc_report.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/report.hpp"
#include "exp/results.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "exp/sweep.hpp"
#include "obs/audit.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace hvc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- TelemetrySampler ----

TEST(ObsTelemetry, ProbesAreNoOpWithoutActiveSampler) {
  ASSERT_EQ(obs::TelemetrySampler::active(), nullptr);
  obs::TelemetryProbes probes;
  probes.add("link", "link.x.queued_bytes", [] { return 1.0; });
  EXPECT_EQ(probes.size(), 0u);
}

TEST(ObsTelemetry, RingOverwritesOldestAndCountsTruncation) {
  obs::TelemetrySampler ts;
  obs::TelemetryConfig cfg;
  cfg.max_samples_per_series = 4;
  ts.enable(cfg);
  double v = 0;
  ASSERT_NE(ts.add_probe("link", "link.a.q", [&] { return v; }), 0u);
  for (int i = 0; i < 10; ++i) {
    v = i;
    ts.sample(sim::milliseconds(i));
  }
  ts.disable();
  EXPECT_EQ(ts.total_recorded(), 10u);
  EXPECT_EQ(ts.overwritten(), 6u);
  const auto samples = ts.samples("link.a.q");
  ASSERT_EQ(samples.size(), 4u);  // oldest four fell off the ring
  EXPECT_EQ(samples.front().at, sim::milliseconds(6));
  EXPECT_DOUBLE_EQ(samples.front().value, 6.0);
  EXPECT_EQ(samples.back().at, sim::milliseconds(9));
  EXPECT_DOUBLE_EQ(samples.back().value, 9.0);
}

TEST(ObsTelemetry, SeriesCapRefusesRegistrationAndCounts) {
  obs::TelemetrySampler ts;
  obs::TelemetryConfig cfg;
  cfg.max_series = 2;
  ts.enable(cfg);
  EXPECT_NE(ts.add_probe("link", "a", [] { return 0.0; }), 0u);
  EXPECT_NE(ts.add_probe("link", "b", [] { return 0.0; }), 0u);
  EXPECT_EQ(ts.add_probe("link", "c", [] { return 0.0; }), 0u);
  ts.disable();
  EXPECT_EQ(ts.series_count(), 2u);
  EXPECT_EQ(ts.dropped_series(), 1u);
  // The refusal is reported in the export meta line, never silent.
  EXPECT_NE(ts.to_jsonl().find("\"dropped_series\":1"), std::string::npos);
}

TEST(ObsTelemetry, GroupFilterDropsUnselectedProbes) {
  obs::TelemetrySampler ts;
  obs::TelemetryConfig cfg;
  cfg.groups = {"link"};
  ts.enable(cfg);
  EXPECT_EQ(ts.add_probe("channel", "channel.a.rate", [] { return 0.0; }),
            0u);
  EXPECT_NE(ts.add_probe("link", "link.a.q", [] { return 0.0; }), 0u);
  ts.disable();
  EXPECT_EQ(ts.series_count(), 1u);
  EXPECT_EQ(ts.dropped_series(), 0u);  // filtered out, not cap-refused
}

TEST(ObsTelemetry, AttachSamplesOnSimTimePeriod) {
  sim::Simulator sim;
  obs::TelemetrySampler ts;
  obs::TelemetryConfig cfg;
  cfg.period = sim::milliseconds(10);
  ts.enable(cfg);
  ASSERT_NE(ts.add_probe("link", "link.a.q", [] { return 7.0; }), 0u);
  ts.attach(sim);
  sim.run_until(sim::milliseconds(35));
  ts.disable();
  const auto samples = ts.samples("link.a.q");
  ASSERT_EQ(samples.size(), 3u);  // ticks at 10, 20, 30 ms
  EXPECT_EQ(samples[0].at, sim::milliseconds(10));
  EXPECT_EQ(samples[2].at, sim::milliseconds(30));
}

TEST(ObsTelemetry, ExportsOrderSeriesByName) {
  obs::TelemetrySampler ts;
  ts.enable({});
  ASSERT_NE(ts.add_probe("link", "z.last", [] { return 1.0; }), 0u);
  ASSERT_NE(ts.add_probe("link", "a.first", [] { return 2.0; }), 0u);
  ts.sample(sim::milliseconds(1));
  ts.disable();
  EXPECT_EQ(ts.series_names(),
            (std::vector<std::string>{"a.first", "z.last"}));
  const std::string jsonl = ts.to_jsonl();
  EXPECT_LT(jsonl.find("a.first"), jsonl.find("z.last"));
  const std::string csv = ts.to_csv();
  EXPECT_LT(csv.find("a.first"), csv.find("z.last"));
  obs::json::Value v;
  EXPECT_TRUE(obs::json::parse(ts.to_chrome_trace(), &v));
  EXPECT_EQ(v.find("traceEvents")->array.size(), 2u);
}

TEST(ObsTelemetry, ScopedInstallMasksAndRestores) {
  obs::TelemetrySampler outer;
  outer.enable({});
  obs::ScopedTelemetrySampler outer_scope(outer);
  ASSERT_EQ(obs::TelemetrySampler::active(), &outer);
  {
    // A disabled sampler masks the outer one: a sweep run with telemetry
    // off must not leak probes into a sibling run's sampler.
    obs::TelemetrySampler inner;
    obs::ScopedTelemetrySampler inner_scope(inner);
    EXPECT_EQ(obs::TelemetrySampler::active(), nullptr);
  }
  EXPECT_EQ(obs::TelemetrySampler::active(), &outer);
  outer.disable();
}

// ---- SteeringAuditLog ----

TEST(ObsAudit, RingWrapsOldestFirstWithTrueTotal) {
  obs::SteeringAuditLog log;
  log.enable(4);
  for (int i = 0; i < 6; ++i) {
    obs::AuditRecord rec;
    rec.at = sim::milliseconds(i);
    rec.packet_id = static_cast<std::uint64_t>(i);
    rec.reason = "dchannel:default";
    rec.policy = "dchannel";
    log.record(std::move(rec));
  }
  log.disable();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 6u);
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().packet_id, 2u);  // 0 and 1 overwritten
  EXPECT_EQ(records.back().packet_id, 5u);
}

TEST(ObsAudit, JsonlCarriesReasonAndChannelSnapshots) {
  obs::SteeringAuditLog log;
  log.enable(8);
  obs::AuditRecord rec;
  rec.at = sim::microseconds(1500);
  rec.packet_id = 9;
  rec.flow_id = 2;
  rec.size_bytes = 1500;
  rec.chosen = 1;
  rec.reason = "dchannel:small-object";
  rec.policy = "dchannel";
  rec.channels = {{2960, 50.4}, {0, 5.2}};
  log.record(std::move(rec));
  log.disable();
  const std::string jsonl = log.to_jsonl();
  EXPECT_NE(jsonl.find("\"reason\":\"dchannel:small-object\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"channels\":[{\"q\":2960"), std::string::npos);
  obs::json::Value v;
  ASSERT_TRUE(obs::json::parse(
      std::string_view(jsonl).substr(0, jsonl.find('\n')), &v));
  EXPECT_DOUBLE_EQ(v.number_or("t_us", 0), 1500.0);
  EXPECT_DOUBLE_EQ(v.number_or("ch", -1), 1.0);
}

TEST(ObsAudit, ScopedInstallMasksAndRestores) {
  obs::SteeringAuditLog outer;
  outer.enable(4);
  obs::ScopedSteeringAuditLog outer_scope(outer);
  ASSERT_EQ(obs::SteeringAuditLog::active(), &outer);
  {
    obs::SteeringAuditLog inner;  // disabled: masks the outer log
    obs::ScopedSteeringAuditLog inner_scope(inner);
    EXPECT_EQ(obs::SteeringAuditLog::active(), nullptr);
  }
  EXPECT_EQ(obs::SteeringAuditLog::active(), &outer);
  outer.disable();
}

// ---- "telemetry" spec block ----

TEST(ExpSpecTelemetry, BlockPresenceEnablesByDefault) {
  const auto s = exp::ScenarioSpec::from_json_text(
      R"({"telemetry": {"period_ms": 5, "audit": true,
                        "series": ["channel", "steer"]}})");
  EXPECT_TRUE(s.telemetry.enabled);
  EXPECT_DOUBLE_EQ(s.telemetry.period_ms, 5.0);
  EXPECT_TRUE(s.telemetry.audit);
  EXPECT_EQ(s.telemetry.series,
            (std::vector<std::string>{"channel", "steer"}));
}

TEST(ExpSpecTelemetry, OmittedBlockStaysOffAndOutOfJson) {
  const auto s = exp::ScenarioSpec::from_json_text("{}");
  EXPECT_FALSE(s.telemetry.enabled);
  EXPECT_EQ(s.to_json().find("telemetry"), std::string::npos);
}

TEST(ExpSpecTelemetry, RoundTripsThroughToJson) {
  const auto s = exp::ScenarioSpec::from_json_text(
      R"({"telemetry": {"enabled": true, "period_ms": 2.5, "audit": true,
                        "series": ["link"], "max_samples": 64,
                        "max_series": 8, "audit_capacity": 128,
                        "out_prefix": "out/t"}})");
  const auto round = exp::ScenarioSpec::from_json_text(s.to_json());
  EXPECT_TRUE(s.telemetry == round.telemetry);
}

TEST(ExpSpecTelemetry, RejectsBadBlocks) {
  EXPECT_THROW(exp::ScenarioSpec::from_json_text(
                   R"({"telemetry": {"cadence_ms": 5}})"),
               exp::SpecError);  // unknown key
  EXPECT_THROW(exp::ScenarioSpec::from_json_text(
                   R"({"telemetry": {"series": ["queues"]}})"),
               exp::SpecError);  // not a probe group
  EXPECT_THROW(exp::ScenarioSpec::from_json_text(
                   R"({"telemetry": {"period_ms": 0}})"),
               exp::SpecError);  // period must be positive
}

// ---- Sweep byte-identity (ExpSweep*: runs under tsan too) ----

exp::SweepSpec two_run_sweep(bool telemetry) {
  std::string base = R"({
      "name": "telem", "workload": "bulk", "duration_s": 1,
      "channels": [{"type": "embb"}, {"type": "urllc"}],
      "policy": "dchannel")";
  if (telemetry) {
    base += R"(, "telemetry": {"period_ms": 5, "audit": true})";
  }
  base += "}";
  return exp::SweepSpec::from_json_text(
      R"({"name": "telem", "base": )" + base +
      R"(, "axes": {"seed": {"range": [0, 2]}}})");
}

TEST(ExpSweepTelemetry, DisabledSweepWritesNoArtifacts) {
  const std::string prefix = ::testing::TempDir() + "hvc_telem_off";
  const auto results = exp::run_sweep(two_run_sweep(false), 2, nullptr,
                                      prefix);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_FALSE(
      std::filesystem::exists(prefix + ".run0.telemetry.jsonl"));
  EXPECT_FALSE(std::filesystem::exists(prefix + ".run0.audit.jsonl"));
}

TEST(ExpSweepTelemetry, PerRunArtifactsAreByteIdenticalAcrossJobs) {
  const auto sweep = two_run_sweep(true);
  const std::string p1 = ::testing::TempDir() + "hvc_telem_j1";
  const std::string p8 = ::testing::TempDir() + "hvc_telem_j8";
  const auto serial = exp::run_sweep(sweep, 1, nullptr, p1);
  const auto parallel = exp::run_sweep(sweep, 8, nullptr, p8);
  ASSERT_EQ(serial.size(), 2u);
  for (const auto& r : serial) ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(exp::to_jsonl(serial), exp::to_jsonl(parallel));
  for (int i = 0; i < 2; ++i) {
    const std::string run = ".run" + std::to_string(i);
    const std::string telemetry = slurp(p1 + run + ".telemetry.jsonl");
    ASSERT_FALSE(telemetry.empty());
    EXPECT_EQ(telemetry, slurp(p8 + run + ".telemetry.jsonl"));
    const std::string audit = slurp(p1 + run + ".audit.jsonl");
    ASSERT_FALSE(audit.empty());
    EXPECT_EQ(audit, slurp(p8 + run + ".audit.jsonl"));
  }
}

// ---- Report library (hvc_report) ----

TEST(ExpReport, ParsesTelemetryWithMetaLine) {
  std::map<std::string, double> meta;
  const auto samples = exp::Report::parse_telemetry(
      "{\"meta\":{\"period_ms\":10,\"series\":1,\"overwritten\":0}}\n"
      "{\"t_us\":10000.000,\"series\":\"link.a.queued_bytes\",\"v\":2960}\n"
      "{\"t_us\":20000.000,\"series\":\"link.a.queued_bytes\",\"v\":0}\n",
      &meta);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].t_us, 10000.0);
  EXPECT_EQ(samples[0].series, "link.a.queued_bytes");
  EXPECT_DOUBLE_EQ(samples[0].value, 2960.0);
  EXPECT_DOUBLE_EQ(meta["period_ms"], 10.0);
}

TEST(ExpReport, ParseRejectsMalformedLinesWithLineNumber) {
  try {
    (void)exp::Report::parse_audit("{\"t_us\":1}\nnot json\n");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ExpReport, EndToEndRunRendersReasonsAndTelemetry) {
  const std::string prefix = ::testing::TempDir() + "hvc_report_smoke";
  const auto spec = exp::ScenarioSpec::from_json_text(R"({
    "name": "smoke", "workload": "bulk", "duration_s": 1,
    "channels": [{"type": "embb"}, {"type": "urllc"}],
    "policy": "dchannel",
    "telemetry": {"period_ms": 5, "audit": true}
  })");
  exp::RunOptions opts;
  opts.out_prefix = prefix;
  const auto result = exp::run_scenario(spec, opts);
  ASSERT_TRUE(result.error.empty()) << result.error;
  exp::write_file(prefix + ".results.jsonl", exp::to_jsonl({result}));

  const auto report = exp::Report::load(prefix);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_FALSE(report.telemetry.empty());
  EXPECT_FALSE(report.audit.empty());
  // Every audit record carries a DChannel-family reason tag.
  for (const auto& row : report.audit) {
    EXPECT_EQ(row.reason.rfind("dchannel:", 0), 0u) << row.reason;
  }
  const std::string decisions = report.render_decisions();
  EXPECT_NE(decisions.find("decision reasons"), std::string::npos);
  EXPECT_NE(decisions.find("dchannel:"), std::string::npos);
  const std::string telemetry = report.render_telemetry();
  EXPECT_NE(telemetry.find("channel."), std::string::npos);
  EXPECT_NE(telemetry.find("transport.tcp.flow"), std::string::npos);
  obs::json::Value v;
  ASSERT_TRUE(obs::json::parse(report.to_chrome_trace(), &v));
  EXPECT_FALSE(v.find("traceEvents")->array.empty());

  // The whole pipeline is deterministic: rendering a second identical
  // run produces the same report text.
  const std::string prefix2 = prefix + "_again";
  exp::RunOptions opts2;
  opts2.out_prefix = prefix2;
  const auto result2 = exp::run_scenario(spec, opts2);
  exp::write_file(prefix2 + ".results.jsonl", exp::to_jsonl({result2}));
  const auto report2 = exp::Report::load(prefix2);
  EXPECT_EQ(report.render_decisions(), report2.render_decisions());
  EXPECT_EQ(report.render_telemetry(), report2.render_telemetry());
}

}  // namespace
}  // namespace hvc
