// Fixed-size freelist pool backing packet allocations.
//
// make_packet / clone_packet account for roughly a third of the work on
// the serve and steer hot paths (BENCH_hotpath.json: packet_lifecycle):
// every packet is an allocate_shared round trip through the general
// heap. This pool recycles fixed-size blocks instead, thread-local so
// concurrent sweep workers (src/exp) never contend.
//
// Design rules, in the order they matter:
//
//  1. Every block carries a 16-byte header tagging where it came from
//     (pool slab or heap fallback) and how big it is. deallocate()
//     consults only the header — never the runtime enable switch — so
//     flipping HVC_PACKET_POOL between allocation and free (tests do
//     this) can never send a block back to the wrong place.
//  2. The pool never shrinks and caps its slab count; beyond the cap —
//     or for oversize / overaligned requests — allocation falls back to
//     the heap with a heap-tagged header. Exhaustion therefore changes
//     performance, never behavior.
//  3. Under AddressSanitizer the payload of every free block is
//     poisoned, so use-after-free of a recycled packet traps just like
//     a heap use-after-free would. The freelist link lives in the
//     header, which stays unpoisoned.
//  4. PooledAllocator reports every allocate/deallocate through
//     prof::hook_alloc / hook_free with the same byte counts as
//     obs::prof::TrackingAllocator, so prof.alloc.* (and the
//     packet-alloc hook counters) are identical pool-on and pool-off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/prof.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/asan_interface.h>
#define HVC_POOL_POISON(p, n) __asan_poison_memory_region((p), (n))
#define HVC_POOL_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define HVC_POOL_POISON(p, n) ((void)0)
#define HVC_POOL_UNPOISON(p, n) ((void)0)
#endif

namespace hvc::net {

/// True when new packet allocations should come from the pool. Reads
/// HVC_PACKET_POOL once (set to "0" to disable); the test setters below
/// override the environment. Safe to flip at any time — see header
/// rule 1 above.
[[nodiscard]] bool packet_pool_enabled();
void set_packet_pool_for_test(bool enabled);
void clear_packet_pool_override_for_test();

/// Thread-local freelist of fixed-size blocks. Not a general allocator:
/// one size class, tuned to hold a Packet plus its shared_ptr control
/// block (allocate_shared fuses them into a single allocation).
class BlockPool {
 public:
  /// Payload capacity per block. sizeof(Packet) is ~230 bytes and the
  /// fused control block adds ~two words; 512 leaves headroom for both
  /// growing without silently demoting every packet to the heap path.
  static constexpr std::size_t kBlockBytes = 512;
  /// Blocks per slab allocation (one slab = 528 KiB).
  static constexpr std::size_t kBlocksPerSlab = 1024;
  /// Slab cap: past this, allocation falls back to the heap (rule 2).
  static constexpr std::size_t kMaxSlabs = 64;

  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  /// This thread's pool. Thread-local storage means slabs die with the
  /// thread; blocks still outstanding at that point were heap-tagged
  /// never — they belong to slabs — so the whole arena simply unmaps
  /// when the thread's sims are done.
  static BlockPool& instance();

  void* allocate(std::size_t bytes) {
    if (bytes <= kBlockBytes && packet_pool_enabled()) {
      if (free_ == nullptr && !grow()) return heap_allocate(bytes);
      Header* h = free_;
      free_ = h->next_free;
      HVC_POOL_UNPOISON(payload(h), kBlockBytes);
      h->from_pool = 1;
      h->bytes = bytes;
      return payload(h);
    }
    return heap_allocate(bytes);
  }

  void deallocate(void* p) noexcept {
    Header* h = header(p);
    if (h->from_pool != 0) {
      HVC_POOL_POISON(payload(h), kBlockBytes);
      h->next_free = free_;
      free_ = h;
      return;
    }
    const std::size_t total = kHeaderBytes + h->bytes;
    std::allocator<std::byte>{}.deallocate(
        reinterpret_cast<std::byte*>(h), total);
  }

  /// Free blocks currently on the freelist (test introspection).
  [[nodiscard]] std::size_t free_blocks() const {
    std::size_t n = 0;
    for (const Header* h = free_; h != nullptr; h = h->next_free) ++n;
    return n;
  }
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct alignas(std::max_align_t) Header {
    union {
      Header* next_free;        ///< freelist link while the block is free
      std::size_t bytes;        ///< requested size while allocated
    };
    std::uint64_t from_pool;    ///< 1 = slab block, 0 = heap fallback
  };
  static constexpr std::size_t kHeaderBytes = sizeof(Header);
  static_assert(kHeaderBytes == 16, "header must stay one alignment unit");
  static constexpr std::size_t kStride = kHeaderBytes + kBlockBytes;

  static void* payload(Header* h) {
    return reinterpret_cast<std::byte*>(h) + kHeaderBytes;
  }
  static Header* header(void* p) {
    return reinterpret_cast<Header*>(static_cast<std::byte*>(p) -
                                     kHeaderBytes);
  }

  bool grow() {
    if (slabs_.size() >= kMaxSlabs) return false;
    // Cold path: runs at most kMaxSlabs times per thread, ever.
    auto slab = std::make_unique<std::byte[]>(kStride * kBlocksPerSlab);
    std::byte* base = slab.get();
    for (std::size_t i = kBlocksPerSlab; i-- > 0;) {
      auto* h = reinterpret_cast<Header*>(base + i * kStride);
      h->next_free = free_;
      free_ = h;
      HVC_POOL_POISON(payload(h), kBlockBytes);
    }
    slabs_.push_back(std::move(slab));
    return true;
  }

  void* heap_allocate(std::size_t bytes) {
    const std::size_t total = kHeaderBytes + bytes;
    auto* h = reinterpret_cast<Header*>(
        std::allocator<std::byte>{}.allocate(total));
    h->from_pool = 0;
    h->bytes = bytes;
    return payload(h);
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  Header* free_ = nullptr;
};

/// Allocator facade over BlockPool with TrackingAllocator-identical
/// prof accounting. Drop-in for std::allocate_shared in make_packet.
template <class T>
struct PooledAllocator {
  using value_type = T;

  PooledAllocator() noexcept = default;
  template <class U>
  PooledAllocator(const PooledAllocator<U>& /*other*/) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    obs::prof::hook_alloc(n * sizeof(T));
    if constexpr (alignof(T) <= alignof(std::max_align_t)) {
      return static_cast<T*>(BlockPool::instance().allocate(n * sizeof(T)));
    } else {
      return std::allocator<T>{}.allocate(n);
    }
  }
  void deallocate(T* p, std::size_t n) noexcept {
    obs::prof::hook_free(n * sizeof(T));
    if constexpr (alignof(T) <= alignof(std::max_align_t)) {
      BlockPool::instance().deallocate(p);
    } else {
      std::allocator<T>{}.deallocate(p, n);
    }
  }

  template <class U>
  bool operator==(const PooledAllocator<U>& /*other*/) const noexcept {
    return true;
  }
};

}  // namespace hvc::net
