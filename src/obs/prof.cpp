// Part of the sanctioned clock island (see prof.hpp): calibration,
// thread pinning, host metadata for perf manifests, and the
// MetricsRegistry fold.
#include "obs/prof.hpp"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace hvc::obs::prof {

namespace {

int g_pinned_cpu = -1;

/// One calibration spin: (cycles delta) / (ns delta) over ~`spin_ns`.
double measure_cycles_per_ns(std::uint64_t spin_ns) {
  const std::uint64_t t0 = now_ns();
  const std::uint64_t c0 = cycles();
  while (now_ns() - t0 < spin_ns) {
    // busy-wait; the loop body is the clock read itself
  }
  const std::uint64_t c1 = cycles();
  const std::uint64_t t1 = now_ns();
  if (t1 <= t0 || c1 <= c0) return 1.0;
  return static_cast<double>(c1 - c0) / static_cast<double>(t1 - t0);
}

}  // namespace

const char* hook_name(Hook h) {
  switch (h) {
    case Hook::kEventPush: return "event_push";
    case Hook::kEventPop: return "event_pop";
    case Hook::kPacketAlloc: return "packet_alloc";
    case Hook::kPacketFree: return "packet_free";
    case Hook::kLinkServe: return "link_serve";
    case Hook::kSteer: return "steer";
    case Hook::kTelemetrySample: return "telemetry_sample";
  }
  return "?";
}

double cycles_per_ns() {
  static std::once_flag once;
  static double rate = 1.0;
  std::call_once(once, [] {
    // Two spins; keep the second (first absorbs frequency ramp-up).
    measure_cycles_per_ns(2'000'000);
    rate = measure_cycles_per_ns(10'000'000);
    if (rate <= 0.0) rate = 1.0;
  });
  return rate;
}

bool pin_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) return false;
  g_pinned_cpu = cpu;
  return true;
#else
  (void)cpu;
  return false;
#endif
}

int pinned_cpu() { return g_pinned_cpu; }

std::string cpu_model() {
#if defined(__linux__)
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.rfind("model name", 0) == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
#endif
  return "unknown";
}

std::string git_sha(const std::string& repo_dir) {
  const std::string cmd =
      "git -C \"" + repo_dir + "\" rev-parse HEAD 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");  // NOLINT
  if (pipe == nullptr) return "unknown";
  char buf[128] = {0};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "g++ " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

void fold_into(MetricsRegistry& registry) {
  const ThreadStats& ts = thread_stats();
  for (std::size_t i = 0; i < kHookCount; ++i) {
    const std::string prefix =
        std::string("prof.") + hook_name(static_cast<Hook>(i));
    registry.counter(prefix + ".calls")
        .inc(static_cast<std::int64_t>(ts.hooks[i].calls));
    registry.counter(prefix + ".cycles")
        .inc(static_cast<std::int64_t>(ts.hooks[i].cycles));
  }
  registry.counter("prof.alloc.count")
      .inc(static_cast<std::int64_t>(ts.alloc.allocs));
  registry.counter("prof.alloc.bytes")
      .inc(static_cast<std::int64_t>(ts.alloc.alloc_bytes));
  registry.counter("prof.free.count")
      .inc(static_cast<std::int64_t>(ts.alloc.frees));
  registry.counter("prof.free.bytes")
      .inc(static_cast<std::int64_t>(ts.alloc.free_bytes));
}

}  // namespace hvc::obs::prof
