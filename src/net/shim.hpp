// The steering shim: intercepts packets travelling in one direction and
// places each on a channel chosen by a SteeringPolicy.
//
// This is DChannel's deployment model (§3.1): a layer transparent to both
// application and transport, sitting where the channels fan out (UE uplink,
// packet-gateway downlink). The shim also enforces the layering contract —
// before consulting a policy that declares itself network-layer, it blanks
// the cross-layer fields so lower-layer schemes cannot cheat.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "channel/channel.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "steer/steering_policy.hpp"

namespace hvc::net {

struct ShimStats {
  std::vector<std::int64_t> packets_per_channel;
  std::vector<std::int64_t> bytes_per_channel;
  std::int64_t duplicates_sent = 0;
};

class Shim {
 public:
  Shim(sim::Simulator& sim, channel::HvcSet& channels,
       channel::Direction direction,
       std::unique_ptr<steer::SteeringPolicy> policy);
  /// Folds stats_ and the pending decision counts into the registry.
  ~Shim();

  Shim(const Shim&) = delete;
  Shim& operator=(const Shim&) = delete;

  /// Steer and enqueue a packet.
  void send(PacketPtr p);

  [[nodiscard]] steer::SteeringPolicy& policy() { return *policy_; }
  [[nodiscard]] const ShimStats& stats() const { return stats_; }
  [[nodiscard]] channel::Direction direction() const { return direction_; }

  /// Swap the policy at runtime (used by experiment sweeps).
  void set_policy(std::unique_ptr<steer::SteeringPolicy> policy);

 private:
  /// Current per-channel views for the steering policy. Fills and
  /// returns the reused member scratch — no allocation per decision;
  /// valid until the next call.
  [[nodiscard]] std::span<const steer::ChannelView> snapshot_views() const;

  /// Resolve this shim's (and its policy's) registry instruments; called
  /// at construction and whenever the policy is swapped.
  void bind_metrics();

  /// Credit decisions_ to the current policy's counters and zero it.
  void fold_decisions();

  sim::Simulator& sim_;
  channel::HvcSet& channels_;
  channel::Direction direction_;
  std::unique_ptr<steer::SteeringPolicy> policy_;
  ShimStats stats_;

  // MetricsRegistry instruments (pointer-stable; see obs/metrics.hpp):
  // shim.<dir>.ch<i>.{packets,bytes} mirror stats_, and every steering
  // policy gets steer.<policy>.<dir>.decisions.ch<i> so policy flips are
  // visible in manifests without touching the policy classes themselves.
  // The hot path only bumps stats_/decisions_; totals are folded into the
  // registry when the shim is destroyed (and, for the per-policy decision
  // counters, whenever the policy is swapped out).
  std::vector<obs::Counter*> m_packets_;
  std::vector<obs::Counter*> m_bytes_;
  std::vector<obs::Counter*> m_decisions_;
  obs::Counter* m_duplicates_ = nullptr;
  std::vector<std::int64_t> decisions_;  ///< per channel, current policy
  /// Reused by snapshot_views(): sized to the channel count on first
  /// use, then refilled in place every steering decision.
  mutable std::vector<steer::ChannelView> views_scratch_;

  /// Cached policy_->name(), refreshed by bind_metrics(); the audit log
  /// stores one copy per record, so we avoid re-stringifying per packet.
  std::string policy_name_;
  /// Telemetry series steer.<policy>.<dir>.ch<i>.decisions reading
  /// decisions_; re-registered (same bundle) on every policy swap.
  obs::TelemetryProbes probes_;
};

}  // namespace hvc::net
