#include "transport/datagram.hpp"

#include <algorithm>

namespace hvc::transport {

using net::PacketPtr;

DatagramSocket::DatagramSocket(net::Node& local, net::FlowId flow,
                               std::uint8_t flow_priority)
    : local_(local), flow_(flow), flow_priority_(flow_priority) {
  local_.register_flow(flow_, [this](PacketPtr p) { on_inbound(p); });
}

DatagramSocket::~DatagramSocket() { local_.unregister_flow(flow_); }

std::uint64_t DatagramSocket::send_message(std::int64_t bytes,
                                           std::uint8_t priority) {
  if (bytes <= 0) return 0;
  const std::uint64_t id = next_message_id_++;
  send_message_with_id(id, bytes, priority);
  return id;
}

void DatagramSocket::send_message_with_id(std::uint64_t id,
                                          std::int64_t bytes,
                                          std::uint8_t priority) {
  if (bytes <= 0) return;
  std::int64_t offset = 0;
  while (offset < bytes) {
    const std::int64_t len =
        std::min<std::int64_t>(bytes - offset, net::kMaxPayload);
    auto p = net::make_packet();
    p->flow = flow_;
    p->type = net::PacketType::kData;
    p->size_bytes = len + net::kHeaderBytes;
    p->flow_priority = flow_priority_;
    p->app.present = true;
    p->app.message_id = id;
    p->app.message_bytes = static_cast<std::uint32_t>(bytes);
    p->app.offset = static_cast<std::uint32_t>(offset);
    p->app.priority = priority;
    p->app.message_end = offset + len == bytes;
    p->tp.ts = local_.simulator().now();
    local_.send(std::move(p));
    offset += len;
  }
  ++messages_sent_;
}

void DatagramSocket::send_packet(PacketPtr p) {
  p->flow = flow_;
  p->flow_priority = flow_priority_;
  local_.send(std::move(p));
}

void DatagramSocket::on_inbound(const PacketPtr& p) {
  if (on_packet_) on_packet_(p);
  if (!p->app.present || !on_message_) return;

  // Bound reassembly state: messages that lost packets never complete;
  // evict the oldest (ids are monotonic) once the table grows.
  while (reassembly_.size() > 256) reassembly_.erase(reassembly_.begin());

  auto& r = reassembly_[p->app.message_id];
  if (r.received == 0) {
    r.header = p->app;
    r.sent_at = p->tp.ts;
    r.first_arrival = local_.simulator().now();
  }
  // Redundancy policies can deliver the same chunk twice even after node
  // dedup (e.g. distinct retransmissions); count unique offsets only.
  if (!r.offsets.insert(p->app.offset).second) return;
  const std::int64_t payload = p->size_bytes - net::kHeaderBytes;
  r.received += payload;
  if (r.received >= static_cast<std::int64_t>(r.header.message_bytes)) {
    MessageEvent ev;
    ev.header = r.header;
    ev.sent_at = r.sent_at;
    ev.first_arrival = r.first_arrival;
    ev.completed = local_.simulator().now();
    reassembly_.erase(p->app.message_id);
    on_message_(ev);
  }
}

}  // namespace hvc::transport
