# Empty dependencies file for fig1b_bbr_rtt.
# This may be replaced when dependencies are built.
