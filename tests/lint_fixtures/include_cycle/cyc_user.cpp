// Depends on the cycle: changing either header must mark this TU affected.
#include "cyc_a.hpp"
namespace fxcyc {
int cyc_use() { return cyc_a_value() + cyc_b_value(); }
}  // namespace fxcyc
