#include "obs/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "obs/json.hpp"

namespace hvc::obs {

thread_local PacketTracer* PacketTracer::active_ = nullptr;
thread_local PacketTracer* PacketTracer::current_ = nullptr;

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kTx: return "tx";
    case EventKind::kRx: return "rx";
    case EventKind::kDrop: return "drop";
    case EventKind::kRetx: return "retx";
    case EventKind::kSteer: return "steer";
    case EventKind::kReorder: return "reorder";
  }
  return "?";
}

const char* to_string(DropReason r) {
  switch (r) {
    case kDropQueueFull: return "queue_full";
    case kDropWire: return "wire";
    case kDropDuplicate: return "duplicate";
    case kDropUnroutable: return "unroutable";
  }
  return "?";
}

const char* to_string(ReorderAction a) {
  switch (a) {
    case kReorderPass: return "pass";
    case kReorderHold: return "hold";
    case kReorderGapFill: return "gap_fill";
    case kReorderTimeout: return "timeout";
  }
  return "?";
}

PacketTracer& PacketTracer::instance() {
  static PacketTracer tracer;
  return tracer;
}

PacketTracer& PacketTracer::current() {
  return current_ != nullptr ? *current_ : instance();
}

ScopedPacketTracer::ScopedPacketTracer(PacketTracer& tracer)
    : prev_current_(PacketTracer::current_),
      prev_active_(PacketTracer::active_) {
  PacketTracer::current_ = &tracer;
  PacketTracer::active_ = tracer.enabled() ? &tracer : nullptr;
}

ScopedPacketTracer::~ScopedPacketTracer() {
  PacketTracer::current_ = prev_current_;
  PacketTracer::active_ = prev_active_;
}

void PacketTracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  total_ = 0;
  enabled_ = true;
  active_ = this;
}

void PacketTracer::disable() {
  enabled_ = false;
  // Only drop the thread's fast-path binding when it points at *this*
  // tracer: a concurrent sweep run installs its own tracer via
  // ScopedPacketTracer, and disabling the global instance (bench
  // teardown does) must not silently stop that run's recording. Same
  // guard as TelemetrySampler/SteeringAuditLog.
  if (active_ == this) active_ = nullptr;
}

void PacketTracer::clear() {
  head_ = 0;
  total_ = 0;
  for (auto& e : ring_) e = TraceEvent{};
}

std::size_t PacketTracer::size() const {
  if (ring_.empty()) return 0;
  return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                               : ring_.size();
}

std::vector<TraceEvent> PacketTracer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest retained event: slot `head_` when the ring has wrapped, else 0.
  const std::size_t start = total_ > ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void PacketTracer::set_channel_name(std::size_t index, std::string name) {
  if (channel_names_.size() <= index) channel_names_.resize(index + 1);
  channel_names_[index] = std::move(name);
}

std::string PacketTracer::channel_name(std::size_t index) const {
  if (index < channel_names_.size() && !channel_names_[index].empty()) {
    return channel_names_[index];
  }
  return "ch" + std::to_string(index);
}

namespace {

const char* dir_name(std::uint8_t d) {
  switch (d) {
    case kDirDown: return "down";
    case kDirUp: return "up";
    default: return "-";
  }
}

/// Detail string for the event's `arg`, or nullptr when arg is unused.
const char* arg_detail(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kDrop: return to_string(static_cast<DropReason>(e.arg));
    case EventKind::kReorder:
      return to_string(static_cast<ReorderAction>(e.arg));
    default: return nullptr;
  }
}

void append_event_jsonl(const TraceEvent& e, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t_us\":%.3f,\"ev\":\"%s\",\"pkt\":%" PRIu64
                ",\"flow\":%" PRIu64 ",\"ch\":%d,\"dir\":\"%s\",\"bytes\":%u",
                static_cast<double>(e.at) / 1e3, to_string(e.kind),
                e.packet_id, e.flow_id,
                e.channel == kNoChannel ? -1 : static_cast<int>(e.channel),
                dir_name(e.direction), e.size_bytes);
  *out += buf;
  if (const char* detail = arg_detail(e)) {
    *out += ",\"detail\":\"";
    *out += detail;
    *out += '"';
  } else if (e.kind == EventKind::kSteer && e.arg > 0) {
    std::snprintf(buf, sizeof(buf), ",\"duplicates\":%d",
                  static_cast<int>(e.arg));
    *out += buf;
  }
  if (e.aux != 0) {
    std::snprintf(buf, sizeof(buf), ",\"aux_us\":%.3f",
                  static_cast<double>(e.aux) / 1e3);
    *out += buf;
  }
  *out += "}\n";
}

}  // namespace

std::string PacketTracer::to_jsonl() const {
  std::string out;
  const auto events = snapshot();
  out.reserve(events.size() * 96);
  for (const auto& e : events) append_event_jsonl(e, &out);
  return out;
}

std::string PacketTracer::to_chrome_trace() const {
  // Tracks: pid 0, tid = channel * 2 + direction (a "thread" per
  // channel+direction); channel-less events (transport retx, receiver
  // dedup) land on a dedicated "stack" track.
  const auto events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[320];

  auto tid_of = [](const TraceEvent& e) -> int {
    if (e.channel == kNoChannel) return 1000;
    const int dir = e.direction == kDirUp ? 1 : 0;
    return static_cast<int>(e.channel) * 2 + dir;
  };

  // Thread-name metadata for every track that appears. std::map so the
  // metadata records emit in tid order without a separate sort.
  std::map<int, std::string> tracks;
  for (const auto& e : events) {
    const int tid = tid_of(e);
    if (tracks.contains(tid)) continue;
    tracks[tid] = tid == 1000
                      ? std::string("transport/endpoint")
                      : channel_name(static_cast<std::size_t>(e.channel)) +
                            " " + dir_name(e.direction);
  }
  bool first = true;
  for (const auto& [tid, name] : tracks) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":%s}}",
                  first ? "" : ",", tid, json::quote(name).c_str());
    out += buf;
    first = false;
  }

  // Per-packet channel-residency spans: enqueue → rx (or drop) on one
  // channel becomes a complete ("X") event, so Perfetto shows each
  // packet's time on each channel as a bar.
  struct Open {
    sim::Time start;
    std::uint32_t bytes;
    std::uint64_t flow;
  };
  // hvc-lint: allow(unordered-container): find/erase only — the span
  // emit order below is driven by the (already time-ordered) event ring,
  // never by map iteration.
  std::unordered_map<std::uint64_t, Open> open;  // key: pkt<<9 | ch<<1 | dir
  auto span_key = [](const TraceEvent& e) {
    return (e.packet_id << 9) |
           (static_cast<std::uint64_t>(e.channel & 0xff) << 1) |
           (e.direction == kDirUp ? 1u : 0u);
  };
  auto emit_span = [&](const TraceEvent& e, const Open& o, bool dropped) {
    std::snprintf(
        buf, sizeof(buf),
        ",{\"name\":\"pkt %" PRIu64
        "%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"flow\":%" PRIu64 ",\"bytes\":%u}}",
        e.packet_id, dropped ? " (drop)" : "", tid_of(e),
        static_cast<double>(o.start) / 1e3,
        static_cast<double>(e.at - o.start) / 1e3, o.flow, o.bytes);
    out += buf;
  };

  for (const auto& e : events) {
    // Instant event for every lifecycle step.
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                  "\"tid\":%d,\"ts\":%.3f,\"args\":{\"pkt\":%" PRIu64
                  ",\"flow\":%" PRIu64 ",\"bytes\":%u%s%s%s}}",
                  to_string(e.kind), tid_of(e),
                  static_cast<double>(e.at) / 1e3, e.packet_id, e.flow_id,
                  e.size_bytes, arg_detail(e) ? ",\"detail\":\"" : "",
                  arg_detail(e) ? arg_detail(e) : "",
                  arg_detail(e) ? "\"" : "");
    out += buf;

    if (e.channel == kNoChannel) continue;
    if (e.kind == EventKind::kEnqueue) {
      open[span_key(e)] = {e.at, e.size_bytes, e.flow_id};
    } else if (e.kind == EventKind::kRx || e.kind == EventKind::kDrop) {
      const auto it = open.find(span_key(e));
      if (it != open.end()) {
        emit_span(e, it->second, e.kind == EventKind::kDrop);
        open.erase(it);
      }
    }
  }
  out += "]}";
  return out;
}

DelayDecomposition decompose_delays(const PacketTracer& tracer) {
  DelayDecomposition out;
  struct Pending {
    sim::Time enqueue = -1;
    sim::Time dequeue = -1;
    sim::Time tx = -1;
  };
  // Keyed like the chrome spans: one residency per (packet, channel, dir).
  // hvc-lint: allow(unordered-container): find/erase only — samples are
  // added to the Summaries in event-ring order, never map order.
  std::unordered_map<std::uint64_t, Pending> pending;
  for (const auto& e : tracer.snapshot()) {
    if (e.kind == EventKind::kRetx) {
      out.retx_wait_ms.add(static_cast<double>(e.aux) / 1e6);
      continue;
    }
    if (e.channel == kNoChannel) continue;
    const std::uint64_t key =
        (e.packet_id << 9) |
        (static_cast<std::uint64_t>(e.channel) << 1) |
        (e.direction == kDirUp ? 1u : 0u);
    switch (e.kind) {
      case EventKind::kEnqueue: pending[key].enqueue = e.at; break;
      case EventKind::kDequeue: pending[key].dequeue = e.at; break;
      case EventKind::kTx: pending[key].tx = e.at; break;
      case EventKind::kRx: {
        const auto it = pending.find(key);
        if (it == pending.end()) break;
        const Pending& p = it->second;
        if (out.channels.size() <= e.channel) {
          out.channels.resize(e.channel + 1);
          for (std::size_t i = 0; i < out.channels.size(); ++i) {
            if (out.channels[i].name.empty()) {
              out.channels[i].name = tracer.channel_name(i);
            }
          }
        }
        auto& ch = out.channels[e.channel];
        ++ch.packets;
        if (p.enqueue >= 0 && p.dequeue >= p.enqueue) {
          ch.queueing_ms.add(sim::to_millis(p.dequeue - p.enqueue));
        }
        if (p.tx >= 0 && e.at >= p.tx) {
          ch.propagation_ms.add(sim::to_millis(e.at - p.tx));
        }
        if (p.enqueue >= 0 && e.at >= p.enqueue) {
          ch.total_owd_ms.add(sim::to_millis(e.at - p.enqueue));
        }
        pending.erase(it);
        break;
      }
      default: break;
    }
  }
  return out;
}

}  // namespace hvc::obs
