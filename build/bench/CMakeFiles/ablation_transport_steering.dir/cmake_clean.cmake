file(REMOVE_RECURSE
  "CMakeFiles/ablation_transport_steering.dir/ablation_transport_steering.cpp.o"
  "CMakeFiles/ablation_transport_steering.dir/ablation_transport_steering.cpp.o.d"
  "ablation_transport_steering"
  "ablation_transport_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transport_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
