// Minimal JSON support for the observability layer: an append-only writer
// (correct string escaping, locale-independent number formatting) and a
// small recursive-descent parser for the flat documents this layer itself
// emits (manifests, metric snapshots). Not a general-purpose JSON library
// — no external dependency is available in the build image, and the obs
// formats only need objects/arrays/strings/numbers/bools/null.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hvc::obs::json {

/// Escape `s` into a JSON string literal (with surrounding quotes).
inline std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Shortest round-trippable representation of a double that is still
/// valid JSON (no "nan"/"inf": they are clamped to null-like 0).
inline std::string number(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest form that parses back exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

inline std::string number(std::int64_t v) { return std::to_string(v); }
inline std::string number(std::uint64_t v) { return std::to_string(v); }

// ---- Parsing (subset: what the obs writers emit) ----

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] const Value* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  [[nodiscard]] double number_or(const std::string& key, double dflt) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->num : dflt;
  }
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string dflt) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->str : dflt;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Parse a full document; returns false on any syntax error or
  /// trailing garbage.
  bool parse(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Obs documents only escape control characters (< 0x80).
            out->push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) return false;
    const std::string tok(text_.substr(start, pos_ - start));
    return std::sscanf(tok.c_str(), "%lf", out) == 1;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Value::Kind::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return false;
        Value v;
        if (!parse_value(&v)) return false;
        out->object.emplace(std::move(key), std::move(v));
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = Value::Kind::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value v;
        if (!parse_value(&v)) return false;
        out->array.push_back(std::move(v));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return false;
      }
    }
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return parse_string(&out->str);
    }
    if (c == 't') {
      out->kind = Value::Kind::kBool;
      out->boolean = true;
      return parse_literal("true");
    }
    if (c == 'f') {
      out->kind = Value::Kind::kBool;
      out->boolean = false;
      return parse_literal("false");
    }
    if (c == 'n') {
      out->kind = Value::Kind::kNull;
      return parse_literal("null");
    }
    out->kind = Value::Kind::kNumber;
    return parse_number(&out->num);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parse `text`; returns false on malformed input.
inline bool parse(std::string_view text, Value* out) {
  return Parser(text).parse(out);
}

/// Serialize a Value back to compact JSON. Object keys emit in sorted
/// (std::map) order, so serialize(parse(x)) is deterministic.
inline std::string serialize(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return v.boolean ? "true" : "false";
    case Value::Kind::kNumber: return number(v.num);
    case Value::Kind::kString: return quote(v.str);
    case Value::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ',';
        out += serialize(v.array[i]);
      }
      out += ']';
      return out;
    }
    case Value::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, child] : v.object) {
        if (!first) out += ',';
        first = false;
        out += quote(key) + ":" + serialize(child);
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

/// Syntax-only validation (used by tests on large trace documents).
inline bool valid(std::string_view text) {
  Value v;
  return parse(text, &v);
}

}  // namespace hvc::obs::json
