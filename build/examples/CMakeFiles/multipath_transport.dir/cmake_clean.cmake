file(REMOVE_RECURSE
  "CMakeFiles/multipath_transport.dir/multipath_transport.cpp.o"
  "CMakeFiles/multipath_transport.dir/multipath_transport.cpp.o.d"
  "multipath_transport"
  "multipath_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
