#include "bench/hotpath/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/summary.hpp"
#include "sim/stats.hpp"

namespace hvc::bench::hotpath {

namespace prof = obs::prof;

std::vector<BenchDef>& registry() {
  static std::vector<BenchDef> benches;
  return benches;
}

void register_bench(BenchDef def) { registry().push_back(std::move(def)); }

bool prof_compiled_in() { return HVC_PROF_ENABLED != 0; }

namespace {

/// One measured repeat: run `body(scale)` in an isolated metrics/id scope
/// with freshly reset prof counters, and fold the timings into the
/// per-key repeat summaries.
void run_repeat(const BenchDef& def, std::uint64_t scale,
                std::map<std::string, sim::Summary>* keys) {
  obs::MetricsRegistry local;  // repeats never see each other's metrics
  obs::ScopedMetricsRegistry scoped(local);
  net::IdScope ids;  // nor each other's packet/flow id sequences
  prof::reset();
  prof::enable();
  const std::uint64_t t0 = prof::now_ns();
  const std::uint64_t items = def.body(scale);
  const std::uint64_t t1 = prof::now_ns();
  prof::disable();
  const prof::ThreadStats stats = prof::thread_stats();

  const double elapsed_s = static_cast<double>(t1 - t0) * 1e-9;
  if (items > 0 && elapsed_s > 0.0) {
    (*keys)["items"].add(static_cast<double>(items));
    (*keys)["items_per_sec"].add(static_cast<double>(items) / elapsed_s);
    (*keys)["ns_per_item"].add(static_cast<double>(t1 - t0) /
                               static_cast<double>(items));
  }
  for (std::size_t i = 0; i < prof::kHookCount; ++i) {
    const prof::HookStats& h = stats.hooks[i];
    if (h.calls == 0) continue;
    const std::string prefix =
        std::string("hook.") + prof::hook_name(static_cast<prof::Hook>(i));
    (*keys)[prefix + ".calls"].add(static_cast<double>(h.calls));
    if (h.cycles > 0) {
      (*keys)[prefix + ".cycles_per_call"].add(
          static_cast<double>(h.cycles) / static_cast<double>(h.calls));
    }
  }
  if (stats.alloc.allocs > 0 && items > 0) {
    (*keys)["alloc.bytes_per_item"].add(
        static_cast<double>(stats.alloc.alloc_bytes) /
        static_cast<double>(items));
  }
}

/// Warmup repeat: same isolation, results discarded. Profiling stays off
/// so warmup only heats caches/branch predictors and the CPU governor.
void run_warmup(const BenchDef& def, std::uint64_t scale) {
  obs::MetricsRegistry local;
  obs::ScopedMetricsRegistry scoped(local);
  net::IdScope ids;
  prof::reset();
  prof::enable();  // bodies may derive their item count from hook counters
  (void)def.body(scale);
  prof::disable();
}

}  // namespace

obs::PerfManifest run_suite(const SuiteOptions& opts) {
  obs::PerfManifest manifest;
  manifest.name = opts.name;
  manifest.cpu_model = prof::cpu_model();
  manifest.compiler = prof::compiler_id();
#ifdef HVC_SOURCE_DIR
  manifest.git_sha = prof::git_sha(HVC_SOURCE_DIR);
#endif
#ifdef HVC_BUILD_TYPE
  manifest.build_type = HVC_BUILD_TYPE;
#endif
  if (!prof_compiled_in()) return manifest;  // zero benches: refuse upstream

  if (opts.pin_cpu >= 0) prof::pin_to_cpu(opts.pin_cpu);
  manifest.pinned_cpu = prof::pinned_cpu();
  manifest.cycles_per_ns = prof::cycles_per_ns();
  manifest.warmup = opts.warmup;
  manifest.repeats = opts.quick ? std::min(opts.repeats, 3) : opts.repeats;

  if (opts.verbose) {
    std::printf("%-24s %12s %14s %12s %12s\n", "bench", "items",
                "items/s p50", "iqr", "ns/item p50");
  }
  for (const BenchDef& def : registry()) {
    if (!opts.filter.empty() &&
        def.name.find(opts.filter) == std::string::npos) {
      continue;
    }
    const std::uint64_t scale =
        opts.quick ? std::max<std::uint64_t>(def.scale / 8, 1) : def.scale;
    for (int w = 0; w < opts.warmup; ++w) run_warmup(def, scale);
    std::map<std::string, sim::Summary> keys;
    for (int r = 0; r < manifest.repeats; ++r) run_repeat(def, scale, &keys);

    obs::PerfBenchResult result;
    result.name = def.name;
    result.unit = def.unit;
    for (const auto& [key, summary] : keys) {
      obs::flatten_repeat_stats(summary, key, &result.stats);
    }
    if (opts.verbose) {
      const auto stat = [&](const char* k) {
        const auto it = result.stats.find(k);
        return it == result.stats.end() ? 0.0 : it->second;
      };
      std::printf("%-24s %12.0f %14.0f %12.0f %12.1f\n", def.name.c_str(),
                  stat("items.median"), stat("items_per_sec.median"),
                  stat("items_per_sec.iqr"), stat("ns_per_item.median"));
    }
    manifest.benches.push_back(std::move(result));
  }
  return manifest;
}

}  // namespace hvc::bench::hotpath
