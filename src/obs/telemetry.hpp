// Time-series telemetry: periodic sampling of component state (queue
// depths, rate estimates, cwnd/srtt, steering decision counts) into
// bounded per-series ring buffers — the dynamics evidence behind the
// paper's figures that end-of-run aggregates (metrics.hpp) cannot show.
//
// The sampler follows the PacketTracer installation pattern exactly:
//   1. Zero cost when off. Components register probes only when
//      TelemetrySampler::active() is non-null on their thread; with no
//      sampler installed, construction does nothing and the simulation
//      hot path is untouched (sampling happens on a sim-time tick, never
//      per packet).
//   2. Bounded memory. Each series is a fixed-capacity ring of
//      (time, value) samples; the series count itself is capped, and
//      both kinds of truncation are counted and reported in exports —
//      never silent.
//   3. Deterministic output. Samples carry simulated time only; series
//      export in sorted-name order. Two runs of the same spec produce
//      byte-identical JSONL regardless of sweep parallelism.
//
// Probes are pull-based: a component registers a name and a callback
// returning the current value; the sampler calls every live probe each
// period. Components hold a TelemetryProbes bundle so registrations die
// with their owner (the series data stays exportable after the probe is
// gone).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace hvc::obs {

struct TelemetryConfig {
  /// Sim-time sampling period.
  sim::Duration period = sim::milliseconds(10);
  /// Ring capacity per series; the oldest samples are overwritten.
  std::size_t max_samples_per_series = 1u << 14;
  /// Cap on distinct series (the web workload creates a transport per
  /// page load — without a cap a long run would register unboundedly).
  std::size_t max_series = 512;
  /// Probe groups to sample:
  /// "channel" | "link" | "steer" | "transport" | "fault".
  /// Empty = all groups.
  std::vector<std::string> groups;
};

class TelemetrySampler {
 public:
  using Probe = std::function<double()>;
  /// Probe registration handle; 0 = not registered (group filtered out,
  /// series cap hit, or no sampler active).
  using ProbeId = std::uint64_t;

  struct Sample {
    sim::Time at = 0;
    double value = 0.0;
  };

  TelemetrySampler() = default;
  /// A dying sampler must never stay installed as the thread's active().
  ~TelemetrySampler() {
    if (active_ == this) active_ = nullptr;
  }
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Hot-path accessor: nullptr unless sampling is enabled *on this
  /// thread* (same thread-local discipline as PacketTracer::active(), so
  /// concurrent sweep runs stay isolated).
  [[nodiscard]] static TelemetrySampler* active() { return active_; }

  /// Start sampling with `cfg`; drops any previously recorded data and
  /// installs this sampler as the calling thread's active().
  void enable(TelemetryConfig cfg = {});
  /// Stop sampling; recorded series stay exportable.
  void disable();

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] sim::Duration period() const { return cfg_.period; }

  /// Register a probe. Returns 0 (and records nothing) when the group is
  /// filtered out or the series cap is reached; re-registering an
  /// existing series name reattaches the probe and keeps appending to
  /// the same ring (policy swaps, reconnecting transports).
  ProbeId add_probe(std::string_view group, std::string name, Probe probe);
  /// Detach a probe; its series stops receiving samples but is retained.
  void remove_probe(ProbeId id);

  /// Schedule the periodic sampling tick on `sim` (self-rescheduling, so
  /// it samples until the run's deadline; the run_* helpers all drive
  /// the simulator with run_until). Called by core::Scenario once the
  /// topology exists. No-op when disabled.
  void attach(sim::Simulator& sim);

  /// Sample every live probe now (the tick body; tests call it directly).
  void sample(sim::Time now);

  // ---- Introspection / export ----

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  /// Samples currently retained for `name` (oldest first).
  [[nodiscard]] std::vector<Sample> samples(std::string_view name) const;
  /// All series names, sorted (the export order).
  [[nodiscard]] std::vector<std::string> series_names() const;
  /// Samples ever recorded across all series, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Samples lost to ring wraparound.
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  /// Probe registrations refused by the series cap.
  [[nodiscard]] std::uint64_t dropped_series() const {
    return dropped_series_;
  }

  /// One meta object line, then one object per sample, series in sorted
  /// order:
  ///   {"meta":{"period_ms":10,"series":8,"dropped_series":0,...}}
  ///   {"t_us":10000.000,"series":"link.eMBB-down.queued_bytes","v":2960}
  [[nodiscard]] std::string to_jsonl() const;

  /// Long-format CSV: t_ms,series,value (same order as the JSONL).
  [[nodiscard]] std::string to_csv() const;

  /// Chrome trace_event counter ("C") tracks, one per series; merges
  /// with the lifecycle tracer's output (same pid, same time base) in
  /// chrome://tracing / Perfetto.
  [[nodiscard]] std::string to_chrome_trace() const;

 private:
  friend class ScopedTelemetrySampler;

  struct Series {
    std::string name;
    Probe probe;  ///< null once the owning component died
    std::vector<Sample> ring;
    std::size_t head = 0;     ///< next write slot
    std::uint64_t total = 0;  ///< samples ever recorded into this series
  };

  [[nodiscard]] bool group_selected(std::string_view group) const;
  [[nodiscard]] std::vector<Sample> series_samples(const Series& s) const;

  static thread_local TelemetrySampler* active_;

  TelemetryConfig cfg_;
  bool enabled_ = false;
  std::vector<Series> series_;  ///< registration order (sampling order)
  // Lookup indexes into series_, never iterated: sampling walks series_
  // in registration order and the export sorts by series name.
  // hvc-lint: allow(unordered-container): lookup-only index, see above.
  std::unordered_map<std::string, std::size_t> by_name_;
  // hvc-lint: allow(unordered-container): lookup-only index, see above.
  std::unordered_map<ProbeId, std::size_t> by_id_;
  ProbeId next_id_ = 1;
  std::uint64_t total_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t dropped_series_ = 0;
};

/// RAII: installs a sampler as the calling thread's active() for the
/// scope's lifetime — if it is enabled. Installing a disabled sampler
/// masks any outer active sampler, which is what gives every sweep run a
/// clean slate (the same contract as ScopedPacketTracer).
class ScopedTelemetrySampler {
 public:
  explicit ScopedTelemetrySampler(TelemetrySampler& sampler);
  ~ScopedTelemetrySampler();
  ScopedTelemetrySampler(const ScopedTelemetrySampler&) = delete;
  ScopedTelemetrySampler& operator=(const ScopedTelemetrySampler&) = delete;

 private:
  TelemetrySampler* prev_active_;
};

/// A component's bundle of probe registrations: add() is a no-op without
/// an active sampler, and destruction detaches everything that was
/// registered. Members hold one by value next to the state their probes
/// read, so a probe can never outlive its data.
class TelemetryProbes {
 public:
  TelemetryProbes() = default;
  ~TelemetryProbes() { clear(); }
  TelemetryProbes(const TelemetryProbes&) = delete;
  TelemetryProbes& operator=(const TelemetryProbes&) = delete;

  void add(std::string_view group, std::string name,
           TelemetrySampler::Probe probe);
  void clear();

  [[nodiscard]] std::size_t size() const { return ids_.size(); }

 private:
  TelemetrySampler* owner_ = nullptr;
  std::vector<TelemetrySampler::ProbeId> ids_;
};

}  // namespace hvc::obs
