#include "stats/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hvc::stats {

namespace {

/// Largest quantized magnitude: 2^32 in 2^-16 steps = 2^48.
constexpr std::int64_t kMaxQ = std::int64_t{1} << 48;

void append_u64(std::string* out, std::uint64_t v) {
  *out += std::to_string(v);
}

}  // namespace

std::string Acc128::to_decimal() const {
  if (v == 0) return "0";
  unsigned __int128 mag =
      v < 0 ? static_cast<unsigned __int128>(-(v + 1)) + 1
            : static_cast<unsigned __int128>(v);
  std::string digits;
  while (mag != 0) {
    digits += static_cast<char>('0' + static_cast<int>(mag % 10));
    mag /= 10;
  }
  if (v < 0) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::int64_t quantize(double v) {
  const double scaled = v * kQuantScale;
  if (scaled >= static_cast<double>(kMaxQ)) return kMaxQ;
  if (scaled <= static_cast<double>(-kMaxQ)) return -kMaxQ;
  return std::llround(scaled);
}

void StreamingMoments::add(double v) {
  if (!std::isfinite(v)) {
    ++dropped_;
    return;
  }
  const std::int64_t q = quantize(v);
  if (n_ == 0) {
    min_q_ = max_q_ = q;
  } else {
    min_q_ = std::min(min_q_, q);
    max_q_ = std::max(max_q_, q);
  }
  ++n_;
  sum_.add(q);
  sumsq_.add_product(q, q);
}

void StreamingMoments::merge(const StreamingMoments& o) {
  if (o.n_ != 0) {
    if (n_ == 0) {
      min_q_ = o.min_q_;
      max_q_ = o.max_q_;
    } else {
      min_q_ = std::min(min_q_, o.min_q_);
      max_q_ = std::max(max_q_, o.max_q_);
    }
  }
  n_ += o.n_;
  dropped_ += o.dropped_;
  sum_.merge(o.sum_);
  sumsq_.merge(o.sumsq_);
}

double StreamingMoments::mean() const {
  if (n_ == 0) return 0.0;
  return sum_.to_double() / (kQuantScale * static_cast<double>(n_));
}

double StreamingMoments::variance() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double mean_q = sum_.to_double() / n;
  const double var_q = sumsq_.to_double() / n - mean_q * mean_q;
  return std::max(0.0, var_q) / (kQuantScale * kQuantScale);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

std::string StreamingMoments::to_json() const {
  std::string out = "{\"n\":";
  append_u64(&out, n_);
  out += ",\"dropped\":";
  append_u64(&out, dropped_);
  out += ",\"sum\":" + sum_.to_decimal();
  out += ",\"sumsq\":" + sumsq_.to_decimal();
  out += ",\"min\":" + std::to_string(min_q_);
  out += ",\"max\":" + std::to_string(max_q_);
  out += '}';
  return out;
}

int LogHistogram::bin_index(double v) {
  if (!(v > 0)) return 0;  // zeros and negatives share the underflow bin
  int e = 0;
  const double frac = std::frexp(v, &e);  // v = frac * 2^e, frac in [0.5,1)
  if (e <= kExpLo) return 0;
  if (e > kExpHi) return kBins - 1;
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBins));
  sub = std::clamp(sub, 0, kSubBins - 1);
  return 1 + (e - 1 - kExpLo) * kSubBins + sub;
}

double LogHistogram::bin_mid(int idx) {
  if (idx <= 0) return 0.0;
  if (idx >= kBins - 1) return std::ldexp(1.0, kExpHi);
  const int off = idx - 1;
  const int e = kExpLo + off / kSubBins + 1;
  const int sub = off % kSubBins;
  const double frac =
      0.5 + (static_cast<double>(sub) + 0.5) / (2.0 * kSubBins);
  return std::ldexp(frac, e);
}

void LogHistogram::add_n(double v, std::uint64_t n) {
  if (n == 0) return;
  if (!std::isfinite(v)) v = 0.0;  // lands in the underflow bin
  counts_[static_cast<std::size_t>(bin_index(v))] += n;
  n_ += n;
}

void LogHistogram::merge(const LogHistogram& o) {
  for (int i = 0; i < kBins; ++i) {
    counts_[static_cast<std::size_t>(i)] +=
        o.counts_[static_cast<std::size_t>(i)];
  }
  n_ += o.n_;
}

double LogHistogram::percentile(double p) const {
  if (n_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the sample we want, 1-based: ceil(p/100 * n), at least 1.
  const double exact = p / 100.0 * static_cast<double>(n_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  rank = std::clamp<std::uint64_t>(rank, 1, n_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBins; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= rank) return bin_mid(i);
  }
  return bin_mid(kBins - 1);
}

std::string LogHistogram::to_json() const {
  std::string out = "{\"n\":";
  append_u64(&out, n_);
  out += ",\"bins\":[";
  bool first = true;
  for (int i = 0; i < kBins; ++i) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(i) + ',';
    append_u64(&out, c);
    out += ']';
  }
  out += "]}";
  return out;
}

FixedBinHistogram::FixedBinHistogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), counts_(edges_.size() + 1, 0) {
  if (!std::is_sorted(edges_.begin(), edges_.end())) {
    throw std::invalid_argument("FixedBinHistogram: edges must be sorted");
  }
}

void FixedBinHistogram::add(double v) {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
  counts_[static_cast<std::size_t>(it - edges_.begin())] += 1;
  ++n_;
}

void FixedBinHistogram::merge(const FixedBinHistogram& o) {
  if (edges_ != o.edges_) {
    throw std::invalid_argument(
        "FixedBinHistogram::merge: mismatched edge vectors");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  n_ += o.n_;
}

std::string FixedBinHistogram::to_json() const {
  std::string out = "{\"n\":";
  append_u64(&out, n_);
  out += ",\"counts\":[";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) out += ',';
    append_u64(&out, counts_[i]);
  }
  out += "]}";
  return out;
}

}  // namespace hvc::stats
