file(REMOVE_RECURSE
  "CMakeFiles/hvc_channel.dir/channel.cpp.o"
  "CMakeFiles/hvc_channel.dir/channel.cpp.o.d"
  "CMakeFiles/hvc_channel.dir/link.cpp.o"
  "CMakeFiles/hvc_channel.dir/link.cpp.o.d"
  "CMakeFiles/hvc_channel.dir/profile.cpp.o"
  "CMakeFiles/hvc_channel.dir/profile.cpp.o.d"
  "libhvc_channel.a"
  "libhvc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
