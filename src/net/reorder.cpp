#include "net/reorder.hpp"

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace hvc::net {

namespace {

inline void trace_reorder(const net::Packet& p, sim::Time now,
                          obs::ReorderAction action,
                          sim::Duration held_for = 0) {
  if (auto* tr = obs::PacketTracer::active()) {
    tr->record(obs::EventKind::kReorder, now, p.id, p.flow, p.channel,
               obs::kNoDirection, static_cast<std::uint32_t>(p.size_bytes),
               static_cast<std::uint8_t>(action), held_for);
  }
}

}  // namespace

void ReorderBuffer::accept(PacketPtr p) {
  // Only sequenced data benefits from resequencing; ACKs and control are
  // self-describing and the transport handles their arrival order.
  if (p->type != PacketType::kData) {
    downstream_(std::move(p));
    return;
  }

  FlowState& fs = flows_[p->flow];
  const std::uint64_t seq = p->tp.seq;
  const std::uint64_t end = seq + p->tp.len;

  if (!fs.initialized) {
    fs.initialized = true;
    fs.expected = seq;
  }

  if (seq <= fs.expected) {
    // In order (or a retransmission/duplicate): deliver and advance.
    if (end > fs.expected) fs.expected = end;
    ++stats_.passed_through;
    trace_reorder(*p, sim_.now(), obs::kReorderPass);
    downstream_(std::move(p));
    release_ready(fs);
    return;
  }

  // Ahead of the expected point: hold for up to max_hold_.
  ++stats_.held;
  trace_reorder(*p, sim_.now(), obs::kReorderHold);
  const FlowId flow = p->flow;
  fs.held.emplace(seq, std::move(p));
  fs.deadlines.emplace(seq, sim_.now() + max_hold_);
  sim_.after(max_hold_, [this, flow] { on_timeout(flow); });
}

void ReorderBuffer::release_ready(FlowState& fs) {
  auto it = fs.held.begin();
  while (it != fs.held.end() && it->first <= fs.expected) {
    PacketPtr p = std::move(it->second);
    const std::uint64_t end = p->tp.seq + p->tp.len;
    if (end > fs.expected) fs.expected = end;
    const auto dit = fs.deadlines.find(it->first);
    const sim::Duration held_for =
        dit != fs.deadlines.end()
            ? sim_.now() - (dit->second - max_hold_)
            : 0;
    fs.deadlines.erase(it->first);
    it = fs.held.erase(it);
    ++stats_.released_by_gap_fill;
    trace_reorder(*p, sim_.now(), obs::kReorderGapFill, held_for);
    downstream_(std::move(p));
    // Restart: delivering may have unlocked earlier-keyed packets.
    it = fs.held.begin();
  }
}

void ReorderBuffer::on_timeout(FlowId flow) {
  auto fit = flows_.find(flow);
  if (fit == flows_.end()) return;
  FlowState& fs = fit->second;
  const sim::Time now = sim_.now();

  // Release every held packet whose deadline has passed, advancing the
  // expected point over them (the gap is assumed lost on the slow path).
  while (!fs.held.empty()) {
    const auto seq = fs.held.begin()->first;
    const auto dit = fs.deadlines.find(seq);
    if (dit == fs.deadlines.end() || dit->second > now) break;
    PacketPtr p = std::move(fs.held.begin()->second);
    fs.held.erase(fs.held.begin());
    const sim::Duration held_for = now - (dit->second - max_hold_);
    fs.deadlines.erase(seq);
    const std::uint64_t end = p->tp.seq + p->tp.len;
    if (end > fs.expected) fs.expected = end;
    ++stats_.released_by_timeout;
    trace_reorder(*p, now, obs::kReorderTimeout, held_for);
    downstream_(std::move(p));
  }
  release_ready(fs);
}

}  // namespace hvc::net
