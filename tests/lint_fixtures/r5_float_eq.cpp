// Fixture: R5 (float-equality) — one seeded violation, line 8.
// Integer equality and ordered float comparison must NOT fire.
namespace fixture {

bool check(double rate, int n) {
  if (n == 0) return false;        // int compare: not a violation
  if (rate >= 1.5) return true;    // ordered compare: not a violation
  return rate == 0.0;              // VIOLATION: exact float equality
}

}  // namespace fixture
