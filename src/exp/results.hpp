// Aggregated sweep output: one CSV / JSONL row per run.
//
// Both formats are pure functions of the RunResult vector — no
// timestamps, no wall-clock, no hostnames — so the same sweep produces
// byte-identical files regardless of thread count or machine. CSV
// columns are the sorted union of parameter and metric names across all
// runs (runs missing a metric leave the cell empty); JSONL rows carry
// the full per-run detail including the obs::MetricsRegistry snapshot.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace hvc::exp {

/// Header + one row per run, ordered by grid position.
[[nodiscard]] std::string to_csv(const std::vector<RunResult>& runs);

/// One JSON object per line, ordered by grid position.
[[nodiscard]] std::string to_jsonl(const std::vector<RunResult>& runs);

/// Write `content` to `path`; throws SpecError on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// Default artifact prefix for a run/sweep called `name`:
/// "bench/out/<name>", creating the directory on demand so generated
/// CSV/JSONL/manifest files never land in the repo root. Falls back to
/// plain `name` (CWD) when the directory cannot be created.
[[nodiscard]] std::string default_out_prefix(const std::string& name);

}  // namespace hvc::exp
