#include "quic/mp_connection.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace hvc::quic {

using net::PacketPtr;
using sim::Duration;
using sim::Time;

MpEndpoint::MpEndpoint(net::Node& node, net::FlowId flow,
                       std::size_t num_paths, MpConfig cfg)
    : node_(node),
      sim_(node.simulator()),
      flow_(flow),
      cfg_(std::move(cfg)),
      loss_timer_(sim_, [this] {
        detect_losses();
        try_send();
      }) {
  paths_.resize(num_paths);
  for (auto& p : paths_) p.cca = transport::make_cca(cfg_.cca);
  stats_.packets_per_path.assign(num_paths, 0);
  auto& reg = obs::MetricsRegistry::current();
  m_packets_sent_ = &reg.counter("transport.quic.packets_sent");
  m_retx_chunks_ = &reg.counter("transport.quic.retransmitted_chunks");
  m_msg_latency_ = &reg.histogram("transport.quic.message_latency_ms");
  node_.register_flow(flow_, [this](PacketPtr p) { on_packet(p); });

  // Probe every path once so the scheduler learns per-path RTTs before
  // real data arrives (QUIC path validation plays this role).
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    auto probe = net::make_packet();
    probe->flow = flow_;
    probe->type = net::PacketType::kControl;
    probe->size_bytes = net::kHeaderBytes;
    probe->tp.seq = next_packet_number_++;
    probe->tp.ts = sim_.now();
    probe->requested_channel = static_cast<std::int8_t>(i);
    SentPacket sp;
    sp.chunk = Chunk{0, 0, 0, 0, 0, 0, TrafficClass::kControl, sim_.now()};
    sp.sent_at = sim_.now();
    sp.path = i;
    sp.path_seq = paths_[i].next_path_seq++;
    unacked_.emplace(probe->tp.seq, sp);
    ++stats_.packets_per_path[i];
    node_.send(std::move(probe));
  }
}

MpEndpoint::~MpEndpoint() { node_.unregister_flow(flow_); }

std::uint64_t MpEndpoint::open_stream(StreamIntents intents) {
  const auto id = next_stream_++;
  streams_[id] = intents;
  return id;
}

std::uint64_t MpEndpoint::send_message(std::uint64_t stream,
                                       std::int64_t bytes) {
  const auto sit = streams_.find(stream);
  if (sit == streams_.end() || bytes <= 0) return 0;
  const StreamIntents& intents = sit->second;
  const auto message = next_message_++;
  std::int64_t offset = 0;
  while (offset < bytes) {
    const std::int64_t len =
        std::min<std::int64_t>(bytes - offset, net::kMaxPayload);
    send_queue_.push_back(Chunk{stream, message, offset, len, bytes,
                                intents.priority, intents.traffic,
                                sim_.now()});
    offset += len;
  }
  try_send();
  return message;
}

std::size_t MpEndpoint::fastest_path() const {
  std::size_t best = 0;
  Duration best_rtt = sim::kTimeNever;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const Duration rtt = paths_[i].rtt.has_sample()
                             ? paths_[i].rtt.srtt()
                             : sim::kTimeNever - 1;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = i;
    }
  }
  return best;
}

std::size_t MpEndpoint::widest_path() const {
  // Highest estimated delivery rate; unmeasured paths count as infinite
  // so they get explored once, after which the estimate takes over.
  std::size_t best = 0;
  double best_rate = -1.0;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const double rate =
        paths_[i].rate_bps > 0.0 ? paths_[i].rate_bps : 1e18;
    if (rate > best_rate) {
      best_rate = rate;
      best = i;
    }
  }
  return best;
}

sim::Duration MpEndpoint::path_srtt(std::size_t path) const {
  return path < paths_.size() && paths_[path].rtt.has_sample()
             ? paths_[path].rtt.srtt()
             : 0;
}

bool MpEndpoint::idle() const {
  return send_queue_.empty() && unacked_.empty();
}

std::size_t MpEndpoint::pick_path(const Chunk& chunk) {
  const std::size_t fast = fastest_path();
  if (cfg_.scheduler == SchedulerKind::kMinRtt) {
    // Classic MPQUIC minRTT: lowest-srtt path with congestion window room;
    // overflow to the next-fastest.
    std::vector<std::size_t> order(paths_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return paths_[a].rtt.srtt() < paths_[b].rtt.srtt();
    });
    for (const auto i : order) {
      if (paths_[i].in_flight < paths_[i].cca->cwnd_bytes()) return i;
    }
    return SIZE_MAX;
  }

  if (cfg_.scheduler == SchedulerKind::kEcf) {
    // ECF-style earliest completion first [30]: estimate when this chunk
    // would finish on each path — queued bytes (in flight) divided by the
    // measured rate plus half the RTT — and take the minimum among paths
    // with window room. Bandwidth-aggregating like minRTT, but it stops
    // stuffing the thin path once its completion estimate loses.
    std::size_t best = SIZE_MAX;
    double best_ms = 1e300;
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      if (paths_[i].in_flight >= paths_[i].cca->cwnd_bytes()) continue;
      const double rate =
          paths_[i].rate_bps > 0.0 ? paths_[i].rate_bps : 10e6;
      const double ms =
          static_cast<double>(paths_[i].in_flight + chunk.len) * 8.0 /
              rate * 1000.0 +
          sim::to_millis(paths_[i].rtt.srtt()) / 2.0;
      if (ms < best_ms) {
        best_ms = ms;
        best = i;
      }
    }
    return best;
  }

  // HVC-aware: importance and message geometry decide.
  const bool important = chunk.priority <= cfg_.fast_path_max_priority ||
                         chunk.traffic == TrafficClass::kControl;
  const bool tail = cfg_.tail_bytes > 0 &&
                    chunk.message_bytes - chunk.offset <= cfg_.tail_bytes &&
                    chunk.traffic == TrafficClass::kInteractive;
  if (important || tail) {
    bool room = paths_[fast].in_flight < paths_[fast].cca->cwnd_bytes();
    if (chunk.traffic == TrafficClass::kRealtime) {
      // Deadline-aware: keep the in-network sojourn below half the
      // deadline, using the measured path rate — otherwise data queues
      // inside the path where the deadline can no longer drop it.
      const auto& intents = streams_[chunk.stream];
      if (intents.deadline_ms > 0 && paths_[fast].rate_bps > 0.0) {
        const double sojourn_ms =
            static_cast<double>(paths_[fast].in_flight + chunk.len) * 8.0 /
            paths_[fast].rate_bps * 1000.0;
        if (sojourn_ms > intents.deadline_ms / 2.0) room = false;
      }
      if (room) return fast;
      return SIZE_MAX;  // wait; try_send drops it once stale
    }
    if (room) return fast;
  }
  // Bulk: the widest path (by measured delivery rate), then other paths
  // in decreasing rate order — never displacing the fast path's scarce
  // capacity unless it is the only one with window room AND it is also
  // the widest (single-path degenerate case).
  std::vector<std::size_t> order(paths_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = paths_[a].rate_bps > 0.0 ? paths_[a].rate_bps : 1e18;
    const double rb = paths_[b].rate_bps > 0.0 ? paths_[b].rate_bps : 1e18;
    return ra > rb;
  });
  for (const auto i : order) {
    if (i == fast && paths_.size() > 1 && !important && !tail &&
        i != widest_path()) {
      continue;
    }
    if (paths_[i].in_flight < paths_[i].cca->cwnd_bytes()) return i;
  }
  if ((important || tail) &&
      paths_[fast].in_flight < paths_[fast].cca->cwnd_bytes()) {
    return fast;
  }
  return SIZE_MAX;
}

void MpEndpoint::try_send() {
  // Scan for the first sendable chunk per iteration to avoid head-of-line
  // blocking between pinned and bulk traffic.
  bool progress = true;
  while (progress && !send_queue_.empty()) {
    progress = false;
    for (auto it = send_queue_.begin(); it != send_queue_.end(); ++it) {
      // Drop realtime data past its deadline instead of sending staleness.
      const auto& intents = streams_[it->stream];
      if (intents.traffic == TrafficClass::kRealtime &&
          intents.deadline_ms > 0 &&
          sim_.now() - it->created_at >
              sim::milliseconds(intents.deadline_ms)) {
        it = send_queue_.erase(it);
        progress = true;
        break;
      }
      const std::size_t path = pick_path(*it);
      if (path == SIZE_MAX) continue;
      Chunk chunk = *it;
      send_queue_.erase(it);
      send_chunk(chunk, path);
      progress = true;
      break;
    }
  }
}

void MpEndpoint::send_chunk(Chunk chunk, std::size_t path) {
  auto p = net::make_packet();
  p->flow = flow_;
  p->type = net::PacketType::kData;
  p->size_bytes = chunk.len + net::kHeaderBytes;
  p->tp.seq = next_packet_number_++;
  p->tp.len = static_cast<std::uint32_t>(chunk.len);
  p->tp.ts = sim_.now();
  p->requested_channel = static_cast<std::int8_t>(path);
  p->app.present = true;
  p->app.message_id = chunk.message;
  p->app.message_bytes = static_cast<std::uint32_t>(chunk.message_bytes);
  p->app.offset = static_cast<std::uint32_t>(chunk.offset);
  p->app.priority = chunk.priority;
  p->app.message_end = chunk.offset + chunk.len == chunk.message_bytes;

  SentPacket sp;
  sp.chunk = chunk;
  sp.sent_at = sim_.now();
  sp.path = path;
  sp.path_seq = paths_[path].next_path_seq++;
  unacked_.emplace(p->tp.seq, sp);

  paths_[path].in_flight += chunk.len;
  paths_[path].cca->on_packet_sent(sim_.now(), chunk.len,
                                   paths_[path].in_flight);
  ++stats_.packets_sent;
  ++stats_.packets_per_path[path];
  m_packets_sent_->inc();
  node_.send(std::move(p));
  arm_loss_timer();
}

void MpEndpoint::on_packet(const PacketPtr& p) {
  if (p->tp.has_ack) {
    on_ack(p);
  } else {
    on_data(p);
  }
}

void MpEndpoint::on_data(const PacketPtr& p) {
  send_ack(p->tp.seq, p->channel, p->tp.ts);
  if (p->type != net::PacketType::kData || !p->app.present) return;

  while (reassembly_.size() > 1024) reassembly_.erase(reassembly_.begin());
  auto& r = reassembly_[p->app.message_id];
  if (r.total == 0) {
    r.total = p->app.message_bytes;
    r.priority = p->app.priority;
    r.sent_at = p->tp.ts;
  }
  // Count each chunk once: retransmissions may duplicate deliveries.
  if (!r.offsets.insert(p->app.offset).second) return;
  r.received += p->tp.len;
  if (r.received >= r.total) {
    MessageEvent ev;
    ev.message = p->app.message_id;
    ev.priority = r.priority;
    ev.sent_at = r.sent_at;
    ev.completed = sim_.now();
    const double latency_ms = sim::to_millis(ev.completed - ev.sent_at);
    stats_.message_latency_ms.add(latency_ms);
    m_msg_latency_->add(latency_ms);
    reassembly_.erase(p->app.message_id);
    if (on_message_) on_message_(ev);
  }
}

void MpEndpoint::send_ack(std::uint64_t pkt_number, std::uint8_t channel,
                          Time ts_echo) {
  auto ack = net::make_ack(flow_, pkt_number, ts_echo);
  ack->tp.channel_echo = channel;
  ack->requested_channel =
      cfg_.ack_on_fast_path ? static_cast<std::int8_t>(fastest_path())
                            : static_cast<std::int8_t>(channel);
  node_.send(std::move(ack));
}

void MpEndpoint::on_ack(const PacketPtr& p) {
  const auto it = unacked_.find(p->tp.ack);
  largest_acked_ = std::max(largest_acked_, p->tp.ack);
  if (it != unacked_.end()) {
    SentPacket& sp = it->second;
    Path& path = paths_[sp.path];
    const Duration rtt = sim_.now() - p->tp.ts_echo;
    path.rtt.add_sample(rtt);
    path.largest_acked_seq = std::max(path.largest_acked_seq, sp.path_seq);
    if (!sp.lost) path.in_flight -= sp.chunk.len;

    // Roll the delivery-rate epoch (200 ms EWMA).
    path.epoch_bytes += sp.chunk.len;
    if (sim_.now() - path.epoch_start >= sim::milliseconds(200)) {
      const double secs = sim::to_seconds(sim_.now() - path.epoch_start);
      if (path.epoch_start > 0 && secs > 0) {
        const double rate =
            static_cast<double>(path.epoch_bytes) * 8.0 / secs;
        path.rate_bps = path.rate_bps <= 0.0
                            ? rate
                            : 0.4 * rate + 0.6 * path.rate_bps;
      }
      path.epoch_start = sim_.now();
      path.epoch_bytes = 0;
    }

    if (p->tp.ack >= path.round_end_pkt) {
      ++path.round_trips;
      path.round_end_pkt = next_packet_number_;
    }
    transport::AckEvent ev;
    ev.now = sim_.now();
    ev.rtt = rtt;
    ev.acked_bytes = sp.chunk.len;
    ev.bytes_in_flight = path.in_flight;
    ev.channel = p->tp.channel_echo;
    ev.round_trips = path.round_trips;
    path.cca->on_ack(ev);
    unacked_.erase(it);
  }
  detect_losses();
  try_send();
}

void MpEndpoint::detect_losses() {
  const Time now = sim_.now();
  std::vector<std::uint64_t> lost;
  for (auto& [num, sp] : unacked_) {
    if (sp.lost) continue;
    const Duration thresh = std::max(
        static_cast<Duration>(
            cfg_.time_threshold *
            static_cast<double>(std::max(paths_[sp.path].rtt.srtt(),
                                         sim::milliseconds(50)))),
        paths_[sp.path].rtt.rto());
    // Packet-number threshold applies within a path's own number space:
    // cross-path overtaking is routine on HVCs and must not read as loss.
    const bool by_number =
        sp.path_seq + static_cast<std::uint64_t>(cfg_.packet_threshold) <=
        paths_[sp.path].largest_acked_seq;
    const bool by_time = now - sp.sent_at > thresh;
    if (by_number || by_time) lost.push_back(num);
  }
  for (const auto num : lost) {
    SentPacket sp = unacked_[num];
    unacked_.erase(num);
    Path& path = paths_[sp.path];
    path.in_flight -= sp.chunk.len;
    path.cca->on_loss({now, sp.chunk.len, path.in_flight, false});
    if (sp.chunk.len > 0) {
      ++stats_.retransmitted_chunks;
      m_retx_chunks_->inc();
      if (auto* tr = obs::PacketTracer::active()) {
        // aux = age of the lost transmission when loss was declared.
        tr->record(obs::EventKind::kRetx, now, num, flow_,
                   static_cast<std::uint8_t>(sp.path), obs::kNoDirection,
                   static_cast<std::uint32_t>(sp.chunk.len), 0,
                   now - sp.sent_at);
      }
      send_queue_.push_front(sp.chunk);  // retransmit data, any path
    }
  }
  arm_loss_timer();
  if (!lost.empty()) try_send();
}

void MpEndpoint::arm_loss_timer() {
  Time earliest = sim::kTimeNever;
  for (const auto& [num, sp] : unacked_) {
    if (sp.lost) continue;
    const Duration thresh = std::max(
        static_cast<Duration>(
            cfg_.time_threshold *
            static_cast<double>(std::max(paths_[sp.path].rtt.srtt(),
                                         sim::milliseconds(50)))),
        paths_[sp.path].rtt.rto());
    earliest = std::min(earliest, sp.sent_at + thresh);
  }
  if (earliest == sim::kTimeNever) {
    loss_timer_.cancel();
  } else {
    loss_timer_.arm_at(std::max(earliest, sim_.now() + 1));
  }
}

MpConnection MpConnection::make_pair(net::Node& client_node,
                                     net::Node& server_node,
                                     std::size_t num_paths, MpConfig cfg) {
  const auto flow = net::next_flow_id();
  MpConnection conn;
  conn.client =
      std::make_unique<MpEndpoint>(client_node, flow, num_paths, cfg);
  conn.server =
      std::make_unique<MpEndpoint>(server_node, flow, num_paths, cfg);
  return conn;
}

}  // namespace hvc::quic
