file(REMOVE_RECURSE
  "CMakeFiles/hvc_quic.dir/mp_connection.cpp.o"
  "CMakeFiles/hvc_quic.dir/mp_connection.cpp.o.d"
  "libhvc_quic.a"
  "libhvc_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
