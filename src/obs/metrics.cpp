#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "obs/summary.hpp"

namespace hvc::obs {

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  if (edges_.empty()) edges_ = default_latency_edges();
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double v) {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  summary_.add(v);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  summary_.clear();
}

std::vector<double> Histogram::default_latency_edges() {
  // 0.1 ms .. 100 s, three buckets per decade.
  std::vector<double> edges;
  for (double decade = 0.1; decade < 2e5; decade *= 10.0) {
    edges.push_back(decade);
    edges.push_back(decade * 2.0);
    edges.push_back(decade * 5.0);
  }
  return edges;
}

namespace {
thread_local MetricsRegistry* t_current_registry = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& MetricsRegistry::current() {
  return t_current_registry != nullptr ? *t_current_registry : global();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : prev_(t_current_registry) {
  t_current_registry = &registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  t_current_registry = prev_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_edges) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_edges));
  return *slot;
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    flatten_summary(h->summary(), name, &out);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  // The registries are std::map, so plain iteration is already in the
  // sorted order the export format promises.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":" + json::number(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":" + json::number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const auto* h = hist.get();
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":{\"edges\":[";
    for (std::size_t i = 0; i < h->edges().size(); ++i) {
      if (i > 0) out += ',';
      out += json::number(h->edges()[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h->counts().size(); ++i) {
      if (i > 0) out += ',';
      out += json::number(h->counts()[i]);
    }
    out += "],\"count\":" + json::number(h->count());
    if (!h->summary().empty()) {
      out += ",\"mean\":" + json::number(h->summary().mean());
      out += ",\"p50\":" + json::number(h->summary().percentile(50));
      out += ",\"p95\":" + json::number(h->summary().percentile(95));
      out += ",\"p99\":" + json::number(h->summary().percentile(99));
      out += ",\"max\":" + json::number(h->summary().max());
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string snapshot_to_csv(const std::map<std::string, double>& snapshot) {
  std::string out = "metric,value\n";
  for (const auto& [name, value] : snapshot) {
    out += csv_escape(name);
    out += ',';
    out += json::number(value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_csv() const { return snapshot_to_csv(snapshot()); }

void MetricsRegistry::reset_values() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hvc::obs
