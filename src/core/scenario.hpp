// Public façade: declarative scenario construction and one-call
// experiment runners for the paper's workloads.
//
// A Scenario is a fresh simulator + two-host topology over a set of
// channel profiles with named steering policies per direction. The
// run_* helpers execute one experiment and return metric bundles; every
// figure/table benchmark and example is built from these.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/video/session.hpp"
#include "app/web/browser.hpp"
#include "app/web/page.hpp"
#include "channel/profile.hpp"
#include "fault/injector.hpp"
#include "net/node.hpp"
#include "sim/stats.hpp"
#include "steer/steering_policy.hpp"
#include "transport/tcp.hpp"

namespace hvc::core {

/// Instantiate a steering policy by name:
///   "embb-only" | "urllc-only" | "round-robin" | "weighted" |
///   "min-delay" | "dchannel" | "dchannel+prio" | "msg-priority" |
///   "redundant" | "cost-aware" | "flow-binding"
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<steer::SteeringPolicy> make_policy(const std::string& name);

using PolicyFactory = std::function<std::unique_ptr<steer::SteeringPolicy>()>;

struct ScenarioConfig {
  std::vector<channel::ChannelProfile> channels;
  std::string up_policy = "dchannel";
  std::string down_policy = "dchannel";
  /// When set, override the named policies above.
  PolicyFactory up_factory;
  PolicyFactory down_factory;
  /// DChannel-style receiver resequencing hold; 0 disables.
  sim::Duration resequence_hold = 0;

  /// Disruption episodes injected into the channel set (src/fault);
  /// empty = well-behaved channels.
  fault::FaultPlan faults;

  /// The paper's standard two-channel setup (Fig. 1): constant eMBB
  /// (50 ms / 60 Mbps) + URLLC (5 ms / 2 Mbps).
  static ScenarioConfig fig1(const std::string& policy = "dchannel");

  /// Trace-driven eMBB (named 5G profile) + URLLC (Fig. 2 / Table 1).
  static ScenarioConfig traced(trace::FiveGProfile profile,
                               const std::string& policy,
                               sim::Duration duration, std::uint64_t seed);
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::TwoHostNetwork& network() { return *net_; }
  [[nodiscard]] net::Node& client() { return net_->client(); }
  [[nodiscard]] net::Node& server() { return net_->server(); }
  /// Non-null when the config carried a fault plan.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }

 private:
  sim::Simulator sim_;
  std::unique_ptr<net::TwoHostNetwork> net_;
  std::unique_ptr<fault::FaultInjector> injector_;
};

// ---- One-call experiments ----

struct BulkResult {
  double goodput_bps = 0.0;
  sim::TimeSeries rtt_ms;            ///< per-ACK RTT (Fig. 1b)
  sim::TimeSeries goodput_mbps;      ///< 1 s buckets
  sim::TimeSeries acked_bytes;       ///< (t, cumulative acked bytes)
  std::int64_t retransmissions = 0;
  std::int64_t rto_count = 0;
  std::vector<std::int64_t> data_packets_per_channel;
  /// Fault-plan cost, when the scenario injected one (see src/fault):
  /// bytes committed into blacked-out links and droptail drops there.
  std::int64_t fault_blackout_committed_bytes = 0;
  std::int64_t fault_blackout_dropped_packets = 0;
};

/// Fig. 1: one bulk download under the scenario's steering, measured over
/// `duration` (excluding nothing — the paper averages the full run).
BulkResult run_bulk(const ScenarioConfig& cfg, const std::string& cca,
                    sim::Duration duration);

struct VideoResult {
  app::video::VideoStats stats;
  std::vector<double> latency_cdf_ms;  ///< sorted per-frame latencies
  std::vector<double> ssim_cdf;
};

/// Fig. 2: real-time SVC video for `duration` under the scenario's
/// downlink steering (sender at the server).
VideoResult run_video(const ScenarioConfig& cfg,
                      const app::video::SvcConfig& svc,
                      const app::video::VideoReceiverConfig& rx,
                      sim::Duration duration);

struct WebRunConfig {
  int loads_per_page = 5;
  bool background_flows = true;
  std::int64_t bg_upload_bytes = 5 * 1000;
  std::int64_t bg_download_bytes = 10 * 1000;
  /// flow_priority stamped on background traffic (only honoured by
  /// priority-aware policies).
  std::uint8_t bg_flow_priority = 1;
  app::web::BrowserConfig browser;
  sim::Duration per_load_timeout = sim::seconds(60);
};

struct WebResult {
  sim::Summary plt_ms;          ///< one sample per (page, load)
  sim::Summary per_page_mean_ms;  ///< mean over loads, one per page
  int timeouts = 0;
};

/// Table 1: load each corpus page `loads_per_page` times with background
/// JSON flows running, and collect PLTs. Each load uses fresh
/// connections (cold caches, as in the paper).
WebResult run_web(const ScenarioConfig& cfg,
                  const std::vector<app::web::WebPage>& corpus,
                  const WebRunConfig& web);

}  // namespace hvc::core
