# Empty compiler generated dependencies file for tsn_test.
# This may be replaced when dependencies are built.
