// Explicit, platform-independent seed derivation.
//
// Every place that derives one RNG stream from another (a scenario seed
// plus a user index, a config seed plus a page name) must do so with the
// same bits on every platform and standard library. std::hash makes no
// such promise — libstdc++ and libc++ hash strings differently, and
// either may change between releases — so seed plumbing uses these
// fixed-constant mixers instead (DESIGN.md §4).
//
// splitmix64 is the same finalizer sim::Rng uses for state expansion;
// seed_mix() composes independent sub-keys (user index, slot, generation)
// into one 64-bit key, and fnv1a64() turns names into keys with a fixed
// algorithm. All are constexpr and allocation-free, so they are usable in
// hot paths and in static initializers.
#pragma once

#include <cstdint>
#include <string_view>

namespace hvc::sim {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive a child key from a parent key and a sub-key (user index, lane
/// number, generation counter). Not commutative: seed_mix(a, b) and
/// seed_mix(b, a) are distinct streams.
[[nodiscard]] constexpr std::uint64_t seed_mix(std::uint64_t parent,
                                               std::uint64_t sub) {
  return splitmix64(parent ^ (0x9e3779b97f4a7c15ULL + sub));
}

/// FNV-1a 64-bit string hash: fixed constants, byte-at-a-time, identical
/// on every platform. For deriving seeds from names; not for hash tables.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Counter-based uniform stream: draw i of the stream keyed by `key` is
/// splitmix64(key + i). O(1) state, O(1) skip-ahead, and the draw order
/// can never be perturbed by another component taking draws — the
/// property per-user trace variation in src/pop is built on.
class CounterStream {
 public:
  constexpr CounterStream() = default;
  constexpr explicit CounterStream(std::uint64_t key) : key_(key) {}

  [[nodiscard]] constexpr std::uint64_t key() const { return key_; }

  constexpr std::uint64_t next_u64() { return splitmix64(key_ + counter_++); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

}  // namespace hvc::sim
