file(REMOVE_RECURSE
  "libhvc_transport.a"
)
