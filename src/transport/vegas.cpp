#include "transport/vegas.hpp"

#include <algorithm>

namespace hvc::transport {

Vegas::Vegas(VegasConfig cfg) : cfg_(cfg), cwnd_(cfg.initial_cwnd) {}

void Vegas::on_ack(const AckEvent& ev) {
  if (ev.rtt <= 0) return;
  if (base_rtt_ == 0 || ev.rtt < base_rtt_) base_rtt_ = ev.rtt;
  if (round_min_rtt_ == 0 || ev.rtt < round_min_rtt_) {
    round_min_rtt_ = ev.rtt;
  }
  if (ev.round_trips == round_marker_) return;  // adjust once per round
  round_marker_ = ev.round_trips;

  const sim::Duration rtt = round_min_rtt_ > 0 ? round_min_rtt_ : ev.rtt;
  round_min_rtt_ = 0;

  const double cwnd_pkts = static_cast<double>(cwnd_) / kMss;
  // diff = (expected - actual) * baseRTT, in packets of queue backlog.
  const double diff =
      cwnd_pkts * (static_cast<double>(rtt - base_rtt_) /
                   static_cast<double>(rtt));

  if (in_slow_start_) {
    if (diff > cfg_.gamma_pkts) {
      in_slow_start_ = false;
      cwnd_ = std::max(cwnd_ - kMss, cfg_.min_cwnd);
    } else {
      cwnd_ += cwnd_ / 2;  // Vegas doubles every other RTT; approximate
    }
    return;
  }

  if (diff < cfg_.alpha_pkts) {
    cwnd_ += kMss;
  } else if (diff > cfg_.beta_pkts) {
    cwnd_ = std::max(cwnd_ - kMss, cfg_.min_cwnd);
  }
}

void Vegas::on_loss(const LossEvent& ev) {
  if (ev.is_rto) {
    cwnd_ = cfg_.min_cwnd;
    in_slow_start_ = true;
    return;
  }
  cwnd_ = std::max(
      static_cast<std::int64_t>(static_cast<double>(cwnd_) * 0.75),
      cfg_.min_cwnd);
  in_slow_start_ = false;
}

}  // namespace hvc::transport
