// One isolated experiment run: ScenarioSpec in, metric bundle out.
//
// run_scenario() owns the isolation contract that makes the sweep engine
// (sweep.hpp) safe to parallelize: each call installs a fresh
// obs::MetricsRegistry and a disabled obs::PacketTracer as the calling
// thread's current instances, zeroes the thread's flow/packet id counters
// (net::IdScope), builds a private sim::Simulator via the core::run_*
// helpers, and tears all of it down before returning. Nothing escapes
// into process-global state, so any number of runs can execute on
// different threads concurrently and a run's results depend only on its
// spec.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/scenario.hpp"
#include "exp/spec.hpp"

namespace hvc::exp {

struct RunResult {
  std::size_t index = 0;     ///< position in the sweep grid (0 for hvc_run)
  std::string name;          ///< scenario name
  std::map<std::string, std::string> params;  ///< sweep axis values
  std::map<std::string, double> metrics;      ///< workload headline metrics
  std::map<std::string, double> obs;          ///< MetricsRegistry snapshot
  double wall_ms = 0;  ///< host wall clock; NEVER written to aggregated
                       ///< outputs (would break -j1 vs -jN byte equality)
  std::string error;   ///< non-empty = the run threw; other fields empty
};

/// Per-invocation knobs that are the *caller's* business, not the
/// spec's: where observability artifacts land and which extra recorders
/// to arm. Everything here is deterministic (no wall clock) so sweep
/// outputs stay byte-identical across -j.
struct RunOptions {
  /// Artifact path prefix for telemetry/audit files. Empty = use
  /// spec.telemetry.out_prefix, falling back to the scenario name.
  std::string out_prefix;
  /// >= 0: this run's sweep-grid index; artifact names get a ".run<i>"
  /// infix so parallel runs write distinct files.
  int run_index = -1;
  /// Non-empty: enable the packet lifecycle tracer and write its Chrome
  /// trace here after the run (hvc_run --trace).
  std::string trace_path;
};

/// Execute one scenario in full isolation (see file comment). Exceptions
/// from the simulation are captured into RunResult::error, not thrown;
/// only spec-independent programming errors propagate.
RunResult run_scenario(const ScenarioSpec& spec);
RunResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts);

/// The spec → core::ScenarioConfig mapping, exposed for equivalence tests
/// (engine output must match a direct core::run_* call with the same
/// config).
core::ScenarioConfig build_scenario_config(const ScenarioSpec& spec);

}  // namespace hvc::exp
