// A reliable byte-stream transport over the emulated network: sequencing,
// cumulative + selective ACKs, RACK-style time-based loss detection with a
// 3-dupack fallback, RTO with exponential backoff, pacing, and pluggable
// congestion control.
//
// One TcpSender/TcpReceiver pair is a unidirectional stream (requests and
// responses are separate streams, as in HTTP/2 framing over one
// connection; see transport/connection.hpp for the bidirectional bundle).
// ACKs travel through the receiver node's egress shim — which is exactly
// how DChannel accelerates them (§3.2: "DChannel obtains a significant
// portion of its gains from accelerating ACKs").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sim/logger.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "transport/cca.hpp"
#include "transport/rtt.hpp"

namespace hvc::transport {

struct FlowPair {
  net::FlowId data;
  net::FlowId ack;
};
FlowPair make_flow_pair();

struct TcpConfig {
  std::string cca = "cubic";

  /// Cross-layer opt-in (§3.3): segments carry the AppHeader of the
  /// message they belong to, visible to cross-layer steering policies.
  bool annotate_app_info = false;

  /// Flow-level priority stamped on every packet (0 = foreground).
  std::uint8_t flow_priority = 0;

  /// Delayed ACKs: ack every 2nd packet or after the timeout.
  bool delayed_ack = false;
  sim::Duration delayed_ack_timeout = sim::milliseconds(25);

  int dupack_threshold = 3;
  /// Base RACK reordering window as a fraction of srtt (min 10 ms). When
  /// reordering is *observed* (a never-retransmitted segment is delivered
  /// below an already-SACKed block), the window grows multiplicatively up
  /// to one srtt — Linux RACK's adaptation, and what lets CUBIC survive
  /// persistent cross-channel reordering under packet steering.
  double rack_window_frac = 0.25;
  int rack_max_mult = 8;
  int max_sack_blocks = 4;

  /// Hard ceiling on the backed-off retransmission timeout. Bounds the
  /// probe interval through long blackouts (fault injection, §3's flapping
  /// channels): backoff doubles up to this, never past it.
  sim::Duration max_rto = sim::seconds(60);
};

struct TcpSenderStats {
  std::int64_t packets_sent = 0;
  std::int64_t bytes_sent = 0;          ///< payload, incl. retransmissions
  std::int64_t bytes_acked = 0;         ///< cumulatively acked payload
  std::int64_t retransmissions = 0;
  std::int64_t rto_count = 0;
  std::int64_t spurious_loss_marks = 0;  ///< losses disproved by arrival
  sim::TimeSeries rtt_samples_ms;       ///< per-ACK RTT (Fig. 1b)
  sim::TimeSeries acked_bytes_series;   ///< (t, cumulative acked)
};

/// A message written to the stream; used for cross-layer annotation and
/// receiver-side completion callbacks.
struct StreamMessage {
  std::uint64_t id = 0;
  std::int64_t bytes = 0;
  std::uint8_t priority = 0;
  sim::Time created_at = 0;
};

class TcpSender {
 public:
  TcpSender(net::Node& local, FlowPair flows, CcaPtr cca, TcpConfig cfg = {});
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Append anonymous bulk bytes to the stream.
  void write(std::int64_t bytes);

  /// Append a message (annotated with boundaries/priority when the config
  /// opts in). Returns the message id.
  std::uint64_t write_message(std::int64_t bytes, std::uint8_t priority = 0);

  /// Called whenever the cumulative ack advances (arg: total acked bytes).
  void set_on_acked(std::function<void(std::int64_t)> cb) {
    on_acked_ = std::move(cb);
  }

  [[nodiscard]] std::int64_t bytes_unacked() const {
    return static_cast<std::int64_t>(stream_end_ - cum_acked_);
  }
  [[nodiscard]] std::int64_t bytes_in_flight() const { return in_flight_; }
  [[nodiscard]] bool idle() const { return cum_acked_ == stream_end_; }

  [[nodiscard]] const TcpSenderStats& stats() const { return stats_; }
  [[nodiscard]] TcpSenderStats& mutable_stats() { return stats_; }
  [[nodiscard]] const CcAlgorithm& cca() const { return *cca_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const TcpConfig& config() const { return cfg_; }

  /// Average goodput over [from, to] based on cumulative acked bytes.
  [[nodiscard]] double goodput_bps(sim::Time from, sim::Time to) const;

 private:
  struct Segment {
    std::uint64_t seq = 0;
    std::uint32_t len = 0;
    sim::Time first_sent = 0;
    sim::Time last_sent = 0;
    int tx_count = 0;
    bool sacked = false;
    bool lost = false;     ///< marked for retransmission
    bool in_flight = false;  ///< currently counted in in_flight_
    net::AppHeader app;
    // Delivery-rate sampling snapshots (BBR-style).
    std::int64_t delivered_snapshot = 0;
    sim::Time delivered_ts_snapshot = 0;
    bool app_limited = false;
  };

  void on_ack_packet(const net::PacketPtr& p);
  void try_send();
  void send_segment(Segment& seg, bool retransmission);
  std::optional<std::uint64_t> next_fresh_span(std::uint32_t* len,
                                               net::AppHeader* app);
  void detect_losses_rack(sim::Time rack_ts);
  void note_reordering(const Segment& seg);
  void note_spurious_if_unretransmitted(const Segment& seg, sim::Time now);
  void arm_rto();
  void on_rto();
  void arm_pacing(sim::Duration delay);
  [[nodiscard]] sim::Duration rack_window() const;

  net::Node& local_;
  sim::Simulator& sim_;
  sim::Logger log_{"tcp", &sim_};
  FlowPair flows_;
  CcaPtr cca_;
  TcpConfig cfg_;

  // Stream state.
  std::uint64_t stream_end_ = 0;   ///< bytes written by the app
  std::uint64_t next_seq_ = 0;     ///< next fresh byte to send
  std::uint64_t cum_acked_ = 0;
  std::deque<StreamMessage> message_spans_;  ///< spans not fully sent
  std::uint64_t span_cursor_ = 0;  ///< seq where message_spans_.front() starts
  std::uint64_t next_message_id_ = 1;

  std::map<std::uint64_t, Segment> outstanding_;  ///< by seq
  std::int64_t in_flight_ = 0;

  // Delivery accounting for rate samples.
  std::int64_t delivered_bytes_ = 0;
  sim::Time delivered_ts_ = 0;

  // Round counting.
  std::int64_t round_trips_ = 0;
  std::uint64_t round_end_seq_ = 0;

  // Dupack fallback.
  std::uint64_t last_cum_ack_ = 0;
  int dupacks_ = 0;

  // RACK reordering-window adaptation.
  bool reordering_seen_ = false;
  int reo_mult_ = 1;
  std::uint64_t highest_sacked_end_ = 0;
  sim::Time last_undo_ = -sim::seconds(1);

  RttEstimator rtt_;
  sim::Timer rto_timer_;
  int rto_backoff_ = 0;
  sim::Timer pace_timer_;
  sim::Time next_send_time_ = 0;

  std::function<void(std::int64_t)> on_acked_;
  TcpSenderStats stats_;

  // Registry mirrors of stats_ (aggregated across all senders in a run):
  // transport.tcp.{packets_sent,retransmissions,rto_count,spurious_loss_marks}.
  obs::Counter* m_packets_sent_ = nullptr;
  obs::Counter* m_retransmissions_ = nullptr;
  obs::Counter* m_rto_count_ = nullptr;
  obs::Counter* m_spurious_ = nullptr;

  // Telemetry time series, keyed by data-flow id:
  // transport.tcp.flow<id>.{cwnd_bytes,inflight_bytes,srtt_ms,pacing_mbps}
  // — the per-connection dynamics behind Fig. 1 (cwnd collapse under
  // cross-channel steering). Registrations die with the sender; recorded
  // samples stay exportable.
  obs::TelemetryProbes probes_;
};

struct TcpReceiverStats {
  std::int64_t packets_received = 0;
  std::int64_t duplicate_packets = 0;
  std::int64_t acks_sent = 0;
};

class TcpReceiver {
 public:
  TcpReceiver(net::Node& local, FlowPair flows, TcpConfig cfg = {});
  ~TcpReceiver();

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  /// In-order data callback: (new in-order bytes now available).
  void set_on_data(std::function<void(std::int64_t)> cb) {
    on_data_ = std::move(cb);
  }

  /// Full-message callback: fires when every byte of an annotated message
  /// has been received. Args: header of the message, completion time.
  void set_on_message(
      std::function<void(const net::AppHeader&, sim::Time)> cb) {
    on_message_ = std::move(cb);
  }

  [[nodiscard]] std::uint64_t in_order_bytes() const { return cum_; }
  [[nodiscard]] const TcpReceiverStats& stats() const { return stats_; }

 private:
  void on_data_packet(const net::PacketPtr& p);
  void send_ack(const net::PacketPtr& trigger);

  net::Node& local_;
  sim::Simulator& sim_;
  FlowPair flows_;
  TcpConfig cfg_;

  std::uint64_t cum_ = 0;  ///< next expected in-order byte
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< [first, last) blocks
  std::deque<std::pair<std::uint64_t, std::uint64_t>> recent_blocks_;

  struct MessageProgress {
    net::AppHeader header;
    std::int64_t received = 0;
  };
  std::map<std::uint64_t, MessageProgress> messages_;

  int unacked_count_ = 0;
  sim::Timer delack_timer_;
  net::PacketPtr pending_trigger_;

  std::function<void(std::int64_t)> on_data_;
  std::function<void(const net::AppHeader&, sim::Time)> on_message_;
  TcpReceiverStats stats_;
};

}  // namespace hvc::transport
