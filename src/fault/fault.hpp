// Deterministic fault model: FaultPlan describes the disruption episodes a
// scenario injects into its channels — full link outages, handover rate
// cliffs, Gilbert-Elliott burst-loss episodes, propagation-delay spikes and
// channel flap sequences (§3: URLLC capacity is intermittent, 5G links flap
// during handovers/blockage). Plans are data: validated up front, applied by
// fault::FaultInjector (injector.hpp) through the channel::Link fault_*
// hooks, and fully reproducible — every stochastic element carries its own
// seed, so the same plan produces byte-identical runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/loss.hpp"
#include "sim/units.hpp"

namespace hvc::fault {

enum class FaultKind : std::uint8_t {
  kOutage,      ///< full blackout: no delivery opportunities served
  kRateCliff,   ///< handover cliff: capacity drops to rate_scale
  kGeBurst,     ///< Gilbert-Elliott burst-loss episode layered on the link
  kDelaySpike,  ///< extra propagation delay (route change / re-buffering)
  kFlap,        ///< periodic down/up toggling (handover storm, blockage)
};

/// Which of the channel's two links the fault hits.
enum class FaultDir : std::uint8_t { kDownlink, kUplink, kBoth };

[[nodiscard]] const char* kind_name(FaultKind k);
[[nodiscard]] const char* dir_name(FaultDir d);

/// One scheduled disruption episode on one channel.
struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  std::size_t channel = 0;
  FaultDir dir = FaultDir::kBoth;
  sim::Time start = 0;
  sim::Duration duration = sim::seconds(1);

  // kRateCliff: fraction of delivery opportunities still served, (0, 1).
  double rate_scale = 0.1;

  // kDelaySpike: added on top of the link's propagation delay.
  sim::Duration extra_delay = sim::milliseconds(100);

  // kGeBurst: episode loss model (Gilbert-Elliott fields) + RNG seed.
  channel::LossConfig loss;
  std::uint64_t loss_seed = 1;

  // kFlap: toggle period, fraction of each period spent up, and an
  // optional seed (non-zero) that jitters the per-period down spans.
  sim::Duration flap_period = sim::milliseconds(500);
  double flap_up_fraction = 0.5;
  std::uint64_t flap_seed = 0;

  [[nodiscard]] sim::Time end() const { return start + duration; }
};

/// An ordered list of fault events for one scenario run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Throws std::invalid_argument (message names the offending event
  /// index) on: channel out of range, non-positive duration, negative
  /// start, bad kind parameters, or two same-family events overlapping on
  /// the same link (outage/flap share the availability family — stacking
  /// them would make down/up transitions ambiguous).
  void validate(std::size_t num_channels) const;

  /// A seeded random-but-valid plan for fuzzing: 1–4 events of random
  /// kinds placed in disjoint time slices of [0, horizon). The same seed
  /// always yields the same plan.
  [[nodiscard]] static FaultPlan fuzzed(std::uint64_t seed,
                                        std::size_t num_channels,
                                        sim::Duration horizon);
};

}  // namespace hvc::fault
