// Generational slot map: dense, index-addressed object storage with
// use-after-retire detection.
//
// The sim core keeps per-entity state (city users, flow state) in dense
// vectors indexed by a small integer slot, because the steer/serve hot
// paths look entities up once per event and a vector index beats any
// hash. The failure mode of bare indices is the stale handle: an event
// scheduled against user 17 fires after user 17 departed and slot 17
// was reused. The slot map closes that hole with a generation counter
// per slot: a Handle is (slot, gen), retirement bumps the generation,
// and get() aborts — in release builds too — when the generations
// disagree. Callers that own their liveness protocol (the population
// engine's epoch checks) can still address raw slots through at()/gen().
//
// Two acquisition modes:
//  - acquire(): always a fresh slot, never reuses one. The population
//    engine needs this — user RNG streams are keyed by (seed, slot), so
//    reusing a slot would replay a departed user's randomness.
//  - acquire_reusing(): prefers retired slots (bounded storage for
//    entity churn where identity is carried by the generation).
//
// Retired slots keep their data readable via at(): departure bookkeeping
// (folding a departed user's stats) runs after retirement on purpose.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace hvc::sim {

template <class T>
class SlotMap {
 public:
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Place `value` in a fresh slot (slots are never reused by this
  /// call). Returns its handle; generation starts at 0.
  Handle acquire(T value) {
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    // hvc-lint: allow(hotpath-alloc): the slot vector's growth amortizes
    // and reserve() pre-sizes it for the common fixed-population case
    slots_.push_back(Slot{std::move(value), 0, true});
    ++live_;
    return Handle{slot, 0};
  }

  /// Place `value` in a retired slot when one is free, else a fresh
  /// one. The returned handle's generation distinguishes it from every
  /// previous occupant of the slot.
  Handle acquire_reusing(T value) {
    if (free_.empty()) return acquire(std::move(value));
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    Slot& s = slots_[slot];
    s.value = std::move(value);
    s.live = true;
    ++live_;
    return Handle{slot, s.gen};
  }

  /// Retire the slot behind `h`. Aborts on a stale handle (retiring an
  /// entity twice is an ownership bug, not a race to tolerate).
  void retire(Handle h) {
    check(h, "retire");
    retire_slot(h.slot);
  }

  /// Retire by raw slot, for owners running their own liveness checks.
  /// The generation bumps so outstanding handles go stale; the data
  /// stays readable through at().
  void retire_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.live = false;
    ++s.gen;
    --live_;
    // hvc-lint: allow(hotpath-alloc): free-list growth amortizes and is
    // bounded by the slot count
    free_.push_back(slot);
  }

  /// The value behind `h`. Aborts — release builds included — when the
  /// handle is stale: a stale read is memory of a departed entity.
  [[nodiscard]] T& get(Handle h) {
    check(h, "get");
    return slots_[h.slot].value;
  }
  [[nodiscard]] const T& get(Handle h) const {
    check(h, "get");
    return slots_[h.slot].value;
  }

  /// The value behind `h`, or nullptr when the handle is stale.
  [[nodiscard]] T* try_get(Handle h) {
    return alive(h) ? &slots_[h.slot].value : nullptr;
  }

  [[nodiscard]] bool alive(Handle h) const {
    return h.slot < slots_.size() && slots_[h.slot].live &&
           slots_[h.slot].gen == h.gen;
  }

  /// Raw-slot access. Valid for any slot ever acquired, live or retired.
  [[nodiscard]] T& at(std::uint32_t slot) { return slots_[slot].value; }
  [[nodiscard]] const T& at(std::uint32_t slot) const {
    return slots_[slot].value;
  }
  [[nodiscard]] bool live(std::uint32_t slot) const {
    return slots_[slot].live;
  }
  [[nodiscard]] std::uint32_t gen(std::uint32_t slot) const {
    return slots_[slot].gen;
  }

  /// Slots ever acquired (retired ones included).
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::size_t live_count() const { return live_; }

  void reserve(std::size_t n) {
    // hvc-lint: allow(hotpath-alloc): explicit pre-sizing call
    slots_.reserve(n);
  }

  /// Visit (slot, value) for every live slot, in slot order.
  template <class F>
  void for_each_live(F&& fn) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) fn(i, slots_[i].value);
    }
  }

 private:
  struct Slot {
    T value;
    std::uint32_t gen = 0;
    bool live = false;
  };

  void check(Handle h, const char* op) const {
    if (!alive(h)) {
      std::fprintf(stderr,
                   "SlotMap::%s: stale handle (slot %u gen %u, current %s)\n",
                   op, h.slot, h.gen,
                   h.slot < slots_.size() ? "gen differs or retired"
                                          : "slot out of range");
      std::abort();
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace hvc::sim
