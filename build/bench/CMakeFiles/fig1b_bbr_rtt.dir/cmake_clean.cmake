file(REMOVE_RECURSE
  "CMakeFiles/fig1b_bbr_rtt.dir/fig1b_bbr_rtt.cpp.o"
  "CMakeFiles/fig1b_bbr_rtt.dir/fig1b_bbr_rtt.cpp.o.d"
  "fig1b_bbr_rtt"
  "fig1b_bbr_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_bbr_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
