// A bidirectional connection: two unidirectional reliable streams
// (client→server and server→client), each with its own congestion
// controller — the shape of an HTTP/2-over-TCP connection in this
// framework. The web model (app/web) builds its origin connections from
// this, including an optional connection-setup handshake round trip.
#pragma once

#include <functional>
#include <memory>

#include "net/node.hpp"
#include "transport/tcp.hpp"

namespace hvc::transport {

class Connection {
 public:
  /// `client`/`server` are the two endpoints; `cfg` applies to both
  /// directions (separate CCA instances are created per direction).
  Connection(net::Node& client, net::Node& server, TcpConfig cfg = {});

  /// Client-side request stream.
  [[nodiscard]] TcpSender& client_sender() { return *c2s_sender_; }
  [[nodiscard]] TcpReceiver& server_receiver() { return *c2s_receiver_; }

  /// Server-side response stream.
  [[nodiscard]] TcpSender& server_sender() { return *s2c_sender_; }
  [[nodiscard]] TcpReceiver& client_receiver() { return *s2c_receiver_; }

  /// Simulate connection establishment: a control-packet round trip
  /// (client→server→client) before `ready` fires. Handshake packets go
  /// through the shims like everything else — steering accelerates them.
  void handshake(std::function<void()> ready);

  [[nodiscard]] bool established() const { return established_; }

 private:
  net::Node& client_;
  net::Node& server_;
  TcpConfig cfg_;
  std::unique_ptr<TcpSender> c2s_sender_;
  std::unique_ptr<TcpReceiver> c2s_receiver_;
  std::unique_ptr<TcpSender> s2c_sender_;
  std::unique_ptr<TcpReceiver> s2c_receiver_;
  net::FlowId syn_flow_;
  net::FlowId syn_ack_flow_;
  bool established_ = false;
};

}  // namespace hvc::transport
