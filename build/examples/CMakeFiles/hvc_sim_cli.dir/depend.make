# Empty dependencies file for hvc_sim_cli.
# This may be replaced when dependencies are built.
