#include "exp/results.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <system_error>

#include "obs/metrics.hpp"

namespace hvc::exp {

std::string to_csv(const std::vector<RunResult>& runs) {
  std::set<std::string> param_cols;
  std::set<std::string> metric_cols;
  for (const auto& r : runs) {
    for (const auto& [k, unused] : r.params) param_cols.insert(k);
    for (const auto& [k, unused] : r.metrics) metric_cols.insert(k);
  }

  std::string out = "run,name";
  for (const auto& c : param_cols) out += "," + obs::csv_escape(c);
  for (const auto& c : metric_cols) out += "," + obs::csv_escape(c);
  out += ",error\n";

  for (const auto& r : runs) {
    out += std::to_string(r.index) + "," + obs::csv_escape(r.name);
    for (const auto& c : param_cols) {
      out += ",";
      const auto it = r.params.find(c);
      if (it != r.params.end()) out += obs::csv_escape(it->second);
    }
    for (const auto& c : metric_cols) {
      out += ",";
      const auto it = r.metrics.find(c);
      if (it != r.metrics.end()) out += obs::json::number(it->second);
    }
    out += "," + obs::csv_escape(r.error) + "\n";
  }
  return out;
}

std::string to_jsonl(const std::vector<RunResult>& runs) {
  using obs::json::number;
  using obs::json::quote;
  std::string out;
  for (const auto& r : runs) {
    out += "{\"run\":" + std::to_string(r.index);
    out += ",\"name\":" + quote(r.name);
    out += ",\"params\":{";
    bool first = true;
    for (const auto& [k, v] : r.params) {
      if (!first) out += ',';
      first = false;
      out += quote(k) + ":" + quote(v);
    }
    out += "},\"metrics\":{";
    first = true;
    for (const auto& [k, v] : r.metrics) {
      if (!first) out += ',';
      first = false;
      out += quote(k) + ":" + number(v);
    }
    out += "},\"obs\":{";
    first = true;
    for (const auto& [k, v] : r.obs) {
      if (!first) out += ',';
      first = false;
      out += quote(k) + ":" + number(v);
    }
    out += "}";
    if (!r.error.empty()) out += ",\"error\":" + quote(r.error);
    out += "}\n";
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw SpecError(path + ": cannot open for writing");
  f << content;
  if (!f) throw SpecError(path + ": write failed");
}

std::string default_out_prefix(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench/out", ec);
  if (ec) return name;
  return "bench/out/" + name;
}

}  // namespace hvc::exp
