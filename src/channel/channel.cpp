#include "channel/channel.hpp"

namespace hvc::channel {

namespace {

LinkConfig make_link_config(const ChannelProfile& p, Direction d,
                            std::uint64_t loss_seed) {
  LinkConfig cfg;
  cfg.name = p.name + (d == Direction::kDownlink ? "-down" : "-up");
  cfg.capacity =
      d == Direction::kDownlink ? p.capacity_down : p.capacity_up;
  cfg.prop_delay = p.owd;
  cfg.queue_limit_bytes = p.queue_limit_bytes;
  cfg.loss = p.loss;
  cfg.loss_seed = loss_seed;
  return cfg;
}

}  // namespace

Channel::Channel(sim::Simulator& sim, ChannelProfile profile)
    : profile_(std::move(profile)),
      down_(sim, make_link_config(profile_, Direction::kDownlink,
                                  profile_.loss_seed * 2 + 1)),
      up_(sim, make_link_config(profile_, Direction::kUplink,
                                profile_.loss_seed * 2 + 2)) {}

double Channel::cost_accrued() const {
  const double mb =
      static_cast<double>(down_.stats().delivered_bytes +
                          up_.stats().delivered_bytes) /
      1e6;
  return mb * profile_.cost_per_megabyte;
}

std::size_t HvcSet::add(ChannelProfile profile) {
  // Decorrelate loss processes across channels of a set.
  profile.loss_seed += 7919 * channels_.size();
  channels_.push_back(std::make_unique<Channel>(*sim_, std::move(profile)));
  const std::size_t index = channels_.size() - 1;
  // Tag the links for the lifecycle tracer and label the trace track.
  const auto ch8 = static_cast<std::uint8_t>(index);
  channels_.back()->downlink().set_trace_ids(ch8, obs::kDirDown);
  channels_.back()->uplink().set_trace_ids(ch8, obs::kDirUp);
  obs::PacketTracer::current().set_channel_name(index,
                                                 channels_.back()->name());
  return index;
}

std::size_t HvcSet::first_reliable() const {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i]->profile().reliable) return i;
  }
  return channels_.size();
}

std::size_t HvcSet::lowest_latency() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < channels_.size(); ++i) {
    if (channels_[i]->profile().owd < channels_[best]->profile().owd) {
      best = i;
    }
  }
  return best;
}

std::size_t HvcSet::highest_bandwidth(Direction d) const {
  std::size_t best = 0;
  double best_rate = -1.0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const auto& cap = d == Direction::kDownlink
                          ? channels_[i]->profile().capacity_down
                          : channels_[i]->profile().capacity_up;
    if (cap.average_rate_bps() > best_rate) {
      best_rate = cap.average_rate_bps();
      best = i;
    }
  }
  return best;
}

}  // namespace hvc::channel
