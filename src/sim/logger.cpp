#include "sim/logger.hpp"

#include "sim/simulator.hpp"

namespace hvc::sim {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?";
  }
}
}  // namespace

void Logger::set_global_level(LogLevel lvl) { g_level = lvl; }
LogLevel Logger::global_level() { return g_level; }

void Logger::log(LogLevel lvl, std::string_view msg) const {
  if (!enabled(lvl)) return;
  const double t = sim_ ? to_millis(sim_->now()) : 0.0;
  std::fprintf(stderr, "[%12.3f ms] %s %-12s %.*s\n", t, level_name(lvl),
               component_.c_str(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace hvc::sim
