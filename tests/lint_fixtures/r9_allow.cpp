// R9 suppression: the write is a true finding, but carries a justified
// allow so it must not surface from lint_tree.
namespace fx9e {

int g_total = 0;

void fx9e_worker() {
  // hvc-lint: allow(worker-shared-state): fixture exercising the semantic suppression path
  g_total += 1;
}

void run_sweep() { fx9e_worker(); }

}  // namespace fx9e
