// Socket-Intents-style application–transport interface (§3.3, [40]).
//
// Applications describe what a stream *is* — bulk, interactive, realtime —
// and how important it is; the transport maps that onto channels. This is
// the "general interface for information exchange" the paper argues any
// HVC solution needs, decoupled from any one application.
#pragma once

#include <cstdint>

namespace hvc::quic {

enum class TrafficClass : std::uint8_t {
  kBulk,         ///< throughput matters, latency doesn't (downloads)
  kInteractive,  ///< small request/response; completion latency matters
  kRealtime,     ///< deadline-bound; late data is worthless
  kControl,      ///< protocol/control messages; tiny, urgent
};

struct StreamIntents {
  TrafficClass traffic = TrafficClass::kBulk;

  /// 0 = most important. Maps to message priority on the wire, so
  /// cross-layer network policies can honor it too.
  std::uint8_t priority = 4;

  /// Partial data is useful before the message completes (e.g. progressive
  /// images). Schedulers may then interleave rather than serialize.
  bool incremental = false;

  /// Deadline after which delivery is pointless (0 = none). Realtime
  /// streams drop queued data past its deadline instead of sending stale
  /// bytes.
  std::int64_t deadline_ms = 0;

  static StreamIntents bulk() { return {TrafficClass::kBulk, 4, false, 0}; }
  static StreamIntents interactive(std::uint8_t prio = 1) {
    return {TrafficClass::kInteractive, prio, false, 0};
  }
  static StreamIntents realtime(std::uint8_t prio = 0,
                                std::int64_t deadline_ms = 100) {
    return {TrafficClass::kRealtime, prio, true, deadline_ms};
  }
};

}  // namespace hvc::quic
