// hvc_report — render the artifacts of a run/sweep prefix as a report.
//
//   hvc_report <prefix> [--trace <lifecycle.json>] [--merged <out.json>]
//              [--capacity <out.json>] [--explain]
//
// Ingests <prefix>.results.jsonl (required) plus <prefix>.telemetry.jsonl,
// <prefix>.audit.jsonl and <prefix>[.runN].spans.jsonl when present, and
// prints:
//   * per-run headline metrics,
//   * city-workload cohort tables (with Jain fairness) and the
//     users-vs-quality capacity curve, when city runs are present,
//   * per-channel steering-decision shares (and, with an audit log,
//     decision-reason shares per policy),
//   * per-series telemetry statistics.
// With --explain, it instead prints the critical-path explanation of
// every retained span exemplar: a stage waterfall plus an attribution
// table whose per-(component, channel) entries sum to the measured
// PLT/chunk latency exactly (integer sim-time accounting).
// With --merged, it also writes one Chrome trace (chrome://tracing /
// Perfetto) merging telemetry counter tracks, audit instant events and
// retained span trees — and, with --trace, the packet lifecycle trace on
// the same time base. With --capacity, the capacity curves are exported
// as canonical JSON.
//
// All rendering lives in exp::Report (src/exp/report.*); this file is
// argument parsing and I/O only.
//
// Exit codes: 0 success, 1 I/O or parse failure, 2 bad usage.
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/report.hpp"
#include "exp/results.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hvc_report <prefix> [--trace <lifecycle.json>] "
               "[--merged <out.json>] [--capacity <out.json>] [--explain]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hvc;
  std::string prefix;
  std::string trace_path;
  std::string merged_path;
  std::string capacity_path;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) return usage();
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--merged") == 0) {
      if (i + 1 >= argc) return usage();
      merged_path = argv[++i];
    } else if (std::strcmp(argv[i], "--capacity") == 0) {
      if (i + 1 >= argc) return usage();
      capacity_path = argv[++i];
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (prefix.empty()) {
      prefix = argv[i];
    } else {
      return usage();
    }
  }
  if (prefix.empty()) return usage();

  exp::Report report;
  try {
    report = exp::Report::load(prefix, trace_path);
  } catch (const exp::SpecError& e) {
    std::fprintf(stderr, "hvc_report: %s\n", e.what());
    return 1;
  }

  if (explain) {
    const std::string text = report.render_explain();
    if (text.empty()) {
      std::fprintf(stderr,
                   "hvc_report: no spans artifact for '%s' (enable with a "
                   "\"spans\": {} scenario block)\n",
                   prefix.c_str());
      return 1;
    }
    std::fputs(text.c_str(), stdout);
  } else {
    std::fputs(report.render_summary().c_str(), stdout);
    std::fputs(report.render_cohorts().c_str(), stdout);
    std::fputs(report.render_capacity().c_str(), stdout);
    std::fputs(report.render_decisions().c_str(), stdout);
    std::fputs(report.render_telemetry().c_str(), stdout);
  }

  if (!capacity_path.empty()) {
    try {
      exp::write_file(capacity_path, report.capacity_json());
    } catch (const exp::SpecError& e) {
      std::fprintf(stderr, "hvc_report: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", capacity_path.c_str());
  }

  if (!merged_path.empty()) {
    try {
      exp::write_file(merged_path, report.to_chrome_trace());
    } catch (const exp::SpecError& e) {
      std::fprintf(stderr, "hvc_report: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", merged_path.c_str());
  }
  return 0;
}
