// Baseline steering policies: single-channel, round-robin, weighted
// spray, and greedy minimum-delay. These are the strawmen the paper's §3.1
// compares against — they either ignore heterogeneity entirely
// (round-robin/weighted, the "MPTCP view" of multiple paths) or chase
// latency with no notion of cost (min-delay).
#pragma once

#include <cstdint>
#include <memory>

#include "steer/steering_policy.hpp"

namespace hvc::steer {

/// Everything on one fixed channel (index 0 == the paper's "eMBB-only").
class SingleChannelPolicy final : public SteeringPolicy {
 public:
  explicit SingleChannelPolicy(std::size_t channel = 0) : channel_(channel) {}

  [[nodiscard]] std::string name() const override {
    return "single[" + std::to_string(channel_) + "]";
  }

  Decision steer(const net::Packet&, std::span<const ChannelView> channels,
                 sim::Time) override {
    if (channel_ < channels.size()) {
      if (channels[channel_].down) {
        return {first_up_channel(channels), {}, "single:failover"};
      }
      return {channel_, {}, "single:fixed"};
    }
    return {0, {}, "single:out-of-range"};
  }

 private:
  std::size_t channel_;
};

/// Packets alternate across all channels, blind to their properties.
class RoundRobinPolicy final : public SteeringPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }

  Decision steer(const net::Packet&, std::span<const ChannelView> channels,
                 sim::Time) override {
    // Advance past down channels (at most one full lap) so an outage on
    // one channel degrades to round-robin over the survivors.
    for (std::size_t tries = 0; tries < channels.size(); ++tries) {
      const std::size_t c = next_++ % channels.size();
      if (!channels[c].down) {
        return {c, {}, tries == 0 ? "round-robin:next"
                                  : "round-robin:failover"};
      }
    }
    return {0, {}, "round-robin:all-down"};
  }

 private:
  std::size_t next_ = 0;
};

/// Spray proportionally to average channel bandwidth (deficit counter).
/// Approximates what a bandwidth-aggregating multipath scheduler does.
class WeightedPolicy final : public SteeringPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "weighted"; }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels, sim::Time) override {
    if (deficit_.size() != channels.size()) {
      deficit_.assign(channels.size(), 0.0);
    }
    // A down channel earns no credit and receives no packets; its share
    // redistributes to the survivors for the outage's duration.
    double total = 0.0;
    for (const auto& c : channels) {
      if (!c.down) total += c.avg_rate_bps;
    }
    if (total <= 0.0) return {0, {}, "weighted:no-rate"};
    std::size_t best = first_up_channel(channels);
    for (std::size_t i = 0; i < channels.size(); ++i) {
      if (channels[i].down) continue;
      deficit_[i] += channels[i].avg_rate_bps / total *
                     static_cast<double>(pkt.size_bytes);
      if (deficit_[i] > deficit_[best]) best = i;
    }
    deficit_[best] -= static_cast<double>(pkt.size_bytes);
    return {best, {}, "weighted:deficit"};
  }

 private:
  std::vector<double> deficit_;
};

/// Greedy: pick the channel with the smallest estimated delivery delay for
/// this packet. No hysteresis, no notion of channel scarcity — tends to
/// fill the low-latency channel until its queue estimate exceeds eMBB's.
class MinDelayPolicy final : public SteeringPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "min-delay"; }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels, sim::Time) override {
    // est_delivery_delay() is kTimeNever for down channels, so the greedy
    // scan naturally avoids them; start from the first up channel so a
    // down channel 0 cannot win by default.
    std::size_t best = first_up_channel(channels);
    sim::Duration best_d = channels[best].est_delivery_delay(pkt.size_bytes);
    bool tied = false;
    for (std::size_t i = best + 1; i < channels.size(); ++i) {
      const auto d = channels[i].est_delivery_delay(pkt.size_bytes);
      if (d < best_d) {
        best = i;
        best_d = d;
        tied = false;
      } else if (d == best_d) {
        tied = true;  // the earlier-indexed channel keeps the packet
      }
    }
    if (channels[0].down && best != 0) {
      return {best, {}, "min-delay:failover"};
    }
    return {best, {}, tied ? "min-delay:tie-break" : "min-delay:fastest"};
  }
};

/// Honors the sender's explicit path choice (Packet::requested_channel),
/// falling back to a delegate for unpinned packets. This is the network
/// face of a *transport-layer* solution (§3.2): the shim becomes a dumb
/// demux and all intelligence lives at the endpoint.
class PinnedChannelPolicy final : public SteeringPolicy {
 public:
  explicit PinnedChannelPolicy(std::unique_ptr<SteeringPolicy> fallback =
                                   nullptr)
      : fallback_(std::move(fallback)) {}

  [[nodiscard]] std::string name() const override { return "pinned"; }
  [[nodiscard]] bool uses_app_info() const override {
    return fallback_ && fallback_->uses_app_info();
  }
  [[nodiscard]] bool uses_flow_priority() const override {
    return fallback_ && fallback_->uses_flow_priority();
  }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override {
    if (pkt.requested_channel >= 0 &&
        static_cast<std::size_t>(pkt.requested_channel) < channels.size()) {
      const auto req = static_cast<std::size_t>(pkt.requested_channel);
      // The endpoint pinned a channel that is now dark: the shim knows
      // (the transport may not yet), so it overrides the pin rather than
      // burying the packet in a dead queue.
      if (channels[req].down) {
        return {first_up_channel(channels), {}, "pinned:failover"};
      }
      return {req, {}, "pinned:requested"};
    }
    if (fallback_) return fallback_->steer(pkt, channels, now);
    return {0, {}, "pinned:default"};
  }

 private:
  std::unique_ptr<SteeringPolicy> fallback_;
};

}  // namespace hvc::steer
