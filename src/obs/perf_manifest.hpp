// Versioned perf manifests: the BENCH_*.json files at the repo root that
// form the simulator's speed trajectory.
//
// One manifest records one execution of the pinned-cycle microbench
// suite (bench/hotpath via tools/hvc_perf): host provenance (git sha,
// CPU model, build type, compiler, pinned CPU, calibrated TSC rate) and,
// per microbench, warmup/repeat statistics — median + IQR of throughput
// (items/sec), ns/item, and per-hot-path cycles/call from the obs::prof
// hook counters.
//
// The schema is append-only versioned (`"schema": "hvc-perf-manifest/N"`):
// readers accept any manifest whose version they know, so old committed
// baselines keep working as the suite grows. compare_perf() is the
// regression gate `hvc_perf --baseline BENCH_x.json --check` runs: a
// bench regresses when its current throughput median drops more than
// `tolerance` (fractional) below the baseline's.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hvc::obs {

struct PerfBenchResult {
  std::string name;  ///< microbench id, e.g. "event_queue_churn"
  std::string unit;  ///< what one item is: "events" | "packets" | ...
  /// Flattened repeat statistics, sorted by key for stable JSON:
  ///   items.median                  work per repeat (sim-determined)
  ///   items_per_sec.{median,iqr,min,max,mean}
  ///   ns_per_item.median
  ///   hook.<hook>.cycles_per_call.median   (per-hot-path cycle medians)
  ///   hook.<hook>.calls.median
  ///   alloc.bytes_per_item.median
  std::map<std::string, double> stats;
};

struct PerfManifest {
  /// Bumped when the JSON layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;

  std::string name;  ///< suite name; file convention BENCH_<name>.json
  std::string git_sha = "unknown";
  std::string cpu_model = "unknown";
  std::string build_type = "unknown";  ///< CMAKE_BUILD_TYPE
  std::string compiler = "unknown";
  int pinned_cpu = -1;         ///< -1 = not pinned
  double cycles_per_ns = 0.0;  ///< calibrated TSC rate
  int warmup = 0;              ///< discarded repeats per bench
  int repeats = 0;             ///< measured repeats per bench
  std::vector<PerfBenchResult> benches;  ///< suite order

  [[nodiscard]] const PerfBenchResult* find(const std::string& bench) const;

  [[nodiscard]] std::string to_json() const;
  static std::optional<PerfManifest> from_json(const std::string& text);

  bool write(const std::string& path) const;
  static std::optional<PerfManifest> read(const std::string& path);
};

/// One bench's baseline-vs-current comparison.
struct PerfDelta {
  std::string bench;
  double baseline = 0.0;  ///< baseline items_per_sec.median
  double current = 0.0;   ///< current items_per_sec.median
  double ratio = 0.0;     ///< current / baseline (0 when missing)
  bool ok = false;
  std::string note;  ///< "missing in current run" etc.
};

struct PerfCheck {
  bool ok = true;
  std::vector<PerfDelta> deltas;  ///< baseline suite order

  [[nodiscard]] std::string to_text() const;  ///< one aligned row per bench
};

/// Regression gate: every baseline bench must be present in `current`
/// with items_per_sec.median >= baseline * (1 - tolerance). Benches only
/// in `current` are reported as ok (the suite grew). `tolerance` is the
/// allowed fractional slowdown, e.g. 0.5 = halving throughput fails.
[[nodiscard]] PerfCheck compare_perf(const PerfManifest& baseline,
                                     const PerfManifest& current,
                                     double tolerance);

}  // namespace hvc::obs
