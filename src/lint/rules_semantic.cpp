#include "lint/rules_semantic.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hvc::lint {

namespace {

/// Worker-thread entry points: exp::run_sweep fans work out through
/// these (the worker lambda's body is attributed to its enclosing
/// function by the indexer, so reachability starts here).
[[nodiscard]] bool is_worker_root(const FunctionSummary& fn) {
  return fn.name == "run_sweep" || fn.name == "run_sweep_shard";
}

/// Export sinks for the determinism dataflow rule: anything that turns
/// values into bytes a user (or a golden-number test) will compare.
[[nodiscard]] bool is_export_sink(const std::string& name) {
  static const std::set<std::string> kSinks = {
      "to_json",    "to_jsonl",     "to_csv",      "to_chrome_trace",
      "write_csv",  "write_jsonl",  "export_metrics",
      "fold_into",  "serialize"};
  return kSinks.count(name) > 0;
}

std::string where(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

// ---- R9: worker-shared-state ------------------------------------------

void check_worker_races(const Index& idx, const CallGraph& cg,
                        std::vector<Finding>* out) {
  std::vector<const FunctionSummary*> roots;
  for (const auto& [name, fns] : idx.functions_by_name) {
    for (const FunctionSummary* f : fns) {
      if (is_worker_root(*f)) roots.push_back(f);
    }
  }
  if (!roots.empty()) {
    for (const FunctionSummary* fn : cg.reachable(roots)) {
      // A body that takes a lock is treated as guarded wholesale — the
      // indexer has no statement-level scoping, so the rule errs toward
      // trusting visible synchronization.
      if (fn->has_lock) continue;
      for (const WriteSite& w : fn->writes) {
        if (w.member_access) continue;
        if (fn->locals.count(w.name) > 0) continue;
        const GlobalVar* g =
            resolve_global(idx, w.name, w.qualifier, *fn);
        if (g == nullptr) continue;
        if (g->is_thread_local || g->is_atomic || g->is_const ||
            g->is_sync) {
          continue;
        }
        out->push_back(
            {fn->file, w.line, "worker-shared-state", Severity::kError,
             "write to shared " +
                 std::string(g->owner.empty() ? "global" : "static") +
                 " '" + w.name + "' (declared at " +
                 where(g->file, g->line) + ") from '" + fn->qualified +
                 "', which runs on exp::run_sweep worker threads; make "
                 "it thread_local, std::atomic, or mutex-guarded, or "
                 "scope the state per run",
             g->file, g->line});
      }
    }
  }

  // Binding-protocol checks for thread_local pointer statics. These are
  // not reachability-gated: the hazard is per-object lifetime, not
  // which thread pool touches it first.
  //
  // (a) Unconditional unbind: `X = nullptr;` without an `X == this`
  //     guard in the same body. If another instance rebound X since,
  //     this write silently disables *that* instance (the PR 4
  //     PacketTracer isolation bug).
  for (const TokenCache::FileData* fd : idx.files) {
    for (const FunctionSummary& fn : fd->summary.functions) {
      for (const WriteSite& w : fn.writes) {
        if (!w.null_assign || w.member_access) continue;
        if (fn.locals.count(w.name) > 0) continue;
        if (fn.self_guarded.count(w.name) > 0) continue;
        const GlobalVar* g = resolve_global(idx, w.name, w.qualifier, fn);
        if (g == nullptr || !g->is_thread_local || !g->is_pointer) {
          continue;
        }
        out->push_back(
            {fn.file, w.line, "worker-shared-state", Severity::kError,
             "unconditional unbind of thread_local binding '" + w.name +
                 "' (declared at " + where(g->file, g->line) + ") in '" +
                 fn.qualified +
                 "': another instance may own the binding by now — guard "
                 "the reset with `if (" +
                 w.name + " == this)`",
             g->file, g->line});
      }
    }
  }

  // (b) Missing destructor clear: a class installs itself into a
  //     thread_local pointer static (`X = this`) but no destructor ever
  //     resets X, so the binding dangles past the object's lifetime
  //     (the PR 5 audit/telemetry bug).
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [name, globals] : idx.globals_by_name) {
    for (const GlobalVar* g : globals) {
      if (!g->is_thread_local || !g->is_pointer || g->owner.empty()) {
        continue;
      }
      if (reported.count({g->owner, g->name}) > 0) continue;
      bool installed = false;
      bool cleared = false;
      for (const auto& [fname, fns] : idx.functions_by_name) {
        (void)fname;
        for (const FunctionSummary* fn : fns) {
          if (fn->owner_class != g->owner) continue;
          const bool is_dtor = !fn->name.empty() && fn->name[0] == '~';
          for (const WriteSite& w : fn->writes) {
            if (w.name != g->name || w.member_access) continue;
            if (w.this_assign && !is_dtor) installed = true;
            if (is_dtor) cleared = true;
          }
        }
      }
      if (installed && !cleared) {
        reported.insert({g->owner, g->name});
        out->push_back(
            {g->file, g->line, "worker-shared-state", Severity::kError,
             "'" + g->owner + "' installs itself into thread_local "
             "binding '" + g->name +
                 "' but no destructor clears it; the binding dangles "
                 "after the object dies — add `if (" +
                 g->name + " == this) " + g->name + " = nullptr;` to ~" +
                 g->owner + "()",
             g->file, g->line});
      }
    }
  }
}

// ---- R10: unordered-taint ---------------------------------------------

struct Taint {
  /// var -> the unordered container it derives from.
  std::map<std::string, const ContainerDecl*> vars;
  /// non-null when some return statement is tainted.
  const ContainerDecl* returns = nullptr;
};

void check_unordered_taint(const Index& idx,
                           std::vector<Finding>* out) {
  std::map<const FunctionSummary*, Taint> state;

  // Seeds: loop variables of (and variables written inside) a range-for
  // over an unordered container.
  for (const TokenCache::FileData* fd : idx.files) {
    for (const FunctionSummary& fn : fd->summary.functions) {
      for (const IterLoop& loop : fn.iter_loops) {
        const ContainerDecl* cd =
            resolve_container(idx, loop.container, fn);
        if (cd == nullptr || !cd->unordered) continue;
        Taint& t = state[&fn];
        for (const std::string& w : loop.writes) {
          t.vars.emplace(w, cd);
        }
      }
    }
  }

  // Fixpoint over assignment, return, and call edges. Taint only grows,
  // so the loop terminates; the bound is a safety net for cycles.
  auto returns_taint = [&](const std::string& callee_name,
                           const FunctionSummary& caller)
      -> const ContainerDecl* {
    for (const FunctionSummary* callee :
         resolve_function(idx, callee_name, caller.file)) {
      const auto it = state.find(callee);
      if (it != state.end() && it->second.returns != nullptr) {
        return it->second.returns;
      }
    }
    return nullptr;
  };

  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    for (const TokenCache::FileData* fd : idx.files) {
      for (const FunctionSummary& fn : fd->summary.functions) {
        Taint& t = state[&fn];
        // Intra-function: assignments whose RHS mentions a tainted var
        // or a tainted-returning call.
        for (const AssignFact& a : fn.assigns) {
          if (t.vars.count(a.dst) > 0) continue;
          const ContainerDecl* origin = nullptr;
          for (const std::string& id : a.rhs_idents) {
            const auto it = t.vars.find(id);
            if (it != t.vars.end()) {
              origin = it->second;
              break;
            }
          }
          for (std::size_t i = 0;
               origin == nullptr && i < a.rhs_calls.size(); ++i) {
            origin = returns_taint(a.rhs_calls[i], fn);
          }
          if (origin != nullptr) {
            t.vars.emplace(a.dst, origin);
            changed = true;
          }
        }
        // Returns.
        if (t.returns == nullptr) {
          for (const ReturnFact& r : fn.returns) {
            const ContainerDecl* origin = nullptr;
            for (const std::string& id : r.idents) {
              const auto it = t.vars.find(id);
              if (it != t.vars.end()) {
                origin = it->second;
                break;
              }
            }
            for (std::size_t i = 0;
                 origin == nullptr && i < r.calls.size(); ++i) {
              origin = returns_taint(r.calls[i], fn);
            }
            if (origin != nullptr) {
              t.returns = origin;
              changed = true;
              break;
            }
          }
        }
        // Call edges: a tainted argument taints the callee's
        // parameters (conservatively: all of them — the indexer does
        // not track argument positions through nested expressions).
        for (const CallSite& cs : fn.calls) {
          const ContainerDecl* origin = nullptr;
          for (const std::string& arg : cs.args) {
            const auto it = t.vars.find(arg);
            if (it != t.vars.end()) {
              origin = it->second;
              break;
            }
          }
          if (origin == nullptr) continue;
          for (const FunctionSummary* callee :
               resolve_function(idx, cs.name, fn.file)) {
            Taint& ct = state[callee];
            for (const std::string& p : callee->params) {
              if (ct.vars.emplace(p, origin).second) changed = true;
            }
          }
        }
      }
    }
    if (!changed) break;
  }

  // Sinks: any call to an export sink with a tainted argument (or
  // tainted receiver — the indexer records both in args).
  std::set<std::pair<const FunctionSummary*, int>> seen;
  for (const TokenCache::FileData* fd : idx.files) {
    for (const FunctionSummary& fn : fd->summary.functions) {
      const auto sit = state.find(&fn);
      if (sit == state.end() || sit->second.vars.empty()) continue;
      for (const CallSite& cs : fn.calls) {
        if (!is_export_sink(cs.name)) continue;
        const ContainerDecl* origin = nullptr;
        for (const std::string& arg : cs.args) {
          const auto it = sit->second.vars.find(arg);
          if (it != sit->second.vars.end()) {
            origin = it->second;
            break;
          }
        }
        if (origin == nullptr) continue;
        if (!seen.insert({&fn, cs.line}).second) continue;
        out->push_back(
            {fn.file, cs.line, "unordered-taint", Severity::kError,
             "value derived from iterating unordered container '" +
                 origin->name + "' (declared at " +
                 where(origin->file, origin->line) +
                 ") reaches export sink '" + cs.name +
                 "' — iteration order is unspecified, so exported bytes "
                 "can differ between runs; use std::map/std::set or "
                 "sort before exporting",
             origin->file, origin->line});
      }
    }
  }
}

// ---- R11: hotpath-alloc -----------------------------------------------

void check_hotpath_allocs(const Index& idx, const CallGraph& cg,
                          int depth, std::vector<Finding>* out) {
  std::vector<const FunctionSummary*> roots;
  for (const TokenCache::FileData* fd : idx.files) {
    for (const FunctionSummary& fn : fd->summary.functions) {
      if (fn.has_prof_scope) roots.push_back(&fn);
    }
  }
  if (roots.empty()) return;
  for (const auto& [fn, d] : cg.within_depth(roots, depth)) {
    for (const AllocSite& a : fn->allocs) {
      const std::string how =
          d == 0 ? "inside the HVC_PROF_SCOPE function '" + fn->qualified +
                       "'"
                 : "in '" + fn->qualified + "', called from a "
                   "HVC_PROF_SCOPE function (" +
                       std::to_string(d) + " call-edge" +
                       (d == 1 ? "" : "s") + " away)";
      out->push_back(
          {fn->file, a.line, "hotpath-alloc", Severity::kError,
           "allocation '" + a.what + "' " + how +
               ": profiled hot paths must not allocate or grow "
               "containers (ROADMAP item 1 pools this memory); "
               "preallocate, pool, or allow(hotpath-alloc) with a "
               "justification",
           fn->file, fn->line_begin});
    }
  }
}

}  // namespace

std::vector<Finding> run_semantic_rules(const Index& idx,
                                        const SemanticOptions& opts) {
  std::vector<Finding> out;
  const CallGraph cg(idx);
  check_worker_races(idx, cg, &out);
  check_unordered_taint(idx, &out);
  check_hotpath_allocs(idx, cg, opts.hotpath_depth, &out);
  return out;
}

// ---- --fix ------------------------------------------------------------

namespace {

std::string raw_line(const std::string& text, int line) {
  std::size_t pos = 0;
  for (int i = 1; i < line && pos != std::string::npos; ++i) {
    pos = text.find('\n', pos);
    if (pos != std::string::npos) ++pos;
  }
  if (pos == std::string::npos) return "";
  std::size_t end = text.find('\n', pos);
  if (end == std::string::npos) end = text.size();
  return text.substr(pos, end - pos);
}

std::string rewrite_unordered(const std::string& line) {
  std::string out = line;
  for (const auto& [from, to] :
       {std::pair<std::string, std::string>{"unordered_map", "map"},
        std::pair<std::string, std::string>{"unordered_set", "set"}}) {
    std::size_t at = 0;
    while ((at = out.find(from, at)) != std::string::npos) {
      const char before = at > 0 ? out[at - 1] : '\0';
      const char after = at + from.size() < out.size()
                             ? out[at + from.size()]
                             : '\0';
      const bool b_word =
          std::isalnum(static_cast<unsigned char>(before)) != 0 ||
          before == '_';
      const bool a_word =
          std::isalnum(static_cast<unsigned char>(after)) != 0 ||
          after == '_';
      if (!b_word && !a_word) {
        out.replace(at, from.size(), to);
        at += to.size();
      } else {
        at += from.size();
      }
    }
  }
  return out;
}

}  // namespace

std::vector<FixEdit> propose_fixes(const std::vector<Finding>& findings,
                                   TokenCache& cache) {
  std::set<std::pair<std::string, int>> sites;
  for (const Finding& f : findings) {
    if (f.rule == "unordered-taint" && !f.origin_file.empty()) {
      sites.insert({f.origin_file, f.origin_line});
    } else if (f.rule == "unordered-container") {
      sites.insert({f.file, f.line});
    }
  }
  std::vector<FixEdit> out;
  for (const auto& [file, line] : sites) {
    const TokenCache::FileData& fd = cache.get(file);
    if (!fd.readable) continue;
    const std::string before = raw_line(fd.text, line);
    const std::string after = rewrite_unordered(before);
    if (after != before) out.push_back({file, line, before, after});
  }
  std::sort(out.begin(), out.end(),
            [](const FixEdit& a, const FixEdit& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  return out;
}

std::string to_unified_diff(const std::vector<FixEdit>& edits) {
  std::string out;
  std::string current_file;
  for (const FixEdit& e : edits) {
    if (e.file != current_file) {
      current_file = e.file;
      out += "--- a/" + e.file + "\n+++ b/" + e.file + "\n";
    }
    out += "@@ -" + std::to_string(e.line) + ",1 +" +
           std::to_string(e.line) + ",1 @@\n-" + e.before + "\n+" +
           e.after + "\n";
  }
  return out;
}

int apply_fixes(const std::vector<FixEdit>& edits) {
  std::map<std::string, std::vector<const FixEdit*>> by_file;
  for (const FixEdit& e : edits) by_file[e.file].push_back(&e);
  int files_rewritten = 0;
  for (const auto& [file, file_edits] : by_file) {
    std::ifstream in(file, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    in.close();

    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      std::size_t end = text.find('\n', pos);
      if (end == std::string::npos) {
        if (pos < text.size()) lines.push_back(text.substr(pos));
        break;
      }
      lines.push_back(text.substr(pos, end - pos));
      pos = end + 1;
    }
    bool changed = false;
    for (const FixEdit* e : file_edits) {
      const auto i = static_cast<std::size_t>(e->line - 1);
      if (i < lines.size() && lines[i] == e->before) {
        lines[i] = e->after;
        changed = true;
      }
    }
    if (!changed) continue;
    std::ofstream outf(file, std::ios::binary);
    for (const auto& l : lines) outf << l << "\n";
    ++files_rewritten;
  }
  return files_rewritten;
}

}  // namespace hvc::lint
