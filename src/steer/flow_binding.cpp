#include "steer/flow_binding.hpp"

namespace hvc::steer {

Decision FlowBindingPolicy::steer(const net::Packet& pkt,
                                  std::span<const ChannelView> channels,
                                  sim::Time /*now*/) {
  if (channels.size() < 2) return {0, {}, "flow-binding:single-channel"};

  // Identify the low-latency channel once per decision (cheap scan).
  std::size_t fast = 0;
  for (std::size_t i = 1; i < channels.size(); ++i) {
    if (channels[i].base_owd < channels[fast].base_owd) fast = i;
  }
  const std::size_t wide = fast == 0 ? 1 : 0;

  // Keep the table bounded for very long experiment runs (bindings of
  // finished flows are simply re-derived if a flow id ever recurs).
  if (flows_.size() > 16384) flows_.clear();
  auto [fs_ptr, inserted] = flows_.try_emplace(pkt.flow);
  FlowState& fs = *fs_ptr;
  if (inserted) {
    // Bind at first sight, from the flow's declared intent.
    fs.channel = pkt.flow_priority <= cfg_.latency_sensitive_max_priority
                     ? fast
                     : wide;
  }

  // IANS-style demand escape hatch: a "latency sensitive" flow that turns
  // out to be big is re-bound to the wide channel (whole-flow move, still
  // flow granularity — never per-packet).
  bool rebound = false;
  if (cfg_.max_bytes_on_fast_channel > 0 && fs.channel == fast) {
    fs.bytes_seen += pkt.size_bytes;
    if (fs.bytes_seen > cfg_.max_bytes_on_fast_channel) {
      fs.channel = wide;
      rebound = true;
    }
  }
  // A down bound channel is detoured, not re-bound: the binding is the
  // flow's steady-state home and it returns there when the outage ends.
  if (channels[fs.channel].down) {
    return {first_up_channel(channels), {}, "flow-binding:failover"};
  }
  const char* reason = rebound            ? "flow-binding:rebound-wide"
                       : fs.channel == fast ? "flow-binding:bound-fast"
                                            : "flow-binding:bound-wide";
  return {fs.channel, {}, reason};
}

}  // namespace hvc::steer
