// Shared helpers for the benchmark harness: table printing, the paper's
// standard experiment parameters, and the ObsSession wrapper every bench
// binary uses to emit its run manifest (and, when HVC_TRACE is set, the
// packet-lifecycle trace exports).
//
// Host time comes exclusively from obs::prof::now_ns() — the sanctioned
// clock island — so this header needs no wallclock lint carve-out. The
// wall_time_ms it produces is a diagnostic: manifests are not
// byte-compared and no simulation state derives from it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/tracer.hpp"
#include "sim/stats.hpp"

namespace hvc::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Print a CDF at fixed probability grid points (paper-style series).
inline void print_cdf(const std::string& label, const sim::Summary& s,
                      int prec = 1) {
  std::printf("%s CDF:", label.c_str());
  for (const double p : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    std::printf("  p%.0f=%.*f", p, prec, s.percentile(p));
  }
  std::printf("\n");
}

/// Locate a checked-in scenario/sweep file. Bench binaries may run from
/// any directory: try the path as given, walk up (../, ../../ — covers
/// repo root, build/, build/bench/), then fall back to the source tree's
/// absolute path baked in at configure time. Empty string when none
/// exists.
inline std::string find_scenario(const std::string& relative) {
  for (const char* up : {"", "../", "../../"}) {
    const std::string candidate = std::string(up) + relative;
    if (std::ifstream(candidate).good()) return candidate;
  }
#ifdef HVC_SOURCE_DIR
  const std::string candidate = std::string(HVC_SOURCE_DIR) + "/" + relative;
  if (std::ifstream(candidate).good()) return candidate;
#endif
  return {};
}

/// Where generated bench artifacts (manifests, traces, result files) go:
/// bench/out/<file>, created on demand so runs never litter the repo
/// root (the directory is gitignored). Falls back to the CWD when the
/// directory cannot be created.
inline std::string out_path(const std::string& file) {
  std::error_code ec;
  std::filesystem::create_directories("bench/out", ec);
  return ec ? file : "bench/out/" + file;
}

/// One bench run's observability session. Construct at the top of main():
///
///   hvc::bench::ObsSession obs("fig2_video_steering");
///   obs.set_seed(2023);
///   obs.param("duration_s", "30");
///
/// On destruction (or an explicit finish()) it writes
/// `<name>.manifest.json` — seed, params, wall time, trace-event count and
/// a flattened MetricsRegistry snapshot. When the HVC_TRACE environment
/// variable is set (any value but "0"), the packet tracer is enabled for
/// the whole run and `<name>.trace.jsonl` + `<name>.trace.json` (Chrome
/// trace_event, loads in Perfetto) are written too. When HVC_PROF is set
/// (same convention), the hot-path profiler runs for the whole bench and
/// its totals land in the manifest as prof.* metrics.
class ObsSession {
 public:
  explicit ObsSession(std::string name) : name_(std::move(name)) {
    tracing_ = env_flag("HVC_TRACE");
    if (tracing_) obs::PacketTracer::instance().enable();
    profiling_ = env_flag("HVC_PROF");
    if (profiling_) {
      obs::prof::reset();
      obs::prof::enable();
    }
    obs::MetricsRegistry::global().reset_values();
    start_ns_ = obs::prof::now_ns();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() { finish(); }

  void set_seed(std::uint64_t seed) { manifest_.seed = seed; }
  void param(std::string key, std::string value) {
    manifest_.add_param(std::move(key), std::move(value));
  }

  [[nodiscard]] bool tracing() const { return tracing_; }

  /// Write the manifest (and trace exports when tracing). Idempotent;
  /// called automatically from the destructor.
  void finish() {
    if (finished_) return;
    finished_ = true;

    manifest_.name = name_;
    manifest_.wall_time_ms =
        static_cast<double>(obs::prof::now_ns() - start_ns_) * 1e-6;

    if (profiling_) {
      obs::prof::disable();
      obs::prof::fold_into(obs::MetricsRegistry::global());
    }

    auto& tracer = obs::PacketTracer::instance();
    manifest_.trace_events = tracer.total_recorded();
    manifest_.capture_metrics(obs::MetricsRegistry::global());

    const std::string manifest_path = out_path(name_ + ".manifest.json");
    if (!manifest_.write(manifest_path)) {
      std::fprintf(stderr, "[obs] failed to write %s\n",
                   manifest_path.c_str());
    }

    if (tracing_) {
      const std::string trace_prefix = out_path(name_);
      write_file(trace_prefix + ".trace.jsonl", tracer.to_jsonl());
      write_file(trace_prefix + ".trace.json", tracer.to_chrome_trace());
      tracer.disable();
      std::printf(
          "[obs] %s: %llu events (%zu retained) -> %s.trace.jsonl, "
          "%s.trace.json\n",
          name_.c_str(),
          static_cast<unsigned long long>(manifest_.trace_events),
          tracer.size(), trace_prefix.c_str(), trace_prefix.c_str());
    }
    std::printf("[obs] %s: manifest %s (%.0f ms, %zu metrics)\n",
                name_.c_str(), manifest_path.c_str(),
                manifest_.wall_time_ms, manifest_.metrics.size());
  }

 private:
  static bool env_flag(const char* name) {
    const char* env = std::getenv(name);
    return env != nullptr && env[0] != '\0' && std::string(env) != "0";
  }

  static void write_file(const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[obs] failed to write %s\n", path.c_str());
      return;
    }
    out << body;
  }

  std::string name_;
  bool tracing_ = false;
  bool profiling_ = false;
  bool finished_ = false;
  std::uint64_t start_ns_ = 0;
  obs::RunManifest manifest_;
};

}  // namespace hvc::bench
