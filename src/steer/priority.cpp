#include "steer/priority.hpp"

namespace hvc::steer {

std::size_t MessagePriorityPolicy::fast_channel(
    std::span<const ChannelView> channels) const {
  if (cfg_.fast_channel != SIZE_MAX && cfg_.fast_channel < channels.size() &&
      !channels[cfg_.fast_channel].down) {
    return cfg_.fast_channel;
  }
  // Lowest base delay wins; ties (e.g. TSN and best-effort slices of one
  // Wi-Fi medium) break toward the reliable/deterministic channel. A down
  // channel cannot be "fast" — skip it so acceleration fails over to the
  // next-best surviving channel.
  std::size_t best = first_up_channel(channels);
  for (std::size_t i = best + 1; i < channels.size(); ++i) {
    if (channels[i].down) continue;
    if (channels[i].base_owd < channels[best].base_owd ||
        (channels[i].base_owd == channels[best].base_owd &&
         channels[i].reliable && !channels[best].reliable)) {
      best = i;
    }
  }
  return best;
}

Decision MessagePriorityPolicy::steer(const net::Packet& pkt,
                                      std::span<const ChannelView> channels,
                                      sim::Time /*now*/) {
  if (channels.size() < 2) return {0, {}, "msg-priority:single-channel"};
  // The "default" half of every accelerate-or-not decision below; during
  // a channel-0 outage it fails over to the first surviving channel.
  const bool primary_down = channels[0].down;
  const std::size_t dflt = primary_down ? first_up_channel(channels) : 0;
  const std::size_t fast = fast_channel(channels);
  if (fast == dflt) {
    return {dflt, {},
            primary_down ? "msg-priority:failover"
                         : "msg-priority:no-fast-channel"};
  }

  if (cfg_.use_flow_priority && pkt.flow_priority > 0) {
    return {dflt, {},
            primary_down ? "msg-priority:failover"
                         : "msg-priority:flow-priority"};
  }

  const ChannelView& fc = channels[fast];

  if (pkt.type != net::PacketType::kData && cfg_.accelerate_control) {
    if (fc.queue_fill() <= cfg_.max_queue_fill) {
      return {fast, {}, "msg-priority:control"};
    }
    return {dflt, {},
            primary_down ? "msg-priority:failover"
                         : "msg-priority:fast-full"};
  }

  if (!pkt.app.present) {
    // No message metadata: fall back to the application-agnostic heuristic.
    const char* reason = nullptr;
    const std::size_t ch =
        dchannel_choose(pkt, channels, cfg_.fallback, &reason);
    return {ch, {}, reason};
  }

  const bool important = pkt.app.priority <= cfg_.accelerate_max_priority;
  const bool tail =
      cfg_.accelerate_tail_bytes > 0 &&
      pkt.app.message_bytes > pkt.app.offset &&
      pkt.app.message_bytes - pkt.app.offset <= cfg_.accelerate_tail_bytes;

  if ((important || tail) && fc.queue_fill() <= cfg_.max_queue_fill) {
    return {fast, {},
            important ? "msg-priority:important" : "msg-priority:tail"};
  }
  return {dflt, {},
          primary_down ? "msg-priority:failover" : "msg-priority:default"};
}

}  // namespace hvc::steer
