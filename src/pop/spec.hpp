// Declarative population specs: who the 10⁴–10⁶ users of a city cell
// are, without materializing any of them.
//
// A PopulationSpec is a handful of numbers — a user count, an archetype
// mix (web / video / background), per-archetype behaviour knobs, an
// arrival/departure churn process, and a URLLC steering rule. The
// engine (engine.hpp) expands it lazily: user state is created on
// activation, every random draw comes from a counter-based splitmix64
// stream keyed by (scenario seed, user slot) (sim/seed.hpp), and no
// per-user JSON or trace file ever exists. The JSON surface lives in
// src/exp (the scenario schema's "city" block); this header is pure
// data plus a programmatic validate() backstop.
#pragma once

#include <cstdint>

namespace hvc::pop {

/// Archetype weights; normalized by the engine (must sum > 0).
struct ArchetypeMix {
  double web = 0.6;
  double video = 0.25;
  double background = 0.15;
};

/// Web archetype: think — load a multi-level page — think. A page is
/// 1..max_levels dependency levels of parallel object transfers; the
/// first object is the HTML document, the rest are heavy-tailed
/// subresources (Pareto, matching app/web/page.hpp's corpus shape).
struct WebArchetype {
  double think_time_s = 5.0;        ///< mean exponential think time
  int min_levels = 1;
  int max_levels = 3;
  int min_objects = 2;              ///< per level
  int max_objects = 8;
  double html_min_bytes = 8 * 1024;
  double html_max_bytes = 64 * 1024;
  double object_xm_bytes = 1024;        ///< Pareto scale
  double object_alpha = 1.3;            ///< Pareto shape
  double object_cap_bytes = 256 * 1024; ///< tail clamp
};

/// Video archetype: paced chunks of chunk_s seconds at `kbps` (±30%
/// per-chunk jitter). Chunk latency is measured against the pacing
/// deadline, so a congested cell shows backlog growth, not just slower
/// transfers.
struct VideoArchetype {
  double chunk_s = 1.0;
  double kbps = 1500;
};

/// Background archetype: sporadic heavy-tailed bulk transfers (syncs,
/// updates) — load without a latency SLO.
struct BackgroundArchetype {
  double period_s = 10.0;           ///< mean exponential inter-transfer gap
  double xm_bytes = 100 * 1024;     ///< Pareto scale
  double alpha = 1.5;
  double cap_bytes = 4e6;
};

/// Arrival/departure churn. arrival_rate_per_s > 0 adds Poisson
/// arrivals on top of the initial population; mean_session_s > 0 gives
/// every user an exponential session length (0 = nobody leaves).
struct ChurnSpec {
  double arrival_rate_per_s = 0.0;
  double mean_session_s = 0.0;
};

/// URLLC steering rule: small web objects (<= max_bytes) are admitted
/// to the scarce URLLC pool only when their predicted completion time
/// fits the delay bound; everything else — and every admission-test
/// failure ("spill") — goes to eMBB. The spill rate is the scarcity
/// evidence behind the capacity curve.
/// Defaults are chosen so the rule has a live operating point on the
/// default 2 Mbps pool: an empty pool completes a 4 KiB object in
/// ~16 ms + 5 ms RTT, inside the 30 ms bound, and a handful of
/// concurrent admissions pushes past it — so spill onset tracks load.
struct SteerSpec {
  bool enabled = true;
  double delay_bound_ms = 30.0;
  double max_bytes = 4 * 1024;
};

struct PopulationSpec {
  std::int64_t users = 1000;   ///< initial population at t = 0
  ArchetypeMix mix;
  WebArchetype web;
  VideoArchetype video;
  BackgroundArchetype background;
  ChurnSpec churn;
  SteerSpec steer;

  /// Throws std::invalid_argument on out-of-range values. The JSON
  /// parser in src/exp reports the same constraints with field paths;
  /// this is the backstop for programmatic construction.
  void validate() const;
};

}  // namespace hvc::pop
