// The cross-TU rule families that run on the semantic index (R9–R11).
// Per-file pattern rules (R1–R8) live in lint.cpp; everything here
// reasons over the whole-repo Index + CallGraph instead of one file at
// a time.
//
//   worker-shared-state  (R9)  static race detection: any write to a
//                              non-thread_local / non-atomic / non-
//                              mutex-guarded global or static from code
//                              reachable off exp::run_sweep's worker
//                              threads, plus two thread_local binding-
//                              protocol checks that rediscover the PR 4
//                              (unconditional unbind without an
//                              `== this` guard) and PR 5 (no destructor
//                              clears an installed binding) bugs.
//   unordered-taint      (R10) determinism dataflow: values produced by
//                              iterating an unordered_* container,
//                              tracked through assignments, returns and
//                              call edges, must never reach an export
//                              sink (to_jsonl/to_json/CSV writers/
//                              metric folds).
//   hotpath-alloc        (R11) allocation gating: no new/make_unique/
//                              make_shared/growth-capable container
//                              mutation inside a function that contains
//                              HVC_PROF_SCOPE, nor in anything it calls
//                              to the configured depth.
//
// All three are suppressible with the standard allow() grammar; the
// count-based Baseline (lint.hpp) lets them land strict without a
// flag-day sweep of legacy findings.
#pragma once

#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/lint.hpp"

namespace hvc::lint {

struct SemanticOptions {
  /// R11: how many call-edges away from a HVC_PROF_SCOPE function the
  /// allocation ban extends (0 = only the profiled function itself).
  int hotpath_depth = 1;
};

/// Run R9–R11 over the whole index. Findings are unsuppressed and
/// unsorted; the caller applies per-file allow() directives, baselines,
/// and ordering.
[[nodiscard]] std::vector<Finding> run_semantic_rules(
    const Index& idx, const SemanticOptions& opts = {});

// ---- `hvc_lint --fix`: mechanical rewrites ----------------------------

/// One single-line replacement. `before`/`after` are the full line text
/// without the trailing newline.
struct FixEdit {
  std::string file;
  int line = 0;
  std::string before;
  std::string after;
};

/// Propose unordered_map/unordered_set -> std::map/std::set rewrites at
/// the origin declarations of unordered-taint findings (and at the
/// flagged lines of per-file unordered-container findings). Only lines
/// whose rewrite actually changes text are returned; duplicates are
/// collapsed.
[[nodiscard]] std::vector<FixEdit> propose_fixes(
    const std::vector<Finding>& findings, TokenCache& cache);

/// Render edits as a unified diff (one hunk per line, grouped by file);
/// "" when there is nothing to fix.
[[nodiscard]] std::string to_unified_diff(const std::vector<FixEdit>& edits);

/// Apply edits in place. Returns the number of files rewritten.
int apply_fixes(const std::vector<FixEdit>& edits);

}  // namespace hvc::lint
