// Tests for the semantic half of the lint engine (src/lint): the
// dependency-free indexer (scrub/tokenize/summarize), the cross-TU
// symbol/call/include graphs, the three semantic rule families
// (R9 worker-shared-state, R10 unordered-taint, R11 hotpath-alloc),
// incremental --diff equivalence, SARIF shape, the findings baseline,
// and the --fix rewriter. Golden fixtures under tests/lint_fixtures/
// include reductions of the two historical bugs the engine must
// rediscover: the PR 4 tracer unconditional-unbind and the PR 5
// dangling thread_local binding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/index.hpp"
#include "lint/lint.hpp"
#include "lint/rules_semantic.hpp"
#include "obs/json.hpp"

namespace hvc {
namespace {

using lint::Finding;
using lint::Options;
using lint::Severity;

std::string fixture(const std::string& name) {
  return std::string(HVC_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::vector<Finding> of_rule(const std::vector<Finding>& findings,
                             const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

lint::FileSummary summarize_snippet(const std::string& src) {
  const lint::Scrubbed sc = lint::scrub(src);
  return lint::summarize("snippet.cpp", lint::tokenize(sc));
}

// ---- indexer ----------------------------------------------------------

TEST(LintIndex, ScrubStripsCommentsButKeepsPositions) {
  const std::string src = "int a; // trailing\n/* b */ int c;\n";
  const lint::Scrubbed sc = lint::scrub(src);
  EXPECT_EQ(sc.code.size(), src.size()) << "positions must be preserved";
  EXPECT_EQ(sc.code.find("trailing"), std::string::npos);
  EXPECT_NE(sc.code.find("int c;"), std::string::npos);
  EXPECT_NE(sc.comments.find("trailing"), std::string::npos);
}

TEST(LintIndex, TokenizeKeepsMultiCharOperatorsWhole) {
  const lint::Scrubbed sc = lint::scrub("a += ns::f(x) && y->z;");
  const auto toks = lint::tokenize(sc);
  std::vector<std::string> texts;
  for (const auto& t : toks) texts.push_back(t.text);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "+="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "&&"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
}

TEST(LintIndex, SummarizeShadowedGlobalStaysLocal) {
  const auto sum = summarize_snippet(
      "int g_val = 0;\n"
      "void writer() {\n"
      "  int g_val = 1;\n"
      "  g_val = 2;\n"
      "}\n");
  ASSERT_EQ(sum.functions.size(), 1u);
  EXPECT_EQ(sum.functions[0].name, "writer");
  EXPECT_EQ(sum.functions[0].locals.count("g_val"), 1u)
      << "the local shadow must be registered so writes to it are not "
         "mistaken for global writes";
  ASSERT_EQ(sum.globals.size(), 1u);
  EXPECT_EQ(sum.globals[0].line, 1);
}

TEST(LintIndex, SummarizeNestedBlocksDoNotLeakLocals) {
  // Regression: in_function() must see through nested statement blocks;
  // an early version treated everything inside `while {` as namespace
  // scope, leaking every local into the global table.
  const auto sum = summarize_snippet(
      "void chew(int n) {\n"
      "  while (n > 0) {\n"
      "    int inner = 0;\n"
      "    if (inner == 0) {\n"
      "      std::string deep;\n"
      "      deep = \"x\";\n"
      "    }\n"
      "  }\n"
      "  static const char* kTags[] = {\"a\", \"b\"};\n"
      "  int after = 1;\n"
      "  after = 2;\n"
      "}\n");
  ASSERT_EQ(sum.functions.size(), 1u);
  EXPECT_EQ(sum.functions[0].line_end, 12);
  for (const auto& g : sum.globals) {
    EXPECT_EQ(g.name, "kTags") << "only the static local is global-like";
  }
  EXPECT_EQ(sum.functions[0].locals.count("after"), 1u)
      << "declarations after a braced static initializer must still be "
         "attributed to the function";
}

TEST(LintIndex, SummarizeOperatorBodyIsAFunction) {
  const auto sum = summarize_snippet(
      "struct P { int v; };\n"
      "bool operator==(const P& a, const P& b) {\n"
      "  int diff = a.v - b.v;\n"
      "  return diff == 0;\n"
      "}\n");
  bool found = false;
  for (const auto& f : sum.functions) {
    if (f.name == "operator==") found = true;
  }
  EXPECT_TRUE(found);
  for (const auto& g : sum.globals) {
    EXPECT_NE(g.name, "diff")
        << "operator-body locals must not leak into the global table";
  }
}

TEST(LintIndex, SummarizeMacroHeavyTU) {
  const auto sum = summarize_snippet(
      "#define LOG(msg) log_sink(msg)\n"
      "#define HVC_REGISTER(n) register_thing(#n)\n"
      "HVC_REGISTER(widget);\n"
      "void real_fn() {\n"
      "  HVC_PROF_SCOPE(kHook);\n"
      "  LOG(\"x\");\n"
      "  int local = 3;\n"
      "  local = 4;\n"
      "}\n");
  bool found = false;
  for (const auto& f : sum.functions) {
    if (f.name == "real_fn") {
      found = true;
      EXPECT_TRUE(f.has_prof_scope);
      EXPECT_EQ(f.locals.count("local"), 1u);
    }
  }
  EXPECT_TRUE(found) << "macro invocations around a definition must not "
                        "swallow the function";
  EXPECT_TRUE(sum.globals.empty());
}

TEST(LintIndex, IncludeGraphCycleTerminatesAndAffectsDependents) {
  lint::TokenCache cache;
  std::vector<const lint::TokenCache::FileData*> files;
  for (const char* name :
       {"include_cycle/cyc_a.hpp", "include_cycle/cyc_b.hpp",
        "include_cycle/cyc_user.cpp"}) {
    files.push_back(&cache.get(fixture(name)));
  }
  const lint::IncludeGraph graph(files);
  const auto affected = graph.affected({"cyc_b.hpp"});
  // b itself, a (includes b), and the user TU (includes a) — and the
  // a <-> b cycle must not hang the reverse closure.
  auto contains = [&](const char* suffix) {
    for (const auto& p : affected) {
      if (p.size() > std::strlen(suffix) &&
          p.compare(p.size() - std::strlen(suffix), std::string::npos,
                    suffix) == 0) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains("/cyc_a.hpp"));
  EXPECT_TRUE(contains("/cyc_b.hpp"));
  EXPECT_TRUE(contains("/cyc_user.cpp"))
      << "changed=cyc_b.hpp must reach the user TU through the cycle";
}

TEST(LintIndex, TokenCacheMemoizesPerFileStreams) {
  lint::TokenCache cache;
  const std::string path = fixture("r10_direct.cpp");
  cache.get(path);
  cache.ensure_tokens(path);
  cache.ensure_tokens(path);
  cache.get(path);
  EXPECT_EQ(cache.stats().files_read, 1);
  EXPECT_EQ(cache.stats().tokenizations, 1)
      << "a file must be scrubbed+tokenized at most once per process";
  EXPECT_GE(cache.stats().memo_hits, 1);
}

TEST(LintIndex, SummaryJsonRoundTrip) {
  lint::TokenCache cache;
  const auto& fd = cache.ensure_tokens(fixture("r9_pr4_unbind.cpp"));
  const std::string json = lint::summary_to_json(fd);
  lint::TokenCache::FileData back;
  ASSERT_TRUE(lint::summary_from_json(json, &back));
  ASSERT_EQ(back.summary.functions.size(), fd.summary.functions.size());
  ASSERT_EQ(back.summary.globals.size(), fd.summary.globals.size());
  for (std::size_t i = 0; i < fd.summary.functions.size(); ++i) {
    const auto& a = fd.summary.functions[i];
    const auto& b = back.summary.functions[i];
    EXPECT_EQ(a.qualified, b.qualified);
    EXPECT_EQ(a.writes.size(), b.writes.size());
    EXPECT_EQ(a.self_guarded, b.self_guarded);
  }
  for (std::size_t i = 0; i < fd.summary.globals.size(); ++i) {
    EXPECT_EQ(fd.summary.globals[i].is_thread_local,
              back.summary.globals[i].is_thread_local);
    EXPECT_EQ(fd.summary.globals[i].is_pointer,
              back.summary.globals[i].is_pointer);
  }
}

TEST(LintIndex, DiskIndexCacheSkipsReTokenization) {
  const std::string cache_path = "lint_semantic_index_cache.tmp.json";
  {
    lint::TokenCache warm;
    warm.ensure_tokens(fixture("r9_plain_race.cpp"));
    warm.save_index_cache(cache_path);
  }
  lint::TokenCache cold;
  cold.load_index_cache(cache_path);
  const auto& fd = cold.get(fixture("r9_plain_race.cpp"));
  EXPECT_EQ(cold.stats().disk_cache_hits, 1);
  EXPECT_EQ(cold.stats().tokenizations, 0)
      << "an unchanged file restores its summary without tokenizing";
  ASSERT_FALSE(fd.summary.functions.empty());
  std::remove(cache_path.c_str());
}

// ---- R9: worker-shared-state ------------------------------------------

TEST(LintSemanticR9, PlainRaceOnWorkerReachableGlobal) {
  const auto all = lint::lint_tree({fixture("r9_plain_race.cpp")});
  const auto hits = of_rule(all, "worker-shared-state");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 8);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(LintSemanticR9, Pr4UnconditionalUnbindRediscovered) {
  const auto all = lint::lint_tree({fixture("r9_pr4_unbind.cpp")});
  const auto hits = of_rule(all, "worker-shared-state");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 18) << "the guarded reset in ~Fx9bTracer must "
                                 "not be flagged; the raw one must";
  EXPECT_NE(hits[0].message.find("unconditional unbind"),
            std::string::npos);
}

TEST(LintSemanticR9, Pr5MissingDestructorClearRediscovered) {
  const auto all = lint::lint_tree({fixture("r9_pr5_dangling.cpp")});
  const auto hits = of_rule(all, "worker-shared-state");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_NE(hits[0].message.find("no destructor clears"),
            std::string::npos);
}

TEST(LintSemanticR9, SynchronizedAndUnreachableWritesAreClean) {
  const auto all = lint::lint_tree({fixture("r9_clean_sync.cpp")});
  EXPECT_TRUE(of_rule(all, "worker-shared-state").empty())
      << lint::to_text(all);
}

TEST(LintSemanticR9, StaticLocalSharedAcrossShardWorkers) {
  const auto all = lint::lint_tree({fixture("r9_static_local.cpp")});
  const auto hits = of_rule(all, "worker-shared-state");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 7);
}

TEST(LintSemanticR9, JustifiedAllowSuppresses) {
  const auto all = lint::lint_tree({fixture("r9_allow.cpp")});
  EXPECT_TRUE(of_rule(all, "worker-shared-state").empty())
      << lint::to_text(all);
}

// ---- R10: unordered-taint ---------------------------------------------

TEST(LintSemanticR10, LoopVariableReachesSinkDirectly) {
  const auto all = lint::lint_tree({fixture("r10_direct.cpp")});
  const auto hits = of_rule(all, "unordered-taint");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 8);
  EXPECT_NE(hits[0].message.find("write_jsonl"), std::string::npos);
  EXPECT_EQ(hits[0].origin_line, 6) << "finding must carry the "
                                       "container declaration as origin";
}

TEST(LintSemanticR10, TaintSurvivesAssignmentChain) {
  const auto all = lint::lint_tree({fixture("r10_via_assign.cpp")});
  const auto hits = of_rule(all, "unordered-taint");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 13);
}

TEST(LintSemanticR10, TaintCrossesReturnEdge) {
  const auto all = lint::lint_tree({fixture("r10_via_return.cpp")});
  const auto hits = of_rule(all, "unordered-taint");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 16);
}

TEST(LintSemanticR10, TaintCrossesCallArgumentEdge) {
  const auto all = lint::lint_tree({fixture("r10_via_callarg.cpp")});
  const auto hits = of_rule(all, "unordered-taint");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 6) << "the sink fires inside the callee";
}

TEST(LintSemanticR10, OrderedContainersAreClean) {
  const auto all = lint::lint_tree({fixture("r10_ordered_clean.cpp")});
  EXPECT_TRUE(of_rule(all, "unordered-taint").empty())
      << lint::to_text(all);
}

TEST(LintSemanticR10, JustifiedAllowSuppresses) {
  const auto all = lint::lint_tree({fixture("r10_allow.cpp")});
  EXPECT_TRUE(of_rule(all, "unordered-taint").empty())
      << lint::to_text(all);
}

// ---- R11: hotpath-alloc -----------------------------------------------

TEST(LintSemanticR11, RawNewInProfiledFunction) {
  const auto all = lint::lint_tree({fixture("r11_new.cpp")});
  const auto hits = of_rule(all, "hotpath-alloc");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 6);
}

TEST(LintSemanticR11, MakeUniqueInProfiledFunction) {
  const auto all = lint::lint_tree({fixture("r11_make_unique.cpp")});
  const auto hits = of_rule(all, "hotpath-alloc");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 6);
}

TEST(LintSemanticR11, ContainerGrowthInProfiledFunction) {
  const auto all = lint::lint_tree({fixture("r11_growth.cpp")});
  const auto hits = of_rule(all, "hotpath-alloc");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 8);
}

TEST(LintSemanticR11, CalleeOneEdgeAwayIsCovered) {
  const auto all = lint::lint_tree({fixture("r11_callee.cpp")});
  const auto hits = of_rule(all, "hotpath-alloc");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(all);
  EXPECT_EQ(hits[0].line, 6);
  EXPECT_NE(hits[0].message.find("1 call-edge away"), std::string::npos);
}

TEST(LintSemanticR11, DepthBoundIsRespected) {
  const auto deep = lint::lint_tree({fixture("r11_depth2_clean.cpp")});
  EXPECT_TRUE(of_rule(deep, "hotpath-alloc").empty())
      << "two edges away is outside the default radius\n"
      << lint::to_text(deep);
  Options opts;
  opts.hotpath_depth = 2;
  const auto wide = lint::lint_tree({fixture("r11_depth2_clean.cpp")}, opts);
  const auto hits = of_rule(wide, "hotpath-alloc");
  ASSERT_EQ(hits.size(), 1u) << lint::to_text(wide);
  EXPECT_EQ(hits[0].line, 7);
}

TEST(LintSemanticR11, JustifiedAllowSuppresses) {
  const auto all = lint::lint_tree({fixture("r11_allow.cpp")});
  EXPECT_TRUE(of_rule(all, "hotpath-alloc").empty())
      << lint::to_text(all);
}

// ---- incremental (--diff) equivalence ---------------------------------

TEST(LintTreeIncremental, ChangedFileMatchesFullRunForThatFile) {
  const std::string root =
      std::string(HVC_SOURCE_DIR) + "/tests/lint_fixtures";
  const auto full = lint::lint_tree({root});
  Options inc;
  inc.changed_files = {"r10_via_assign.cpp"};
  const auto diff = lint::lint_tree({root}, inc);

  std::vector<Finding> expect;
  for (const auto& f : full) {
    if (f.file.find("r10_via_assign.cpp") != std::string::npos) {
      expect.push_back(f);
    }
  }
  ASSERT_FALSE(expect.empty());
  ASSERT_EQ(diff.size(), expect.size())
      << "full run:\n" << lint::to_text(expect)
      << "incremental:\n" << lint::to_text(diff);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(diff[i].file, expect[i].file);
    EXPECT_EQ(diff[i].line, expect[i].line);
    EXPECT_EQ(diff[i].rule, expect[i].rule);
  }
}

// ---- SARIF ------------------------------------------------------------

TEST(LintSarif, OutputValidatesAgainst210Shape) {
  const auto all =
      lint::lint_tree({std::string(HVC_SOURCE_DIR) + "/tests/lint_fixtures"});
  ASSERT_FALSE(all.empty());
  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(lint::to_sarif(all), &doc));
  ASSERT_TRUE(doc.is_object());
  const auto* schema = doc.find("$schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_NE(schema->str.find("sarif-2.1.0"), std::string::npos);
  const auto* version = doc.find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->str, "2.1.0");
  const auto* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->array.size(), 1u);
  const auto& run = runs->array[0];
  const auto* tool = run.find("tool");
  ASSERT_NE(tool, nullptr);
  const auto* driver = tool->find("driver");
  ASSERT_NE(driver, nullptr);
  const auto* name = driver->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->str, "hvc_lint");
  const auto* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_GE(rules->array.size(), 11u) << "R1-R11 must all be declared";
  const auto* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), all.size());
  for (const auto& r : results->array) {
    ASSERT_NE(r.find("ruleId"), nullptr);
    ASSERT_NE(r.find("level"), nullptr);
    const auto* msg = r.find("message");
    ASSERT_NE(msg, nullptr);
    ASSERT_NE(msg->find("text"), nullptr);
    const auto* locs = r.find("locations");
    ASSERT_NE(locs, nullptr);
    ASSERT_FALSE(locs->array.empty());
    const auto* phys = locs->array[0].find("physicalLocation");
    ASSERT_NE(phys, nullptr);
    const auto* art = phys->find("artifactLocation");
    ASSERT_NE(art, nullptr);
    ASSERT_NE(art->find("uri"), nullptr);
    const auto* region = phys->find("region");
    ASSERT_NE(region, nullptr);
    const auto* start = region->find("startLine");
    ASSERT_NE(start, nullptr);
    EXPECT_GE(start->num, 1.0);
  }
}

// ---- baseline ---------------------------------------------------------

TEST(LintBaseline, RoundTripAndApplyConsumesCounts) {
  const auto all = lint::lint_tree({fixture("r9_plain_race.cpp")});
  ASSERT_FALSE(all.empty());
  const lint::Baseline base = lint::baseline_from_findings(all);
  lint::Baseline back;
  ASSERT_TRUE(lint::baseline_from_json(lint::baseline_to_json(base), &back));
  EXPECT_EQ(back.counts.size(), base.counts.size());

  const auto survivors = lint::apply_baseline(all, back);
  EXPECT_TRUE(survivors.empty()) << lint::to_text(survivors);

  // A baseline for another file must not absorb these findings.
  lint::Baseline other;
  other.counts[{"somewhere/else.cpp", "worker-shared-state"}] = 5;
  const auto kept = lint::apply_baseline(all, other);
  EXPECT_EQ(kept.size(), all.size());
}

TEST(LintBaseline, MalformedJsonIsRejected) {
  lint::Baseline b;
  EXPECT_FALSE(lint::baseline_from_json("{}", &b));
  EXPECT_FALSE(lint::baseline_from_json(
      "{\"hvc-lint-baseline\":1,\"entries\":[{\"file\":\"\",\"rule\":"
      "\"wallclock\",\"count\":1}]}",
      &b));
  EXPECT_TRUE(lint::baseline_from_json(
      "{\"hvc-lint-baseline\":1,\"entries\":[]}", &b));
}

TEST(LintBaseline, CommittedBaselineMatchesCleanTree) {
  // The checked-in baseline must parse, and the real tree must be clean
  // under it. (The tree is in fact clean without it — lint_test asserts
  // that — so the committed file must stay empty; this test pins both.)
  const std::string path = std::string(HVC_SOURCE_DIR) + "/lint_baseline.json";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "lint_baseline.json must be checked in";
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  lint::Baseline base;
  ASSERT_TRUE(lint::baseline_from_json(text, &base));
  EXPECT_TRUE(base.counts.empty())
      << "new suppressions belong in allow() comments, not the baseline";
}

// ---- --fix ------------------------------------------------------------

TEST(LintFix, ProposesUnorderedToOrderedRewriteAsUnifiedDiff) {
  const auto all = lint::lint_tree({fixture("r10_via_assign.cpp")});
  ASSERT_FALSE(of_rule(all, "unordered-taint").empty());
  lint::TokenCache cache;
  const auto edits = lint::propose_fixes(all, cache);
  ASSERT_FALSE(edits.empty());
  bool rewrote = false;
  for (const auto& e : edits) {
    if (e.line == 6) {
      rewrote = true;
      EXPECT_NE(e.before.find("unordered_map"), std::string::npos);
      EXPECT_NE(e.after.find("std::map"), std::string::npos);
      EXPECT_EQ(e.after.find("unordered_map"), std::string::npos);
    }
  }
  EXPECT_TRUE(rewrote) << "the taint origin declaration must be rewritten";

  const std::string diff = lint::to_unified_diff(edits);
  EXPECT_NE(diff.find("--- a/"), std::string::npos);
  EXPECT_NE(diff.find("+++ b/"), std::string::npos);
  EXPECT_NE(diff.find("-  std::unordered_map"), std::string::npos);
  EXPECT_NE(diff.find("+  std::map"), std::string::npos);
}

}  // namespace
}  // namespace hvc
