#include "pop/spec.hpp"

#include <stdexcept>
#include <string>

namespace hvc::pop {

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    throw std::invalid_argument(std::string("PopulationSpec: ") + what);
  }
}

}  // namespace

void PopulationSpec::validate() const {
  require(users >= 0, "users must be >= 0");
  require(mix.web >= 0 && mix.video >= 0 && mix.background >= 0,
          "mix weights must be >= 0");
  require(mix.web + mix.video + mix.background > 0,
          "mix weights must sum > 0");
  require(web.think_time_s > 0, "web.think_time_s must be > 0");
  require(web.min_levels >= 1 && web.max_levels >= web.min_levels,
          "web levels must satisfy 1 <= min <= max");
  require(web.min_objects >= 1 && web.max_objects >= web.min_objects,
          "web objects must satisfy 1 <= min <= max");
  require(web.html_min_bytes > 0 && web.html_max_bytes >= web.html_min_bytes,
          "web html size range invalid");
  require(web.object_xm_bytes > 0 && web.object_alpha > 0 &&
              web.object_cap_bytes >= web.object_xm_bytes,
          "web object size distribution invalid");
  require(video.chunk_s > 0, "video.chunk_s must be > 0");
  require(video.kbps > 0, "video.kbps must be > 0");
  require(background.period_s > 0, "background.period_s must be > 0");
  require(background.xm_bytes > 0 && background.alpha > 0 &&
              background.cap_bytes >= background.xm_bytes,
          "background size distribution invalid");
  require(churn.arrival_rate_per_s >= 0,
          "churn.arrival_rate_per_s must be >= 0");
  require(churn.mean_session_s >= 0, "churn.mean_session_s must be >= 0");
  require(steer.delay_bound_ms > 0, "steer.delay_bound_ms must be > 0");
  require(steer.max_bytes >= 0, "steer.max_bytes must be >= 0");
}

}  // namespace hvc::pop
