// R10 seed: the loop variable of an unordered_map range-for flows
// straight into an export sink inside the loop body.
namespace fx10a {

void fx10a_dump() {
  std::unordered_map<int, int> m;
  for (const auto& [k, v] : m) {
    write_jsonl(k);
  }
}

}  // namespace fx10a
