file(REMOVE_RECURSE
  "libhvc_core.a"
)
