# Empty dependencies file for ablation_background_flows.
# This may be replaced when dependencies are built.
