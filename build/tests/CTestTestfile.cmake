# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/steer_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/quic_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/tsn_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
