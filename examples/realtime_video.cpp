// Real-time SVC video over heterogeneous channels — the paper's §3.3
// showcase. Streams 3-layer SVC video over a driving 5G trace + URLLC
// under a chosen steering policy and prints per-frame outcomes.
//
//   ./build/examples/realtime_video [policy] [trace]
//     policy: embb-only | dchannel | msg-priority (default)
//     trace:  lowband | mmwave (default)
#include <cstdio>
#include <cstring>
#include <string>

#include "core/scenario.hpp"
#include "trace/gen5g.hpp"

int main(int argc, char** argv) {
  using namespace hvc;
  const std::string policy = argc > 1 ? argv[1] : "msg-priority";
  const std::string trace_name = argc > 2 ? argv[2] : "mmwave";
  const auto profile = trace_name == "lowband"
                           ? trace::FiveGProfile::kLowbandDriving
                           : trace::FiveGProfile::kMmWaveDriving;

  std::printf("policy=%s trace=%s: 20 s of 3-layer SVC (12 Mbps, 30 fps)\n",
              policy.c_str(), trace::to_string(profile));

  auto cfg =
      core::ScenarioConfig::traced(profile, policy, sim::seconds(40), 42);
  core::Scenario sc(cfg);

  const auto flow = net::next_flow_id();
  app::video::VideoSender sender(sc.server(), flow, {});
  app::video::VideoReceiver receiver(sc.client(), flow, sender, {});

  // Print one line per 30 frames (1 s of video).
  receiver.set_on_frame([&](const app::video::FrameRecord& f) {
    if (f.frame % 30 != 0) return;
    std::printf("frame %4d%s: decoded %d/3 layers, ssim %.3f, latency "
                "%7.1f ms\n",
                f.frame, f.keyframe ? " (key)" : "      ", f.layers_decoded,
                f.ssim, sim::to_millis(f.latency));
  });

  sender.start(sim::seconds(20));
  sc.sim().run_until(sim::seconds(32));

  const auto& st = receiver.stats();
  std::printf("\n%lld frames decoded | latency p50 %.1f ms p95 %.1f ms | "
              "ssim mean %.3f | layer histogram [conceal/L0/L0-1/full] = "
              "%lld/%lld/%lld/%lld\n",
              static_cast<long long>(st.frames_decoded),
              st.latency_ms.percentile(50), st.latency_ms.percentile(95),
              st.ssim.mean(),
              static_cast<long long>(st.decoded_at_layer[0]),
              static_cast<long long>(st.decoded_at_layer[1]),
              static_cast<long long>(st.decoded_at_layer[2]),
              static_cast<long long>(st.decoded_at_layer[3]));
  std::printf("Try: ./realtime_video embb-only mmwave   (watch the tail!)\n");
  return 0;
}
