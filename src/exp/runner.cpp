#include "exp/runner.hpp"

#include <exception>

#include "app/web/page.hpp"
#include "channel/profile.hpp"
#include "exp/results.hpp"
#include "fault/fault.hpp"
#include "net/node.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "pop/engine.hpp"
#include "sim/units.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

namespace hvc::exp {

namespace {

sim::RateBps mbps_f(double m) {
  return static_cast<sim::RateBps>(m * 1e6 + 0.5);
}

trace::FiveGProfile parse_5g_profile(const std::string& name) {
  if (name == "lowband-stationary") {
    return trace::FiveGProfile::kLowbandStationary;
  }
  if (name == "lowband-driving") return trace::FiveGProfile::kLowbandDriving;
  return trace::FiveGProfile::kMmWaveDriving;  // validated by the parser
}

channel::ChannelProfile build_channel(const ChannelSpec& c,
                                      double scenario_duration_s,
                                      std::uint64_t scenario_seed) {
  const sim::Duration trace_duration =
      sim::seconds_f(c.duration_s >= 0 ? c.duration_s : scenario_duration_s);
  const std::uint64_t trace_seed =
      c.seed >= 0 ? static_cast<std::uint64_t>(c.seed) : scenario_seed;
  if (c.type == "5g") {
    return channel::embb_trace_profile(parse_5g_profile(c.profile),
                                       trace_duration, trace_seed);
  }
  if (c.type == "leo") return channel::leo_profile(trace_seed, trace_duration);
  // Fixed-characteristic channels: apply rtt/rate overrides on top of the
  // factory defaults (negative = keep the default).
  if (c.type == "urllc") {
    auto p = channel::urllc_profile();
    if (c.rtt_ms >= 0) return channel::urllc_profile(
        sim::milliseconds_f(c.rtt_ms),
        c.rate_mbps >= 0 ? mbps_f(c.rate_mbps) : sim::mbps(2));
    if (c.rate_mbps >= 0) {
      return channel::urllc_profile(sim::milliseconds(5),
                                    mbps_f(c.rate_mbps));
    }
    return p;
  }
  if (c.type == "embb") {
    if (c.rtt_ms >= 0 || c.rate_mbps >= 0) {
      return channel::embb_constant_profile(
          c.rtt_ms >= 0 ? sim::milliseconds_f(c.rtt_ms) : sim::milliseconds(50),
          c.rate_mbps >= 0 ? mbps_f(c.rate_mbps) : sim::mbps(60));
    }
    return channel::embb_constant_profile();
  }
  if (c.type == "tsn") {
    return channel::wifi_tsn_profile(
        c.rate_mbps >= 0 ? mbps_f(c.rate_mbps) : sim::mbps(4),
        c.rtt_ms >= 0 ? sim::milliseconds_f(c.rtt_ms) : sim::milliseconds(4));
  }
  if (c.type == "wifi") {
    return channel::wifi_contended_profile(
        c.rate_mbps >= 0 ? mbps_f(c.rate_mbps) : sim::mbps(120),
        c.rtt_ms >= 0 ? sim::milliseconds_f(c.rtt_ms) : sim::milliseconds(20));
  }
  if (c.type == "cisp") {
    return channel::cisp_profile(
        c.rtt_ms >= 0 ? sim::milliseconds_f(c.rtt_ms) : sim::milliseconds(8),
        c.rate_mbps >= 0 ? mbps_f(c.rate_mbps) : sim::mbps(10));
  }
  // "fiber" (the parser rejects anything else).
  return channel::fiber_profile(
      c.rtt_ms >= 0 ? sim::milliseconds_f(c.rtt_ms) : sim::milliseconds(40),
      c.rate_mbps >= 0 ? mbps_f(c.rate_mbps) : sim::mbps(500));
}

/// DChannelConfig from preset + per-knob overrides.
steer::DChannelConfig build_dchannel_config(const PolicySpec& p) {
  steer::DChannelConfig cfg = p.preset == "web-tuned"
                                  ? steer::DChannelConfig::web_tuned()
                                  : steer::DChannelConfig::aggressive();
  if (p.cost_factor >= 0) cfg.cost_factor = p.cost_factor;
  if (p.min_margin_ms >= 0) cfg.min_margin = sim::milliseconds_f(p.min_margin_ms);
  if (p.max_queue_fill >= 0) cfg.max_queue_fill = p.max_queue_fill;
  if (p.max_data_queue_fill >= 0) {
    cfg.max_data_queue_fill = p.max_data_queue_fill;
  }
  if (p.queue_risk >= 0) cfg.queue_risk = p.queue_risk;
  if (p.accelerate_control >= 0) {
    cfg.accelerate_control = p.accelerate_control != 0;
  }
  if (p.name == "dchannel+prio" || p.use_flow_priority > 0) {
    cfg.use_flow_priority = true;
  }
  if (p.use_flow_priority == 0) cfg.use_flow_priority = false;
  return cfg;
}

bool is_plain_named_policy(const PolicySpec& p) {
  return p.preset.empty() && p.cost_factor < 0 && p.min_margin_ms < 0 &&
         p.max_queue_fill < 0 && p.max_data_queue_fill < 0 &&
         p.queue_risk < 0 && p.accelerate_control < 0 &&
         p.use_flow_priority < 0;
}

core::PolicyFactory make_factory(const PolicySpec& p) {
  if (is_plain_named_policy(p)) return nullptr;  // core::make_policy(name)
  const steer::DChannelConfig cfg = build_dchannel_config(p);
  return [cfg] { return std::make_unique<steer::DChannelPolicy>(cfg); };
}

fault::FaultEvent build_fault(const FaultSpec& f, std::uint64_t scenario_seed,
                              std::size_t index) {
  fault::FaultEvent e;
  if (f.kind == "rate_cliff") {
    e.kind = fault::FaultKind::kRateCliff;
  } else if (f.kind == "ge_burst") {
    e.kind = fault::FaultKind::kGeBurst;
  } else if (f.kind == "delay_spike") {
    e.kind = fault::FaultKind::kDelaySpike;
  } else if (f.kind == "flap") {
    e.kind = fault::FaultKind::kFlap;
  } else {
    e.kind = fault::FaultKind::kOutage;  // parser guarantees the set
  }
  e.channel = static_cast<std::size_t>(f.channel);
  e.dir = f.direction == "down"  ? fault::FaultDir::kDownlink
          : f.direction == "up"  ? fault::FaultDir::kUplink
                                 : fault::FaultDir::kBoth;
  e.start = sim::seconds_f(f.start_s);
  e.duration = sim::seconds_f(f.duration_s);
  e.rate_scale = f.rate_scale;
  e.extra_delay = sim::milliseconds_f(f.extra_delay_ms);
  e.loss.ge_p_good_to_bad = f.p_good_to_bad;
  e.loss.ge_p_bad_to_good = f.p_bad_to_good;
  e.loss.ge_loss_in_bad = f.loss_in_bad;
  e.loss.ge_loss_in_good = f.loss_in_good;
  // seed = -1: ge_burst derives a per-event stream from the scenario
  // seed; flap stays strictly periodic (flap_seed 0 = no jitter).
  e.loss_seed = f.seed >= 0
                    ? static_cast<std::uint64_t>(f.seed)
                    : scenario_seed ^ (0x66b1u + static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL);
  e.flap_period = sim::seconds_f(f.period_s);
  e.flap_up_fraction = f.up_fraction;
  e.flap_seed = f.seed >= 0 ? static_cast<std::uint64_t>(f.seed) : 0;
  return e;
}

void put_summary(std::map<std::string, double>& m, const std::string& prefix,
                 const sim::Summary& s) {
  m[prefix + ".mean"] = s.mean();
  m[prefix + ".p5"] = s.percentile(5);
  m[prefix + ".p25"] = s.percentile(25);
  m[prefix + ".p50"] = s.percentile(50);
  m[prefix + ".p75"] = s.percentile(75);
  m[prefix + ".p90"] = s.percentile(90);
  m[prefix + ".p95"] = s.percentile(95);
  m[prefix + ".p99"] = s.percentile(99);
  m[prefix + ".min"] = s.min();
  m[prefix + ".max"] = s.max();
  m[prefix + ".count"] = static_cast<double>(s.count());
}

void run_workload(const ScenarioSpec& spec, const core::ScenarioConfig& cfg,
                  std::map<std::string, double>& m) {
  if (spec.workload == "bulk") {
    const double dur_s =
        spec.bulk.duration_s >= 0 ? spec.bulk.duration_s : spec.duration_s;
    const auto r = core::run_bulk(cfg, spec.cca, sim::seconds_f(dur_s));
    m["bulk.goodput_mbps"] = r.goodput_bps / 1e6;
    m["bulk.retransmissions"] = static_cast<double>(r.retransmissions);
    m["bulk.rto_count"] = static_cast<double>(r.rto_count);
    sim::Summary rtt;
    for (const auto& p : r.rtt_ms.points()) rtt.add(p.value);
    put_summary(m, "bulk.rtt_ms", rtt);
    for (std::size_t i = 0; i < r.data_packets_per_channel.size(); ++i) {
      m["bulk.channel" + std::to_string(i) + ".data_packets"] =
          static_cast<double>(r.data_packets_per_channel[i]);
    }
    if (!spec.faults.empty()) {
      m["fault.blackout_committed_bytes"] =
          static_cast<double>(r.fault_blackout_committed_bytes);
      m["fault.blackout_dropped_packets"] =
          static_cast<double>(r.fault_blackout_dropped_packets);
      // Time-to-recover per outage: gap between the outage clearing and
      // the first cumulative-ack progress after it.
      for (std::size_t i = 0; i < spec.faults.size(); ++i) {
        const auto& f = spec.faults[i];
        if (f.kind != "outage") continue;
        const sim::Time end =
            sim::seconds_f(f.start_s) + sim::seconds_f(f.duration_s);
        double at_end = 0.0;
        sim::Time recovered = sim::kTimeNever;
        for (const auto& p : r.acked_bytes.points()) {
          if (p.t <= end) {
            at_end = p.value;
          } else if (p.value > at_end) {
            recovered = p.t;
            break;
          }
        }
        m["fault.outage" + std::to_string(i) + ".time_to_recover_ms"] =
            recovered == sim::kTimeNever ? -1.0
                                         : sim::to_millis(recovered - end);
      }
    }
    return;
  }
  if (spec.workload == "video") {
    app::video::SvcConfig svc;
    svc.layer_bitrates.clear();
    for (const double kbps : spec.video.layer_kbps) {
      svc.layer_bitrates.push_back(
          static_cast<sim::RateBps>(kbps * 1000.0 + 0.5));
    }
    svc.fps = spec.video.fps;
    svc.keyframe_interval = spec.video.keyframe_interval;
    svc.seed = static_cast<std::uint64_t>(spec.video.encoder_seed);
    app::video::VideoReceiverConfig rx;
    rx.decode_wait = sim::milliseconds_f(spec.video.decode_wait_ms);
    rx.lookahead_frames = spec.video.lookahead_frames;
    rx.keyframe_interval = spec.video.keyframe_interval;
    rx.layers = static_cast<int>(spec.video.layer_kbps.size());
    rx.seed = static_cast<std::uint64_t>(spec.video.receiver_seed);
    const double dur_s =
        spec.video.duration_s >= 0 ? spec.video.duration_s : spec.duration_s;
    const auto r = core::run_video(cfg, svc, rx, sim::seconds_f(dur_s));
    put_summary(m, "video.latency_ms", r.stats.latency_ms);
    put_summary(m, "video.ssim", r.stats.ssim);
    m["video.frames_decoded"] = static_cast<double>(r.stats.frames_decoded);
    m["video.frames_concealed"] =
        static_cast<double>(r.stats.frames_concealed);
    for (std::size_t i = 0; i < r.stats.decoded_at_layer.size(); ++i) {
      m["video.decoded_at_layer" + std::to_string(i)] =
          static_cast<double>(r.stats.decoded_at_layer[i]);
    }
    return;
  }
  // web
  const auto corpus = app::web::generate_corpus(
      {.pages = spec.web.pages,
       .landing_fraction = spec.web.landing_fraction,
       .seed = static_cast<std::uint64_t>(spec.web.corpus_seed)});
  core::WebRunConfig web;
  web.loads_per_page = spec.web.loads_per_page;
  web.background_flows = spec.web.background_flows;
  web.bg_upload_bytes = spec.web.bg_upload_bytes;
  web.bg_download_bytes = spec.web.bg_download_bytes;
  web.bg_flow_priority = static_cast<std::uint8_t>(spec.web.bg_flow_priority);
  web.browser.transport.cca = spec.cca;
  web.per_load_timeout = sim::milliseconds_f(spec.web.per_load_timeout_s * 1000.0);
  const auto r = core::run_web(cfg, corpus, web);
  put_summary(m, "web.plt_ms", r.plt_ms);
  m["web.per_page_mean_ms"] = r.per_page_mean_ms.mean();
  m["web.timeouts"] = static_cast<double>(r.timeouts);
}

/// The city workload bypasses the packet-level core topology entirely:
/// the channel list configures pop::CellConfig (first "embb" = shared
/// cell, first "urllc" = scarce steering pool) and pop::run_city does
/// the rest on a flow-level model. Trace-driven channel types have no
/// fluid equivalent and are rejected.
void run_city_workload(const ScenarioSpec& spec,
                       std::map<std::string, double>& m) {
  pop::CityConfig cc;
  cc.population = spec.city.population;
  cc.seed = spec.seed;
  cc.duration = sim::seconds_f(spec.duration_s);
  cc.cell.has_urllc = false;
  bool saw_embb = false;
  for (const auto& c : spec.channels) {
    if (c.type == "embb" && !saw_embb) {
      saw_embb = true;
      if (c.rate_mbps >= 0) cc.cell.embb_rate_bps = c.rate_mbps * 1e6;
      if (c.rtt_ms >= 0) cc.cell.embb_rtt = sim::milliseconds_f(c.rtt_ms);
    } else if (c.type == "urllc" && !cc.cell.has_urllc) {
      cc.cell.has_urllc = true;
      if (c.rate_mbps >= 0) cc.cell.urllc_rate_bps = c.rate_mbps * 1e6;
      if (c.rtt_ms >= 0) cc.cell.urllc_rtt = sim::milliseconds_f(c.rtt_ms);
    } else if (c.type != "embb" && c.type != "urllc") {
      throw std::runtime_error(
          "city workload supports embb/urllc channels only (got '" + c.type +
          "')");
    }
  }
  if (!saw_embb) {
    throw std::runtime_error("city workload needs an embb channel");
  }
  // The policy axis maps onto the steering rule: "embb-only" = no URLLC
  // steering at all, anything else keeps the spec's admission rule.
  if (spec.down_policy.name == "embb-only") {
    cc.population.steer.enabled = false;
  }

  const pop::CityResult r = pop::run_city(cc);
  r.cohorts.export_metrics("city", &m);
  m["city.users"] = static_cast<double>(cc.population.users);
  m["city.arrivals"] = static_cast<double>(r.arrivals);
  m["city.departures"] = static_cast<double>(r.departures);
  m["city.peak_active"] = static_cast<double>(r.peak_active);
  m["city.pages"] = static_cast<double>(r.pages);
  m["city.chunks"] = static_cast<double>(r.chunks);
  m["city.bg_transfers"] = static_cast<double>(r.bg_transfers);
  m["city.urllc_admitted"] = static_cast<double>(r.urllc_admitted);
  m["city.urllc_spilled"] = static_cast<double>(r.urllc_spilled);
  const double steer_total =
      static_cast<double>(r.urllc_admitted + r.urllc_spilled);
  m["city.urllc_spill_rate"] =
      steer_total > 0 ? static_cast<double>(r.urllc_spilled) / steer_total
                      : 0.0;
  m["city.stats_bytes"] = static_cast<double>(r.cohorts.memory_bytes());
  m["city.events"] = static_cast<double>(r.events);
  // Exemplar accounting: proves retention cost is O(exemplars), not
  // O(pages) — span_bytes must stay flat as the population scales.
  if (const obs::SpanRecorder* sp = obs::SpanRecorder::active();
      sp != nullptr && sp->enabled()) {
    m["city.span_bytes"] = static_cast<double>(sp->span_bytes());
    m["city.spans_offered"] = static_cast<double>(sp->offered());
    m["city.spans_retained"] = static_cast<double>(sp->retained());
  }
}

}  // namespace

core::ScenarioConfig build_scenario_config(const ScenarioSpec& spec) {
  core::ScenarioConfig cfg;
  for (const auto& c : spec.channels) {
    cfg.channels.push_back(build_channel(c, spec.duration_s, spec.seed));
  }
  cfg.up_policy = spec.up_policy.name;
  cfg.down_policy = spec.down_policy.name;
  cfg.up_factory = make_factory(spec.up_policy);
  cfg.down_factory = make_factory(spec.down_policy);
  cfg.resequence_hold = sim::milliseconds_f(spec.resequence_hold_ms);
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    cfg.faults.events.push_back(build_fault(spec.faults[i], spec.seed, i));
  }
  return cfg;
}

RunResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, RunOptions{});
}

RunResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts) {
  RunResult result;
  result.name = spec.name;

  // The isolation contract (see header): everything the simulation can
  // touch through a process-global access path gets a per-run,
  // per-thread replacement for the duration of the run. The recorders
  // are enabled only *after* their scoped installers are in place —
  // enable() points the thread-local active() at the run-local object,
  // and the scope's destructor is what guarantees it never outlives it.
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry metrics_scope(registry);
  obs::PacketTracer tracer;  // default-constructed: disabled
  obs::ScopedPacketTracer tracer_scope(tracer);
  obs::TelemetrySampler sampler;
  obs::ScopedTelemetrySampler sampler_scope(sampler);
  obs::SteeringAuditLog audit;
  obs::ScopedSteeringAuditLog audit_scope(audit);
  obs::SpanRecorder spans;
  obs::ScopedSpanRecorder spans_scope(spans);
  net::IdScope id_scope;

  if (!opts.trace_path.empty()) tracer.enable();
  if (spec.spans.enabled) {
    obs::SpanConfig sc;
    sc.tail_quantile = spec.spans.tail_quantile;
    sc.tail_budget = spec.spans.tail_budget;
    sc.reservoir_budget = spec.spans.reservoir_budget;
    sc.reservoir_period = spec.spans.reservoir_period;
    sc.warmup = spec.spans.warmup;
    sc.seed = spec.seed;
    spans.enable(sc);
  }
  if (spec.telemetry.enabled) {
    obs::TelemetryConfig tc;
    tc.period = sim::milliseconds_f(spec.telemetry.period_ms);
    tc.max_samples_per_series =
        static_cast<std::size_t>(spec.telemetry.max_samples);
    tc.max_series = static_cast<std::size_t>(spec.telemetry.max_series);
    tc.groups = spec.telemetry.series;
    sampler.enable(tc);
    if (spec.telemetry.audit) {
      audit.enable(static_cast<std::size_t>(spec.telemetry.audit_capacity));
    }
  }

  // wall_ms is operator progress display only (hvc_sweep stderr ETA);
  // it is never written into any determinism-checked artifact (results
  // CSV/JSONL, telemetry, audit). obs::prof::now_ns() is the sanctioned
  // host-clock accessor, so no wallclock lint carve-out is needed.
  const std::uint64_t t0 = obs::prof::now_ns();
  try {
    if (spec.workload == "city") {
      run_city_workload(spec, result.metrics);
    } else {
      const core::ScenarioConfig cfg = build_scenario_config(spec);
      run_workload(spec, cfg, result.metrics);
    }
    result.obs = registry.snapshot();
  } catch (const std::exception& e) {
    result.metrics.clear();
    result.obs.clear();
    result.error = e.what();
  }
  result.wall_ms = static_cast<double>(obs::prof::now_ns() - t0) * 1e-6;

  if (result.error.empty()) {
    std::string prefix = !opts.out_prefix.empty() ? opts.out_prefix
                         : !spec.telemetry.out_prefix.empty()
                             ? spec.telemetry.out_prefix
                             : spec.name;
    if (opts.run_index >= 0) {
      prefix += ".run" + std::to_string(opts.run_index);
    }
    if (!opts.trace_path.empty()) {
      write_file(opts.trace_path, tracer.to_chrome_trace());
    }
    if (sampler.enabled()) {
      write_file(prefix + ".telemetry.jsonl", sampler.to_jsonl());
    }
    if (audit.enabled()) {
      write_file(prefix + ".audit.jsonl", audit.to_jsonl());
    }
    if (spans.enabled()) {
      write_file(prefix + ".spans.jsonl", spans.to_jsonl());
    }
  }
  return result;
}

}  // namespace hvc::exp
