#include <stdexcept>

#include "transport/bbr.hpp"
#include "transport/cca.hpp"
#include "transport/cubic.hpp"
#include "transport/hvc_cc.hpp"
#include "transport/vegas.hpp"
#include "transport/vivace.hpp"

namespace hvc::transport {

CcaPtr make_cca(const std::string& name) {
  if (name == "cubic") return std::make_unique<Cubic>();
  if (name == "bbr") return std::make_unique<Bbr>();
  if (name == "vegas") return std::make_unique<Vegas>();
  if (name == "vivace") return std::make_unique<Vivace>();
  if (name == "hvc") return std::make_unique<HvcAwareCc>();
  throw std::invalid_argument("unknown CCA: " + name);
}

}  // namespace hvc::transport
