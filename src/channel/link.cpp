#include "channel/link.hpp"

#include <algorithm>

#include "obs/prof.hpp"

namespace hvc::channel {

using net::PacketPtr;
using sim::Duration;
using sim::Time;

Link::Link(sim::Simulator& sim, LinkConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      loss_(cfg_.loss, sim::Rng(cfg_.loss_seed)) {
  avg_rate_bps_ = cfg_.capacity.average_rate_bps();
  auto& reg = obs::MetricsRegistry::current();
  const std::string prefix = "link." + cfg_.name + ".";
  m_delivered_ = &reg.counter(prefix + "delivered_packets");
  m_delivered_bytes_ = &reg.counter(prefix + "delivered_bytes");
  m_dropped_queue_ = &reg.counter(prefix + "dropped_queue");
  m_dropped_wire_ = &reg.counter(prefix + "dropped_wire");

  probes_.add("link", prefix + "queued_bytes",
              [this] { return static_cast<double>(queued_bytes_); });
  probes_.add("link", prefix + "dropped_packets", [this] {
    return static_cast<double>(stats_.dropped_queue_packets +
                               stats_.dropped_wire_packets);
  });
  const std::string ch_prefix = "channel." + cfg_.name + ".";
  // The same estimates steering policies read through ChannelView, so a
  // telemetry plot shows exactly what the policy was deciding on.
  probes_.add("channel", ch_prefix + "est_delay_ms", [this] {
    const sim::Duration d = estimated_delivery_delay(net::kMtuBytes);
    return d == sim::kTimeNever ? -1.0 : sim::to_millis(d);
  });
  probes_.add("channel", ch_prefix + "rate_mbps",
              [this] { return recent_delivery_rate_bps() / 1e6; });
  probes_.add("channel", ch_prefix + "loss_rate", [this] {
    const std::int64_t attempted =
        stats_.delivered_packets + stats_.dropped_wire_packets;
    return attempted <= 0 ? 0.0
                          : static_cast<double>(stats_.dropped_wire_packets) /
                                static_cast<double>(attempted);
  });
  // Fault state: 1 while a full outage is active, 0 otherwise. Sampled in
  // the "fault" telemetry group so blackout windows line up with the
  // queue/rate series above when reading a run's telemetry export.
  probes_.add("fault", prefix + "fault_down",
              [this] { return fault_down_ ? 1.0 : 0.0; });
}

Link::~Link() {
  m_delivered_->inc(stats_.delivered_packets);
  m_delivered_bytes_->inc(stats_.delivered_bytes);
  m_dropped_queue_->inc(stats_.dropped_queue_packets);
  m_dropped_wire_->inc(stats_.dropped_wire_packets);
}

void Link::send(PacketPtr p) {
  if (queued_bytes_ + p->size_bytes > cfg_.queue_limit_bytes &&
      !queue_.empty()) {
    ++stats_.dropped_queue_packets;
    if (auto* tr = obs::PacketTracer::active()) {
      tr->record(obs::EventKind::kDrop, sim_.now(), p->id, p->flow,
                 trace_channel(*p), trace_direction_,
                 static_cast<std::uint32_t>(p->size_bytes),
                 obs::kDropQueueFull);
    }
    if (drop_observer_) drop_observer_(std::move(p));
    return;
  }
  p->enqueued_at = sim_.now();
  queued_bytes_ += p->size_bytes;
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += p->size_bytes;
  if (auto* tr = obs::PacketTracer::active()) {
    tr->record(obs::EventKind::kEnqueue, sim_.now(), p->id, p->flow,
               trace_channel(*p), trace_direction_,
               static_cast<std::uint32_t>(p->size_bytes));
  }
  queue_.push_back(std::move(p));
  schedule_service();
}

void Link::fault_set_down(bool down) {
  if (down == fault_down_) return;
  fault_down_ = down;
  recent_rate_at_ = -1;
  if (down) {
    if (service_scheduled_) {
      sim_.cancel(service_event_);
      service_scheduled_ = false;
    }
  } else {
    schedule_service();
  }
}

void Link::fault_set_rate_scale(double scale) {
  fault_rate_scale_ = scale >= 1.0 ? 1.0 : std::max(scale, 0.0);
  fault_rate_acc_ = 0.0;
  recent_rate_at_ = -1;
}

void Link::fault_set_episode_loss(const LossConfig& cfg, std::uint64_t seed) {
  episode_loss_.emplace(cfg, sim::Rng(seed));
}

void Link::schedule_service() {
  if (service_scheduled_ || queue_.empty() || fault_down_) return;
  const Time next = next_opportunity_after(sim_.now());
  if (next == sim::kTimeNever) return;  // dead link
  service_scheduled_ = true;
  service_event_ = sim_.at(next, [this] {
    service_scheduled_ = false;
    on_opportunity();
  });
}

// Same answer as cfg_.capacity.next_opportunity(t) — first opportunity
// strictly after t — but via a cursor that only moves forward, since
// schedule_service() queries at nondecreasing times. Amortized O(1) per
// service where the trace's binary search pays O(log n) every call.
Time Link::next_opportunity_after(Time t) {
  const std::vector<Time>& opps = cfg_.capacity.opportunities();
  if (opps.empty()) return sim::kTimeNever;
  const Duration period = cfg_.capacity.period();
  const Time base = (t / period) * period;
  if (base != opp_cycle_base_) {
    // New cycle (or, defensively, time moved backwards): rehome.
    opp_cycle_base_ = base;
    opp_idx_ = 0;
  }
  while (opp_idx_ < opps.size() && base + opps[opp_idx_] <= t) ++opp_idx_;
  if (opp_idx_ == opps.size()) return base + period + opps.front();
  return base + opps[opp_idx_];
}

void Link::on_opportunity() {
  HVC_PROF_SCOPE(obs::prof::Hook::kLinkServe);
  // Rate cliff: pass only ~fault_rate_scale_ of opportunities through.
  // A deterministic credit accumulator (no RNG) keeps runs reproducible
  // and spaces served opportunities evenly across the cliff window.
  if (fault_rate_scale_ < 1.0) {
    fault_rate_acc_ += fault_rate_scale_;
    if (fault_rate_acc_ < 1.0) {
      schedule_service();
      return;
    }
    fault_rate_acc_ -= 1.0;
  }
  const std::int64_t mtu = cfg_.capacity.mtu_bytes();
  if (cfg_.mode == ServiceMode::kPacketPerOpportunity) {
    if (!queue_.empty()) {
      PacketPtr p = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= p->size_bytes;
      note_dequeue(*p);
      deliver(std::move(p));
    }
  } else {
    credit_bytes_ = std::min(credit_bytes_ + mtu, cfg_.max_credit_bytes);
    while (!queue_.empty() && queue_.front()->size_bytes <= credit_bytes_) {
      PacketPtr p = std::move(queue_.front());
      queue_.pop_front();
      credit_bytes_ -= p->size_bytes;
      queued_bytes_ -= p->size_bytes;
      note_dequeue(*p);
      deliver(std::move(p));
    }
    if (queue_.empty()) credit_bytes_ = 0;  // no hoarding while idle
  }
  schedule_service();
}

void Link::deliver(PacketPtr p) {
  const Time now = sim_.now();

  // Delivery-rate estimator: EWMA over 50 ms accounting windows.
  constexpr Duration kWindow = sim::milliseconds(50);
  if (now - rate_window_start_ >= kWindow) {
    if (rate_window_start_ > 0 || rate_window_bytes_ > 0) {
      const double window_rate =
          static_cast<double>(rate_window_bytes_) * 8.0 /
          sim::to_seconds(std::max<Duration>(now - rate_window_start_, 1));
      rate_estimate_bps_ = rate_estimate_bps_ <= 0.0
                               ? window_rate
                               : 0.3 * window_rate + 0.7 * rate_estimate_bps_;
    }
    rate_window_start_ = now;
    rate_window_bytes_ = 0;
  }
  rate_window_bytes_ += p->size_bytes;

  if (loss_.should_drop() ||
      (episode_loss_ && episode_loss_->should_drop())) {
    ++stats_.dropped_wire_packets;
    if (auto* tr = obs::PacketTracer::active()) {
      tr->record(obs::EventKind::kDrop, now, p->id, p->flow,
                 trace_channel(*p), trace_direction_,
                 static_cast<std::uint32_t>(p->size_bytes), obs::kDropWire);
    }
    return;
  }
  ++stats_.delivered_packets;
  stats_.delivered_bytes += p->size_bytes;
  stats_.queue_delay_ms.add(sim::to_millis(now - p->enqueued_at));
  if (auto* tr = obs::PacketTracer::active()) {
    tr->record(obs::EventKind::kTx, now, p->id, p->flow, trace_channel(*p),
               trace_direction_, static_cast<std::uint32_t>(p->size_bytes));
  }

  if (receiver_) {
    // Clamp so the wire stays FIFO: when fault_extra_delay_ shrinks
    // mid-flight (a delay spike ending), an unclamped later packet would
    // overtake an earlier one still in flight on this link.
    const Time rx_at = std::max(now + cfg_.prop_delay + fault_extra_delay_,
                                last_rx_at_);
    last_rx_at_ = rx_at;
    sim_.at(rx_at, [this, p = std::move(p)]() mutable {
      if (auto* tr = obs::PacketTracer::active()) {
        tr->record(obs::EventKind::kRx, sim_.now(), p->id, p->flow,
                   trace_channel(*p), trace_direction_,
                   static_cast<std::uint32_t>(p->size_bytes));
      }
      receiver_(std::move(p));
    });
  }
}

Duration Link::estimated_queue_delay() const {
  if (fault_down_) return sim::kTimeNever;
  const double rate = average_rate_bps() * fault_rate_scale_;
  if (rate <= 0.0) return sim::kTimeNever;
  const double secs = static_cast<double>(queued_bytes_) * 8.0 / rate;
  return sim::seconds_f(secs);
}

Duration Link::estimated_delivery_delay(std::int64_t bytes) const {
  if (fault_down_) return sim::kTimeNever;
  const double rate = average_rate_bps() * fault_rate_scale_;
  if (rate <= 0.0) return sim::kTimeNever;
  const double secs =
      static_cast<double>(queued_bytes_ + bytes) * 8.0 / rate;
  return sim::seconds_f(secs) + cfg_.prop_delay + fault_extra_delay_;
}

double Link::recent_delivery_rate_bps() const {
  // Capacity, not utilization: an idle link still has its full rate
  // available (measuring delivered bytes would report ~0 for an unused
  // URLLC channel and steering would never discover it). This mirrors the
  // MAC/PHY capacity hints §3.1 proposes exporting.
  if (fault_down_) return 0.0;
  if (recent_rate_at_ == sim_.now()) return recent_rate_bps_;
  constexpr sim::Duration kWindow = sim::milliseconds(200);
  const sim::Time to = std::max<sim::Time>(sim_.now(), kWindow);
  const auto opps = cfg_.capacity.opportunities_in(to - kWindow, to);
  recent_rate_at_ = sim_.now();
  recent_rate_bps_ = static_cast<double>(opps) *
                     static_cast<double>(cfg_.capacity.mtu_bytes()) * 8.0 /
                     sim::to_seconds(kWindow) * fault_rate_scale_;
  return recent_rate_bps_;
}

}  // namespace hvc::channel
