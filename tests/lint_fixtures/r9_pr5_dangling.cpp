// R9 seed: the PR 5 dangling-binding bug, reduced. install() publishes
// `this` into a thread_local binding but no destructor ever clears it,
// so the binding dangles once a run-private instance dies.
namespace fx9c {

struct Fx9cSampler {
  static thread_local Fx9cSampler* bound_;
  void install() { bound_ = this; }
  void reset_counts() {}
};
thread_local Fx9cSampler* Fx9cSampler::bound_ = nullptr;

}  // namespace fx9c
