// R9 seed: a sweep worker mutates namespace-scope state without any
// synchronization. One worker-shared-state error at the write line.
namespace fx9a {

int g_hits = 0;

void fx9a_accumulate() {
  g_hits += 1;
}

void run_sweep() { fx9a_accumulate(); }

}  // namespace fx9a
