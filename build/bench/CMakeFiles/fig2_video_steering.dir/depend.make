# Empty dependencies file for fig2_video_steering.
# This may be replaced when dependencies are built.
