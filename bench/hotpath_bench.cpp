// Hot-path microbench suite as a regular bench binary: prints the table
// and drops a perf manifest in bench/out/. The authoritative runner —
// baselines, regression checks, repo-root BENCH_*.json — is
// tools/hvc_perf; this wrapper exists so the suite runs the same way as
// the figure/table benches (ObsSession manifest included).
#include <cstring>

#include "bench/bench_util.hpp"
#include "bench/hotpath/harness.hpp"

int main(int argc, char** argv) {
  using namespace hvc;
  bench::ObsSession obs("hotpath_bench");

  bench::hotpath::SuiteOptions opts;
  opts.quick = true;  // the bench binary is a smoke run; hvc_perf measures
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opts.quick = false;
  }
  obs.param("mode", opts.quick ? "quick" : "full");

  if (!bench::hotpath::prof_compiled_in()) {
    std::fprintf(stderr,
                 "hotpath_bench: built with -DHVC_PROF=OFF; hook counters "
                 "are no-ops. Rebuild with -DHVC_PROF=ON.\n");
    return 2;
  }

  bench::print_header("hot-path microbenches");
  bench::hotpath::register_default_suite();
  const auto manifest = bench::hotpath::run_suite(opts);

  const std::string path = bench::out_path("BENCH_hotpath.json");
  if (!manifest.write(path)) {
    std::fprintf(stderr, "hotpath_bench: failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("perf manifest: %s (%zu benches)\n", path.c_str(),
              manifest.benches.size());
  return 0;
}
