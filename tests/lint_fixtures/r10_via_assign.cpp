// R10 seed: taint propagates through two plain assignments before it
// reaches the sink, after the loop has closed.
namespace fx10b {

void fx10b_export() {
  std::unordered_map<int, double> metrics;
  std::string row;
  std::string last;
  for (const auto& [name, value] : metrics) {
    row = name;
  }
  last = row;
  to_csv(last);
}

}  // namespace fx10b
