# Empty dependencies file for multipath_transport.
# This may be replaced when dependencies are built.
