file(REMOVE_RECURSE
  "CMakeFiles/ablation_hvc_cc.dir/ablation_hvc_cc.cpp.o"
  "CMakeFiles/ablation_hvc_cc.dir/ablation_hvc_cc.cpp.o.d"
  "ablation_hvc_cc"
  "ablation_hvc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hvc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
