// Time-varying link capacity traces with Mahimahi semantics.
//
// A trace is a looping schedule of *delivery opportunities*: instants at
// which the link may transmit one MTU's worth of bytes. This is exactly the
// model used by Mahimahi [33] and by DChannel's trace replay — capacity
// variation (including outages) then produces queueing-delay variation
// naturally, which is the phenomenon that confuses delay-based CCAs
// (Fig. 1) and that priority steering routes around (Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace hvc::trace {

using sim::Duration;
using sim::RateBps;
using sim::Time;

class CapacityTrace {
 public:
  /// A constant-rate link expressed as evenly spaced opportunities.
  static CapacityTrace constant(RateBps rate, Duration period = sim::seconds(1),
                                std::int64_t mtu = 1500);

  /// Build from explicit opportunity times in [0, period). Times are
  /// sorted; duplicates are allowed (multiple MTUs in one instant).
  static CapacityTrace from_opportunities(std::vector<Time> opportunities,
                                          Duration period,
                                          std::int64_t mtu = 1500);

  /// Parse Mahimahi's trace format: one millisecond timestamp per line,
  /// each granting one MTU delivery; the last timestamp defines the loop
  /// period. Throws std::invalid_argument on malformed input.
  static CapacityTrace parse_mahimahi(const std::string& text,
                                      std::int64_t mtu = 1500);

  /// Serialize to Mahimahi's format (millisecond resolution).
  [[nodiscard]] std::string to_mahimahi() const;

  /// First delivery opportunity at a time strictly greater than `t`.
  /// Loops over the period indefinitely. Returns kTimeNever only for an
  /// empty trace.
  [[nodiscard]] Time next_opportunity(Time t) const;

  /// Number of opportunities in simulated interval (from, to].
  [[nodiscard]] std::int64_t opportunities_in(Time from, Time to) const;

  [[nodiscard]] std::int64_t mtu_bytes() const { return mtu_; }
  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] std::size_t opportunities_per_period() const {
    return opportunities_.size();
  }
  [[nodiscard]] const std::vector<Time>& opportunities() const {
    return opportunities_;
  }

  /// Long-run average rate implied by the trace.
  [[nodiscard]] double average_rate_bps() const;

  /// Minimum average rate over any window of the given width (worst-case
  /// throughput seen by an application); used to validate generators.
  [[nodiscard]] double min_windowed_rate_bps(Duration window) const;

 private:
  CapacityTrace() = default;

  std::vector<Time> opportunities_;  // sorted, within [0, period_)
  Duration period_ = sim::seconds(1);
  std::int64_t mtu_ = 1500;
};

}  // namespace hvc::trace
