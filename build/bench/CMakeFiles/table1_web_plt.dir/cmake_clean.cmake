file(REMOVE_RECURSE
  "CMakeFiles/table1_web_plt.dir/table1_web_plt.cpp.o"
  "CMakeFiles/table1_web_plt.dir/table1_web_plt.cpp.o.d"
  "table1_web_plt"
  "table1_web_plt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_web_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
