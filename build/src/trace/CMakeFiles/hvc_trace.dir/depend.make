# Empty dependencies file for hvc_trace.
# This may be replaced when dependencies are built.
