// The pinned-cycle microbench harness behind tools/hvc_perf and the
// hotpath_bench binary.
//
// Each microbench is a BenchDef whose body does `scale` units of work and
// reports how many items it processed. The harness supplies everything
// around the body: CPU pinning, TSC calibration, per-repeat isolation
// (fresh metrics registry + packet-id scope so repeats are independent
// and deterministic), warmup repeats, and the obs::prof enable/reset
// bracketing that turns hook counters into per-repeat deltas. Results
// flatten into an obs::PerfManifest — median + IQR of items/sec, ns/item
// and per-hot-path cycles/call — the BENCH_*.json perf trajectory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/perf_manifest.hpp"

namespace hvc::bench::hotpath {

struct BenchDef {
  std::string name;  ///< manifest/bench id, e.g. "event_queue_churn"
  std::string unit;  ///< what one item is ("events", "packets", ...)
  /// Full-mode work per repeat; quick mode divides by 8 (min 1).
  std::uint64_t scale = 0;
  /// Runs the workload and returns items processed. Called with obs::prof
  /// enabled and freshly reset — it may read prof counters for its item
  /// count (the end-to-end bench reports executed events that way).
  std::function<std::uint64_t(std::uint64_t scale)> body;
};

/// Registered microbenches, in registration (suite) order.
std::vector<BenchDef>& registry();
void register_bench(BenchDef def);
/// Register the standard six-bench hot-path suite. Idempotent.
void register_default_suite();

struct SuiteOptions {
  bool quick = false;  ///< scale/8 and at most 3 repeats (CI smoke mode)
  int repeats = 7;     ///< measured repeats per bench
  int warmup = 2;      ///< discarded repeats per bench
  int pin_cpu = 0;     ///< CPU to pin to; -1 = don't pin
  std::string filter;  ///< substring match on bench name; empty = all
  std::string name = "hotpath";  ///< manifest name (BENCH_<name>.json)
  bool verbose = true;           ///< print one table row per bench
};

/// Run every registered (filter-matching) bench and collect the manifest.
/// Requires the profiler to be compiled in; with -DHVC_PROF=OFF the
/// returned manifest has zero benches and callers should refuse to write
/// a baseline from it (see hvc_perf).
[[nodiscard]] obs::PerfManifest run_suite(const SuiteOptions& opts);

/// False when HVC_PROF_ENABLED=0: hook counters compile to no-ops, so
/// cycle medians would be zeros and item counts derived from hooks lie.
[[nodiscard]] bool prof_compiled_in();

}  // namespace hvc::bench::hotpath
