// TCP Vegas [13]: delay-based congestion avoidance. Compares expected
// throughput (cwnd / baseRTT) against actual (cwnd / RTT) and keeps the
// difference between alpha and beta packets. Its baseRTT is a lifetime
// minimum — a single packet steered over URLLC poisons it permanently,
// making Vegas see a huge backlog on every eMBB-carried ACK and pin the
// window to the floor (Fig. 1a: 2.73 Mbps, roughly URLLC's capacity).
#pragma once

#include "transport/cca.hpp"

namespace hvc::transport {

struct VegasConfig {
  double alpha_pkts = 2.0;
  double beta_pkts = 4.0;
  double gamma_pkts = 1.0;  ///< slow-start exit threshold
  std::int64_t initial_cwnd = 10 * kMss;
  std::int64_t min_cwnd = 2 * kMss;
};

class Vegas final : public CcAlgorithm {
 public:
  explicit Vegas(VegasConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "vegas"; }
  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  [[nodiscard]] std::int64_t cwnd_bytes() const override { return cwnd_; }

  [[nodiscard]] sim::Duration base_rtt() const { return base_rtt_; }

 private:
  VegasConfig cfg_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_ = INT64_MAX;
  sim::Duration base_rtt_ = 0;  ///< 0 = no sample yet (lifetime min)
  // Per-round accounting: adjust once per RTT using the round's min RTT.
  std::int64_t round_marker_ = 0;
  sim::Duration round_min_rtt_ = 0;
  bool in_slow_start_ = true;
};

}  // namespace hvc::transport
