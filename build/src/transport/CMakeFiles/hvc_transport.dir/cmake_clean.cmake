file(REMOVE_RECURSE
  "CMakeFiles/hvc_transport.dir/bbr.cpp.o"
  "CMakeFiles/hvc_transport.dir/bbr.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/cca_factory.cpp.o"
  "CMakeFiles/hvc_transport.dir/cca_factory.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/connection.cpp.o"
  "CMakeFiles/hvc_transport.dir/connection.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/cubic.cpp.o"
  "CMakeFiles/hvc_transport.dir/cubic.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/datagram.cpp.o"
  "CMakeFiles/hvc_transport.dir/datagram.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/hvc_cc.cpp.o"
  "CMakeFiles/hvc_transport.dir/hvc_cc.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/tcp.cpp.o"
  "CMakeFiles/hvc_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/vegas.cpp.o"
  "CMakeFiles/hvc_transport.dir/vegas.cpp.o.d"
  "CMakeFiles/hvc_transport.dir/vivace.cpp.o"
  "CMakeFiles/hvc_transport.dir/vivace.cpp.o.d"
  "libhvc_transport.a"
  "libhvc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
