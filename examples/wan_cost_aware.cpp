// WAN heterogeneous channels (§2.3): terrestrial fiber + a cISP-style
// priced microwave path, with cost-aware steering buying latency for
// interactive traffic within a dollar budget.
//
//   ./build/examples/wan_cost_aware [budget_dollars_per_s]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/cost_aware.hpp"
#include "transport/datagram.hpp"

int main(int argc, char** argv) {
  using namespace hvc;
  const double budget = argc > 1 ? std::atof(argv[1]) : 0.002;

  sim::Simulator s;
  steer::CostAwareConfig cc;
  cc.budget_per_second = budget;
  cc.max_budget = budget * 5;
  cc.min_ms_saved_per_dollar = 50.0;
  auto down_policy = std::make_unique<steer::CostAwarePolicy>(cc);
  auto* down = down_policy.get();
  net::TwoHostNetwork net(s, std::make_unique<steer::CostAwarePolicy>(cc),
                          std::move(down_policy));
  net.add_channel(channel::fiber_profile());  // 40 ms RTT, 500 Mbps, free
  net.add_channel(channel::cisp_profile());   // 8 ms RTT, 10 Mbps, $0.05/MB
  net.finalize();

  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  transport::DatagramSocket rx(net.client(), flow);
  sim::Summary latency;
  rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
    latency.add(sim::to_millis(ev.completed - ev.sent_at));
  });
  // 60 s of 2 kB trading-style updates at 50/s.
  for (int i = 0; i < 3000; ++i) {
    s.at(sim::milliseconds(20 * i), [&] { tx.send_message(2000, 0); });
  }
  s.run_until(sim::seconds(62));

  std::printf("budget $%.4f/s over 60 s:\n", budget);
  std::printf("  message latency p50 %.1f ms p95 %.1f ms (fiber-only would "
              "be ~%.0f ms)\n",
              latency.percentile(50), latency.percentile(95), 21.6);
  std::printf("  spent $%.4f; cISP carried %lld of %lld packets\n",
              down->total_spent(),
              static_cast<long long>(
                  net.downlink_shim().stats().packets_per_channel[1]),
              static_cast<long long>(
                  net.downlink_shim().stats().packets_per_channel[0] +
                  net.downlink_shim().stats().packets_per_channel[1]));
  std::printf("Sweep it: for b in 0 0.0005 0.002 0.01; do "
              "./wan_cost_aware $b; done\n");
  return 0;
}
