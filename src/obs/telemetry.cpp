#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace hvc::obs {

thread_local TelemetrySampler* TelemetrySampler::active_ = nullptr;

void TelemetrySampler::enable(TelemetryConfig cfg) {
  cfg_ = std::move(cfg);
  if (cfg_.period <= 0) cfg_.period = sim::milliseconds(10);
  if (cfg_.max_samples_per_series == 0) cfg_.max_samples_per_series = 1;
  if (cfg_.max_series == 0) cfg_.max_series = 1;
  series_.clear();
  by_name_.clear();
  by_id_.clear();
  total_ = 0;
  overwritten_ = 0;
  dropped_series_ = 0;
  enabled_ = true;
  active_ = this;
}

void TelemetrySampler::disable() {
  enabled_ = false;
  if (active_ == this) active_ = nullptr;
}

bool TelemetrySampler::group_selected(std::string_view group) const {
  if (cfg_.groups.empty()) return true;
  for (const auto& g : cfg_.groups) {
    if (g == group) return true;
  }
  return false;
}

TelemetrySampler::ProbeId TelemetrySampler::add_probe(std::string_view group,
                                                      std::string name,
                                                      Probe probe) {
  if (!enabled_ || !group_selected(group)) return 0;
  std::size_t index;
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    // Reattach: the same series keeps accumulating (policy swapped back,
    // a transport reconnected under the same flow id).
    index = it->second;
    series_[index].probe = std::move(probe);
  } else {
    if (series_.size() >= cfg_.max_series) {
      ++dropped_series_;
      return 0;
    }
    index = series_.size();
    Series s;
    s.name = name;
    s.probe = std::move(probe);
    series_.push_back(std::move(s));
    by_name_.emplace(std::move(name), index);
  }
  const ProbeId id = next_id_++;
  by_id_.emplace(id, index);
  return id;
}

void TelemetrySampler::remove_probe(ProbeId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  series_[it->second].probe = nullptr;
  by_id_.erase(it);
}

void TelemetrySampler::attach(sim::Simulator& sim) {
  if (!enabled_) return;
  sim.after(cfg_.period, [this, &sim] {
    if (!enabled_) return;
    sample(sim.now());
    attach(sim);  // reschedule; run_until bounds the run, not the queue
  });
}

void TelemetrySampler::sample(sim::Time now) {
  HVC_PROF_SCOPE(prof::Hook::kTelemetrySample);
  if (!enabled_) return;
  for (auto& s : series_) {
    if (!s.probe) continue;
    const double v = s.probe();
    if (s.ring.size() < cfg_.max_samples_per_series) {
      // hvc-lint: allow(hotpath-alloc): ring grows only until max_samples_per_series, then overwrites in place
      s.ring.push_back({now, v});
    } else {
      s.ring[s.head] = {now, v};
      ++overwritten_;
    }
    s.head = s.head + 1 == cfg_.max_samples_per_series ? 0 : s.head + 1;
    ++s.total;
    ++total_;
  }
}

std::vector<TelemetrySampler::Sample> TelemetrySampler::series_samples(
    const Series& s) const {
  std::vector<Sample> out;
  out.reserve(s.ring.size());
  // Oldest retained sample: slot head_ once the ring has wrapped, else 0.
  const std::size_t start = s.total > s.ring.size() ? s.head : 0;
  for (std::size_t i = 0; i < s.ring.size(); ++i) {
    out.push_back(s.ring[(start + i) % s.ring.size()]);
  }
  return out;
}

std::vector<TelemetrySampler::Sample> TelemetrySampler::samples(
    std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return {};
  return series_samples(series_[it->second]);
}

std::vector<std::string> TelemetrySampler::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& s : series_) names.push_back(s.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string TelemetrySampler::to_jsonl() const {
  std::vector<std::size_t> order(series_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return series_[a].name < series_[b].name;
  });

  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"meta\":{\"period_ms\":%s,\"series\":%zu,"
                "\"dropped_series\":%llu,\"overwritten\":%llu}}\n",
                json::number(sim::to_millis(cfg_.period)).c_str(),
                series_.size(),
                static_cast<unsigned long long>(dropped_series_),
                static_cast<unsigned long long>(overwritten_));
  out += buf;
  for (const std::size_t i : order) {
    const std::string quoted = json::quote(series_[i].name);
    for (const Sample& s : series_samples(series_[i])) {
      std::snprintf(buf, sizeof(buf), "{\"t_us\":%.3f,\"series\":",
                    static_cast<double>(s.at) / 1e3);
      out += buf;
      out += quoted;
      out += ",\"v\":";
      out += json::number(s.value);
      out += "}\n";
    }
  }
  return out;
}

std::string TelemetrySampler::to_csv() const {
  std::vector<std::size_t> order(series_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return series_[a].name < series_[b].name;
  });
  std::string out = "t_ms,series,value\n";
  for (const std::size_t i : order) {
    for (const Sample& s : series_samples(series_[i])) {
      out += json::number(sim::to_millis(s.at));
      out += ',';
      out += series_[i].name;  // dot-separated metric names need no escape
      out += ',';
      out += json::number(s.value);
      out += '\n';
    }
  }
  return out;
}

std::string TelemetrySampler::to_chrome_trace() const {
  std::vector<std::size_t> order(series_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return series_[a].name < series_[b].name;
  });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const std::size_t i : order) {
    const std::string quoted = json::quote(series_[i].name);
    for (const Sample& s : series_samples(series_[i])) {
      out += first ? "" : ",";
      first = false;
      out += "{\"name\":" + quoted + ",\"ph\":\"C\",\"pid\":0,\"ts\":";
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(s.at) / 1e3);
      out += buf;
      out += ",\"args\":{\"value\":" + json::number(s.value) + "}}";
    }
  }
  out += "]}";
  return out;
}

ScopedTelemetrySampler::ScopedTelemetrySampler(TelemetrySampler& sampler)
    : prev_active_(TelemetrySampler::active_) {
  TelemetrySampler::active_ = sampler.enabled() ? &sampler : nullptr;
}

ScopedTelemetrySampler::~ScopedTelemetrySampler() {
  TelemetrySampler::active_ = prev_active_;
}

void TelemetryProbes::add(std::string_view group, std::string name,
                          TelemetrySampler::Probe probe) {
  auto* ts = TelemetrySampler::active();
  if (ts == nullptr) return;
  if (owner_ != nullptr && owner_ != ts) clear();  // sampler changed
  const auto id = ts->add_probe(group, std::move(name), std::move(probe));
  if (id == 0) return;
  owner_ = ts;
  ids_.push_back(id);
}

void TelemetryProbes::clear() {
  if (owner_ != nullptr) {
    for (const auto id : ids_) owner_->remove_probe(id);
  }
  ids_.clear();
  owner_ = nullptr;
}

}  // namespace hvc::obs
