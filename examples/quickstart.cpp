// Quickstart: build a two-channel HVC scenario (eMBB + URLLC), attach the
// DChannel steering policy, run one bulk transfer and one small
// interactive transfer, and print what steering did for each.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/scenario.hpp"
#include "transport/tcp.hpp"

int main() {
  using namespace hvc;

  // 1. Describe the channels (Fig. 1 of the paper): a high-bandwidth
  //    high-latency eMBB bearer and a low-bandwidth low-latency URLLC one.
  core::ScenarioConfig cfg;
  cfg.channels = {channel::embb_constant_profile(),  // 50 ms RTT, 60 Mbps
                  channel::urllc_profile()};         // 5 ms RTT, 2 Mbps
  cfg.up_policy = cfg.down_policy = "dchannel";

  // 2. Instantiate the scenario: a deterministic simulator, two hosts,
  //    and a steering shim per direction.
  core::Scenario sc(cfg);

  // 3. A bulk download (server -> client) with CUBIC.
  const auto bulk_flows = transport::make_flow_pair();
  transport::TcpSender bulk(sc.server(), bulk_flows,
                            transport::make_cca("cubic"));
  transport::TcpReceiver bulk_rx(sc.client(), bulk_flows);
  bulk.write(20'000'000);  // 20 MB

  // 4. A small transfer that starts mid-run, while the bulk flow has the
  //    eMBB queue busy — the case steering accelerates.
  const auto small_flows = transport::make_flow_pair();
  transport::TcpSender small(sc.server(), small_flows,
                             transport::make_cca("cubic"));
  transport::TcpReceiver small_rx(sc.client(), small_flows);
  sim::Time small_done = -1;
  std::int64_t got = 0;
  small_rx.set_on_data([&](std::int64_t n) {
    got += n;
    if (got >= 30'000 && small_done < 0) small_done = sc.sim().now();
  });
  sc.sim().at(sim::seconds(2), [&] { small.write(30'000); });

  // 5. Run 10 simulated seconds and report.
  sc.sim().run_until(sim::seconds(10));

  std::printf("bulk: %.2f Mbps acked over 10 s (%lld retransmissions)\n",
              bulk.goodput_bps(0, sim::seconds(10)) / 1e6,
              static_cast<long long>(bulk.stats().retransmissions));
  std::printf("small 30 kB transfer completed in %.1f ms\n",
              sim::to_millis(small_done - sim::seconds(2)));

  const auto& down = sc.network().downlink_shim().stats();
  std::printf("downlink steering: %lld packets on eMBB, %lld on URLLC\n",
              static_cast<long long>(down.packets_per_channel[0]),
              static_cast<long long>(down.packets_per_channel[1]));
  const auto& up = sc.network().uplink_shim().stats();
  std::printf("uplink steering:   %lld packets on eMBB, %lld on URLLC "
              "(ACK acceleration)\n",
              static_cast<long long>(up.packets_per_channel[0]),
              static_cast<long long>(up.packets_per_channel[1]));
  return 0;
}
