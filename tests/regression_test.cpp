// Paper-shape regression tests: the headline quantitative relationships
// from each reproduced figure/table, pinned as fast assertions so that
// future changes to any module cannot silently break the reproduction.
// (The full-scale versions live in bench/; these run in seconds.)
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

namespace hvc {
namespace {

using sim::seconds;

// Fig. 1a, distilled: under aggressive DChannel steering, CUBIC retains
// most of the fat channel while BBR and Vivace collapse below 20% of it.
TEST(PaperShape, Fig1aOrdering) {
  const auto cubic =
      core::run_bulk(core::ScenarioConfig::fig1(), "cubic", seconds(30));
  const auto bbr =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", seconds(30));
  const auto vivace =
      core::run_bulk(core::ScenarioConfig::fig1(), "vivace", seconds(30));
  EXPECT_GT(cubic.goodput_bps, 40e6);
  EXPECT_LT(bbr.goodput_bps, 12e6);
  EXPECT_LT(vivace.goodput_bps, 5e6);
  EXPECT_GT(cubic.goodput_bps, 4 * bbr.goodput_bps);
}

// Fig. 1b, distilled: the RTT signal BBR sees under steering spans the
// URLLC floor to the eMBB value — variance manufactured by steering.
TEST(PaperShape, Fig1bRttOscillation) {
  const auto r =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", seconds(15));
  double mn = 1e18, mx = 0;
  for (const auto& p : r.rtt_ms.points()) {
    mn = std::min(mn, p.value);
    mx = std::max(mx, p.value);
  }
  EXPECT_LT(mn, 15.0);  // URLLC-steered samples
  EXPECT_GT(mx, 25.0);  // eMBB path samples
}

// Fig. 2, distilled: on an outage-prone trace, priority steering's p95
// frame latency beats DChannel's by >1.5x and eMBB-only's by >5x, at an
// SSIM cost below 0.08 (paper: 2.26x, 26x, 0.068).
TEST(PaperShape, Fig2VideoOrdering) {
  const auto run = [](const char* policy) {
    return core::run_video(
        core::ScenarioConfig::traced(trace::FiveGProfile::kMmWaveDriving,
                                     policy, seconds(60), 42),
        {}, {}, seconds(40));
  };
  const auto embb = run("embb-only");
  const auto dch = run("dchannel");
  const auto prio = run("msg-priority");
  const double p_embb = embb.stats.latency_ms.percentile(95);
  const double p_dch = dch.stats.latency_ms.percentile(95);
  const double p_prio = prio.stats.latency_ms.percentile(95);
  EXPECT_GT(p_dch / p_prio, 1.5);
  EXPECT_GT(p_embb / p_prio, 5.0);
  EXPECT_LT(embb.stats.ssim.mean() - prio.stats.ssim.mean(), 0.08);
}

// Table 1, distilled: web-tuned DChannel cuts mean PLT vs eMBB-only on
// the driving trace by at least 15% (paper: 36.8%).
TEST(PaperShape, Table1WebGain) {
  const auto corpus = app::web::generate_corpus({.pages = 8, .seed = 2023});
  core::WebRunConfig web;
  web.loads_per_page = 3;
  const auto embb = core::run_web(
      core::ScenarioConfig::traced(trace::FiveGProfile::kLowbandDriving,
                                   "embb-only", seconds(120), 42),
      corpus, web);
  auto dch_cfg = core::ScenarioConfig::traced(
      trace::FiveGProfile::kLowbandDriving, "dchannel", seconds(120), 42);
  dch_cfg.up_factory = dch_cfg.down_factory = [] {
    return std::make_unique<steer::DChannelPolicy>(
        steer::DChannelConfig::web_tuned());
  };
  const auto dch = core::run_web(dch_cfg, corpus, web);
  EXPECT_LT(dch.plt_ms.mean(), 0.85 * embb.plt_ms.mean());
}

// §3.2, distilled: the HVC-aware CCA recovers what BBR loses.
TEST(PaperShape, HvcCcaRecovery) {
  const auto bbr =
      core::run_bulk(core::ScenarioConfig::fig1(), "bbr", seconds(20));
  const auto hvc =
      core::run_bulk(core::ScenarioConfig::fig1(), "hvc", seconds(20));
  EXPECT_GT(hvc.goodput_bps, 40e6);
  EXPECT_GT(hvc.goodput_bps / bbr.goodput_bps, 4.0);
}

// §3.1 deployment claim, distilled: DChannel's gains require only the
// shim — the transports and applications here are identical binaries
// across the two runs; only the policy object differs.
TEST(PaperShape, SteeringIsTransparentToEndpoints) {
  const auto with =
      core::run_bulk(core::ScenarioConfig::fig1("min-delay"), "cubic",
                     seconds(10));
  const auto without =
      core::run_bulk(core::ScenarioConfig::fig1("embb-only"), "cubic",
                     seconds(10));
  // Both complete; steering used the second channel; no-steering did not.
  EXPECT_GT(with.data_packets_per_channel[1], 0);
  EXPECT_EQ(without.data_packets_per_channel[1], 0);
}

}  // namespace
}  // namespace hvc
