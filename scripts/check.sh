#!/usr/bin/env bash
# Full local gate: build + test the default and sanitize presets, run
# the concurrent-sweep suites (ExpSweep*) under ThreadSanitizer, and
# smoke the hvc_run → hvc_report telemetry pipeline end to end.
#
#   scripts/check.sh            # everything
#   scripts/check.sh default    # just the default preset
#   scripts/check.sh sanitize   # just the sanitizer preset
#   scripts/check.sh tsan       # just the tsan stage
#   scripts/check.sh report     # just the hvc_report smoke
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("${@:-default sanitize}")
# Word-split the default list when invoked with no arguments.
if [ $# -eq 0 ]; then presets=(default sanitize tsan report); fi

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  if [ "${preset}" = "tsan" ]; then
    # Only the concurrency tests run under tsan; build just their
    # binaries (gtest_discover_tests would otherwise inject
    # <target>_NOT_BUILT failures for every unbuilt test target).
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)" \
      --target exp_test telemetry_test
    ctest --preset "${preset}"
  elif [ "${preset}" = "report" ]; then
    # End-to-end telemetry smoke: run the demo scenario with telemetry +
    # audit on, render it with hvc_report, and check that the report
    # carries decision-reason shares and a telemetry table.
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target hvc_run hvc_report
    out="$(mktemp -d)"
    build/tools/hvc_run scenarios/fig2_video_telemetry.json \
      --out "${out}/f2t" >/dev/null
    build/tools/hvc_report "${out}/f2t" \
      --merged "${out}/f2t.merged.json" >"${out}/report.txt"
    grep -q "dchannel:small-object" "${out}/report.txt"
    grep -q "== telemetry ==" "${out}/report.txt"
    test -s "${out}/f2t.merged.json"
    rm -rf "${out}"
    echo "hvc_report smoke OK"
  else
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)"
    ctest --preset "${preset}"
  fi
done

echo "All checks passed."
