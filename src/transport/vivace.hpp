// PCC Vivace [22]: online-learning, rate-based congestion control.
//
// The sender partitions time into monitor intervals (MIs), alternating
// paired probes at rate*(1±eps). Each MI is scored with the Vivace utility
//   U(x) = x^t - b·x·max(0, dRTT/dt) - c·x·loss
// and the rate steps along the empirical utility gradient across the pair.
//
// Measurement is *lag-shifted*: an MI sends during [start, end) but its
// goodput/RTT evidence arrives roughly one RTT later, so each MI is scored
// from the acks landing in [start+lag, end+lag). Skipping this shift
// attributes the previous interval's acks to the current probe and inverts
// the gradient — the rate then walks deterministically to the floor.
//
// The RTT-gradient penalty is the Achilles heel under packet steering:
// channel switches manufacture large positive dRTT/dt out of thin air, so
// Vivace keeps stepping down (Fig. 1a: 1.49 Mbps).
#pragma once

#include <deque>
#include <vector>

#include "transport/cca.hpp"

namespace hvc::transport {

struct VivaceConfig {
  double exponent = 0.9;            ///< t in x^t (x in Mbps)
  double rtt_grad_coeff = 900.0;    ///< b
  double loss_coeff = 11.35;        ///< c
  double probe_eps = 0.05;
  double initial_rate_bps = 2e6;
  double min_rate_bps = 0.2e6;
  double max_rate_bps = 500e6;
  /// Gradient-to-rate conversion (delta Mbps per unit utility gradient),
  /// with confidence amplification folded into simple step clamping.
  double step_scale = 0.1;
  double max_step_frac = 0.25;      ///< max relative rate change per pair
};

class Vivace final : public CcAlgorithm {
 public:
  explicit Vivace(VivaceConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "vivace"; }
  void on_packet_sent(sim::Time now, std::int64_t bytes,
                      std::int64_t bytes_in_flight) override;
  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;

  /// Vivace is purely rate-based; expose a generous window so pacing is
  /// the binding control.
  [[nodiscard]] std::int64_t cwnd_bytes() const override;
  [[nodiscard]] double pacing_rate_bps() const override;

  [[nodiscard]] double base_rate_bps() const { return rate_bps_; }

 private:
  struct MonitorInterval {
    sim::Time start = 0;
    sim::Time end = 0;          ///< 0 while still the sending interval
    sim::Duration lag = 0;      ///< measurement shift (srtt at close)
    double rate_bps = 0.0;
    int sign = +1;              ///< probe direction
    std::vector<std::pair<sim::Time, double>> rtt_samples;
    std::int64_t acked_bytes = 0;
    std::int64_t lost_bytes = 0;
    [[nodiscard]] double utility(const VivaceConfig& cfg) const;
  };

  void ensure_current(sim::Time now);
  void roll_interval(sim::Time now);
  void finalize_ready(sim::Time now);
  void attribute_ack(const AckEvent& ev);
  [[nodiscard]] sim::Duration mi_duration() const;

  VivaceConfig cfg_;
  double rate_bps_;
  std::deque<MonitorInterval> mis_;  ///< front oldest; back = sending MI
  double utility_plus_ = 0.0;
  bool have_plus_ = false;
  sim::Duration srtt_ = sim::milliseconds(100);
};

}  // namespace hvc::transport
