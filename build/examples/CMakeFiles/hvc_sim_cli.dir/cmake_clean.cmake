file(REMOVE_RECURSE
  "CMakeFiles/hvc_sim_cli.dir/hvc_sim_cli.cpp.o"
  "CMakeFiles/hvc_sim_cli.dir/hvc_sim_cli.cpp.o.d"
  "hvc_sim_cli"
  "hvc_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
