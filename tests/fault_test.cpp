// Tests for the fault-injection subsystem (src/fault): FaultPlan
// validation and seeded fuzz-plan generation, the channel::Link fault_*
// hooks (outage, rate cliff, delay spike, GE burst episodes), the
// FaultInjector's scheduling/audit/blackout accounting, per-policy
// failover on channel-down, the transport's bounded-blackout behavior,
// the `faults` spec block (positive, negative, and round-trip paths,
// mirroring exp_test.cpp), and end-to-end determinism of faulted runs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "channel/link.hpp"
#include "channel/profile.hpp"
#include "core/scenario.hpp"
#include "exp/results.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "net/node.hpp"
#include "obs/audit.hpp"
#include "obs/telemetry.hpp"
#include "steer/basic_policies.hpp"
#include "steer/redundant.hpp"

namespace hvc {
namespace {

using sim::milliseconds;
using sim::seconds;

// ---- FaultPlan validation ----

fault::FaultEvent outage(std::size_t channel, sim::Time start,
                         sim::Duration duration,
                         fault::FaultDir dir = fault::FaultDir::kBoth) {
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kOutage;
  e.channel = channel;
  e.dir = dir;
  e.start = start;
  e.duration = duration;
  return e;
}

TEST(FaultPlan, AcceptsDisjointAndCrossFamilyEvents) {
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, seconds(1), seconds(1)));
  plan.events.push_back(outage(0, seconds(3), seconds(1)));  // disjoint
  plan.events.push_back(outage(1, seconds(1), seconds(1)));  // other channel
  fault::FaultEvent ge;  // other family, may overlap the outage
  ge.kind = fault::FaultKind::kGeBurst;
  ge.channel = 0;
  ge.start = seconds(1);
  ge.duration = seconds(2);
  ge.loss.ge_p_good_to_bad = 0.1;
  ge.loss.ge_loss_in_bad = 0.9;
  plan.events.push_back(ge);
  EXPECT_NO_THROW(plan.validate(2));
}

TEST(FaultPlan, RejectsChannelOutOfRange) {
  fault::FaultPlan plan;
  plan.events.push_back(outage(2, 0, seconds(1)));
  try {
    plan.validate(2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fault event 0"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlan, RejectsNonPositiveDurationAndNegativeStart) {
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, 0, 0));
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
  plan.events[0] = outage(0, -1, seconds(1));
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlan, RejectsBadKindParameters) {
  fault::FaultPlan plan;
  fault::FaultEvent e;
  e.channel = 0;
  e.start = 0;
  e.duration = seconds(1);

  e.kind = fault::FaultKind::kRateCliff;
  e.rate_scale = 1.0;  // must be in (0, 1)
  plan.events = {e};
  EXPECT_THROW(plan.validate(1), std::invalid_argument);

  e.kind = fault::FaultKind::kGeBurst;
  e.rate_scale = 0.1;
  e.loss = channel::LossConfig{};  // lossless episode = no-op
  plan.events = {e};
  EXPECT_THROW(plan.validate(1), std::invalid_argument);

  e.kind = fault::FaultKind::kDelaySpike;
  e.extra_delay = 0;
  plan.events = {e};
  EXPECT_THROW(plan.validate(1), std::invalid_argument);

  e.kind = fault::FaultKind::kFlap;
  e.extra_delay = milliseconds(100);
  e.flap_up_fraction = 1.5;
  plan.events = {e};
  EXPECT_THROW(plan.validate(1), std::invalid_argument);
}

TEST(FaultPlan, RejectsSameFamilyOverlapOnSameLink) {
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, seconds(1), seconds(2)));
  fault::FaultEvent flap;  // flap shares the availability family
  flap.kind = fault::FaultKind::kFlap;
  flap.channel = 0;
  flap.start = seconds(2);
  flap.duration = seconds(2);
  plan.events.push_back(flap);
  try {
    plan.validate(1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos)
        << e.what();
  }
  // Disjoint directions on the same channel are fine.
  plan.events[0] = outage(0, seconds(1), seconds(2), fault::FaultDir::kUplink);
  plan.events[1].dir = fault::FaultDir::kDownlink;
  EXPECT_NO_THROW(plan.validate(1));
}

TEST(FaultPlan, FuzzedPlansAreValidAndDeterministic) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto a = fault::FaultPlan::fuzzed(seed, 2, seconds(10));
    const auto b = fault::FaultPlan::fuzzed(seed, 2, seconds(10));
    ASSERT_FALSE(a.empty());
    EXPECT_NO_THROW(a.validate(2));
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].kind, b.events[i].kind);
      EXPECT_EQ(a.events[i].channel, b.events[i].channel);
      EXPECT_EQ(a.events[i].start, b.events[i].start);
      EXPECT_EQ(a.events[i].duration, b.events[i].duration);
      EXPECT_EQ(a.events[i].loss_seed, b.events[i].loss_seed);
      // Every event fits the requested horizon.
      EXPECT_GE(a.events[i].start, 0);
      EXPECT_LE(a.events[i].end(), seconds(10));
    }
  }
  // Different seeds do not all collapse onto one plan.
  const auto x = fault::FaultPlan::fuzzed(1, 2, seconds(10));
  const auto y = fault::FaultPlan::fuzzed(2, 2, seconds(10));
  const bool differ = x.events.size() != y.events.size() ||
                      x.events[0].start != y.events[0].start ||
                      x.events[0].kind != y.events[0].kind;
  EXPECT_TRUE(differ);
}

// ---- Link fault hooks ----

struct LinkHarness {
  sim::Simulator s;
  channel::Link link;
  std::vector<sim::Time> delivered_at;

  explicit LinkHarness(channel::LinkConfig cfg = {}) : link(s, std::move(cfg)) {
    link.set_receiver([this](net::PacketPtr) {
      delivered_at.push_back(s.now());
    });
  }

  void send(std::int64_t size = 1000) {
    auto p = net::make_packet();
    p->type = net::PacketType::kData;
    p->size_bytes = size;
    link.send(std::move(p));
  }
};

TEST(LinkFault, OutagePausesServiceUntilClear) {
  LinkHarness h;
  h.s.at(milliseconds(5), [&] { h.link.fault_set_down(true); });
  h.s.at(milliseconds(6), [&] { h.send(); });
  h.s.at(milliseconds(500), [&] { h.link.fault_set_down(false); });
  h.s.run();
  // The packet could only be delivered after the link came back.
  ASSERT_EQ(h.delivered_at.size(), 1u);
  EXPECT_GE(h.delivered_at[0], milliseconds(500));
  EXPECT_EQ(h.link.stats().delivered_packets, 1);
}

TEST(LinkFault, DownLinkStillTakesQueueAndDroptails) {
  channel::LinkConfig cfg;
  cfg.queue_limit_bytes = 3000;
  LinkHarness h(cfg);
  h.link.fault_set_down(true);
  for (int i = 0; i < 5; ++i) h.send(1000);
  // 3 fit the queue, 2 droptail — blackout cost is observable.
  EXPECT_EQ(h.link.stats().enqueued_packets, 3);
  EXPECT_EQ(h.link.stats().dropped_queue_packets, 2);
  EXPECT_TRUE(h.link.fault_down());
  h.link.fault_set_down(false);
  h.s.run();
  EXPECT_EQ(h.link.stats().delivered_packets, 3);
}

TEST(LinkFault, RateCliffThinsDeliveryDeterministically) {
  auto run = [](double scale) {
    channel::LinkConfig cfg;
    cfg.capacity = trace::CapacityTrace::constant(sim::mbps(8));
    LinkHarness h(cfg);
    h.link.fault_set_rate_scale(scale);
    for (int i = 0; i < 200; ++i) {
      h.s.at(milliseconds(i), [&] { h.send(1000); });
    }
    h.s.run_until(milliseconds(210));
    return h.link.stats().delivered_packets;
  };
  const auto full = run(1.0);
  const auto half = run(0.5);
  ASSERT_GT(full, 0);
  // The accumulator admits ~scale of opportunities: within 20% of half.
  EXPECT_NEAR(static_cast<double>(half), 0.5 * static_cast<double>(full),
              0.2 * static_cast<double>(full));
  EXPECT_EQ(run(0.5), half);  // no RNG involved
}

TEST(LinkFault, DelaySpikeAddsToPropagation) {
  channel::LinkConfig cfg;
  cfg.prop_delay = milliseconds(10);
  LinkHarness h(cfg);
  h.send(1000);
  h.s.run();
  ASSERT_EQ(h.delivered_at.size(), 1u);
  const sim::Time base = h.delivered_at[0];

  LinkHarness h2(cfg);
  h2.link.fault_set_extra_delay(milliseconds(40));
  h2.send(1000);
  h2.s.run();
  ASSERT_EQ(h2.delivered_at.size(), 1u);
  EXPECT_EQ(h2.delivered_at[0], base + milliseconds(40));
}

TEST(LinkFault, EpisodeLossIsSeededAndClears) {
  channel::LossConfig episode;
  episode.ge_p_good_to_bad = 0.2;
  episode.ge_p_bad_to_good = 0.2;
  episode.ge_loss_in_bad = 1.0;
  auto run = [&](std::uint64_t seed) {
    LinkHarness h;
    h.link.fault_set_episode_loss(episode, seed);
    for (int i = 0; i < 300; ++i) {
      h.s.at(milliseconds(i), [&] { h.send(100); });
    }
    h.s.run();
    return h.link.stats().dropped_wire_packets;
  };
  const auto a = run(7);
  EXPECT_GT(a, 0);
  EXPECT_EQ(run(7), a);   // same seed, same burst pattern
  EXPECT_NE(run(8), a);   // independent stream
  // Clearing the episode restores losslessness.
  LinkHarness h;
  h.link.fault_set_episode_loss(episode, 7);
  h.link.fault_clear_episode_loss();
  for (int i = 0; i < 100; ++i) h.s.at(milliseconds(i), [&] { h.send(100); });
  h.s.run();
  EXPECT_EQ(h.link.stats().dropped_wire_packets, 0);
}

TEST(LinkFault, DownLinkEstimatesReportUnusable) {
  LinkHarness h;
  h.link.fault_set_down(true);
  EXPECT_EQ(h.link.estimated_delivery_delay(1500), sim::kTimeNever);
  EXPECT_EQ(h.link.recent_delivery_rate_bps(), 0.0);
  h.link.fault_set_down(false);
  EXPECT_LT(h.link.estimated_delivery_delay(1500), sim::kTimeNever);
}

// ---- FaultInjector ----

struct NetHarness {
  sim::Simulator s;
  net::TwoHostNetwork net;

  explicit NetHarness(const char* policy = "min-delay")
      : net(s, core::make_policy(policy), core::make_policy(policy)) {
    net.add_channel(channel::embb_constant_profile());
    net.add_channel(channel::urllc_profile());
    net.finalize();
  }
};

TEST(FaultInjector, AppliesAndReversesWindowsOnSchedule) {
  NetHarness h;
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, milliseconds(100), milliseconds(50)));
  fault::FaultInjector inj(h.s, h.net.channels(), plan);
  ASSERT_EQ(inj.windows().size(), 1u);

  auto& down_link = h.net.channels().at(0).downlink();
  auto& up_link = h.net.channels().at(0).uplink();
  h.s.at(milliseconds(99), [&] { EXPECT_FALSE(down_link.fault_down()); });
  h.s.at(milliseconds(120), [&] {
    EXPECT_TRUE(down_link.fault_down());
    EXPECT_TRUE(up_link.fault_down());  // dir = kBoth
    // The other channel is untouched.
    EXPECT_FALSE(h.net.channels().at(1).downlink().fault_down());
  });
  h.s.at(milliseconds(151), [&] { EXPECT_FALSE(down_link.fault_down()); });
  h.s.run();
}

TEST(FaultInjector, DirectionSelectsOneLink) {
  NetHarness h;
  fault::FaultPlan plan;
  plan.events.push_back(
      outage(0, milliseconds(10), milliseconds(10), fault::FaultDir::kUplink));
  fault::FaultInjector inj(h.s, h.net.channels(), plan);
  h.s.at(milliseconds(15), [&] {
    EXPECT_FALSE(h.net.channels().at(0).downlink().fault_down());
    EXPECT_TRUE(h.net.channels().at(0).uplink().fault_down());
  });
  h.s.run();
}

TEST(FaultInjector, RejectsInvalidPlanUpFront) {
  NetHarness h;
  fault::FaultPlan plan;
  plan.events.push_back(outage(5, 0, seconds(1)));  // only 2 channels
  EXPECT_THROW(fault::FaultInjector(h.s, h.net.channels(), plan),
               std::invalid_argument);
}

TEST(FaultInjector, FlapExpandsToSubWindowsAndEndsUp) {
  NetHarness h;
  fault::FaultPlan plan;
  fault::FaultEvent flap;
  flap.kind = fault::FaultKind::kFlap;
  flap.channel = 1;
  flap.start = milliseconds(100);
  flap.duration = milliseconds(400);
  flap.flap_period = milliseconds(100);
  flap.flap_up_fraction = 0.5;
  plan.events.push_back(flap);
  fault::FaultInjector inj(h.s, h.net.channels(), plan);
  // One down window per period.
  EXPECT_EQ(inj.windows().size(), 4u);
  for (const auto& w : inj.windows()) {
    EXPECT_TRUE(w.down);
    EXPECT_GE(w.start, flap.start);
    EXPECT_LE(w.end, flap.end());
    EXPECT_LT(w.start, w.end);
  }
  h.s.run();
  // After the event the link is guaranteed back up (queues can drain).
  EXPECT_FALSE(h.net.channels().at(1).downlink().fault_down());
}

TEST(FaultInjector, JitteredFlapIsSeededButStaysInWindow) {
  NetHarness h1, h2, h3;
  fault::FaultEvent flap;
  flap.kind = fault::FaultKind::kFlap;
  flap.channel = 0;
  flap.start = milliseconds(50);
  flap.duration = milliseconds(600);
  flap.flap_period = milliseconds(150);
  flap.flap_seed = 11;
  fault::FaultPlan plan;
  plan.events.push_back(flap);
  fault::FaultInjector a(h1.s, h1.net.channels(), plan);
  fault::FaultInjector b(h2.s, h2.net.channels(), plan);
  plan.events[0].flap_seed = 12;
  fault::FaultInjector c(h3.s, h3.net.channels(), plan);
  ASSERT_EQ(a.windows().size(), b.windows().size());
  // Jitter varies each down span's *length*; starts stay on the period
  // grid, so seeds are compared by window ends.
  bool same_as_c = a.windows().size() == c.windows().size();
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    EXPECT_EQ(a.windows()[i].start, b.windows()[i].start);
    EXPECT_EQ(a.windows()[i].end, b.windows()[i].end);
    EXPECT_LE(a.windows()[i].end, flap.end());
    if (same_as_c && a.windows()[i].end != c.windows()[i].end) {
      same_as_c = false;
    }
  }
  EXPECT_FALSE(same_as_c);  // the seed actually jitters the spans
}

TEST(FaultInjector, CountsBlackoutCost) {
  // Single channel: with no failover target, traffic sent during the
  // window is committed into the dead link and counted as blackout cost.
  sim::Simulator s;
  net::TwoHostNetwork net(s, core::make_policy("embb-only"),
                          core::make_policy("embb-only"));
  net.add_channel(channel::embb_constant_profile());
  net.finalize();
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, milliseconds(100), milliseconds(100),
                               fault::FaultDir::kUplink));
  fault::FaultInjector inj(s, net.channels(), plan);
  const auto flow = net::next_flow_id();
  net.server().register_flow(flow, [](net::PacketPtr) {});
  for (int i = 0; i < 300; ++i) {
    s.at(milliseconds(i), [&] {
      auto p = net::make_packet();
      p->flow = flow;
      p->type = net::PacketType::kData;
      p->size_bytes = 1000;
      net.client().send(std::move(p));
    });
  }
  s.run();
  // ~100 ms of 1000 B/ms committed during the window.
  EXPECT_GT(inj.blackout_committed_bytes(), 50 * 1000);
  EXPECT_EQ(inj.blackout_dropped_packets(), 0);  // queue is large enough
}

TEST(FaultInjector, RecordsAuditEdgesWithReasonTags) {
  obs::SteeringAuditLog log;
  obs::ScopedSteeringAuditLog scope(log);
  log.enable(1024);
  NetHarness h;
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, milliseconds(10), milliseconds(20)));
  fault::FaultEvent spike;
  spike.kind = fault::FaultKind::kDelaySpike;
  spike.channel = 1;
  spike.start = milliseconds(40);
  spike.duration = milliseconds(20);
  plan.events.push_back(spike);
  fault::FaultInjector inj(h.s, h.net.channels(), plan);
  h.s.run();
  const std::string jsonl = log.to_jsonl();
  EXPECT_NE(jsonl.find("\"policy\":\"fault\""), std::string::npos);
  EXPECT_NE(jsonl.find("fault:outage-start"), std::string::npos);
  EXPECT_NE(jsonl.find("fault:outage-end"), std::string::npos);
  EXPECT_NE(jsonl.find("fault:delay-spike-start"), std::string::npos);
  EXPECT_NE(jsonl.find("fault:delay-spike-end"), std::string::npos);
}

TEST(FaultInjector, FaultDownProbeIsSampled) {
  obs::TelemetrySampler ts;
  obs::ScopedTelemetrySampler scope(ts);
  ts.enable({.period = milliseconds(10), .groups = {"fault"}});
  NetHarness h;
  fault::FaultPlan plan;
  plan.events.push_back(outage(0, milliseconds(20), milliseconds(30)));
  fault::FaultInjector inj(h.s, h.net.channels(), plan);
  ts.attach(h.s);
  h.s.run_until(milliseconds(100));
  bool saw_down = false, saw_up = false;
  std::string down_series;
  for (const auto& name : ts.series_names()) {
    if (name.find("fault_down") == std::string::npos) continue;
    down_series = name;
    for (const auto& s : ts.samples(name)) {
      (s.value > 0 ? saw_down : saw_up) = true;
    }
  }
  // The series must show both states: down during [20,50), up after.
  EXPECT_FALSE(down_series.empty());
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);
}

// ---- Steering failover on channel-down ----

class FailoverTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FailoverTest, AvoidsDownChannelAndTagsReason) {
  auto policy = core::make_policy(GetParam());
  steer::ChannelView embb;
  embb.index = 0;
  embb.base_owd = milliseconds(25);
  embb.avg_rate_bps = 60e6;
  embb.recent_rate_bps = 60e6;
  embb.queue_limit_bytes = 4 * 1024 * 1024;
  steer::ChannelView urllc;
  urllc.index = 1;
  urllc.base_owd = sim::microseconds(2500);
  urllc.avg_rate_bps = 2e6;
  urllc.recent_rate_bps = 2e6;
  urllc.queue_limit_bytes = 64 * 1024;
  urllc.reliable = true;
  std::array<steer::ChannelView, 2> views = {embb, urllc};
  views[0].down = true;

  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1200;
  for (int i = 0; i < 8; ++i) {  // stateful policies get several looks
    const auto d = policy->steer(pkt, views, milliseconds(i));
    EXPECT_EQ(d.channel, 1u) << GetParam() << " steered into a down channel";
    for (const auto dup : d.duplicate_on) EXPECT_NE(dup, 0u);
    ASSERT_NE(d.reason, nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FailoverTest,
                         ::testing::Values("embb-only", "round-robin",
                                           "weighted", "min-delay",
                                           "dchannel", "dchannel+prio",
                                           "msg-priority", "redundant",
                                           "cost-aware", "flow-binding"));

TEST(Failover, AllChannelsDownFallsBackToDefault) {
  std::array<steer::ChannelView, 2> views;
  views[0].index = 0;
  views[0].down = true;
  views[1].index = 1;
  views[1].down = true;
  EXPECT_EQ(steer::first_up_channel(views), 0u);
  EXPECT_EQ(steer::best_up_channel(views, 1500), 0u);
  auto policy = core::make_policy("min-delay");
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1200;
  EXPECT_LT(policy->steer(pkt, views, 0).channel, views.size());
}

TEST(Failover, RedundantDuplicatesOnlyOnSurvivors) {
  steer::RedundantPolicy policy(std::make_unique<steer::MinDelayPolicy>(),
                                steer::RedundantConfig{.mirror_all = true});
  std::array<steer::ChannelView, 3> views;
  for (std::size_t i = 0; i < views.size(); ++i) {
    views[i].index = i;
    views[i].avg_rate_bps = 10e6;
    views[i].recent_rate_bps = 10e6;
    views[i].base_owd = milliseconds(10);
  }
  views[1].down = true;
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 500;
  const auto d = policy.steer(pkt, views, 0);
  EXPECT_NE(d.channel, 1u);
  ASSERT_EQ(d.duplicate_on.size(), 1u);  // only the surviving alternative
  EXPECT_NE(d.duplicate_on[0], 1u);
}

// ---- Transport behavior through a blackout ----

TEST(TransportFault, BlackoutBackoffIsBoundedNotAStorm) {
  // Single-channel topology: no failover possible, the transport must
  // ride out a 4 s blackout on RTO backoff without a retransmit storm.
  core::ScenarioConfig cfg;
  cfg.channels = {channel::embb_constant_profile()};
  cfg.up_policy = "embb-only";
  cfg.down_policy = "embb-only";
  fault::FaultEvent e = outage(0, seconds(2), seconds(4));
  cfg.faults.events.push_back(e);
  const auto r = core::run_bulk(cfg, "cubic", seconds(10));
  // Goodput survives outside the window.
  EXPECT_GT(r.goodput_bps, 1e6);
  // Consecutive RTOs escalate to single-probe mode: the bytes committed
  // into the dead link over 4 s stay far below one congestion window's
  // worth per RTO (a storm would re-blast hundreds of kB repeatedly).
  EXPECT_GT(r.rto_count, 0);
  EXPECT_LT(r.fault_blackout_committed_bytes, 400 * 1000);
}

TEST(TransportFault, RecoversFullGoodputAfterOutageViaFailover) {
  core::ScenarioConfig cfg = core::ScenarioConfig::fig1("dchannel");
  cfg.faults.events.push_back(outage(0, seconds(4), seconds(2)));
  const auto r = core::run_bulk(cfg, "cubic", seconds(12));
  const auto baseline =
      core::run_bulk(core::ScenarioConfig::fig1("dchannel"), "cubic",
                     seconds(12));
  // The outage costs throughput but the connection survives and resumes
  // (well above the URLLC-only floor of ~2 Mbps).
  EXPECT_GT(r.goodput_bps, 0.3 * baseline.goodput_bps);
  EXPECT_GT(r.goodput_bps, 4e6);
  // With a surviving channel, nothing new is committed into the dead one.
  EXPECT_EQ(r.fault_blackout_committed_bytes, 0);
}

// ---- The `faults` spec block ----

TEST(FaultSpec, ParsesEveryKindWithDefaults) {
  const auto s = exp::ScenarioSpec::from_json_text(R"({
    "workload": "bulk",
    "channels": [{"type": "embb"}, {"type": "urllc"}],
    "faults": [
      {"kind": "outage", "channel": 0, "start_s": 1, "duration_s": 2},
      {"kind": "rate_cliff", "channel": 1, "start_s": 4, "rate_scale": 0.25,
       "direction": "down"},
      {"kind": "ge_burst", "channel": 0, "start_s": 6, "p_good_to_bad": 0.1,
       "loss_in_bad": 0.8, "seed": 9},
      {"kind": "delay_spike", "channel": 1, "start_s": 6,
       "extra_delay_ms": 250},
      {"kind": "flap", "channel": 0, "start_s": 8, "duration_s": 2,
       "period_s": 0.25, "up_fraction": 0.6}
    ]
  })");
  ASSERT_EQ(s.faults.size(), 5u);
  EXPECT_EQ(s.faults[0].kind, "outage");
  EXPECT_DOUBLE_EQ(s.faults[0].duration_s, 2.0);
  EXPECT_EQ(s.faults[0].direction, "both");
  EXPECT_EQ(s.faults[1].direction, "down");
  EXPECT_DOUBLE_EQ(s.faults[1].rate_scale, 0.25);
  EXPECT_EQ(s.faults[2].seed, 9);
  EXPECT_DOUBLE_EQ(s.faults[2].loss_in_bad, 0.8);
  EXPECT_EQ(s.faults[3].kind, "delay_spike");
  EXPECT_DOUBLE_EQ(s.faults[3].extra_delay_ms, 250.0);
  EXPECT_DOUBLE_EQ(s.faults[4].period_s, 0.25);
  EXPECT_DOUBLE_EQ(s.faults[4].up_fraction, 0.6);
  EXPECT_EQ(s.faults[4].seed, -1);  // default: strictly periodic
}

TEST(FaultSpec, RoundTripsThroughToJson) {
  const auto s = exp::ScenarioSpec::from_json_text(R"({
    "workload": "bulk", "duration_s": 10,
    "channels": [{"type": "embb"}, {"type": "urllc"}],
    "faults": [
      {"kind": "outage", "channel": 0, "start_s": 2, "duration_s": 1,
       "direction": "up"},
      {"kind": "ge_burst", "channel": 1, "start_s": 5, "seed": 3}
    ]
  })");
  const std::string json = s.to_json();
  const auto s2 = exp::ScenarioSpec::from_json_text(json);
  EXPECT_EQ(s2.to_json(), json);
  ASSERT_EQ(s2.faults.size(), 2u);
  EXPECT_TRUE(s2.faults == s.faults);
}

std::string fault_error(const std::string& faults_json) {
  try {
    (void)exp::ScenarioSpec::from_json_text(
        R"({"workload": "bulk", "channels": [{"type": "embb"}, )"
        R"({"type": "urllc"}], "faults": )" +
        faults_json + "}");
    return "";
  } catch (const exp::SpecError& e) {
    return e.what();
  }
}

TEST(FaultSpec, RejectsUnknownKindWithPath) {
  const std::string err = fault_error(R"([{"kind": "meteor"}])");
  EXPECT_NE(err.find("faults.0.kind"), std::string::npos) << err;
}

TEST(FaultSpec, RejectsStructuralErrorsWithPaths) {
  // Not an array.
  EXPECT_NE(fault_error(R"({"kind": "outage"})").find("faults"),
            std::string::npos);
  // Channel out of range for the scenario's channel set.
  EXPECT_NE(fault_error(R"([{"kind": "outage", "channel": 2}])")
                .find("faults.0.channel"),
            std::string::npos);
  // Unknown key inside an event.
  EXPECT_NE(fault_error(R"([{"kind": "outage", "blast_radius": 3}])")
                .find("faults.0"),
            std::string::npos);
  // Bad direction string.
  EXPECT_NE(fault_error(R"([{"kind": "outage", "direction": "sideways"}])")
                .find("faults.0.direction"),
            std::string::npos);
}

TEST(FaultSpec, RejectsNegativeDurationsAndRanges) {
  EXPECT_NE(fault_error(R"([{"kind": "outage", "duration_s": -1}])")
                .find("faults.0.duration_s"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "outage", "start_s": -0.5}])")
                .find("faults.0.start_s"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "rate_cliff", "rate_scale": 1.0}])")
                .find("faults.0.rate_scale"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "flap", "up_fraction": 0}])")
                .find("faults.0.up_fraction"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "ge_burst", "seed": -2}])")
                .find("faults.0.seed"),
            std::string::npos);
}

TEST(FaultSpec, RejectsKindForeignKnobs) {
  // Dead parameters can't ride along silently (same contract as policy
  // knobs in exp_test.cpp).
  EXPECT_NE(fault_error(R"([{"kind": "outage", "rate_scale": 0.5}])")
                .find("faults.0.rate_scale"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "rate_cliff", "extra_delay_ms": 5}])")
                .find("faults.0.extra_delay_ms"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "delay_spike", "p_good_to_bad": 0.1}])")
                .find("faults.0.p_good_to_bad"),
            std::string::npos);
  EXPECT_NE(fault_error(R"([{"kind": "outage", "seed": 1}])")
                .find("faults.0.seed"),
            std::string::npos);
}

TEST(FaultSpec, RejectsOverlappingAvailabilityWindows) {
  const std::string err = fault_error(
      R"([{"kind": "outage", "channel": 0, "start_s": 1, "duration_s": 3},
          {"kind": "flap", "channel": 0, "start_s": 2, "duration_s": 3}])");
  EXPECT_NE(err.find("faults.1"), std::string::npos) << err;
  EXPECT_NE(err.find("overlap"), std::string::npos) << err;
  // Disjoint in time or on different channels is fine.
  EXPECT_EQ(fault_error(
                R"([{"kind": "outage", "channel": 0, "start_s": 1},
                    {"kind": "outage", "channel": 0, "start_s": 5}])"),
            "");
  EXPECT_EQ(fault_error(
                R"([{"kind": "outage", "channel": 0, "start_s": 1},
                    {"kind": "outage", "channel": 1, "start_s": 1}])"),
            "");
}

// ---- End-to-end determinism under faults ----

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FaultDeterminism, GeBurstRunsAreByteIdentical) {
  const auto spec = exp::ScenarioSpec::from_json_text(R"({
    "name": "ge_det", "workload": "bulk", "duration_s": 4,
    "channels": [{"type": "embb"}, {"type": "urllc"}],
    "policy": "dchannel",
    "faults": [
      {"kind": "ge_burst", "channel": 0, "start_s": 1, "duration_s": 2,
       "p_good_to_bad": 0.05, "p_bad_to_good": 0.3, "loss_in_bad": 0.9},
      {"kind": "flap", "channel": 1, "start_s": 1, "duration_s": 2,
       "period_s": 0.4, "seed": 5}
    ],
    "telemetry": {"period_ms": 20, "audit": true}
  })");
  const std::string p1 = ::testing::TempDir() + "fault_det_a";
  const std::string p2 = ::testing::TempDir() + "fault_det_b";
  exp::RunOptions o1, o2;
  o1.out_prefix = p1;
  o2.out_prefix = p2;
  const auto r1 = exp::run_scenario(spec, o1);
  const auto r2 = exp::run_scenario(spec, o2);
  ASSERT_TRUE(r1.error.empty()) << r1.error;
  ASSERT_TRUE(r2.error.empty()) << r2.error;
  EXPECT_EQ(exp::to_jsonl({r1}), exp::to_jsonl({r2}));
  const std::string t1 = slurp(p1 + ".telemetry.jsonl");
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, slurp(p2 + ".telemetry.jsonl"));
  EXPECT_EQ(slurp(p1 + ".audit.jsonl"), slurp(p2 + ".audit.jsonl"));
}

TEST(FaultDeterminism, OutageRecoveryMetricIsReported) {
  const auto spec = exp::ScenarioSpec::from_json_text(R"({
    "name": "trec", "workload": "bulk", "duration_s": 6,
    "channels": [{"type": "embb"}, {"type": "urllc"}],
    "policy": "dchannel",
    "faults": [{"kind": "outage", "channel": 0, "start_s": 2,
                "duration_s": 1}]
  })");
  const auto r = exp::run_scenario(spec);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.metrics.contains("fault.outage0.time_to_recover_ms"));
  const double trec = r.metrics.at("fault.outage0.time_to_recover_ms");
  // ACKs keep flowing over URLLC, so recovery is near-immediate.
  EXPECT_GE(trec, 0.0);
  EXPECT_LT(trec, 1000.0);
  EXPECT_TRUE(r.metrics.contains("fault.blackout_committed_bytes"));
}

}  // namespace
}  // namespace hvc
