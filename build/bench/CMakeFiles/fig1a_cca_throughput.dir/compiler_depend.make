# Empty compiler generated dependencies file for fig1a_cca_throughput.
# This may be replaced when dependencies are built.
