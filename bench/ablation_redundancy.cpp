// Ablation B (§2.2): the bandwidth-vs-reliability trade-off via Wi-Fi 7
// MLO-style replication. Two contended Wi-Fi links with bursty
// (Gilbert-Elliott) loss carry deadline-bound messages; we compare
// single-link, min-delay steering, and redundant (replicated) steering.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"
#include "steer/redundant.hpp"
#include "transport/datagram.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_redundancy");
  obs.set_seed(977);
  bench::print_header(
      "Ablation B: MLO redundancy on lossy Wi-Fi links (burst loss, ~10% marginal)");
  bench::print_row({"policy", "delivered %", "p95 ms", "bytes sent x"});

  auto run = [&](const char* name,
                 auto make_policy) -> std::array<double, 3> {
    sim::Simulator s;
    net::TwoHostNetwork net(s, make_policy(), make_policy());
    // Two 5 GHz/6 GHz links with independent, heavy burst loss (a noisy
    // factory floor — the Wi-Fi TSN setting of [16, 36]).
    auto link_a = channel::wifi_contended_profile(sim::mbps(80),
                                                  sim::milliseconds(12), 0.5);
    link_a.loss.ge_p_good_to_bad = 0.02;
    link_a.loss.ge_p_bad_to_good = 0.12;
    link_a.loss.bernoulli = 0.02;
    auto link_b = channel::wifi_contended_profile(sim::mbps(60),
                                                  sim::milliseconds(8), 0.5);
    link_b.loss.ge_p_good_to_bad = 0.02;
    link_b.loss.ge_p_bad_to_good = 0.12;
    link_b.loss.bernoulli = 0.02;
    link_b.loss_seed = 977;  // independent loss processes
    link_b.name = "wifi-6ghz";
    net.add_channel(link_a);
    net.add_channel(link_b);
    net.finalize();

    const auto flow = net::next_flow_id();
    transport::DatagramSocket tx(net.server(), flow);
    transport::DatagramSocket rx(net.client(), flow);
    sim::Summary latency;
    int delivered = 0;
    rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
      latency.add(sim::to_millis(ev.completed - ev.sent_at));
      ++delivered;
    });
    constexpr int kMessages = 3000;
    for (int i = 0; i < kMessages; ++i) {
      s.at(sim::milliseconds(10 * i), [&] { tx.send_message(1200, 0); });
    }
    s.run_until(sim::seconds(32));
    const double sent_bytes =
        static_cast<double>(net.downlink_shim().stats().bytes_per_channel[0] +
                            net.downlink_shim().stats().bytes_per_channel[1]);
    (void)name;
    return {100.0 * delivered / kMessages, latency.percentile(95),
            sent_bytes / (kMessages * 1240.0)};
  };

  const auto single = run("single", [] {
    return std::make_unique<steer::SingleChannelPolicy>(0);
  });
  const auto mindelay = run("min-delay", [] {
    return std::make_unique<steer::MinDelayPolicy>();
  });
  const auto redundant = run("redundant", [] {
    return std::make_unique<steer::RedundantPolicy>(
        std::make_unique<steer::MinDelayPolicy>(),
        steer::RedundantConfig{.mirror_all = true});
  });

  bench::print_row({"single-link", bench::fmt(single[0]),
                    bench::fmt(single[1]), bench::fmt(single[2], 2)});
  bench::print_row({"min-delay", bench::fmt(mindelay[0]),
                    bench::fmt(mindelay[1]), bench::fmt(mindelay[2], 2)});
  bench::print_row({"redundant", bench::fmt(redundant[0]),
                    bench::fmt(redundant[1]), bench::fmt(redundant[2], 2)});

  std::printf(
      "\nExpected shape: replication roughly squares the loss probability\n"
      "(delivered%% -> ~99%%+) at ~2x the bandwidth cost — the §2.2\n"
      "bandwidth-vs-reliability trade-off.\n");
  return 0;
}
