// Tests for the core façade: policy factory, scenario construction, and
// the one-call experiment runners (which back every benchmark).
#include <gtest/gtest.h>

#include "core/recorder.hpp"
#include "core/scenario.hpp"
#include "steer/dchannel.hpp"
#include "trace/gen5g.hpp"

namespace hvc::core {
namespace {

using sim::seconds;

TEST(PolicyFactory, AllNamesResolve) {
  for (const char* name :
       {"embb-only", "urllc-only", "round-robin", "weighted", "min-delay",
        "dchannel", "dchannel+prio", "msg-priority", "redundant",
        "cost-aware"}) {
    EXPECT_NE(make_policy(name), nullptr) << name;
  }
  EXPECT_THROW(make_policy("nope"), std::invalid_argument);
}

TEST(PolicyFactory, VariantsDeclareCorrectLayer) {
  EXPECT_FALSE(make_policy("dchannel")->uses_app_info());
  EXPECT_FALSE(make_policy("dchannel")->uses_flow_priority());
  EXPECT_TRUE(make_policy("dchannel+prio")->uses_flow_priority());
  EXPECT_TRUE(make_policy("msg-priority")->uses_app_info());
}

TEST(ScenarioConfig, Fig1HasPaperChannels) {
  const auto cfg = ScenarioConfig::fig1();
  ASSERT_EQ(cfg.channels.size(), 2u);
  EXPECT_EQ(cfg.channels[0].rtt(), sim::milliseconds(50));
  EXPECT_EQ(cfg.channels[1].rtt(), sim::milliseconds(5));
}

TEST(Scenario, FactoryOverridesNamedPolicy) {
  auto cfg = ScenarioConfig::fig1("embb-only");
  bool used = false;
  cfg.up_factory = [&] {
    used = true;
    return make_policy("urllc-only");
  };
  Scenario sc(cfg);
  EXPECT_TRUE(used);
}

TEST(RunBulk, GoodputMatchesChannelForSingleChannelPolicy) {
  const auto r = run_bulk(ScenarioConfig::fig1("embb-only"), "cubic",
                          seconds(20));
  EXPECT_GT(r.goodput_bps, 30e6);
  EXPECT_LT(r.goodput_bps, 62e6);
  // All data on channel 0.
  EXPECT_EQ(r.data_packets_per_channel[1], 0);
  EXPECT_FALSE(r.rtt_ms.empty());
  EXPECT_GT(r.goodput_mbps.size(), 10u);
}

TEST(RunBulk, Fig1ShapeHolds) {
  // The paper's core qualitative claim, as a regression test: under
  // steering, loss-based CUBIC far outperforms delay-based Vegas.
  const auto cubic = run_bulk(ScenarioConfig::fig1(), "cubic", seconds(30));
  const auto vegas = run_bulk(ScenarioConfig::fig1(), "vegas", seconds(30));
  EXPECT_GT(cubic.goodput_bps, 5 * vegas.goodput_bps);
  EXPECT_LT(vegas.goodput_bps, 10e6);
}

TEST(RunBulk, HvcAwareCcaFixesSteeringCollapse) {
  const auto bbr = run_bulk(ScenarioConfig::fig1(), "bbr", seconds(30));
  const auto hvc = run_bulk(ScenarioConfig::fig1(), "hvc", seconds(30));
  EXPECT_GT(hvc.goodput_bps, 3 * bbr.goodput_bps);
  EXPECT_GT(hvc.goodput_bps, 40e6);
}

TEST(RunVideo, SchemesOrderAsInFig2) {
  const auto mk = [&](const char* policy) {
    return run_video(
        ScenarioConfig::traced(trace::FiveGProfile::kMmWaveDriving, policy,
                               seconds(60), 42),
        {}, {}, seconds(30));
  };
  const auto embb = mk("embb-only");
  const auto dch = mk("dchannel");
  const auto prio = mk("msg-priority");
  const double p95_embb = embb.stats.latency_ms.percentile(95);
  const double p95_dch = dch.stats.latency_ms.percentile(95);
  const double p95_prio = prio.stats.latency_ms.percentile(95);
  EXPECT_LT(p95_prio, p95_dch);
  EXPECT_LT(p95_dch, p95_embb);
  // SSIM ordering is the mirror image (quality traded for latency).
  EXPECT_GE(embb.stats.ssim.mean(), prio.stats.ssim.mean() - 0.01);
  // CDF vectors are sorted and sized to the frame count.
  EXPECT_EQ(prio.latency_cdf_ms.size(),
            static_cast<std::size_t>(prio.stats.frames_decoded));
  EXPECT_TRUE(std::is_sorted(prio.latency_cdf_ms.begin(),
                             prio.latency_cdf_ms.end()));
}

TEST(RunWeb, ProducesPltSamplesForEveryLoad) {
  const auto corpus = app::web::generate_corpus({.pages = 4, .seed = 11});
  WebRunConfig web;
  web.loads_per_page = 2;
  const auto r = run_web(
      ScenarioConfig::traced(trace::FiveGProfile::kLowbandStationary,
                             "embb-only", seconds(60), 42),
      corpus, web);
  EXPECT_EQ(r.plt_ms.count(), 8u);
  EXPECT_EQ(r.per_page_mean_ms.count(), 4u);
  EXPECT_EQ(r.timeouts, 0);
  EXPECT_GT(r.plt_ms.min(), 50.0);
}

TEST(RunWeb, DChannelBeatsEmbbOnlyOnDrivingTrace) {
  const auto corpus = app::web::generate_corpus({.pages = 6, .seed = 11});
  WebRunConfig web;
  web.loads_per_page = 2;
  auto embb_cfg = ScenarioConfig::traced(
      trace::FiveGProfile::kLowbandDriving, "embb-only", seconds(90), 42);
  auto dch_cfg = ScenarioConfig::traced(
      trace::FiveGProfile::kLowbandDriving, "dchannel", seconds(90), 42);
  dch_cfg.up_factory = dch_cfg.down_factory = [] {
    return std::make_unique<steer::DChannelPolicy>(
        steer::DChannelConfig::web_tuned());
  };
  const auto embb = run_web(embb_cfg, corpus, web);
  const auto dch = run_web(dch_cfg, corpus, web);
  EXPECT_LT(dch.plt_ms.mean(), embb.plt_ms.mean());
}

TEST(Recorder, SamplesQueuesAndExportsCsv) {
  Scenario sc(ScenarioConfig::fig1());
  ChannelRecorder rec(sc.network(), sim::milliseconds(100));
  const auto flows = transport::make_flow_pair();
  // HVC-aware CCA holds ~1 BDP of standing queue once ramped: a reliable
  // backlog signal for the recorder to observe.
  transport::TcpSender snd(sc.server(), flows, transport::make_cca("hvc"));
  transport::TcpReceiver rcv(sc.client(), flows);
  snd.write(60'000'000);
  sc.sim().run_until(seconds(6));
  rec.stop();
  ASSERT_EQ(rec.series().size(), 2u);
  EXPECT_EQ(rec.series()[0].name, "embb");
  EXPECT_GE(rec.series()[0].down_queue_bytes.size(), 20u);
  // The bulk transfer must have shown up as eMBB backlog at some point.
  double max_q = 0;
  for (const auto& p : rec.series()[0].down_queue_bytes.points()) {
    max_q = std::max(max_q, p.value);
  }
  EXPECT_GT(max_q, 10'000.0);
  const auto csv = rec.to_csv();
  EXPECT_NE(csv.find("embb_down_queue"), std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 20);
}

TEST(Experiments, DeterministicAcrossInvocations) {
  const auto a = run_bulk(ScenarioConfig::fig1(), "bbr", seconds(10));
  const auto b = run_bulk(ScenarioConfig::fig1(), "bbr", seconds(10));
  EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
}

}  // namespace
}  // namespace hvc::core
