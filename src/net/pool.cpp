#include "net/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace hvc::net {

namespace {

// -1 = no override (use the environment), 0/1 = forced by a test.
std::atomic<int> g_pool_override{-1};

bool packet_pool_env() {
  // Read once per process; default on. The switch selects an allocation
  // strategy, never a behavior, so there is nothing to re-read mid-run.
  static const bool enabled = [] {
    const char* v = std::getenv("HVC_PACKET_POOL");
    return v == nullptr || *v == '\0' || std::string_view(v) != "0";
  }();
  return enabled;
}

}  // namespace

bool packet_pool_enabled() {
  const int forced = g_pool_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return packet_pool_env();
}

void set_packet_pool_for_test(bool enabled) {
  g_pool_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void clear_packet_pool_override_for_test() {
  g_pool_override.store(-1, std::memory_order_relaxed);
}

BlockPool& BlockPool::instance() {
  thread_local BlockPool pool;
  return pool;
}

}  // namespace hvc::net
