// Post-run report assembly: ingest the artifacts one prefix's run (or
// sweep) produced — results.jsonl, telemetry.jsonl, audit.jsonl and an
// optional lifecycle Chrome trace — and render them as human-readable
// summary tables, steering-decision shares, and one merged Chrome trace
// with lifecycle, telemetry-counter and audit-instant tracks on a shared
// simulated-time base.
//
// Everything here is a pure function of the artifact text (parse_* take
// strings; load() only adds the file I/O), so tests can exercise the
// whole pipeline without touching disk and the rendered output is
// byte-deterministic for identical inputs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace hvc::exp {

/// One telemetry sample row (`{"t_us":…,"series":…,"v":…}`).
struct ReportSample {
  double t_us = 0.0;
  std::string series;
  double value = 0.0;
};

/// One steering-audit row (see obs::SteeringAuditLog::to_jsonl).
struct ReportAuditRow {
  double t_us = 0.0;
  std::uint64_t pkt = 0;
  std::uint64_t flow = 0;
  std::string dir;     ///< "up" | "down" | "-"
  std::string type;    ///< "data" | "ack" | "control"
  std::string policy;
  std::string reason;
  int prio = 0;
  int app_prio = -1;   ///< -1 = no app header visible to the policy
  std::int64_t bytes = 0;
  int chosen = 0;
  int duplicates = 0;
};

/// The critical leg of one span stage (see obs::SpanRecorder::to_jsonl).
struct ReportSpanLeg {
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::int64_t bytes = 0;
  int slot = 0;
  std::string channel;
  std::string reason;   ///< steering/policy tag (joins the audit log)
  std::map<std::string, std::int64_t> parts_ns;  ///< component -> ns
};

struct ReportSpanStage {
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::int64_t prop_ns = 0;
  std::string prop_channel;
  int legs = 0;
  ReportSpanLeg crit;   ///< valid when legs > 0
};

/// One retained span exemplar (a page load / video chunk tree).
struct ReportSpanUnit {
  int run = -1;         ///< sweep run index; -1 = unsharded base artifact
  std::string key;      ///< "web.plt_ms" | "video.latency_ms" | …
  std::uint64_t n = 0;  ///< offer index within the key
  std::string keep;     ///< "tail" | "reservoir"
  std::uint64_t user = 0;
  std::uint64_t seq = 0;
  double value = 0;     ///< headline sample in cohort units
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::int64_t total_ns = 0;
  std::vector<ReportSpanStage> stages;
};

struct Report {
  std::string prefix;
  std::vector<RunResult> runs;          ///< from <prefix>.results.jsonl
  std::vector<ReportSample> telemetry;  ///< from <prefix>.telemetry.jsonl
  std::map<std::string, double> telemetry_meta;  ///< the meta line's fields
  std::vector<ReportAuditRow> audit;    ///< from <prefix>.audit.jsonl
  std::vector<ReportSpanUnit> spans;    ///< from <prefix>[.runN].spans.jsonl
  std::map<std::string, double> spans_meta;      ///< the meta line's fields
  std::string lifecycle_trace;          ///< raw Chrome trace JSON, optional

  /// Read every artifact that exists for `prefix`. results.jsonl is
  /// required (throws SpecError when missing/unparseable); the rest are
  /// optional. `trace_path`, when non-empty, names a lifecycle Chrome
  /// trace (hvc_run --trace output) to merge into to_chrome_trace().
  static Report load(const std::string& prefix,
                     const std::string& trace_path = "");

  // ---- Parsers (throw SpecError on malformed rows) ----
  static std::vector<RunResult> parse_results(std::string_view jsonl);
  static std::vector<ReportSample> parse_telemetry(
      std::string_view jsonl, std::map<std::string, double>* meta);
  static std::vector<ReportAuditRow> parse_audit(std::string_view jsonl);
  static std::vector<ReportSpanUnit> parse_spans(
      std::string_view jsonl, std::map<std::string, double>* meta);

  // ---- Renderers (plain text, trailing newline) ----

  /// Per-run headline metrics: name, axis params, key workload numbers.
  [[nodiscard]] std::string render_summary() const;

  /// Steering behaviour: per-channel decision shares (from the runs' obs
  /// counters) and, when an audit log is present, decision-reason shares
  /// per policy.
  [[nodiscard]] std::string render_decisions() const;

  /// Per-series telemetry statistics (count, mean, p50, p99, min, max).
  [[nodiscard]] std::string render_telemetry() const;

  /// City-workload cohort tables: one row per (cohort, metric) with the
  /// streaming stats and the cohort's Jain fairness index over per-user
  /// means ("city.jain.<cohort>"). Empty string when no run carries
  /// city cohort metrics.
  [[nodiscard]] std::string render_cohorts() const;

  /// Users-vs-quality capacity curves: runs are grouped into one curve
  /// per distinct non-population parameter set, ordered by population
  /// (the "city.users" axis, falling back to the city.users metric).
  /// Each point shows web PLT p50/p95, video latency p95, URLLC spill
  /// rate and web fairness. Empty string when fewer than one city run.
  [[nodiscard]] std::string render_capacity() const;

  /// The same capacity curves as canonical JSON
  /// ({"curves":[{"params":{…},"points":[{"users":…,…}]}]}) for
  /// downstream plotting; byte-deterministic for identical inputs.
  [[nodiscard]] std::string capacity_json() const;

  /// Critical-path explanation of every retained span exemplar: a
  /// waterfall of its stages plus a per-(component, channel) attribution
  /// table whose columns sum to the measured total exactly (integer
  /// sim-time accounting; each unit prints the check). Empty string when
  /// no spans artifact was loaded.
  [[nodiscard]] std::string render_explain() const;

  /// One merged Chrome trace: lifecycle events (verbatim, if loaded),
  /// telemetry counter tracks, audit decisions as instant events, and
  /// retained span trees as nested duration events (one tid per
  /// exemplar, so overlapping units never break nesting).
  [[nodiscard]] std::string to_chrome_trace() const;
};

}  // namespace hvc::exp
