// R11 seed: the allocation sits one call-edge below the profiled
// function; the default hotpath depth of 1 must still reach it.
namespace fx11d {

void fx11d_grow(std::vector<int>& v) {
  v.resize(64);
}

void fx11d_hot() {
  HVC_PROF_SCOPE(obs::prof::Hook::kFixture);
  std::vector<int> scratch;
  fx11d_grow(scratch);
}

}  // namespace fx11d
