// Tests for the web application model: corpus generation, page loading
// over the emulated network, dependencies, and background flows.
#include <gtest/gtest.h>

#include "app/web/browser.hpp"
#include "app/web/page.hpp"
#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"

namespace hvc::app::web {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(Corpus, GeneratesRequestedPages) {
  const auto corpus = generate_corpus({.pages = 30, .seed = 1});
  EXPECT_EQ(corpus.size(), 30u);
  int landing = 0;
  for (const auto& p : corpus) {
    if (p.name.starts_with("landing")) ++landing;
  }
  EXPECT_EQ(landing, 15);
}

TEST(Corpus, DeterministicInSeed) {
  const auto a = generate_corpus({.pages = 10, .seed = 7});
  const auto b = generate_corpus({.pages = 10, .seed = 7});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_bytes(), b[i].total_bytes());
    EXPECT_EQ(a[i].objects.size(), b[i].objects.size());
  }
  const auto c = generate_corpus({.pages = 10, .seed = 8});
  EXPECT_NE(a[0].total_bytes(), c[0].total_bytes());
}

TEST(Corpus, PagesHaveRealisticShape) {
  const auto corpus = generate_corpus({.pages = 40, .seed = 3});
  sim::Summary objects, kilobytes, origins, depth;
  for (const auto& p : corpus) {
    objects.add(static_cast<double>(p.objects.size()));
    kilobytes.add(static_cast<double>(p.total_bytes()) / 1000.0);
    origins.add(p.origins());
    depth.add(p.depth());
  }
  EXPECT_GT(objects.mean(), 25.0);
  EXPECT_LT(objects.mean(), 120.0);
  EXPECT_GT(kilobytes.mean(), 400.0);
  EXPECT_LT(kilobytes.mean(), 4000.0);
  EXPECT_GE(origins.min(), 1.0);
  EXPECT_GE(depth.mean(), 2.0);  // discovery chains exist
  EXPECT_LE(depth.max(), 30.0);
}

TEST(Corpus, LandingPagesHeavierThanInternal) {
  const auto corpus = generate_corpus({.pages = 60, .seed = 5});
  double landing = 0, internal = 0;
  int nl = 0, ni = 0;
  for (const auto& p : corpus) {
    if (p.name.starts_with("landing")) {
      landing += static_cast<double>(p.objects.size());
      ++nl;
    } else {
      internal += static_cast<double>(p.objects.size());
      ++ni;
    }
  }
  EXPECT_GT(landing / nl, internal / ni);
}

TEST(Corpus, DependencyGraphIsAcyclicTopological) {
  // Object ids are topologically ordered: every dependency points to a
  // smaller id, so the browser can never deadlock.
  const auto corpus = generate_corpus({.pages = 20, .seed = 9});
  for (const auto& page : corpus) {
    for (const auto& o : page.objects) {
      for (const int dep : o.deps) {
        EXPECT_LT(dep, o.id);
        EXPECT_GE(dep, 0);
      }
    }
    // Root has no dependencies.
    EXPECT_TRUE(page.objects[0].deps.empty());
  }
}

struct WebHarness {
  sim::Simulator s;
  std::unique_ptr<net::TwoHostNetwork> net;

  WebHarness() {
    net = std::make_unique<net::TwoHostNetwork>(
        s, std::make_unique<steer::SingleChannelPolicy>(0),
        std::make_unique<steer::SingleChannelPolicy>(0));
    net->add_channel(channel::embb_constant_profile());
    net->add_channel(channel::urllc_profile());
    net->finalize();
  }
};

TEST(PageLoad, LoadsAllObjectsAndReportsPlt) {
  WebHarness h;
  sim::Rng rng(4);
  const auto page = generate_page(PageKind::kInternal, 0, rng);
  sim::Time reported = -1;
  PageLoadSession session(h.net->client(), h.net->server(), page, {},
                          [&](sim::Time plt) { reported = plt; });
  session.start();
  h.s.run_until(seconds(30));
  ASSERT_TRUE(session.finished());
  EXPECT_EQ(session.objects_loaded(),
            static_cast<int>(page.objects.size()));
  EXPECT_EQ(session.plt(), reported);
  // Sanity bounds: more than one RTT, less than 30 s on a clean link.
  EXPECT_GT(session.plt(), milliseconds(100));
  EXPECT_LT(session.plt(), seconds(15));
}

TEST(PageLoad, PltScalesWithRtt) {
  auto run_with_rtt = [](sim::Duration rtt) {
    sim::Simulator s;
    net::TwoHostNetwork net(s,
                            std::make_unique<steer::SingleChannelPolicy>(0),
                            std::make_unique<steer::SingleChannelPolicy>(0));
    net.add_channel(channel::embb_constant_profile(rtt, sim::mbps(60)));
    net.finalize();
    sim::Rng rng(4);
    const auto page = generate_page(PageKind::kInternal, 0, rng);
    PageLoadSession session(net.client(), net.server(), page, {}, nullptr);
    session.start();
    s.run_until(seconds(60));
    return session.finished() ? session.plt() : seconds(999);
  };
  const auto fast = run_with_rtt(milliseconds(20));
  const auto slow = run_with_rtt(milliseconds(200));
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow - fast, milliseconds(300));  // several serialized rounds
}

TEST(PageLoad, ProcessingDelayAddsToPlt) {
  WebHarness h;
  sim::Rng rng(4);
  const auto page = generate_page(PageKind::kInternal, 0, rng);

  BrowserConfig no_compute;
  no_compute.processing_mean = 0;
  PageLoadSession fast(h.net->client(), h.net->server(), page, no_compute,
                       nullptr);
  fast.start();
  h.s.run_until(seconds(30));
  ASSERT_TRUE(fast.finished());

  WebHarness h2;
  BrowserConfig compute;
  compute.processing_mean = milliseconds(30);
  PageLoadSession slow(h2.net->client(), h2.net->server(), page, compute,
                       nullptr);
  slow.start();
  h2.s.run_until(seconds(30));
  ASSERT_TRUE(slow.finished());
  EXPECT_GT(slow.plt(), fast.plt());
}

TEST(PageLoad, ConcurrencyCapRespected) {
  // With a 1-request cap, objects on one origin serialize: PLT grows.
  WebHarness h;
  sim::Rng rng(4);
  const auto page = generate_page(PageKind::kLanding, 0, rng);

  BrowserConfig wide;
  wide.max_concurrent_per_origin = 6;
  PageLoadSession a(h.net->client(), h.net->server(), page, wide, nullptr);
  a.start();
  h.s.run_until(seconds(60));
  ASSERT_TRUE(a.finished());

  WebHarness h2;
  BrowserConfig narrow;
  narrow.max_concurrent_per_origin = 1;
  PageLoadSession b(h2.net->client(), h2.net->server(), page, narrow,
                    nullptr);
  b.start();
  h2.s.run_until(seconds(60));
  ASSERT_TRUE(b.finished());
  EXPECT_GT(b.plt(), a.plt());
}

TEST(BackgroundFlows, UploadAndDownloadCycleContinuously) {
  WebHarness h;
  transport::TcpConfig cfg;
  cfg.annotate_app_info = true;
  BackgroundJsonFlow up(h.net->client(), h.net->server(),
                        BackgroundJsonFlow::Kind::kUpload, 5000, cfg);
  BackgroundJsonFlow down(h.net->client(), h.net->server(),
                          BackgroundJsonFlow::Kind::kDownload, 10000, cfg);
  up.start();
  down.start();
  h.s.run_until(seconds(10));
  // Each cycle costs ~1 RTT (50 ms) plus serialization: expect dozens.
  EXPECT_GT(up.transfers_completed(), 50);
  EXPECT_GT(down.transfers_completed(), 50);
  // Stopping halts the cycle.
  const auto at_stop = up.transfers_completed();
  up.stop();
  h.s.run_until(seconds(12));
  EXPECT_LE(up.transfers_completed(), at_stop + 1);
}

TEST(PageLoad, TransportTotalsAccumulate) {
  WebHarness h;
  sim::Rng rng(4);
  const auto page = generate_page(PageKind::kInternal, 1, rng);
  PageLoadSession session(h.net->client(), h.net->server(), page, {},
                          nullptr);
  session.start();
  h.s.run_until(seconds(30));
  ASSERT_TRUE(session.finished());
  const auto tt = session.transport_totals();
  // At minimum one packet per object each way plus responses.
  EXPECT_GT(tt.packets_sent,
            static_cast<std::int64_t>(2 * page.objects.size()));
  EXPECT_EQ(tt.rto_count, 0);  // clean network
}

}  // namespace
}  // namespace hvc::app::web
