// Ablation (§2.2): the Wi-Fi TSN trade-off the paper calls "a key
// consideration" — unlike cellular, resources are not dedicated per user,
// so the deterministic window is paid for by everyone else. Sweeps the
// protected-window share of an 802.1Qbv schedule and reports TSN-slice
// latency determinism vs best-effort throughput loss.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/basic_policies.hpp"
#include "trace/tsn.hpp"
#include "transport/datagram.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("ablation_tsn_gating");
  bench::print_header(
      "Ablation: 802.1Qbv window share vs TSN determinism / BE throughput");
  bench::print_row({"window %", "tsn p50 ms", "tsn max ms", "be Mbps",
                    "be loss %"});

  for (const int window_pct : {0, 5, 10, 20, 40}) {
    trace::TsnSchedule sched;
    sched.tsn_window = sched.cycle * window_pct / 100;

    sim::Simulator s;
    net::TwoHostNetwork net(s,
                            std::make_unique<steer::PinnedChannelPolicy>(),
                            std::make_unique<steer::PinnedChannelPolicy>());
    auto [tsn_profile, be_profile] = channel::wifi_tsn_gated_pair(sched);
    be_profile.loss = channel::LossConfig{};  // isolate gating effects
    net.add_channel(be_profile);  // channel 0: best effort
    const bool has_tsn = window_pct > 0;
    if (has_tsn) net.add_channel(tsn_profile);  // channel 1: TSN slice
    net.finalize();

    // TSN slice: 200 B sensor messages every 7 ms (co-prime with cycle).
    const auto tsn_flow = net::next_flow_id();
    transport::DatagramSocket tsn_tx(net.server(), tsn_flow);
    transport::DatagramSocket tsn_rx(net.client(), tsn_flow);
    sim::Summary tsn_ms;
    tsn_rx.set_on_message(
        [&](const transport::DatagramSocket::MessageEvent& ev) {
          tsn_ms.add(sim::to_millis(ev.completed - ev.sent_at));
        });

    // Best effort: saturating bulk datagrams.
    const auto be_flow = net::next_flow_id();
    transport::DatagramSocket be_tx(net.server(), be_flow);
    transport::DatagramSocket be_rx(net.client(), be_flow);
    std::int64_t be_bytes = 0;
    be_rx.set_on_packet(
        [&](const net::PacketPtr& p) { be_bytes += p->size_bytes; });

    for (int i = 0; i < 1400; ++i) {
      s.at(sim::milliseconds(7 * i), [&, has_tsn] {
        if (has_tsn) {
          auto p = net::make_packet();
          p->flow = tsn_flow;
          p->type = net::PacketType::kData;
          p->size_bytes = 200 + net::kHeaderBytes;
          p->requested_channel = 1;
          p->app.present = true;
          p->app.message_id = static_cast<std::uint64_t>(i) + 1;
          p->app.message_bytes = 200;
          p->app.message_end = true;
          p->tp.ts = s.now();
          net.server().send(std::move(p));
        }
      });
    }
    for (int i = 0; i < 110'000; ++i) {
      s.at(sim::microseconds(95 * i), [&] {
        auto p = net::make_packet();
        p->flow = be_flow;
        p->type = net::PacketType::kData;
        p->size_bytes = 1400 + net::kHeaderBytes;
        p->requested_channel = 0;
        net.server().send(std::move(p));
      });
    }
    s.run_until(sim::seconds(10));

    const double be_mbps = static_cast<double>(be_bytes) * 8.0 / 10.0 / 1e6;
    const auto& be_link = net.channels().at(0).downlink().stats();
    const double loss_pct =
        100.0 * static_cast<double>(be_link.dropped_queue_packets) /
        std::max<std::int64_t>(be_link.enqueued_packets +
                                   be_link.dropped_queue_packets,
                               1);
    bench::print_row({std::to_string(window_pct),
                      has_tsn ? bench::fmt(tsn_ms.percentile(50)) : "-",
                      has_tsn ? bench::fmt(tsn_ms.max()) : "-",
                      bench::fmt(be_mbps), bench::fmt(loss_pct)});
  }
  std::printf(
      "\nExpected shape: TSN latency stays deterministically bounded at\n"
      "every window size while best-effort throughput falls ~linearly\n"
      "with the window share plus guard overhead (who pays: everyone\n"
      "else, exactly the paper's §2.2 concern).\n");
  return 0;
}
