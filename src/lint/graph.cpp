#include "lint/graph.hpp"

#include <algorithm>
#include <deque>

namespace hvc::lint {

namespace {

std::string normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

/// True when `path` is `suffix` or ends with "/<suffix>".
bool path_matches(const std::string& path, const std::string& suffix) {
  if (path == suffix) return true;
  if (path.size() <= suffix.size()) return false;
  return path.compare(path.size() - suffix.size(), suffix.size(),
                      suffix) == 0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

}  // namespace

Index build_index(const std::vector<const TokenCache::FileData*>& files) {
  Index idx;
  idx.files = files;
  std::sort(idx.files.begin(), idx.files.end(),
            [](const TokenCache::FileData* a, const TokenCache::FileData* b) {
              return a->path < b->path;
            });
  for (const TokenCache::FileData* fd : idx.files) {
    for (const auto& f : fd->summary.functions) {
      idx.functions_by_name[f.name].push_back(&f);
    }
    for (const auto& g : fd->summary.globals) {
      idx.globals_by_name[g.name].push_back(&g);
    }
    for (const auto& cd : fd->summary.containers) {
      idx.containers_by_name[cd.name].push_back(&cd);
    }
  }
  return idx;
}

std::vector<const FunctionSummary*> resolve_function(
    const Index& idx, const std::string& name, const std::string& file) {
  const auto it = idx.functions_by_name.find(name);
  if (it == idx.functions_by_name.end()) return {};
  std::vector<const FunctionSummary*> same_file;
  for (const FunctionSummary* f : it->second) {
    if (f->file == file) same_file.push_back(f);
  }
  return same_file.empty() ? it->second : same_file;
}

const GlobalVar* resolve_global(const Index& idx, const std::string& name,
                                const std::string& qualifier,
                                const FunctionSummary& fn) {
  const auto it = idx.globals_by_name.find(name);
  if (it == idx.globals_by_name.end()) return nullptr;
  const std::string& owner =
      !qualifier.empty() ? qualifier : fn.owner_class;
  const GlobalVar* best = nullptr;
  int best_score = -1;
  for (const GlobalVar* g : it->second) {
    int score = 0;
    if (g->file == fn.file) score += 2;
    if (!owner.empty() && g->owner == owner) score += 4;
    if (!qualifier.empty() && g->owner != qualifier) continue;
    // A member field of some *other* class is not what an unqualified
    // write from a free function touches; require either a file or an
    // owner connection for owned globals.
    if (qualifier.empty() && !g->owner.empty() && g->owner != fn.owner_class &&
        g->owner != fn.name && g->file != fn.file) {
      continue;
    }
    if (score > best_score) {
      best_score = score;
      best = g;
    }
  }
  return best;
}

const ContainerDecl* resolve_container(const Index& idx,
                                       const std::string& name,
                                       const FunctionSummary& fn) {
  const auto it = idx.containers_by_name.find(name);
  if (it == idx.containers_by_name.end()) return nullptr;
  const ContainerDecl* best = nullptr;
  int best_score = -1;
  for (const ContainerDecl* cd : it->second) {
    int score = 0;
    if (cd->owner == fn.name) score += 8;  // local to this function
    if (!fn.owner_class.empty() && cd->owner == fn.owner_class) score += 4;
    if (cd->file == fn.file) score += 2;
    if (score > best_score) {
      best_score = score;
      best = cd;
    }
  }
  return best;
}

std::vector<const FunctionSummary*> CallGraph::callees(
    const FunctionSummary& fn) const {
  std::vector<const FunctionSummary*> out;
  std::set<const FunctionSummary*> seen;
  for (const CallSite& cs : fn.calls) {
    for (const FunctionSummary* callee :
         resolve_function(idx_, cs.name, fn.file)) {
      if (callee != &fn && seen.insert(callee).second) {
        out.push_back(callee);
      }
    }
  }
  return out;
}

std::set<const FunctionSummary*> CallGraph::reachable(
    const std::vector<const FunctionSummary*>& roots) const {
  std::set<const FunctionSummary*> seen(roots.begin(), roots.end());
  std::deque<const FunctionSummary*> work(roots.begin(), roots.end());
  while (!work.empty()) {
    const FunctionSummary* fn = work.front();
    work.pop_front();
    for (const FunctionSummary* callee : callees(*fn)) {
      if (seen.insert(callee).second) work.push_back(callee);
    }
  }
  return seen;
}

std::map<const FunctionSummary*, int> CallGraph::within_depth(
    const std::vector<const FunctionSummary*>& roots, int depth) const {
  std::map<const FunctionSummary*, int> dist;
  std::deque<const FunctionSummary*> work;
  for (const FunctionSummary* r : roots) {
    if (dist.emplace(r, 0).second) work.push_back(r);
  }
  while (!work.empty()) {
    const FunctionSummary* fn = work.front();
    work.pop_front();
    const int d = dist[fn];
    if (d >= depth) continue;
    for (const FunctionSummary* callee : callees(*fn)) {
      if (dist.emplace(callee, d + 1).second) work.push_back(callee);
    }
  }
  return dist;
}

IncludeGraph::IncludeGraph(
    const std::vector<const TokenCache::FileData*>& files) {
  std::vector<std::string> paths;
  paths.reserve(files.size());
  for (const TokenCache::FileData* fd : files) {
    paths.push_back(normalize(fd->path));
  }
  all_ = paths;
  for (const TokenCache::FileData* fd : files) {
    const std::string from = normalize(fd->path);
    for (const std::string& inc : fd->includes) {
      const std::string target = normalize(inc);
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (path_matches(paths[i], target)) {
          fwd_[from].push_back(files[i]->path);
          rev_[paths[i]].push_back(fd->path);
        }
      }
    }
  }
}

std::set<std::string> IncludeGraph::affected(
    const std::vector<std::string>& changed) const {
  std::set<std::string> out;
  std::deque<std::string> work;
  // Seed: every indexed file the changed paths suffix-match (an indexed
  // path may be absolute while git reports repo-relative names).
  for (const std::string& path : all_) {
    for (const std::string& ch : changed) {
      const std::string n = normalize(ch);
      if (path_matches(path, n) || path_matches(n, path)) {
        if (out.insert(path).second) work.push_back(path);
      }
    }
  }
  // Changed files outside the linted roots still seed the closure (a
  // header two directories up can have reverse-dependents here).
  for (const std::string& ch : changed) {
    const std::string n = normalize(ch);
    if (out.insert(n).second) work.push_back(n);
  }
  while (!work.empty()) {
    const std::string path = work.front();
    work.pop_front();
    const auto it = rev_.find(normalize(path));
    if (it == rev_.end()) continue;
    for (const std::string& dep : it->second) {
      const std::string n = normalize(dep);
      if (out.insert(n).second) work.push_back(n);
    }
  }
  return out;
}

const std::vector<std::string>& IncludeGraph::includes_of(
    const std::string& path) const {
  static const std::vector<std::string> kEmpty;
  const auto it = fwd_.find(normalize(path));
  return it == fwd_.end() ? kEmpty : it->second;
}

}  // namespace hvc::lint
