#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>

namespace hvc::exp {

namespace {

using obs::json::Value;

[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  throw SpecError(path + ": " + msg);
}

bool is_integer(const Value& v, std::int64_t* out) {
  if (!v.is_number()) return false;
  const auto i = static_cast<std::int64_t>(v.num);
  if (static_cast<double>(i) != v.num) return false;
  *out = i;
  return true;
}

/// {"range": [lo, hi]} or {"range": [lo, hi, step]} → lo, lo+step, … < hi.
std::vector<Value> expand_range(const Value& v, const std::string& path) {
  const Value* range = v.find("range");
  if (range == nullptr || v.object.size() != 1) {
    fail(path, "axis objects must be exactly {\"range\": [lo, hi]} or "
               "{\"range\": [lo, hi, step]}");
  }
  if (!range->is_array() ||
      (range->array.size() != 2 && range->array.size() != 3)) {
    fail(path + ".range", "expected [lo, hi] or [lo, hi, step]");
  }
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t step = 1;
  if (!is_integer(range->array[0], &lo) || !is_integer(range->array[1], &hi) ||
      (range->array.size() == 3 && !is_integer(range->array[2], &step))) {
    fail(path + ".range", "bounds and step must be integers");
  }
  if (step <= 0) fail(path + ".range", "step must be > 0");
  if (hi < lo) fail(path + ".range", "hi must be >= lo");
  std::vector<Value> out;
  for (std::int64_t x = lo; x < hi; x += step) {
    Value e;
    e.kind = Value::Kind::kNumber;
    e.num = static_cast<double>(x);
    out.push_back(std::move(e));
  }
  if (out.empty()) fail(path + ".range", "range is empty");
  return out;
}

/// Set `doc[path] = value` where path is dotted; numeric segments index
/// arrays (which must already exist), other segments are object keys
/// (created if missing — the base template may omit swept fields).
void set_path(Value& doc, const std::string& path, const Value& value) {
  Value* cur = &doc;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string seg =
        path.substr(start, dot == std::string::npos ? dot : dot - start);
    if (seg.empty()) fail(path, "empty path segment");
    const bool is_index =
        std::all_of(seg.begin(), seg.end(),
                    [](char c) { return c >= '0' && c <= '9'; });
    Value* next = nullptr;
    if (is_index) {
      if (!cur->is_array()) fail(path, "'" + seg + "' indexes a non-array");
      const std::size_t idx = std::stoul(seg);
      if (idx >= cur->array.size()) {
        fail(path, "index " + seg + " out of range (array has " +
                       std::to_string(cur->array.size()) + " elements)");
      }
      next = &cur->array[idx];
    } else {
      if (cur->kind == Value::Kind::kNull) cur->kind = Value::Kind::kObject;
      if (!cur->is_object()) fail(path, "'" + seg + "' keys into a non-object");
      next = &cur->object[seg];  // creates a null placeholder if missing
    }
    if (dot == std::string::npos) {
      *next = value;
      return;
    }
    cur = next;
    start = dot + 1;
  }
}

bool is_policy_path(const std::string& path) {
  return path == "policy" || path == "up_policy" || path == "down_policy";
}

/// Display string for an axis value (CSV "params" columns). Policy
/// objects render as their scheme label so grids over tuned policies
/// stay readable.
std::string param_string(const std::string& path, const Value& v) {
  if (v.is_string()) return v.str;
  if (v.is_number()) return obs::json::number(v.num);
  if (v.kind == Value::Kind::kBool) return v.boolean ? "true" : "false";
  if (v.is_object() && is_policy_path(path)) {
    try {
      // Reuse the scenario parser for the label; fall through on error
      // (expand() will report it with full context).
      Value probe;
      probe.kind = Value::Kind::kObject;
      probe.object["policy"] = v;
      Value name;
      name.kind = Value::Kind::kString;
      name.str = "p";
      probe.object["name"] = name;
      // Parse just the policy via a throwaway scenario.
      ScenarioSpec s = ScenarioSpec::from_json(probe);
      return s.up_policy.label();
    } catch (const SpecError&) {
      // fall through to raw JSON
    }
  }
  return obs::json::serialize(v);
}

}  // namespace

SweepSpec SweepSpec::from_json(const Value& v) {
  if (!v.is_object()) throw SpecError("sweep: expected a JSON object");
  for (const auto& [key, unused] : v.object) {
    if (key != "name" && key != "base" && key != "axes") {
      fail(key, "unknown key (sweep files take name/base/axes)");
    }
  }
  SweepSpec s;
  s.name = v.string_or("name", s.name);
  const Value* base = v.find("base");
  if (base == nullptr || !base->is_object()) {
    fail("base", "required: a scenario object");
  }
  s.base = *base;
  // Validate the template before any axis substitution so template
  // errors are reported once, with clean paths.
  (void)ScenarioSpec::from_json(s.base);
  if (const Value* axes = v.find("axes")) {
    if (!axes->is_object()) fail("axes", "expected an object of path: values");
    for (const auto& [path, values] : axes->object) {  // std::map: sorted
      SweepAxis axis;
      axis.path = path;
      const std::string apath = "axes." + path;
      if (values.is_array()) {
        if (values.array.empty()) fail(apath, "axis value list is empty");
        axis.values = values.array;
      } else if (values.is_object()) {
        axis.values = expand_range(values, apath);
      } else {
        fail(apath, "expected an array of values or {\"range\": [lo, hi]}");
      }
      s.axes.push_back(std::move(axis));
    }
  }
  return s;
}

SweepSpec SweepSpec::from_json_text(std::string_view text) {
  Value v;
  if (!obs::json::parse(text, &v)) {
    throw SpecError("sweep: malformed JSON (syntax error)");
  }
  return from_json(v);
}

SweepSpec SweepSpec::from_file(const std::string& path) {
  const std::string text = read_file(path);  // error already carries path
  try {
    return from_json_text(text);
  } catch (const SpecError& e) {
    throw SpecError(path + ": " + e.what());
  }
}

std::size_t SweepSpec::run_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<ExpandedRun> expand(const SweepSpec& sweep) {
  const std::size_t total = sweep.run_count();
  std::vector<ExpandedRun> runs;
  runs.reserve(total);
  std::vector<std::size_t> odo(sweep.axes.size(), 0);
  for (std::size_t i = 0; i < total; ++i) {
    Value doc = sweep.base;
    ExpandedRun run;
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      const Value& value = sweep.axes[a].values[odo[a]];
      set_path(doc, sweep.axes[a].path, value);
      run.params[sweep.axes[a].path] =
          param_string(sweep.axes[a].path, value);
    }
    try {
      run.spec = ScenarioSpec::from_json(doc);
    } catch (const SpecError& e) {
      std::string where = "run " + std::to_string(i);
      for (const auto& [path, val] : run.params) {
        where += " " + path + "=" + val;
      }
      throw SpecError(where + ": " + e.what());
    }
    runs.push_back(std::move(run));
    // Odometer: last (sorted-order) axis spins fastest.
    for (std::size_t a = sweep.axes.size(); a-- > 0;) {
      if (++odo[a] < sweep.axes[a].values.size()) break;
      odo[a] = 0;
    }
  }
  return runs;
}

std::vector<RunResult> run_sweep(const SweepSpec& sweep, int jobs,
                                 const SweepProgress& progress,
                                 const std::string& out_prefix) {
  return run_sweep_shard(sweep, jobs, 0, 1, progress, out_prefix);
}

std::vector<RunResult> run_sweep_shard(const SweepSpec& sweep, int jobs,
                                       std::size_t shard_index,
                                       std::size_t shard_count,
                                       const SweepProgress& progress,
                                       const std::string& out_prefix) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw SpecError("shard: index must be < count (got " +
                    std::to_string(shard_index) + "/" +
                    std::to_string(shard_count) + ")");
  }
  const std::vector<ExpandedRun> runs = expand(sweep);
  // This shard's global grid indices, in grid order. Round-robin (not
  // contiguous blocks) so every shard samples the whole grid — shards
  // finish in comparable time even when one axis end is much slower.
  std::vector<std::size_t> mine;
  for (std::size_t i = shard_index; i < runs.size(); i += shard_count) {
    mine.push_back(i);
  }
  std::vector<RunResult> results(mine.size());
  if (mine.empty()) return results;

  const std::size_t workers = std::min<std::size_t>(
      mine.size(), static_cast<std::size_t>(std::max(1, jobs)));
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    while (true) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= mine.size()) return;
      const std::size_t i = mine[slot];
      RunOptions opts;
      opts.out_prefix = out_prefix;
      // Per-run artifact names carry the global index, so shard outputs
      // never collide and match what an unsharded sweep would write.
      opts.run_index = static_cast<int>(i);
      RunResult r = run_scenario(runs[i].spec, opts);
      r.index = i;
      r.params = runs[i].params;
      results[slot] = std::move(r);
      const std::size_t finished = done.fetch_add(1) + 1;
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        progress(results[slot], finished, mine.size());
      }
    }
  };

  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return results;
}

}  // namespace hvc::exp
