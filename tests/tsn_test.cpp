// Tests for 802.1Qbv-style time-aware gating (§2.2): deterministic TSN
// service, guard-band overhead, and the multiplexing cost borne by
// best-effort traffic.
#include <gtest/gtest.h>

#include <map>

#include "channel/channel.hpp"
#include "channel/profile.hpp"
#include "net/node.hpp"
#include "steer/priority.hpp"
#include "steer/basic_policies.hpp"
#include "trace/tsn.hpp"
#include "transport/datagram.hpp"

namespace hvc::trace {
namespace {

using sim::microseconds;
using sim::milliseconds;
using sim::seconds;

TEST(TsnSchedule, SliceCapacitiesPartitionTheMedium) {
  TsnSchedule s;  // 2 ms window / 10 ms cycle / 200 us guard, 120 Mbps
  const auto tsn = tsn_slice_trace(s);
  const auto be = best_effort_slice_trace(s);
  // TSN slice ~ window share of the medium.
  EXPECT_NEAR(tsn.average_rate_bps(), 120e6 * 0.2, 120e6 * 0.03);
  // Best effort gets the rest minus both guard allocations.
  EXPECT_NEAR(be.average_rate_bps(), 120e6 * (0.8 - 2 * 0.02),
              120e6 * 0.04);
  // Combined never exceeds the medium.
  EXPECT_LT(tsn.average_rate_bps() + be.average_rate_bps(), 120e6);
}

TEST(TsnSchedule, ValidatesInputs) {
  TsnSchedule bad;
  bad.tsn_window = milliseconds(11);  // exceeds the 10 ms cycle
  EXPECT_THROW(tsn_slice_trace(bad), std::invalid_argument);
  bad = TsnSchedule{};
  bad.cycle = 0;
  EXPECT_THROW(best_effort_slice_trace(bad), std::invalid_argument);
}

TEST(TsnSchedule, NoOpportunitiesInGuardOrForeignWindow) {
  TsnSchedule s;
  const auto tsn = tsn_slice_trace(s);
  for (const auto t : tsn.opportunities()) {
    EXPECT_GE(t, s.guard);
    EXPECT_LT(t, s.guard + s.tsn_window);
  }
  const auto be = best_effort_slice_trace(s);
  for (const auto t : be.opportunities()) {
    EXPECT_GE(t, s.guard + s.tsn_window);
    EXPECT_LT(t, s.cycle - s.guard);
  }
}

TEST(TsnGating, TsnSliceDeliversWithBoundedJitter) {
  // Periodic small messages over the TSN slice: worst-case latency is one
  // cycle (miss the window) + service; the spread must stay within that
  // deterministic envelope.
  sim::Simulator sim;
  auto [tsn_profile, be_profile] = channel::wifi_tsn_gated_pair();
  net::TwoHostNetwork net(sim,
                          std::make_unique<steer::SingleChannelPolicy>(0),
                          std::make_unique<steer::SingleChannelPolicy>(0));
  net.add_channel(tsn_profile);
  net.finalize();

  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  transport::DatagramSocket rx(net.client(), flow);
  sim::Summary latency_ms;
  rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
    latency_ms.add(sim::to_millis(ev.completed - ev.sent_at));
  });
  // 7 ms period deliberately co-prime with the 10 ms cycle: messages land
  // at every phase of the gate.
  for (int i = 0; i < 500; ++i) {
    sim.at(milliseconds(7 * i), [&] { tx.send_message(200, 0); });
  }
  sim.run();
  ASSERT_EQ(latency_ms.count(), 500u);
  // Envelope: OWD 3 ms + at most one 10 ms cycle of gate wait + service.
  EXPECT_LT(latency_ms.max(), 14.0);
  EXPECT_GT(latency_ms.max() - latency_ms.min(), 4.0);  // gating visible
}

TEST(TsnGating, BestEffortPaysForTheWindow) {
  // Identical bulk load over (a) ungated 120 Mbps Wi-Fi and (b) the
  // best-effort slice of a 20%-window TSN schedule: throughput drops by
  // roughly the window share plus guard overhead — §2.2's "other users
  // bear the cost".
  auto run = [&](channel::ChannelProfile profile) {
    sim::Simulator sim;
    net::TwoHostNetwork net(sim,
                            std::make_unique<steer::SingleChannelPolicy>(0),
                            std::make_unique<steer::SingleChannelPolicy>(0));
    profile.loss = channel::LossConfig{};  // isolate the gating effect
    net.add_channel(std::move(profile));
    net.finalize();
    const auto flow = net::next_flow_id();
    transport::DatagramSocket tx(net.server(), flow);
    transport::DatagramSocket rx(net.client(), flow);
    std::int64_t received = 0;
    rx.set_on_packet([&](const net::PacketPtr& p) {
      received += p->size_bytes;
    });
    // Saturating offered load, paced at just over medium rate.
    for (int i = 0; i < 11000; ++i) {
      sim.at(microseconds(95 * i), [&] { tx.send_message(1400, 0); });
    }
    sim.run_until(seconds(1));
    return static_cast<double>(received) * 8.0;  // bps over 1 s
  };

  const double ungated = run(channel::wifi_contended_profile(
      sim::mbps(120), milliseconds(6), 0.0));
  auto [tsn_profile, be_profile] = channel::wifi_tsn_gated_pair();
  const double gated = run(be_profile);
  EXPECT_LT(gated, ungated * 0.85);  // at least the 20% window + guards
  EXPECT_GT(gated, ungated * 0.6);   // but not more than the schedule takes
}

TEST(TsnGating, PrioritySteeringUsesTsnSliceForImportantTraffic) {
  // Full §2.2/§3.3 composition: TSN + best-effort slices as an HvcSet
  // with cross-layer steering; important messages get deterministic
  // latency while bulk rides the best-effort share.
  sim::Simulator sim;
  auto [tsn_profile, be_profile] = channel::wifi_tsn_gated_pair();
  // Convention: channel 0 = default/wide, channel 1 = fast/scarce.
  net::TwoHostNetwork net(sim,
                          std::make_unique<steer::MessagePriorityPolicy>(),
                          std::make_unique<steer::MessagePriorityPolicy>());
  net.add_channel(be_profile);
  net.add_channel(tsn_profile);
  net.finalize();

  const auto flow = net::next_flow_id();
  transport::DatagramSocket tx(net.server(), flow);
  transport::DatagramSocket rx(net.client(), flow);
  sim::Summary important_ms;
  rx.set_on_message([&](const transport::DatagramSocket::MessageEvent& ev) {
    if (ev.header.priority == 0) {
      important_ms.add(sim::to_millis(ev.completed - ev.sent_at));
    }
  });
  for (int i = 0; i < 300; ++i) {
    sim.at(milliseconds(7 * i), [&] {
      tx.send_message(200, 0);      // control/sensor reading
      tx.send_message(30'000, 3);   // bulk camera frame
    });
  }
  sim.run_until(seconds(4));
  ASSERT_GT(important_ms.count(), 250u);
  // Deterministic despite 34 Mbps of competing bulk on the other slice.
  EXPECT_LT(important_ms.max(), 14.0);
  EXPECT_GT(net.downlink_shim().stats().packets_per_channel[1], 250);
}

}  // namespace
}  // namespace hvc::trace
