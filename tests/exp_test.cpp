// Tests for the scenario engine (src/exp): spec parsing/validation and
// round-trip, sweep grid expansion, engine-vs-core equivalence, CSV/JSONL
// aggregation, and the isolation machinery that makes concurrent sweeps
// deterministic. The concurrency/determinism suites are named ExpSweep*
// so the tsan stage of scripts/check.sh can select exactly them.
#include <gtest/gtest.h>

#include <thread>

#include "core/scenario.hpp"
#include "exp/results.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "exp/sweep.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "sim/units.hpp"

namespace hvc {
namespace {

// ---- Spec parsing and validation ----

TEST(ExpSpec, DefaultsApplyWhenFieldsOmitted) {
  const auto s = exp::ScenarioSpec::from_json_text("{}");
  EXPECT_EQ(s.workload, "web");
  EXPECT_EQ(s.cca, "cubic");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.duration_s, 60.0);
  // The default channel set is the paper's standard pair.
  ASSERT_EQ(s.channels.size(), 2u);
  EXPECT_EQ(s.channels[0].type, "embb");
  EXPECT_EQ(s.channels[1].type, "urllc");
  EXPECT_EQ(s.up_policy.name, "dchannel");
  EXPECT_EQ(s.down_policy.name, "dchannel");
}

TEST(ExpSpec, ParsesFullScenario) {
  const auto s = exp::ScenarioSpec::from_json_text(R"({
    "name": "t", "workload": "video", "duration_s": 90, "seed": 7,
    "channels": [
      {"type": "5g", "profile": "mmwave-driving", "duration_s": 120},
      {"type": "urllc", "rate_mbps": 4}
    ],
    "policy": {"name": "dchannel", "preset": "web-tuned",
               "use_flow_priority": true},
    "down_policy": "msg-priority",
    "video": {"duration_s": 60, "layer_kbps": [400, 4100, 7500]}
  })");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.seed, 7u);
  ASSERT_EQ(s.channels.size(), 2u);
  EXPECT_EQ(s.channels[0].profile, "mmwave-driving");
  EXPECT_DOUBLE_EQ(s.channels[0].duration_s, 120.0);
  EXPECT_DOUBLE_EQ(s.channels[1].rate_mbps, 4.0);
  // "policy" sets both directions; "down_policy" then overrides down.
  EXPECT_EQ(s.up_policy.name, "dchannel");
  EXPECT_EQ(s.up_policy.preset, "web-tuned");
  EXPECT_EQ(s.up_policy.label(), "dchannel+prio");
  EXPECT_EQ(s.down_policy.name, "msg-priority");
  EXPECT_DOUBLE_EQ(s.video.duration_s, 60.0);
}

TEST(ExpSpec, RoundTripsThroughToJson) {
  const auto s = exp::ScenarioSpec::from_json_text(R"({
    "name": "rt", "workload": "bulk", "duration_s": 12.5, "seed": 3,
    "cca": "bbr",
    "channels": [{"type": "cisp", "rtt_ms": 9}, {"type": "leo", "seed": 5}],
    "up_policy": {"name": "dchannel", "cost_factor": 2.5},
    "down_policy": "min-delay",
    "resequence_hold_ms": 40
  })");
  const std::string json = s.to_json();
  const auto s2 = exp::ScenarioSpec::from_json_text(json);
  EXPECT_EQ(s2.to_json(), json);
  EXPECT_EQ(s2.cca, "bbr");
  EXPECT_DOUBLE_EQ(s2.channels[0].rtt_ms, 9.0);
  EXPECT_EQ(s2.channels[1].seed, 5);
  EXPECT_DOUBLE_EQ(s2.up_policy.cost_factor, 2.5);
  EXPECT_DOUBLE_EQ(s2.resequence_hold_ms, 40.0);
}

TEST(ExpSpec, RejectsMalformedInput) {
  // Syntax error.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("{\"name\": }"),
               exp::SpecError);
  // Top-level must be an object.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("[1, 2]"),
               exp::SpecError);
  // Unknown top-level key.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("{\"wrkload\": \"web\"}"),
               exp::SpecError);
  // Unknown workload / cca / policy / channel type.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text(
                   "{\"workload\": \"batch\"}"),
               exp::SpecError);
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("{\"cca\": \"reno\"}"),
               exp::SpecError);
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text(
                   "{\"policy\": \"fastest\"}"),
               exp::SpecError);
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text(
                   "{\"channels\": [{\"type\": \"6g\"}]}"),
               exp::SpecError);
  // 5g channels require a known profile.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text(
                   "{\"channels\": [{\"type\": \"5g\"}]}"),
               exp::SpecError);
  // Profile is only meaningful on 5g channels.
  EXPECT_THROW(
      (void)exp::ScenarioSpec::from_json_text(
          "{\"channels\": [{\"type\": \"embb\", \"profile\": \"x\"}]}"),
      exp::SpecError);
  // Wrong types and out-of-range values.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text(
                   "{\"duration_s\": \"ten\"}"),
               exp::SpecError);
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("{\"duration_s\": 0}"),
               exp::SpecError);
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("{\"seed\": -1}"),
               exp::SpecError);
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text("{\"seed\": 1.5}"),
               exp::SpecError);
  // DChannel knobs on a non-dchannel policy.
  EXPECT_THROW((void)exp::ScenarioSpec::from_json_text(
                   "{\"policy\": {\"name\": \"min-delay\", "
                   "\"cost_factor\": 2}}"),
               exp::SpecError);
}

TEST(ExpSpec, ErrorsCarryJsonPaths) {
  try {
    (void)exp::ScenarioSpec::from_json_text(
        "{\"channels\": [{\"type\": \"urllc\"}, {\"type\": \"5g\"}]}");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("channels.1.profile"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)exp::ScenarioSpec::from_json_text("{\"web\": {\"pages\": 0}}");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("web.pages"), std::string::npos)
        << e.what();
  }
}

TEST(ExpSpec, FromFileReportsPathAndMissingFiles) {
  EXPECT_THROW((void)exp::ScenarioSpec::from_file("/nonexistent/x.json"),
               exp::SpecError);
  EXPECT_THROW((void)exp::read_file("/nonexistent/x.json"), exp::SpecError);
}

// ---- Sweep expansion ----

exp::SweepSpec make_sweep(const std::string& axes_json) {
  return exp::SweepSpec::from_json_text(
      R"({"name": "s", "base": {"workload": "bulk", "duration_s": 1},
          "axes": )" +
      axes_json + "}");
}

TEST(ExpSweepSpec, ExpandsGridWithSortedAxesLastFastest) {
  const auto sweep = make_sweep(
      R"({"seed": {"range": [0, 3]}, "cca": ["cubic", "bbr"]})");
  EXPECT_EQ(sweep.run_count(), 6u);
  const auto runs = exp::expand(sweep);
  ASSERT_EQ(runs.size(), 6u);
  // Axes sort by path ("cca" < "seed"), so seed spins fastest.
  EXPECT_EQ(runs[0].params.at("cca"), "cubic");
  EXPECT_EQ(runs[0].params.at("seed"), "0");
  EXPECT_EQ(runs[1].params.at("seed"), "1");
  EXPECT_EQ(runs[2].params.at("seed"), "2");
  EXPECT_EQ(runs[3].params.at("cca"), "bbr");
  EXPECT_EQ(runs[3].params.at("seed"), "0");
  EXPECT_EQ(runs[3].spec.cca, "bbr");
  EXPECT_EQ(runs[5].spec.seed, 2u);
}

TEST(ExpSweepSpec, RangeSupportsStepAndRejectsBadBounds) {
  const auto sweep = make_sweep(R"({"seed": {"range": [0, 10, 4]}})");
  const auto runs = exp::expand(sweep);
  ASSERT_EQ(runs.size(), 3u);  // 0, 4, 8
  EXPECT_EQ(runs[2].spec.seed, 8u);
  EXPECT_THROW(make_sweep(R"({"seed": {"range": [5, 1]}})"), exp::SpecError);
  EXPECT_THROW(make_sweep(R"({"seed": {"range": [0, 4, 0]}})"),
               exp::SpecError);
  EXPECT_THROW(make_sweep(R"({"seed": {"range": [0]}})"), exp::SpecError);
  EXPECT_THROW(make_sweep(R"({"seed": {"span": [0, 4]}})"), exp::SpecError);
  EXPECT_THROW(make_sweep(R"({"seed": []})"), exp::SpecError);
}

TEST(ExpSweepSpec, AxisPathsReachIntoArraysAndObjects) {
  const auto sweep = exp::SweepSpec::from_json_text(R"({
    "base": {
      "workload": "web", "duration_s": 1,
      "channels": [{"type": "5g", "profile": "lowband-stationary"},
                   {"type": "urllc"}]
    },
    "axes": {
      "channels.0.profile": ["lowband-stationary", "lowband-driving"],
      "web.pages": [1, 2]
    }
  })");
  const auto runs = exp::expand(sweep);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].spec.channels[0].profile, "lowband-stationary");
  EXPECT_EQ(runs[3].spec.channels[0].profile, "lowband-driving");
  EXPECT_EQ(runs[3].spec.web.pages, 2);
  // Out-of-range array index is an error, not a silent append.
  EXPECT_THROW(
      (void)exp::expand(exp::SweepSpec::from_json_text(
          R"({"base": {"workload": "bulk", "duration_s": 1},
              "axes": {"channels.7.seed": [1]}})")),
      exp::SpecError);
}

TEST(ExpSweepSpec, PolicyAxisObjectsRenderAsSchemeLabels) {
  const auto sweep = make_sweep(
      R"({"policy": ["embb-only",
                     {"name": "dchannel", "preset": "web-tuned",
                      "use_flow_priority": true}]})");
  const auto runs = exp::expand(sweep);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].params.at("policy"), "embb-only");
  EXPECT_EQ(runs[1].params.at("policy"), "dchannel+prio");
  EXPECT_TRUE(runs[1].spec.up_policy.use_flow_priority > 0);
}

TEST(ExpSweepSpec, InvalidCombinationsFailAtExpandTime) {
  // The axis splices an invalid policy into an otherwise valid base.
  const auto sweep = make_sweep(R"({"policy": ["embb-only", "warp-speed"]})");
  EXPECT_THROW((void)exp::expand(sweep), exp::SpecError);
  // Sweep files are strict about their own keys too.
  EXPECT_THROW((void)exp::SweepSpec::from_json_text(
                   R"({"base": {}, "axis": {}})"),
               exp::SpecError);
  EXPECT_THROW((void)exp::SweepSpec::from_json_text(R"({"name": "x"})"),
               exp::SpecError);
}

// ---- Engine vs direct core run: equivalence ----

TEST(ExpRunner, MatchesDirectCoreRun) {
  // Small bulk run through the engine...
  const auto spec = exp::ScenarioSpec::from_json_text(R"({
    "workload": "bulk", "duration_s": 5, "seed": 11,
    "channels": [{"type": "embb"}, {"type": "urllc"}],
    "policy": "dchannel"
  })");
  const auto result = exp::run_scenario(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;

  // ...must equal the same experiment built directly on src/core.
  net::IdScope ids;
  const auto cfg = exp::build_scenario_config(spec);
  const auto direct = core::run_bulk(cfg, "cubic", sim::seconds(5));
  EXPECT_DOUBLE_EQ(result.metrics.at("bulk.goodput_mbps"),
                   direct.goodput_bps / 1e6);
  EXPECT_DOUBLE_EQ(result.metrics.at("bulk.retransmissions"),
                   static_cast<double>(direct.retransmissions));
}

TEST(ExpRunner, CapturesRunErrorsInsteadOfThrowing) {
  // Bypass the parser (which would reject this) to exercise the capture
  // path: an unknown CCA makes transport::make_cca throw mid-run.
  exp::ScenarioSpec spec;
  spec.workload = "bulk";
  spec.duration_s = 1;
  exp::ChannelSpec embb;
  embb.type = "embb";
  exp::ChannelSpec urllc;
  urllc.type = "urllc";
  spec.channels = {embb, urllc};
  spec.cca = "reno";
  const auto result = exp::run_scenario(spec);
  EXPECT_NE(result.error.find("unknown CCA"), std::string::npos)
      << result.error;
  EXPECT_TRUE(result.metrics.empty());
}

// ---- Aggregated output ----

TEST(ExpResults, CsvHasSortedUnionColumnsAndEscaping) {
  exp::RunResult a;
  a.index = 0;
  a.name = "has,comma";
  a.params = {{"policy", "embb-only"}};
  a.metrics = {{"m.b", 1.5}, {"m.a", 2.0}};
  exp::RunResult b;
  b.index = 1;
  b.name = "plain";
  b.params = {{"policy", "say \"hi\""}};
  b.metrics = {{"m.c", 3.0}};
  const std::string csv = exp::to_csv({a, b});
  EXPECT_EQ(csv,
            "run,name,policy,m.a,m.b,m.c,error\n"
            "0,\"has,comma\",embb-only,2,1.5,,\n"
            "1,plain,\"say \"\"hi\"\"\",,,3,\n");
}

TEST(ExpResults, JsonlRowsParseBackAndOmitWallClock) {
  exp::RunResult a;
  a.index = 3;
  a.name = "r";
  a.params = {{"seed", "4"}};
  a.metrics = {{"web.plt_ms.mean", 123.5}};
  a.obs = {{"node.client.unroutable", 0.0}};
  a.wall_ms = 9999.0;  // must not appear in the output
  const std::string jsonl = exp::to_jsonl({a});
  EXPECT_EQ(jsonl.find("wall"), std::string::npos);
  obs::json::Value v;
  ASSERT_TRUE(obs::json::parse(
      std::string_view(jsonl).substr(0, jsonl.size() - 1), &v));
  EXPECT_DOUBLE_EQ(v.number_or("run", -1), 3.0);
  EXPECT_DOUBLE_EQ(v.find("metrics")->number_or("web.plt_ms.mean", 0),
                   123.5);
}

// ---- Isolation machinery ----

TEST(ExpSweepIsolation, ScopedRegistryNestsAndIsPerThread) {
  auto& global = obs::MetricsRegistry::global();
  EXPECT_EQ(&obs::MetricsRegistry::current(), &global);
  obs::MetricsRegistry outer;
  {
    obs::ScopedMetricsRegistry s1(outer);
    EXPECT_EQ(&obs::MetricsRegistry::current(), &outer);
    obs::MetricsRegistry inner;
    {
      obs::ScopedMetricsRegistry s2(inner);
      EXPECT_EQ(&obs::MetricsRegistry::current(), &inner);
      // A different thread is unaffected by this thread's scopes.
      std::thread([&] {
        EXPECT_EQ(&obs::MetricsRegistry::current(), &global);
      }).join();
    }
    EXPECT_EQ(&obs::MetricsRegistry::current(), &outer);
  }
  EXPECT_EQ(&obs::MetricsRegistry::current(), &global);
}

TEST(ExpSweepIsolation, IdScopeResetsAndRestoresCounters) {
  const auto flow_before = net::flow_id_counter();
  const auto packet_before = net::packet_id_counter();
  {
    net::IdScope scope;
    EXPECT_EQ(net::flow_id_counter(), 1u);
    EXPECT_EQ(net::packet_id_counter(), 1u);
    (void)net::next_flow_id();
    EXPECT_EQ(net::flow_id_counter(), 2u);
  }
  EXPECT_EQ(net::flow_id_counter(), flow_before);
  EXPECT_EQ(net::packet_id_counter(), packet_before);
}

// ---- Concurrent sweep determinism (ExpSweep*: runs under tsan too) ----

exp::SweepSpec determinism_sweep() {
  return exp::SweepSpec::from_json_text(R"({
    "name": "det",
    "base": {
      "name": "det", "workload": "bulk", "duration_s": 2,
      "channels": [{"type": "embb"}, {"type": "urllc"}],
      "policy": "dchannel"
    },
    "axes": {
      "policy": ["embb-only", "dchannel", "min-delay"],
      "seed": {"range": [0, 3]}
    }
  })");
}

TEST(ExpSweepDeterminism, SerialAndParallelResultsAreByteIdentical) {
  const auto sweep = determinism_sweep();
  const auto serial = exp::run_sweep(sweep, 1);
  const auto parallel = exp::run_sweep(sweep, 8);
  ASSERT_EQ(serial.size(), 9u);
  EXPECT_EQ(exp::to_csv(serial), exp::to_csv(parallel));
  EXPECT_EQ(exp::to_jsonl(serial), exp::to_jsonl(parallel));
  for (const auto& r : serial) EXPECT_TRUE(r.error.empty()) << r.error;
}

TEST(ExpSweepDeterminism, ResultsOrderedByGridIndexWithProgress) {
  const auto sweep = determinism_sweep();
  std::size_t calls = 0;
  const auto results = exp::run_sweep(
      sweep, 4, [&](const exp::RunResult&, std::size_t, std::size_t total) {
        ++calls;  // serialized by the engine's progress mutex
        EXPECT_EQ(total, 9u);
      });
  EXPECT_EQ(calls, 9u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
  }
}

TEST(ExpSweepDeterminism, ConcurrentRunsDoNotPolluteGlobalRegistry) {
  auto& global = obs::MetricsRegistry::global();
  global.reset_values();
  const auto before = global.snapshot();
  (void)exp::run_sweep(determinism_sweep(), 4);
  EXPECT_EQ(global.snapshot(), before);
}

}  // namespace
}  // namespace hvc
