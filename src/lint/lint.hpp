// hvc_lint: the repo's determinism & simulation-safety static-analysis
// pass (scripts/check.sh lint, tools/hvc_lint).
//
// Every exported artifact this repo ships — sweep CSV/JSONL, telemetry,
// audit logs, traces — is promised byte-identical for a given spec at any
// -j. The byte-identity *tests* (exp_test, telemetry_test) catch a broken
// build after the fact; this pass rejects the code patterns that break
// the promise before they run:
//
//   wallclock            (R1) wall-clock / entropy sources in simulation
//                             code — time comes from sim::Simulator,
//                             randomness from sim::Rng, nothing else
//   unordered-container  (R2) std::unordered_map/set — iteration order is
//                             unspecified, so any traversal that feeds an
//                             export or a steering decision is a latent
//                             nondeterminism bug; use std::map/set, sort
//                             before export, or prove order-independence
//   steer-missing-reason (R3) a return path in a steer() implementation
//                             that does not set a Decision audit reason
//                             tag (obs/audit.hpp records every decision)
//   raw-new-delete       (R4) raw new/delete — ownership goes through
//                             unique_ptr/containers in this codebase
//   float-equality       (R5) ==/!= against floating-point values —
//                             metric comparisons must use ordering or an
//                             explicit tolerance
//   header-not-self-sufficient
//                        (R6) a header that does not compile on its own
//                             (include-what-you-use-lite; needs the
//                             toolchain, so it runs only under
//                             Options::compile_check)
//   clock-island         (R7) an allow(wallclock) suppression outside the
//                             sanctioned clock island (src/obs/prof*,
//                             bench/). Host-time needs are met by calling
//                             obs::prof::now_ns()/cycles(); the wallclock
//                             ban has exactly one carve-out, not a
//                             per-file mute button. Island files skip R1
//                             entirely and need no allow.
//   std-hash             (R8) std::hash — libstdc++ and libc++ hash the
//                             same value differently, so anything derived
//                             from it (seeds, sampling keys, bucket
//                             choices) silently diverges across
//                             platforms; derive stable keys from
//                             sim::fnv1a64 / sim::seed_mix (sim/seed.hpp)
//
// Scanner, not a compiler: the pass works on a comment/string-stripped
// token view of each file (no libclang dependency), which keeps it fast
// and dependency-free at the cost of AST precision. Rules are tuned so
// false positives are rare and every true hit is suppressible in place:
//
//   foo();  // hvc-lint: allow(unordered-container): keys are re-sorted
//           // before export, so iteration order cannot leak
//
// A suppression names the rule(s) it silences and MUST carry a
// justification after the closing colon; an allow without one is itself
// a finding. A suppression on its own comment line applies to the next
// code line; `allow-file(rule)` near the top of a file silences the rule
// for the whole file.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hvc::lint {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);

struct Finding {
  std::string file;
  int line = 1;  ///< 1-based
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string message;
};

/// A rule's identity: the name used in diagnostics and allow() tags.
struct RuleInfo {
  const char* name;
  Severity severity;
  const char* summary;
};

/// Every rule the pass knows, in stable (R1..R8 + directive) order.
[[nodiscard]] const std::vector<RuleInfo>& rules();
[[nodiscard]] bool known_rule(std::string_view name);

struct Options {
  /// Run the R6 header self-sufficiency compile check (invokes the
  /// compiler once per header; needs a toolchain on PATH).
  bool compile_check = false;
  std::string compiler = "c++";
  /// -I directories for the compile check (transitive includes).
  std::vector<std::string> include_dirs;
};

/// Lint one file's contents (R1–R5, R8 + suppression diagnostics). `path`
/// is used for reporting only; nothing is read from disk.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               std::string_view text,
                                               const Options& opts = {});

/// Lint a file from disk; adds the R6 compile check for headers when
/// opts.compile_check is set. Unreadable file = one kError finding.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& opts = {});

/// Recursively lint every .hpp/.h/.cpp/.cc under `roots` (files are also
/// accepted directly). Results are ordered by path then line, so output
/// is byte-stable for a given tree.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::vector<std::string>& roots, const Options& opts = {});

/// Human-readable report: "file:line: severity: [rule] message" lines.
[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

/// Machine-readable report:
///   {"findings":[{"file":...,"line":...,"rule":...,"severity":...,
///    "message":...}],"errors":N,"warnings":N,"notes":N}
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// The gate condition: any finding at warning severity or worse.
[[nodiscard]] bool has_failure(const std::vector<Finding>& findings);

}  // namespace hvc::lint
