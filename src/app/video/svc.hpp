// SVC bitstream model (substitution for VP9-SVC encoding of MOT17 —
// DESIGN.md §2).
//
// The paper's video experiment (§3.3) encodes each frame into three
// spatial layers at target bitrates 400 / 4100 / 7500 kbps. We model the
// *bitstream*, not pixels: per-frame layer sizes follow the target
// bitrates with encoder variance and periodic keyframe spikes, and
// decoded quality is an analytic layers→SSIM map calibrated to the
// paper's reported numbers. The steering comparison only depends on which
// layers arrive by the decode deadline, which this preserves.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/units.hpp"

namespace hvc::app::video {

struct SvcConfig {
  /// Per-layer target bitrates; defaults are the paper's (cumulative
  /// 12 Mbps).
  std::vector<sim::RateBps> layer_bitrates = {
      sim::kbps(400), sim::kbps(4100), sim::kbps(7500)};
  int fps = 30;
  /// Multiplicative size jitter per layer per frame (encoder variance).
  double size_jitter = 0.2;
  /// Every n-th frame is a keyframe: larger and dependency-resetting.
  int keyframe_interval = 30;
  double keyframe_scale = 2.5;
  std::uint64_t seed = 17;
};

struct EncodedFrame {
  int index = 0;
  bool keyframe = false;
  sim::Time capture_time = 0;
  std::vector<std::int64_t> layer_bytes;
};

/// Deterministic stream of encoded frames.
class SvcEncoder {
 public:
  explicit SvcEncoder(SvcConfig cfg);

  /// Encode the next frame, captured at `now`.
  EncodedFrame next_frame(sim::Time now);

  [[nodiscard]] sim::Duration frame_interval() const {
    return sim::seconds(1) / cfg_.fps;
  }
  [[nodiscard]] std::size_t layers() const {
    return cfg_.layer_bitrates.size();
  }
  [[nodiscard]] const SvcConfig& config() const { return cfg_; }

 private:
  SvcConfig cfg_;
  sim::Rng rng_;
  int next_index_ = 0;
};

/// Analytic layers-decoded → SSIM map. `layers_decoded` of 0 means the
/// frame could not be decoded at all (previous-frame dependency broken).
/// Values calibrated so eMBB-only vs priority-steering deltas match the
/// paper (≈0.068 mean SSIM cost for layer-0-only operation).
double ssim_for_layers(int layers_decoded);

/// Per-frame SSIM with mild content-dependent noise.
double ssim_for_layers(int layers_decoded, sim::Rng& rng);

/// Message-id encoding for (frame, layer) over a datagram flow.
constexpr std::uint64_t frame_layer_id(int frame, int layer) {
  return (static_cast<std::uint64_t>(frame) << 4) |
         static_cast<std::uint64_t>(layer + 1);
}
constexpr int id_frame(std::uint64_t id) { return static_cast<int>(id >> 4); }
constexpr int id_layer(std::uint64_t id) {
  return static_cast<int>(id & 0xF) - 1;
}

}  // namespace hvc::app::video
