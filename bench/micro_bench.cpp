// Google-benchmark microbenchmarks for the hot paths of the emulator:
// event queue throughput, link service, steering decisions, trace
// generation, and an end-to-end mini-scenario per iteration. These guard
// against performance regressions that would make the macro experiments
// (60 s simulations) impractically slow.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "channel/profile.hpp"
#include "core/scenario.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "steer/dchannel.hpp"
#include "steer/priority.hpp"
#include "trace/gen5g.hpp"

namespace {

using namespace hvc;

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    std::int64_t fired = 0;
    // Self-rescheduling event chain: the pattern every timer produces.
    std::function<void()> tick = [&] {
      if (++fired < state.range(0)) s.after(sim::microseconds(10), tick);
    };
    s.after(0, tick);
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(10'000)->Arg(100'000);

void BM_LinkService(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    channel::LinkConfig cfg;
    cfg.capacity = trace::CapacityTrace::constant(sim::mbps(100));
    channel::Link link(s, cfg);
    std::int64_t delivered = 0;
    link.set_receiver([&](net::PacketPtr) { ++delivered; });
    for (int i = 0; i < state.range(0); ++i) {
      auto p = net::make_packet();
      p->size_bytes = 1500;
      link.send(std::move(p));
    }
    s.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkService)->Arg(10'000);

void BM_DChannelDecision(benchmark::State& state) {
  steer::DChannelPolicy policy;
  std::array<steer::ChannelView, 2> views{};
  views[0].avg_rate_bps = views[0].recent_rate_bps = 60e6;
  views[0].base_owd = sim::milliseconds(25);
  views[0].queue_limit_bytes = 750 * 1024;
  views[1].index = 1;
  views[1].avg_rate_bps = views[1].recent_rate_bps = 2e6;
  views[1].base_owd = sim::microseconds(2500);
  views[1].queue_limit_bytes = 64 * 1024;
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1500;
  std::int64_t q = 0;
  for (auto _ : state) {
    views[0].queued_bytes = q = (q + 7919) % 500000;  // vary the input
    benchmark::DoNotOptimize(policy.steer(pkt, views, 0));
  }
}
BENCHMARK(BM_DChannelDecision);

void BM_PriorityDecision(benchmark::State& state) {
  steer::MessagePriorityPolicy policy;
  std::array<steer::ChannelView, 2> views{};
  views[0].avg_rate_bps = views[0].recent_rate_bps = 60e6;
  views[1].index = 1;
  views[1].avg_rate_bps = views[1].recent_rate_bps = 2e6;
  views[1].base_owd = sim::microseconds(2500);
  views[1].queue_limit_bytes = 64 * 1024;
  net::Packet pkt;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = 1500;
  pkt.app.present = true;
  std::uint8_t prio = 0;
  for (auto _ : state) {
    pkt.app.priority = prio = (prio + 1) % 3;
    benchmark::DoNotOptimize(policy.steer(pkt, views, 0));
  }
}
BENCHMARK(BM_PriorityDecision);

void BM_TraceGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto t = trace::make_5g_trace(trace::FiveGProfile::kLowbandDriving,
                                  sim::seconds(60), seed++);
    benchmark::DoNotOptimize(t.opportunities_per_period());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSecond(benchmark::State& state) {
  // One simulated second of a steered CUBIC bulk transfer per iteration:
  // the composite cost of links + shim + transport + CCA.
  for (auto _ : state) {
    const auto r = core::run_bulk(core::ScenarioConfig::fig1(), "cubic",
                                  sim::seconds(1));
    benchmark::DoNotOptimize(r.goodput_bps);
  }
}
BENCHMARK(BM_EndToEndSecond)->Unit(benchmark::kMillisecond);

}  // namespace

// Explicit main (instead of BENCHMARK_MAIN) so the run still produces a
// micro_bench.manifest.json like every other bench binary.
int main(int argc, char** argv) {
  hvc::bench::ObsSession obs("micro_bench");
  obs.set_seed(1);
  obs.param("suite", "google-benchmark hot paths");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
