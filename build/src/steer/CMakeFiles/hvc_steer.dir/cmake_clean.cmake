file(REMOVE_RECURSE
  "CMakeFiles/hvc_steer.dir/cost_aware.cpp.o"
  "CMakeFiles/hvc_steer.dir/cost_aware.cpp.o.d"
  "CMakeFiles/hvc_steer.dir/dchannel.cpp.o"
  "CMakeFiles/hvc_steer.dir/dchannel.cpp.o.d"
  "CMakeFiles/hvc_steer.dir/flow_binding.cpp.o"
  "CMakeFiles/hvc_steer.dir/flow_binding.cpp.o.d"
  "CMakeFiles/hvc_steer.dir/priority.cpp.o"
  "CMakeFiles/hvc_steer.dir/priority.cpp.o.d"
  "CMakeFiles/hvc_steer.dir/redundant.cpp.o"
  "CMakeFiles/hvc_steer.dir/redundant.cpp.o.d"
  "libhvc_steer.a"
  "libhvc_steer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvc_steer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
