// obs::prof — host-side, sim-determinism-safe hot-path profiler.
//
// This file (together with prof.cpp) is the repo's *sanctioned clock
// island*: the only place simulation-adjacent code may read host clocks.
// hvc_lint rule R1 bans wall-clock/entropy sources everywhere else, and
// rule R7 (clock-island) bans even `allow(wallclock)` suppressions
// outside `src/obs/prof` and `bench/` — host-time needs are met by
// calling prof::now_ns() / prof::cycles(), never by a local carve-out.
//
// Design constraints, in order:
//   1. Determinism. Hooks read the TSC and bump thread-local counters;
//      they never touch simulator state, RNG streams, packet ids or any
//      exported artifact. `HVC_PROF=ON` vs `OFF` runs are byte-identical
//      (pinned by tests/prof_test.cpp).
//   2. Zero overhead when compiled out. With the CMake option
//      `-DHVC_PROF=OFF` the HVC_PROF_* hook macros expand to `((void)0)`
//      and the tracking allocator degrades to std::allocator — the hot
//      paths carry no trace of the profiler.
//   3. Near-zero overhead when compiled in but disabled (the default at
//      runtime): one relaxed atomic load per hook.
//   4. Sweep-safe. All accumulation is thread-local, so the concurrent
//      sweep engine (src/exp) never contends; fold/snapshot read the
//      calling thread's stats.
//
// The profiler feeds two consumers: bench::ObsSession folds hook totals
// into the MetricsRegistry (prof.* metrics in every bench manifest when
// the HVC_PROF env var is set), and the bench/hotpath harness turns
// per-repeat deltas into the BENCH_*.json perf trajectory
// (obs/perf_manifest.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ctime>
#include <memory>
#include <string>

#ifndef HVC_PROF_ENABLED
#define HVC_PROF_ENABLED 1
#endif

namespace hvc::obs {

class MetricsRegistry;

namespace prof {

// ---- Instrumented hot paths --------------------------------------------

enum class Hook : std::uint8_t {
  kEventPush,        ///< sim::EventQueue::push
  kEventPop,         ///< sim::EventQueue::pop (== events executed)
  kPacketAlloc,      ///< net::make_packet / clone_packet
  kPacketFree,       ///< packet object deallocation (tracking allocator)
  kLinkServe,        ///< channel::Link::on_opportunity (service discipline)
  kSteer,            ///< net::Shim::send (policy dispatch + audit/trace)
  kTelemetrySample,  ///< obs::TelemetrySampler::sample (one tick)
};
inline constexpr std::size_t kHookCount = 7;

/// Stable short name used in metric keys and perf manifests
/// ("event_push", "steer", ...).
[[nodiscard]] const char* hook_name(Hook h);

// ---- The sanctioned host clocks ----------------------------------------

/// Monotonic host time in nanoseconds. The ONLY wall-clock accessor
/// simulation-adjacent code may use (ETA displays, wall_ms diagnostics);
/// values must never feed simulation state or determinism-checked
/// exports.
[[nodiscard]] inline std::uint64_t now_ns() {
#if defined(__unix__) || defined(__APPLE__)
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;  // no monotonic source on this platform; meters read 0
#endif
}

/// Raw cycle counter (TSC / virtual counter); falls back to now_ns()
/// where none exists. Convert with cycles_per_ns() after calibrate().
[[nodiscard]] inline std::uint64_t cycles() {
#if defined(__x86_64__) || defined(__i386__)
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  __asm__ __volatile__("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
  std::uint64_t v = 0;
  __asm__ __volatile__("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return now_ns();
#endif
}

/// Calibrated TSC rate (spins ~10 ms of host time on first call, cached
/// after). Thread-safe; returns 1.0 when no monotonic clock exists.
[[nodiscard]] double cycles_per_ns();

/// Best-effort: pin the calling thread to `cpu` (Linux). The microbench
/// harness pins before measuring so TSC deltas are not polluted by
/// migrations. Returns false when unsupported or refused.
bool pin_to_cpu(int cpu);
/// CPU successfully pinned to via pin_to_cpu(), or -1.
[[nodiscard]] int pinned_cpu();

// ---- Host metadata for perf manifests ----------------------------------

/// "model name" from /proc/cpuinfo, or "unknown".
[[nodiscard]] std::string cpu_model();
/// `git rev-parse HEAD` of `repo_dir`, or "unknown".
[[nodiscard]] std::string git_sha(const std::string& repo_dir);
/// Compiler id + version this TU was built with ("g++ 12.2.0"-style).
[[nodiscard]] std::string compiler_id();

// ---- Accumulators (thread-local) ----------------------------------------

struct HookStats {
  std::uint64_t calls = 0;
  std::uint64_t cycles = 0;  ///< scoped-timed hooks only; stride-sampled
                             ///< estimate (see ScopedTimer::kSampleStride)
};

struct AllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t frees = 0;
  std::uint64_t free_bytes = 0;
};

struct ThreadStats {
  std::array<HookStats, kHookCount> hooks{};
  AllocStats alloc;
};

/// The calling thread's accumulators. Thread-local so concurrent sweep
/// runs never contend (each worker profiles its own runs).
[[nodiscard]] inline ThreadStats& thread_stats() {
  thread_local ThreadStats stats;
  return stats;
}

// Runtime gate, process-global: enable() before a measured region,
// disable() after. Relaxed loads — hooks observe flips at the next call,
// which is all the harness needs (it flips while no simulation runs).
inline std::atomic<bool> g_enabled{false};

[[nodiscard]] inline bool enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}
inline void enable() { g_enabled.store(true, std::memory_order_relaxed); }
inline void disable() { g_enabled.store(false, std::memory_order_relaxed); }

/// Zero the calling thread's accumulators (registrations are stateless,
/// so there is nothing else to keep).
inline void reset() { thread_stats() = ThreadStats{}; }

[[nodiscard]] inline const HookStats& stats(Hook h) {
  return thread_stats().hooks[static_cast<std::size_t>(h)];
}
[[nodiscard]] inline const AllocStats& alloc_stats() {
  return thread_stats().alloc;
}

inline void record(Hook h, std::uint64_t cycle_delta) {
  HookStats& s = thread_stats().hooks[static_cast<std::size_t>(h)];
  ++s.calls;
  s.cycles += cycle_delta;
}

inline void count_alloc(std::uint64_t bytes) {
  AllocStats& a = thread_stats().alloc;
  ++a.allocs;
  a.alloc_bytes += bytes;
  HookStats& s =
      thread_stats().hooks[static_cast<std::size_t>(Hook::kPacketAlloc)];
  ++s.calls;
}

inline void count_free(std::uint64_t bytes) {
  AllocStats& a = thread_stats().alloc;
  ++a.frees;
  a.free_bytes += bytes;
  HookStats& s =
      thread_stats().hooks[static_cast<std::size_t>(Hook::kPacketFree)];
  ++s.calls;
}

/// Fold the calling thread's accumulators into `registry` as counters:
///   prof.<hook>.calls   prof.<hook>.cycles
///   prof.alloc.{count,bytes}   prof.free.{count,bytes}
/// Every key is always emitted (zeros included) so manifest schemas stay
/// diffable across runs.
void fold_into(MetricsRegistry& registry);

// ---- RAII scoped timer ---------------------------------------------------

/// Counts every call and cycle-times a deterministic 1-in-64 sample of
/// them, crediting the hook on destruction. `calls` stays exact; `cycles`
/// is the sampled total scaled by the stride, an unbiased estimate of the
/// true inclusive cost. Sampling exists because a TSC read pair is itself
/// tens of nanoseconds on some hosts — timing every event-queue push/pop
/// would dominate the very paths being measured. The sample choice is
/// keyed on the call counter (never a clock or RNG), so instrumentation
/// stays deterministic; cycle totals only ever feed perf manifests.
/// Nests freely (inner sampled scopes are included in outer totals, like
/// any inclusive profiler). A timer constructed while disabled stays
/// unarmed even if profiling flips on before it dies.
class ScopedTimer {
 public:
  static constexpr std::uint64_t kSampleStride = 64;

  explicit ScopedTimer(Hook h) {
    if (enabled()) {
      stats_ = &thread_stats().hooks[static_cast<std::size_t>(h)];
      timed_ = (stats_->calls & (kSampleStride - 1)) == 0;
      if (timed_) start_ = cycles();
    }
  }
  ~ScopedTimer() {
    if (stats_ != nullptr) {
      ++stats_->calls;
      if (timed_) stats_->cycles += (cycles() - start_) * kSampleStride;
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HookStats* stats_ = nullptr;
  std::uint64_t start_ = 0;
  bool timed_ = false;
};

/// Items-over-host-time meter (events/sec, packets/sec) for harness and
/// progress displays. Reads now_ns(); never use the value in sim logic.
class ThroughputMeter {
 public:
  ThroughputMeter() : start_ns_(now_ns()) {}

  void add(std::uint64_t items) { items_ += items; }
  [[nodiscard]] std::uint64_t items() const { return items_; }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }
  [[nodiscard]] double per_sec() const {
    const double s = elapsed_s();
    return s > 0.0 ? static_cast<double>(items_) / s : 0.0;
  }
  void restart() {
    start_ns_ = now_ns();
    items_ = 0;
  }

 private:
  std::uint64_t start_ns_;
  std::uint64_t items_ = 0;
};

// ---- Counting hooks (compile out with HVC_PROF=OFF) ---------------------

inline void hook_alloc(std::uint64_t bytes) {
#if HVC_PROF_ENABLED
  if (enabled()) count_alloc(bytes);
#else
  (void)bytes;
#endif
}

inline void hook_free(std::uint64_t bytes) {
#if HVC_PROF_ENABLED
  if (enabled()) count_free(bytes);
#else
  (void)bytes;
#endif
}

/// Allocator that routes byte counts through hook_alloc/hook_free; used
/// by net::make_packet via std::allocate_shared so packet object (and
/// control block) allocations show up in prof.alloc.* without touching
/// the Packet type. Stateless — interchangeable with std::allocator.
template <class T>
struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <class U>
  TrackingAllocator(const TrackingAllocator<U>& /*other*/) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    hook_alloc(n * sizeof(T));
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    hook_free(n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  template <class U>
  bool operator==(const TrackingAllocator<U>& /*other*/) const noexcept {
    return true;
  }
};

}  // namespace prof
}  // namespace hvc::obs

// Statement hooks for hot paths. `hook` must be a fully qualified
// ::hvc::obs::prof::Hook value (or one reachable from the call site).
#if HVC_PROF_ENABLED
#define HVC_PROF_CONCAT_INNER(a, b) a##b
#define HVC_PROF_CONCAT(a, b) HVC_PROF_CONCAT_INNER(a, b)
#define HVC_PROF_SCOPE(hook)                                       \
  ::hvc::obs::prof::ScopedTimer HVC_PROF_CONCAT(hvc_prof_scope_,   \
                                                __LINE__)((hook))
#else
#define HVC_PROF_SCOPE(hook) ((void)0)
#endif
