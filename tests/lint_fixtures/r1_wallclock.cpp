// Fixture: R1 (wallclock) — one seeded violation, line 8.
#include <chrono>

namespace fixture {

double sample_wall_time() {
  // VIOLATION: wall clock in simulation code.
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

// Word-boundary negatives: none of these may fire.
int hold_time(int x) { return x; }       // suffix of an identifier
struct Timer {
  int time_ = 0;
  int member_time() const { return time_; }
};

}  // namespace fixture
