
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_video_steering.cpp" "bench/CMakeFiles/fig2_video_steering.dir/fig2_video_steering.cpp.o" "gcc" "bench/CMakeFiles/fig2_video_steering.dir/fig2_video_steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/hvc_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/hvc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hvc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/steer/CMakeFiles/hvc_steer.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/hvc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hvc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
