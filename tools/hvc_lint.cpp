// hvc_lint: run the repo's determinism & simulation-safety lint pass
// (src/lint) over one or more source trees.
//
//   hvc_lint [options] <file-or-dir>...
//     --json                machine-readable output (findings + counts)
//     --compile-check       also run the R6 header self-sufficiency check
//                           (compiles each header in isolation; skipped
//                           with a note when no compiler is on PATH)
//     --compiler <cc>       compiler for --compile-check (default: c++)
//     -I <dir>              include dir for --compile-check (repeatable)
//     --list-rules          print the rule table and exit
//
// Exit status: 0 clean (notes allowed), 1 findings at warning or worse,
// 2 usage / IO error. scripts/check.sh lint is the canonical invocation.
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--compile-check] [--compiler <cc>] "
               "[-I <dir>]... [--list-rules] <file-or-dir>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hvc::lint::Options opts;
  bool json = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--compile-check") {
      opts.compile_check = true;
    } else if (arg == "--compiler") {
      if (++i >= argc) return usage(argv[0]);
      opts.compiler = argv[i];
    } else if (arg == "-I") {
      if (++i >= argc) return usage(argv[0]);
      opts.include_dirs.push_back(argv[i]);
    } else if (arg == "--list-rules") {
      for (const auto& r : hvc::lint::rules()) {
        std::printf("%-28s %-8s %s\n", r.name,
                    hvc::lint::severity_name(r.severity), r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  for (const auto& root : roots) {
    std::error_code ec;
    if (!std::filesystem::exists(root, ec) || ec) {
      std::fprintf(stderr, "hvc_lint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }

  const std::vector<hvc::lint::Finding> findings =
      hvc::lint::lint_tree(roots, opts);

  if (json) {
    std::printf("%s\n", hvc::lint::to_json(findings).c_str());
  } else {
    std::fputs(hvc::lint::to_text(findings).c_str(), stdout);
    if (findings.empty()) {
      std::printf("hvc_lint: clean (%zu root%s)\n", roots.size(),
                  roots.size() == 1 ? "" : "s");
    }
  }
  return hvc::lint::has_failure(findings) ? 1 : 0;
}
