// MLO-style redundant steering (§2.2): trade bandwidth for reliability by
// replicating selected packets across channels, as Wi-Fi 7 Multi-Link
// Operation does. The receiver deduplicates (net::Node tracks duplicate
// groups), so the application sees the earliest surviving copy.
#pragma once

#include <cstdint>
#include <memory>

#include "steer/steering_policy.hpp"

namespace hvc::steer {

struct RedundantConfig {
  /// Replicate every packet (true) or only those with message priority
  /// <= `max_priority_to_mirror` / control packets (false).
  bool mirror_all = false;
  std::uint8_t max_priority_to_mirror = 0;
  bool mirror_control = true;

  /// Skip the mirror when its queue is fuller than this — replication must
  /// degrade to single-path under load, not amplify congestion.
  double mirror_max_queue_fill = 0.8;
};

/// Decorator: delegates primary-channel choice to `base`, then adds a
/// duplicate on the best alternative channel when the packet qualifies.
class RedundantPolicy final : public SteeringPolicy {
 public:
  RedundantPolicy(std::unique_ptr<SteeringPolicy> base, RedundantConfig cfg)
      : base_(std::move(base)), cfg_(cfg) {}

  [[nodiscard]] std::string name() const override {
    return "redundant(" + base_->name() + ")";
  }
  [[nodiscard]] bool uses_app_info() const override {
    return base_->uses_app_info() || !cfg_.mirror_all;
  }
  [[nodiscard]] bool uses_flow_priority() const override {
    return base_->uses_flow_priority();
  }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override;

 private:
  std::unique_ptr<SteeringPolicy> base_;
  RedundantConfig cfg_;
};

}  // namespace hvc::steer
