// Packet loss models applied at the wire (post-queue).
//
// Bernoulli i.i.d. loss for simple channels, and Gilbert-Elliott two-state
// burst loss for wireless channels — burstiness is what makes the
// bandwidth-vs-reliability trade-off (MLO replication, §2.2) interesting:
// i.i.d. loss is cheap to code around with FEC, correlated loss is not.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace hvc::channel {

struct LossConfig {
  /// i.i.d. drop probability per packet.
  double bernoulli = 0.0;

  /// Gilbert-Elliott burst loss. Enabled when `ge_loss_in_bad > 0`.
  double ge_p_good_to_bad = 0.0;  ///< per-packet transition probability
  double ge_p_bad_to_good = 0.0;
  double ge_loss_in_bad = 0.0;    ///< drop probability while in bad state
  double ge_loss_in_good = 0.0;

  [[nodiscard]] bool lossless() const {
    return bernoulli <= 0.0 && ge_loss_in_bad <= 0.0;
  }
};

class LossModel {
 public:
  LossModel(const LossConfig& cfg, sim::Rng rng) : cfg_(cfg), rng_(rng) {}

  /// Decide the fate of one packet. Advances GE state per call.
  [[nodiscard]] bool should_drop() {
    if (cfg_.lossless()) return false;
    bool drop = false;
    if (cfg_.bernoulli > 0.0 && rng_.chance(cfg_.bernoulli)) drop = true;
    if (cfg_.ge_loss_in_bad > 0.0) {
      if (in_bad_) {
        if (rng_.chance(cfg_.ge_loss_in_bad)) drop = true;
        if (rng_.chance(cfg_.ge_p_bad_to_good)) in_bad_ = false;
      } else {
        if (cfg_.ge_loss_in_good > 0.0 && rng_.chance(cfg_.ge_loss_in_good)) {
          drop = true;
        }
        if (rng_.chance(cfg_.ge_p_good_to_bad)) in_bad_ = true;
      }
    }
    return drop;
  }

  [[nodiscard]] bool in_bad_state() const { return in_bad_; }

 private:
  LossConfig cfg_;
  sim::Rng rng_;
  bool in_bad_ = false;
};

}  // namespace hvc::channel
