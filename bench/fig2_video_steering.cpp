// Figure 2: latency and quality (SSIM) distributions of decoded frames
// for three steering algorithms — eMBB-only, DChannel, and cross-layer
// priority-aware steering — on emulated 5G Lowband-driving and
// mmWave-driving eMBB plus URLLC.
//
// Paper reference (mmWave driving): priority steering cuts p95 latency by
// 1980 ms (26x) vs eMBB-only and 98 ms (2.26x: 176 -> 78 ms) vs DChannel,
// while costing only 0.068 / 0.002 mean SSIM respectively.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/scenario.hpp"
#include "trace/gen5g.hpp"

int main() {
  using namespace hvc;
  bench::ObsSession obs("fig2_video_steering");
  obs.set_seed(42);
  obs.param("schemes", "embb-only,dchannel,msg-priority");
  obs.param("video", "3-layer SVC, 12 Mbps, 30 fps, 60 s");
  bench::print_header(
      "Figure 2: SVC video (3 layers, 12 Mbps, 30 fps, 60 s) per steering "
      "scheme");

  for (const auto profile : {trace::FiveGProfile::kLowbandDriving,
                             trace::FiveGProfile::kMmWaveDriving}) {
    std::printf("\n-- eMBB trace: %s --\n", trace::to_string(profile));
    bench::print_row({"scheme", "lat p50", "lat p95", "lat max", "ssim mean",
                      "ssim p5", "L0-only", "full"},
                     13);
    struct Row {
      const char* scheme;
      core::VideoResult res;
    };
    std::vector<Row> rows;
    for (const char* scheme : {"embb-only", "dchannel", "msg-priority"}) {
      auto cfg = core::ScenarioConfig::traced(profile, scheme,
                                              sim::seconds(90), 42);
      rows.push_back(
          {scheme, core::run_video(cfg, {}, {}, sim::seconds(60))});
    }
    for (const auto& row : rows) {
      const auto& st = row.res.stats;
      bench::print_row(
          {row.scheme, bench::fmt(st.latency_ms.percentile(50)),
           bench::fmt(st.latency_ms.percentile(95)),
           bench::fmt(st.latency_ms.max()), bench::fmt(st.ssim.mean(), 3),
           bench::fmt(st.ssim.percentile(5), 3),
           std::to_string(st.decoded_at_layer[1]),
           std::to_string(st.decoded_at_layer[3])},
          13);
    }
    for (const auto& row : rows) {
      bench::print_cdf(std::string("latency(ms) ") + row.scheme,
                       row.res.stats.latency_ms);
    }
    for (const auto& row : rows) {
      bench::print_cdf(std::string("ssim        ") + row.scheme,
                       row.res.stats.ssim, 3);
    }
    const double dch_p95 = rows[1].res.stats.latency_ms.percentile(95);
    const double pri_p95 = rows[2].res.stats.latency_ms.percentile(95);
    const double embb_p95 = rows[0].res.stats.latency_ms.percentile(95);
    std::printf(
        "p95 latency: priority %.0f ms vs DChannel %.0f ms (%.2fx) vs "
        "eMBB-only %.0f ms (%.1fx); SSIM cost vs eMBB-only: %.3f\n",
        pri_p95, dch_p95, dch_p95 / pri_p95, embb_p95, embb_p95 / pri_p95,
        rows[0].res.stats.ssim.mean() - rows[2].res.stats.ssim.mean());
  }
  return 0;
}
