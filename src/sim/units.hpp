// Time, data-size and rate units used throughout the library.
//
// Simulated time is a signed 64-bit count of nanoseconds. A signed type is
// deliberate: durations are subtracted freely (e.g. RTT = now - sent_at) and
// unsigned wraparound bugs in that arithmetic are a classic source of
// emulator heisenbugs. 2^63 ns is ~292 years of simulated time.
#pragma once

#include <cstdint>

namespace hvc::sim {

/// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;
inline constexpr Time kTimeNever = INT64_MAX;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t us) { return us * 1'000; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr Duration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Fractional-second helper for config code ("0.033 s frame interval").
constexpr Duration seconds_f(double s) {
  return static_cast<Duration>(s * 1e9);
}
constexpr Duration milliseconds_f(double ms) {
  return static_cast<Duration>(ms * 1e6);
}

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_micros(Duration d) { return static_cast<double>(d) / 1e3; }

/// Link and sending rates, in bits per second.
using RateBps = std::int64_t;

constexpr RateBps bps(std::int64_t b) { return b; }
constexpr RateBps kbps(std::int64_t k) { return k * 1'000; }
constexpr RateBps mbps(std::int64_t m) { return m * 1'000'000; }
constexpr RateBps gbps(std::int64_t g) { return g * 1'000'000'000; }

constexpr double to_mbps(RateBps r) { return static_cast<double>(r) / 1e6; }

/// Time to serialize `bytes` at `rate`. Rounds up so that a packet is never
/// considered transmitted before its last bit.
constexpr Duration transmission_time(std::int64_t bytes, RateBps rate) {
  if (rate <= 0) return kTimeNever;
  const __int128 bits = static_cast<__int128>(bytes) * 8;
  return static_cast<Duration>((bits * 1'000'000'000 + rate - 1) / rate);
}

/// Bytes deliverable in `d` at `rate` (floor). 128-bit intermediate: an hour
/// at 100 Gbps overflows int64 if computed naively.
constexpr std::int64_t bytes_in(Duration d, RateBps rate) {
  if (d <= 0 || rate <= 0) return 0;
  const __int128 bits = static_cast<__int128>(d) * rate / 1'000'000'000;
  return static_cast<std::int64_t>(bits / 8);
}

}  // namespace hvc::sim
