#!/usr/bin/env bash
# Full local gate: build + test the default and sanitize presets, then
# run the concurrent-sweep suites (ExpSweep*) under ThreadSanitizer.
#
#   scripts/check.sh            # everything
#   scripts/check.sh default    # just the default preset
#   scripts/check.sh sanitize   # just the sanitizer preset
#   scripts/check.sh tsan       # just the tsan stage
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("${@:-default sanitize}")
# Word-split the default list when invoked with no arguments.
if [ $# -eq 0 ]; then presets=(default sanitize tsan); fi

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  if [ "${preset}" = "tsan" ]; then
    # Only the concurrency tests run under tsan; build just their binary
    # (gtest_discover_tests would otherwise inject <target>_NOT_BUILT
    # failures for every unbuilt test target).
    cmake --build --preset "${preset}" -j "$(nproc)" --target exp_test
    ctest --preset "${preset}"
  else
    cmake --build --preset "${preset}" -j "$(nproc)"
    ctest --preset "${preset}"
  fi
done

echo "All checks passed."
