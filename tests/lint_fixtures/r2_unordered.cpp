// Fixture: R2 (unordered-container) — one seeded violation, line 9.
// The #include line itself must NOT fire (preprocessor lines are
// exempt); the declaration must.
#include <string>
#include <unordered_map>

namespace fixture {

std::unordered_map<std::string, int> g_table;  // VIOLATION

}  // namespace fixture
