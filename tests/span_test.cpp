// Tests for the causal span layer (src/obs/span) and its src/exp
// integration: exact critical-path decomposition, bounded flight
// recorders, deterministic tail/reservoir retention, O(exemplars) memory
// as the city population scales, and the artifact byte-identity contract
// (.spans.jsonl is the same at any -j and across --shard/--merge).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/results.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "exp/sweep.hpp"
#include "obs/span.hpp"

namespace hvc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::int64_t part(const obs::SpanLeg& leg, obs::SpanComp c) {
  return leg.parts[static_cast<std::size_t>(c)];
}

/// The --explain invariant: leading propagation plus the critical leg's
/// components, summed over all stages, equals the measured total.
std::int64_t component_sum(const obs::SpanUnit& u) {
  std::int64_t sum = 0;
  for (const auto& st : u.stages) {
    sum += st.prop_ns;
    if (st.legs > 0) {
      for (const std::int64_t p : st.crit.parts) sum += p;
    }
  }
  return sum;
}

// ---- SpanUnitBuilder ----

TEST(SpanBuilder, DecompositionSumsToMeasuredTotalExactly) {
  obs::SpanUnitBuilder b;
  b.begin("web", "plt_ms", 3, 1'000'000);
  // Stage 1: 5 ms request RTT, then two parallel legs; slot 1 closes
  // last, so it is the blocking (critical) one.
  b.begin_stage(1'000'000, 5'000'000, "embb");
  b.leg_open(0, 6'000'000, 2'000, "urllc", "t:fast", 1'000'000);
  b.leg_open(1, 6'000'000, 80'000, "embb", "t:big", 3'000'000);
  b.leg_close(0, 8'000'000);
  b.leg_charge(1, obs::SpanComp::kRetransmission, 2'000'000);
  b.leg_close(1, 16'000'000);
  b.end_stage(16'000'000);
  // Stage 2: another RTT and a single 6 ms leg.
  b.begin_stage(16'000'000, 5'000'000, "embb");
  b.leg_open(0, 21'000'000, 10'000, "embb", "t:obj", 4'000'000);
  b.leg_close(0, 27'000'000);
  b.end_stage(27'000'000);
  const obs::SpanUnit u = b.finish(27'000'000, 26'000'000, 26.0);

  ASSERT_EQ(u.stages.size(), 2u);
  EXPECT_EQ(u.stages[0].legs, 2u);
  EXPECT_EQ(u.stages[0].crit.slot, 1u) << "last close wins";
  // Critical leg of stage 1 spans 10 ms: 2 ms charged retransmission,
  // 3 ms serialization hint, and the 5 ms sharing remainder as queueing.
  const obs::SpanLeg& c = u.stages[0].crit;
  EXPECT_EQ(part(c, obs::SpanComp::kRetransmission), 2'000'000);
  EXPECT_EQ(part(c, obs::SpanComp::kSerialization), 3'000'000);
  EXPECT_EQ(part(c, obs::SpanComp::kQueueing), 5'000'000);
  EXPECT_EQ(component_sum(u), 26'000'000);
}

TEST(SpanBuilder, ChargesClampToLegDurationAndSlackLandsInQueueing) {
  obs::SpanUnitBuilder b;
  b.begin("video", "frame_ms", 0, 0);
  b.begin_stage(0, 0, "");
  // Both the charge and the serialization hint exceed the observed 2 ms
  // leg duration: the charge is clamped first, the hint gets what's left
  // (nothing), so no component can overrun the leg.
  b.leg_open(0, 0, 10, "embb", "v:frame", 9'000'000);
  b.leg_charge(0, obs::SpanComp::kDecodeWait, 10'000'000);
  b.leg_close(0, 2'000'000);
  b.end_stage(2'000'000);
  // 3 ms of measured total is unattributed; finish() books it as
  // queueing on the last leg-bearing stage so the sum stays exact.
  const obs::SpanUnit u = b.finish(2'000'000, 5'000'000, 5.0);

  ASSERT_EQ(u.stages.size(), 1u);
  const obs::SpanLeg& c = u.stages[0].crit;
  EXPECT_EQ(part(c, obs::SpanComp::kDecodeWait), 2'000'000);
  EXPECT_EQ(part(c, obs::SpanComp::kSerialization), 0);
  EXPECT_EQ(part(c, obs::SpanComp::kQueueing), 3'000'000);
  EXPECT_EQ(component_sum(u), 5'000'000);
}

TEST(SpanBuilder, StageOverflowIsCountedNotAllocated) {
  obs::SpanUnitBuilder b;
  b.begin("t", "ms", 0, 0);
  const int n = static_cast<int>(obs::SpanUnitBuilder::kMaxStages) + 8;
  for (int i = 0; i < n; ++i) {
    b.begin_stage(i, 0, "");
    b.end_stage(i + 1);
  }
  const obs::SpanUnit u = b.finish(n, n, static_cast<double>(n));
  EXPECT_EQ(u.stages.size(), obs::SpanUnitBuilder::kMaxStages);
  EXPECT_EQ(b.truncated(), 8u);
}

// ---- SpanRecorder retention ----

obs::SpanUnit one_stage_unit(double value) {
  obs::SpanUnitBuilder b;
  b.begin("t", "ms", 1, 0);
  b.begin_stage(0, 1'000, "embb");
  b.leg_open(0, 1'000, 100, "embb", "t:r", 500);
  b.leg_close(0, 4'000);
  b.end_stage(4'000);
  return b.finish(4'000, 4'000, value);
}

obs::SpanConfig small_config() {
  obs::SpanConfig cfg;
  cfg.tail_quantile = 90.0;
  cfg.tail_budget = 4;
  cfg.reservoir_budget = 2;
  cfg.reservoir_period = 8;
  cfg.warmup = 16;
  cfg.seed = 42;
  return cfg;
}

TEST(SpanRetention, TailRuleKeepsSlowUnitsAndStaysBounded) {
  obs::SpanRecorder rec;
  rec.enable(small_config());
  for (int i = 0; i < 64; ++i) rec.offer(one_stage_unit(10.0));
  rec.offer(one_stage_unit(500.0));  // far above the live p90
  EXPECT_EQ(rec.offered(), 65u);
  EXPECT_LE(rec.retained(), 4u + 2u);
  const std::string out = rec.to_jsonl();
  EXPECT_NE(out.find("\"keep\":\"tail\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"keep\":\"reservoir\""), std::string::npos) << out;
}

TEST(SpanRetention, ExportIsAPureFunctionOfTheOfferSequence) {
  const auto feed = [](obs::SpanRecorder* rec) {
    rec->enable(small_config());
    for (int i = 0; i < 100; ++i) {
      rec->offer(one_stage_unit(static_cast<double>((i * 37) % 91)));
    }
  };
  obs::SpanRecorder a;
  obs::SpanRecorder b;
  feed(&a);
  feed(&b);
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());

  // The reservoir is keyed by the config seed, not a shared RNG: a
  // different seed may keep different "normal" exemplars, but the export
  // stays well-formed and bounded.
  obs::SpanRecorder c;
  auto cfg = small_config();
  cfg.seed = 43;
  c.enable(cfg);
  for (int i = 0; i < 100; ++i) {
    c.offer(one_stage_unit(static_cast<double>((i * 37) % 91)));
  }
  EXPECT_LE(c.retained(), 4u + 2u);
}

TEST(SpanRetention, MemoryIsBoundedAtAnyOfferCount) {
  obs::SpanRecorder rec;
  rec.enable(small_config());
  for (int i = 0; i < 1'000; ++i) {
    rec.offer(one_stage_unit(static_cast<double>(i % 97)));
  }
  const std::size_t after_1k = rec.span_bytes();
  for (int i = 1'000; i < 10'000; ++i) {
    rec.offer(one_stage_unit(static_cast<double>(i % 97)));
  }
  EXPECT_LE(rec.retained(), 4u + 2u);
  EXPECT_EQ(rec.span_bytes(), after_1k)
      << "retention is O(exemplars): 10x the offers, same footprint";
}

// ---- City-scale integration (src/exp) ----

exp::RunResult run_city_with_spans(int users, const std::string& prefix) {
  const std::string spec_json = R"({
    "name": "span_scale", "workload": "city", "duration_s": 5, "seed": 11,
    "channels": [
      {"type": "embb", "rate_mbps": 100, "rtt_ms": 50},
      {"type": "urllc", "rate_mbps": 5, "rtt_ms": 5}
    ],
    "city": {"users": )" +
                                std::to_string(users) + R"(,
             "churn": {"arrival_rate_per_s": 1, "mean_session_s": 20}},
    "spans": {}
  })";
  const auto spec = exp::ScenarioSpec::from_json_text(spec_json);
  exp::RunOptions opts;
  opts.out_prefix = prefix;
  return exp::run_scenario(spec, opts);
}

TEST(SpanScale, ExemplarCountAndMemoryBoundedAsPopulationGrows) {
  const auto small =
      run_city_with_spans(1'000, ::testing::TempDir() + "hvc_span_1k");
  const auto large =
      run_city_with_spans(8'000, ::testing::TempDir() + "hvc_span_8k");
  ASSERT_TRUE(small.error.empty()) << small.error;
  ASSERT_TRUE(large.error.empty()) << large.error;

  // Both scales complete units (8x the users saturates the shared cell,
  // so the larger run may well finish *fewer* pages)...
  EXPECT_GT(small.metrics.at("city.spans_offered"), 0.0);
  EXPECT_GT(large.metrics.at("city.spans_offered"), 0.0);
  // ...and retention is capped per (cohort, metric) key regardless: the
  // city workload has two keys (web.plt_ms, video.latency_ms) at the
  // default budgets of 16 tail + 8 reservoir exemplars each.
  EXPECT_LE(small.metrics.at("city.spans_retained"), 2 * (16 + 8));
  EXPECT_LE(large.metrics.at("city.spans_retained"), 2 * (16 + 8));
  // The O(exemplars) claim end to end: footprint stays the same order,
  // not 8x. (Retained trees differ, so allow shape variation.)
  EXPECT_LE(large.metrics.at("city.span_bytes"),
            2.0 * small.metrics.at("city.span_bytes"));
}

// ---- Sweep artifact byte-identity ----

exp::SweepSpec span_sweep() {
  return exp::SweepSpec::from_json_text(R"({
    "name": "span_sweep",
    "base": {
      "name": "span_sweep", "workload": "city", "duration_s": 5, "seed": 3,
      "channels": [
        {"type": "embb", "rate_mbps": 100, "rtt_ms": 50},
        {"type": "urllc", "rate_mbps": 5, "rtt_ms": 5}
      ],
      "city": {"users": 300,
               "churn": {"arrival_rate_per_s": 1, "mean_session_s": 20}},
      "spans": {"warmup": 8, "reservoir_period": 16}
    },
    "axes": {"policy": ["embb-only", "dchannel"]}
  })");
}

TEST(SpanSweep, PerRunSpansAreByteIdenticalAcrossJobs) {
  const auto sweep = span_sweep();
  const std::string p1 = ::testing::TempDir() + "hvc_span_j1";
  const std::string p4 = ::testing::TempDir() + "hvc_span_j4";
  const auto serial = exp::run_sweep(sweep, 1, nullptr, p1);
  const auto parallel = exp::run_sweep(sweep, 4, nullptr, p4);
  ASSERT_EQ(serial.size(), 2u);
  for (const auto& r : serial) ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(exp::to_jsonl(serial), exp::to_jsonl(parallel));
  for (int i = 0; i < 2; ++i) {
    const std::string run = ".run" + std::to_string(i) + ".spans.jsonl";
    const std::string a = slurp(p1 + run);
    ASSERT_FALSE(a.empty()) << p1 + run;
    EXPECT_EQ(a, slurp(p4 + run)) << run;
  }
}

TEST(SpanSweep, ShardedSpansMatchUnshardedBytes) {
  const auto sweep = span_sweep();
  const std::string pw = ::testing::TempDir() + "hvc_span_whole";
  const std::string ps = ::testing::TempDir() + "hvc_span_shard";
  const auto whole = exp::run_sweep(sweep, 2, nullptr, pw);

  std::vector<exp::RunResult> merged;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    auto part = exp::run_sweep_shard(sweep, 1, shard, 2, nullptr, ps);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const exp::RunResult& a, const exp::RunResult& b) {
              return a.index < b.index;
            });
  EXPECT_EQ(exp::to_jsonl(merged), exp::to_jsonl(whole));
  // Shard artifacts carry the global run index, so each shard's
  // .spans.jsonl is byte-identical to the unsharded sweep's.
  for (int i = 0; i < 2; ++i) {
    const std::string run = ".run" + std::to_string(i) + ".spans.jsonl";
    const std::string a = slurp(pw + run);
    ASSERT_FALSE(a.empty()) << pw + run;
    EXPECT_EQ(a, slurp(ps + run)) << run;
  }
}

}  // namespace
}  // namespace hvc
