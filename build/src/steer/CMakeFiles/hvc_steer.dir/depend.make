# Empty dependencies file for hvc_steer.
# This may be replaced when dependencies are built.
