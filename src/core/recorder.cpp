#include "core/recorder.hpp"

#include <sstream>

namespace hvc::core {

ChannelRecorder::ChannelRecorder(net::TwoHostNetwork& net,
                                 sim::Duration interval)
    : net_(net), interval_(interval) {
  series_.resize(net_.channels().size());
  for (std::size_t i = 0; i < series_.size(); ++i) {
    series_[i].name = net_.channels().at(i).name();
  }
  sample();
}

void ChannelRecorder::sample() {
  if (!running_) return;
  auto& sim = net_.client().simulator();
  const auto now = sim.now();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    auto& ch = net_.channels().at(i);
    series_[i].down_queue_bytes.add(
        now, static_cast<double>(ch.downlink().queued_bytes()));
    series_[i].up_queue_bytes.add(
        now, static_cast<double>(ch.uplink().queued_bytes()));
    series_[i].down_capacity_mbps.add(
        now, ch.downlink().recent_delivery_rate_bps() / 1e6);
  }
  sim.after(interval_, [this] { sample(); });
}

std::string ChannelRecorder::to_csv() const {
  std::ostringstream out;
  out << "time_ms";
  for (const auto& s : series_) {
    out << ',' << s.name << "_down_queue," << s.name << "_up_queue,"
        << s.name << "_down_mbps";
  }
  out << '\n';
  if (series_.empty()) return out.str();
  const auto n = series_[0].down_queue_bytes.size();
  for (std::size_t row = 0; row < n; ++row) {
    out << sim::to_millis(series_[0].down_queue_bytes.points()[row].t);
    for (const auto& s : series_) {
      out << ',' << s.down_queue_bytes.points()[row].value << ','
          << s.up_queue_bytes.points()[row].value << ','
          << s.down_capacity_mbps.points()[row].value;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace hvc::core
