# Empty dependencies file for hvc_quic.
# This may be replaced when dependencies are built.
