#include "net/packet.hpp"

#include <atomic>

#include "net/pool.hpp"
#include "obs/prof.hpp"

namespace hvc::net {

namespace {
// Thread-local so concurrent simulations (src/exp sweeps) never contend
// or perturb each other's id sequences.
thread_local std::uint64_t g_next_packet_id = 1;
}  // namespace

PacketPtr make_packet() {
  HVC_PROF_SCOPE(obs::prof::Hook::kPacketAlloc);
  // PooledAllocator keeps TrackingAllocator's prof accounting while
  // recycling the fused object+control-block allocation (see pool.hpp).
  auto p = std::allocate_shared<Packet>(PooledAllocator<Packet>{});
  p->id = g_next_packet_id++;
  return p;
}

void reset_packet_ids_for_test() { g_next_packet_id = 1; }

std::uint64_t packet_id_counter() { return g_next_packet_id; }

void set_packet_id_counter(std::uint64_t next) { g_next_packet_id = next; }

PacketPtr make_ack(FlowId flow, std::uint64_t ack, sim::Time ts_echo) {
  auto p = make_packet();
  p->flow = flow;
  p->type = PacketType::kAck;
  p->size_bytes = kHeaderBytes;
  p->tp.ack = ack;
  p->tp.has_ack = true;
  p->tp.ts_echo = ts_echo;
  return p;
}

PacketPtr clone_packet(const Packet& src) {
  HVC_PROF_SCOPE(obs::prof::Hook::kPacketAlloc);
  auto p = std::allocate_shared<Packet>(PooledAllocator<Packet>{}, src);
  p->id = g_next_packet_id++;
  return p;
}

}  // namespace hvc::net
