#include "transport/cubic.hpp"

#include <algorithm>

#include "sim/units.hpp"
#include <cmath>

namespace hvc::transport {

Cubic::Cubic(CubicConfig cfg)
    : cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(INT64_MAX) {}

double Cubic::cubic_target(sim::Time now) const {
  const double t = sim::to_seconds(now - epoch_start_);
  const double delta = t - k_;
  return cfg_.c * delta * delta * delta + w_max_mss_;
}

void Cubic::on_ack(const AckEvent& ev) {
  if (ev.rtt > 0) {
    last_srtt_ = ev.rtt;
    if (min_rtt_ == 0 || ev.rtt < min_rtt_) min_rtt_ = ev.rtt;
  }
  if (ev.acked_bytes <= 0) return;

  if (in_slow_start()) {
    // HyStart delay-based exit: leave slow start when this round's min
    // RTT rises clearly above the previous round's, instead of
    // overshooting the whole buffer and taking a multi-second
    // loss-recovery crash. Round-over-round comparison (as in Linux)
    // matters under packet steering: a lifetime-min comparison would
    // false-trigger the moment one sample rides a faster channel.
    bool exit_ss = false;
    if (cfg_.hystart && ev.rtt > 0 && cwnd_ >= cfg_.hystart_low_window) {
      if (ev.round_trips != hystart_round_) {
        prev_round_min_ = cur_round_min_;
        cur_round_min_ = 0;
        hystart_round_ = ev.round_trips;
      }
      if (cur_round_min_ == 0 || ev.rtt < cur_round_min_) {
        cur_round_min_ = ev.rtt;
      }
      if (prev_round_min_ > 0 && cur_round_min_ > 0) {
        const auto thresh = std::clamp<sim::Duration>(
            prev_round_min_ / 8, sim::milliseconds(4),
            sim::milliseconds(16));
        exit_ss = cur_round_min_ >= prev_round_min_ + thresh;
      }
    }
    if (exit_ss) {
      ssthresh_ = cwnd_;
    } else {
      cwnd_ += ev.acked_bytes;
      if (cwnd_ >= ssthresh_) cwnd_ = ssthresh_;
      return;
    }
  }

  if (epoch_start_ < 0) {
    epoch_start_ = ev.now;
    const double cwnd_mss = static_cast<double>(cwnd_) / kMss;
    if (w_max_mss_ < cwnd_mss) w_max_mss_ = cwnd_mss;
    k_ = std::cbrt((w_max_mss_ - cwnd_mss) / cfg_.c);
  }

  // Standard CUBIC: aim the window at the cubic curve one RTT ahead.
  const double target_mss =
      cubic_target(ev.now + last_srtt_);
  const double cwnd_mss = static_cast<double>(cwnd_) / kMss;
  double increment_mss;
  if (target_mss > cwnd_mss) {
    increment_mss = (target_mss - cwnd_mss) / cwnd_mss;
  } else {
    increment_mss = 0.01 / cwnd_mss;  // minimal growth when above curve
  }
  cwnd_ += static_cast<std::int64_t>(
      increment_mss * static_cast<double>(ev.acked_bytes) /
      static_cast<double>(kMss) * kMss);
  cwnd_ = std::max(cwnd_, cfg_.min_cwnd);
}

void Cubic::on_loss(const LossEvent& ev) {
  // At most one reduction per RTT (all losses in a window are one event).
  if (last_loss_ >= 0 && ev.now - last_loss_ < last_srtt_) return;
  last_loss_ = ev.now;
  prior_cwnd_ = cwnd_;
  prior_ssthresh_ = ssthresh_;
  prior_w_max_mss_ = w_max_mss_;

  const double cwnd_mss = static_cast<double>(cwnd_) / kMss;
  if (cfg_.fast_convergence && cwnd_mss < w_max_mss_) {
    w_max_mss_ = cwnd_mss * (1.0 + cfg_.beta) / 2.0;
  } else {
    w_max_mss_ = cwnd_mss;
  }
  cwnd_ = std::max(static_cast<std::int64_t>(
                       static_cast<double>(cwnd_) * cfg_.beta),
                   cfg_.min_cwnd);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;

  if (ev.is_rto) {
    ssthresh_ = std::max(cwnd_ / 2, cfg_.min_cwnd);
    cwnd_ = cfg_.min_cwnd;
    epoch_start_ = -1;
  }
}

void Cubic::on_spurious_loss(sim::Time /*now*/) {
  if (prior_cwnd_ <= 0) return;
  cwnd_ = std::max(cwnd_, prior_cwnd_);
  ssthresh_ = std::max(ssthresh_, prior_ssthresh_);
  w_max_mss_ = std::max(w_max_mss_, prior_w_max_mss_);
  epoch_start_ = -1;
  prior_cwnd_ = 0;  // one undo per reduction
}

}  // namespace hvc::transport
