// IANS / Socket-Intents-style *flow-granularity* channel selection
// ([23, 24, 40] in the paper): each flow is bound to exactly one channel
// when first seen, chosen from its intent (flow_priority here) and the
// channels' properties. The paper's critique — which the fig2/table1
// benches demonstrate — is that per-flow binding cannot exploit HVCs
// *within* a flow: a video flow bound to eMBB loses layer-0 acceleration,
// bound to URLLC it starves for bandwidth.
#pragma once

#include <cstdint>

#include "net/flow_table.hpp"
#include "steer/steering_policy.hpp"

namespace hvc::steer {

struct FlowBindingConfig {
  /// Flows with flow_priority <= this bind to the low-latency channel;
  /// the rest bind to the high-bandwidth channel. (IANS would derive this
  /// from socket intents; flow_priority is our wire encoding of them.)
  std::uint8_t latency_sensitive_max_priority = 0;

  /// Estimated flow demand above which even latency-sensitive flows bind
  /// to the high-bandwidth channel (IANS considers expected object size).
  /// Demand is estimated from bytes seen so far; 0 disables.
  std::int64_t max_bytes_on_fast_channel = 256 * 1024;
};

class FlowBindingPolicy final : public SteeringPolicy {
 public:
  explicit FlowBindingPolicy(FlowBindingConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "flow-binding"; }
  [[nodiscard]] bool uses_flow_priority() const override { return true; }

  Decision steer(const net::Packet& pkt,
                 std::span<const ChannelView> channels,
                 sim::Time now) override;

  /// Channel a flow is currently bound to (for tests/inspection).
  [[nodiscard]] std::size_t binding(net::FlowId flow) const {
    const FlowState* fs = flows_.find(flow);
    return fs == nullptr ? SIZE_MAX : fs->channel;
  }

 private:
  struct FlowState {
    std::size_t channel = 0;
    std::int64_t bytes_seen = 0;
  };

  FlowBindingConfig cfg_;
  // Per-flow steering state, keyed by the packet's own flow id. Every
  // decision is a find-or-create on the arriving packet's key; flow ids
  // are dense per run, so the table is a vector index (net/flow_table).
  net::FlowTable<FlowState> flows_;
};

}  // namespace hvc::steer
