# Empty compiler generated dependencies file for ablation_hvc_cc.
# This may be replaced when dependencies are built.
