// Unreliable datagram socket — the paper's real-time video experiment
// (§3.3) sends SVC layers "as UDP packets": no retransmission, no
// congestion control; frames that miss their decode deadline are simply
// late. Messages larger than one MTU are segmented; the receiver
// reassembles by (message_id, offset) and reports completion times.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace hvc::transport {

class DatagramSocket {
 public:
  DatagramSocket(net::Node& local, net::FlowId flow,
                 std::uint8_t flow_priority = 0);
  ~DatagramSocket();

  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  /// Send a message of `bytes` with the given priority; it is segmented
  /// into MTU-sized packets, each annotated with the message header.
  /// Returns the message id.
  std::uint64_t send_message(std::int64_t bytes, std::uint8_t priority);

  /// Same, with a caller-chosen message id (e.g. an encoding of
  /// frame-and-layer for video). Ids must be unique per socket.
  void send_message_with_id(std::uint64_t id, std::int64_t bytes,
                            std::uint8_t priority);

  /// Raw single-packet send (control traffic etc.).
  void send_packet(net::PacketPtr p);

  /// Per-packet receive hook.
  void set_on_packet(std::function<void(const net::PacketPtr&)> cb) {
    on_packet_ = std::move(cb);
  }

  /// Everything known about a fully reassembled message.
  struct MessageEvent {
    net::AppHeader header;
    sim::Time sent_at = 0;        ///< first packet's send timestamp
    sim::Time first_arrival = 0;  ///< first packet's arrival
    sim::Time completed = 0;      ///< last packet's arrival
  };

  /// Full-message hook.
  void set_on_message(std::function<void(const MessageEvent&)> cb) {
    on_message_ = std::move(cb);
  }

  [[nodiscard]] net::FlowId flow() const { return flow_; }
  [[nodiscard]] std::int64_t messages_sent() const { return messages_sent_; }

 private:
  void on_inbound(const net::PacketPtr& p);

  net::Node& local_;
  net::FlowId flow_;
  std::uint8_t flow_priority_;
  std::uint64_t next_message_id_ = 1;
  std::int64_t messages_sent_ = 0;

  struct Reassembly {
    net::AppHeader header;
    std::set<std::uint32_t> offsets;  ///< unique chunk offsets
    std::int64_t received = 0;
    sim::Time sent_at = 0;
    sim::Time first_arrival = 0;
  };
  std::map<std::uint64_t, Reassembly> reassembly_;

  std::function<void(const net::PacketPtr&)> on_packet_;
  std::function<void(const MessageEvent&)> on_message_;
};

}  // namespace hvc::transport
